#include "la/kernel_dispatch.h"

#include <algorithm>

namespace turbo::la::dispatch {

namespace internal {

const la::internal::KernelTable& ActiveTable() {
  switch (ActiveIsa()) {
    case KernelIsa::kScalar:
      return la::internal::ScalarKernels();
    case KernelIsa::kAvx2:
#if defined(TURBO_LA_HAVE_AVX2)
      return la::internal::Avx2Kernels();
#else
      break;
#endif
    case KernelIsa::kAvx512:
#if defined(TURBO_LA_HAVE_AVX512)
      return la::internal::Avx512Kernels();
#else
      break;
#endif
    case KernelIsa::kNeon:
#if defined(TURBO_LA_HAVE_NEON)
      return la::internal::NeonKernels();
#else
      break;
#endif
  }
  return la::internal::ScalarKernels();
}

}  // namespace internal

namespace {

// Same depth blocking as la::MatMul: blocks advance in increasing p, so
// each c[i,j] accumulates depth-sequentially regardless of tier.
constexpr size_t kDepthBlock = 128;

// Resolves the addend pointer/stride for the fused epilogues. Returns
// stride 0 for a [1,n] broadcast bias, n for a full [m,n] addend.
const float* AddendPtr(const Matrix* addend, size_t m, size_t n,
                       size_t* stride) {
  if (addend == nullptr) {
    *stride = 0;
    return nullptr;
  }
  TURBO_CHECK_EQ(addend->cols(), n);
  if (addend->rows() == 1) {
    *stride = 0;
  } else {
    TURBO_CHECK_EQ(addend->rows(), m);
    *stride = n;
  }
  return addend->data();
}

Matrix MatMulImpl(const Matrix& a, const Matrix& b, const Matrix* addend,
                  Act act, bool fused) {
  TURBO_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  size_t add_stride = 0;
  const float* add =
      fused ? AddendPtr(addend, m, n, &add_stride) : nullptr;
  const auto& t = internal::ActiveTable();
  detail::ParallelRows(m, k * n, [&](size_t r0, size_t r1) {
    for (size_t p0 = 0; p0 < k; p0 += kDepthBlock) {
      const size_t p1 = std::min(k, p0 + kDepthBlock);
      t.gemm_rows(a.data(), b.data(), c.data(), k, n, r0, r1, p0, p1);
    }
    if (fused) t.epilogue_rows(c.data(), add, add_stride, n, r0, r1, act);
  });
  return c;
}

Matrix SpmmImpl(const SparseMatrix& s, const Matrix& x, const Matrix* addend,
                Act act, bool fused) {
  TURBO_CHECK_EQ(s.cols(), x.rows());
  Matrix y(s.rows(), x.cols());
  const size_t m = s.rows(), n = x.cols();
  size_t add_stride = 0;
  const float* add =
      fused ? AddendPtr(addend, m, n, &add_stride) : nullptr;
  const auto& t = internal::ActiveTable();
  const size_t avg_flops =
      m == 0 ? 0 : std::max<size_t>(1, s.nnz() * n / m);
  detail::ParallelRows(m, avg_flops, [&](size_t r0, size_t r1) {
    t.spmm_rows(s.row_ptr().data(), s.col_idx().data(), s.values().data(),
                x.data(), y.data(), n, r0, r1);
    if (fused) t.epilogue_rows(y.data(), add, add_stride, n, r0, r1, act);
  });
  return y;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  return MatMulImpl(a, b, nullptr, Act::kIdentity, /*fused=*/false);
}

Matrix MatMulBiasAct(const Matrix& a, const Matrix& b, const Matrix* addend,
                     Act act) {
  return MatMulImpl(a, b, addend, act, /*fused=*/true);
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  TURBO_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  const auto& t = internal::ActiveTable();
  detail::ParallelRows(m, k * n, [&](size_t r0, size_t r1) {
    t.gemm_transb_rows(a.data(), b.data(), c.data(), k, n, r0, r1);
  });
  return c;
}

Matrix Spmm(const SparseMatrix& s, const Matrix& x) {
  return SpmmImpl(s, x, nullptr, Act::kIdentity, /*fused=*/false);
}

Matrix SpmmBiasAct(const SparseMatrix& s, const Matrix& x,
                   const Matrix* addend, Act act) {
  return SpmmImpl(s, x, addend, act, /*fused=*/true);
}

Matrix MapAct(const Matrix& a, Act act) {
  Matrix out(a.rows(), a.cols());
  internal::ActiveTable().map_act(act, a.data(), out.data(), a.size());
  return out;
}

}  // namespace turbo::la::dispatch
