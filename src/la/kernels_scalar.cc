// Scalar kernel tier: the reference implementations every SIMD tier is
// ULP-gated against.
//
// The loop bodies mirror la::MatMul / la::MatMulTransB /
// la::SparseMatrix::Multiply exactly (same loop order, same accumulation
// sequence, no FMA contraction beyond what the base compile flags already
// allow), so forcing KernelIsa::kScalar makes the dispatched inference
// kernels bit-identical to the autograd/training kernels.
#include <cmath>

#include "la/kernel_table.h"

namespace turbo::la::internal {

float ApplyAct(Act act, float x) {
  switch (act) {
    case Act::kIdentity:
      return x;
    case Act::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Act::kTanh:
      return std::tanh(x);
    case Act::kSigmoid:
      // Same numerically-stable split as la::kernels::Sigmoid.
      return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                       : std::exp(x) / (1.0f + std::exp(x));
  }
  return x;
}

namespace {

void GemmRows(const float* a, const float* b, float* c, size_t k, size_t n,
              size_t r0, size_t r1, size_t p0, size_t p1) {
  for (size_t i = r0; i < r1; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (size_t p = p0; p < p1; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransBRows(const float* a, const float* b, float* c, size_t k,
                    size_t n, size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 1 < n; j += 2) {
      const float* b0 = b + j * k;
      const float* b1 = b + (j + 1) * k;
      float s0 = 0.0f, s1 = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
    }
    if (j < n) {
      const float* brow = b + j * k;
      float s = 0.0f;
      for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

void SpmmRows(const uint32_t* row_ptr, const uint32_t* cols,
              const float* vals, const float* x, float* y, size_t n,
              size_t r0, size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    float* yrow = y + r * n;
    for (uint32_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const float v = vals[e];
      const float* xrow = x + static_cast<size_t>(cols[e]) * n;
      for (size_t j = 0; j < n; ++j) yrow[j] += v * xrow[j];
    }
  }
}

void EpilogueRows(float* c, const float* add, size_t add_stride, size_t n,
                  size_t r0, size_t r1, Act act) {
  for (size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    const float* arow = add == nullptr ? nullptr : add + r * add_stride;
    for (size_t j = 0; j < n; ++j) {
      const float z = arow == nullptr ? crow[j] : crow[j] + arow[j];
      crow[j] = ApplyAct(act, z);
    }
  }
}

void MapAct(Act act, const float* in, float* out, size_t count) {
  for (size_t i = 0; i < count; ++i) out[i] = ApplyAct(act, in[i]);
}

void GemmQuantRows(const float* a, const int8_t* q, const float* scale,
                   const int32_t* zero_point, float* c, size_t k, size_t n,
                   size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      // Per-row affine dequantization folded into the multiplier: float
      // accumulate, int8 memory traffic.
      const float m = arow[p] * scale[p];
      const int32_t zp = zero_point[p];
      const int8_t* qrow = q + p * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += m * static_cast<float>(static_cast<int32_t>(qrow[j]) - zp);
      }
    }
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      GemmRows,     GemmTransBRows, SpmmRows,
      EpilogueRows, MapAct,         GemmQuantRows,
  };
  return table;
}

}  // namespace turbo::la::internal
