// AVX-512F kernel tier. Compiled with -mavx512f via per-file flags in
// la/CMakeLists.txt; only registered when the host CPU reports avx512f.
//
// Same structural contract as the AVX2 tier (see kernels_avx2.cc): lanes
// span output columns, depth advances sequentially, transcendental
// epilogues stay scalar. Column tails use lane masks instead of scalar
// loops — maskz loads read zeros into dead lanes and masked stores leave
// memory past the tail untouched, so tails follow the exact same FMA
// sequence as full vectors. Only AVX-512F instructions are used (no
// BW/DQ/VL), so any avx512f host can run this tier.
#if defined(TURBO_LA_HAVE_AVX512)

#include <immintrin.h>

#include "la/kernel_table.h"

namespace turbo::la::internal {
namespace {

inline __mmask16 TailMask(size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

void GemmRows(const float* a, const float* b, float* c, size_t k, size_t n,
              size_t r0, size_t r1, size_t p0, size_t p1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    // 64-column register block: 4 zmm accumulators live across the
    // whole depth block.
    for (; j + 64 <= n; j += 64) {
      float* cj = crow + j;
      __m512 acc0 = _mm512_loadu_ps(cj);
      __m512 acc1 = _mm512_loadu_ps(cj + 16);
      __m512 acc2 = _mm512_loadu_ps(cj + 32);
      __m512 acc3 = _mm512_loadu_ps(cj + 48);
      for (size_t p = p0; p < p1; ++p) {
        const __m512 av = _mm512_set1_ps(arow[p]);
        const float* bj = b + p * n + j;
        acc0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bj), acc0);
        acc1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bj + 16), acc1);
        acc2 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bj + 32), acc2);
        acc3 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bj + 48), acc3);
      }
      _mm512_storeu_ps(cj, acc0);
      _mm512_storeu_ps(cj + 16, acc1);
      _mm512_storeu_ps(cj + 32, acc2);
      _mm512_storeu_ps(cj + 48, acc3);
    }
    for (; j + 16 <= n; j += 16) {
      float* cj = crow + j;
      __m512 acc = _mm512_loadu_ps(cj);
      for (size_t p = p0; p < p1; ++p) {
        acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[p]),
                              _mm512_loadu_ps(b + p * n + j), acc);
      }
      _mm512_storeu_ps(cj, acc);
    }
    if (j < n) {
      const __mmask16 m = TailMask(n - j);
      __m512 acc = _mm512_maskz_loadu_ps(m, crow + j);
      for (size_t p = p0; p < p1; ++p) {
        acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[p]),
                              _mm512_maskz_loadu_ps(m, b + p * n + j), acc);
      }
      _mm512_mask_storeu_ps(crow + j, m, acc);
    }
  }
}

void GemmTransBRows(const float* a, const float* b, float* c, size_t k,
                    size_t n, size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 1 < n; j += 2) {
      const float* b0 = b + j * k;
      const float* b1 = b + (j + 1) * k;
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      size_t p = 0;
      for (; p + 16 <= k; p += 16) {
        const __m512 av = _mm512_loadu_ps(arow + p);
        acc0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b0 + p), acc0);
        acc1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b1 + p), acc1);
      }
      if (p < k) {
        const __mmask16 m = TailMask(k - p);
        const __m512 av = _mm512_maskz_loadu_ps(m, arow + p);
        acc0 = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(m, b0 + p), acc0);
        acc1 = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(m, b1 + p), acc1);
      }
      crow[j] = _mm512_reduce_add_ps(acc0);
      crow[j + 1] = _mm512_reduce_add_ps(acc1);
    }
    if (j < n) {
      const float* brow = b + j * k;
      __m512 acc = _mm512_setzero_ps();
      size_t p = 0;
      for (; p + 16 <= k; p += 16) {
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(arow + p),
                              _mm512_loadu_ps(brow + p), acc);
      }
      if (p < k) {
        const __mmask16 m = TailMask(k - p);
        acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, arow + p),
                              _mm512_maskz_loadu_ps(m, brow + p), acc);
      }
      crow[j] = _mm512_reduce_add_ps(acc);
    }
  }
}

void SpmmRows(const uint32_t* row_ptr, const uint32_t* cols,
              const float* vals, const float* x, float* y, size_t n,
              size_t r0, size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    float* yrow = y + r * n;
    const uint32_t e0 = row_ptr[r], e1 = row_ptr[r + 1];
    size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m512 acc0 = _mm512_loadu_ps(yrow + j);
      __m512 acc1 = _mm512_loadu_ps(yrow + j + 16);
      for (uint32_t e = e0; e < e1; ++e) {
        const __m512 v = _mm512_set1_ps(vals[e]);
        const float* xj = x + static_cast<size_t>(cols[e]) * n + j;
        acc0 = _mm512_fmadd_ps(v, _mm512_loadu_ps(xj), acc0);
        acc1 = _mm512_fmadd_ps(v, _mm512_loadu_ps(xj + 16), acc1);
      }
      _mm512_storeu_ps(yrow + j, acc0);
      _mm512_storeu_ps(yrow + j + 16, acc1);
    }
    for (; j + 16 <= n; j += 16) {
      __m512 acc = _mm512_loadu_ps(yrow + j);
      for (uint32_t e = e0; e < e1; ++e) {
        acc = _mm512_fmadd_ps(
            _mm512_set1_ps(vals[e]),
            _mm512_loadu_ps(x + static_cast<size_t>(cols[e]) * n + j), acc);
      }
      _mm512_storeu_ps(yrow + j, acc);
    }
    if (j < n) {
      const __mmask16 m = TailMask(n - j);
      __m512 acc = _mm512_maskz_loadu_ps(m, yrow + j);
      for (uint32_t e = e0; e < e1; ++e) {
        acc = _mm512_fmadd_ps(
            _mm512_set1_ps(vals[e]),
            _mm512_maskz_loadu_ps(
                m, x + static_cast<size_t>(cols[e]) * n + j),
            acc);
      }
      _mm512_mask_storeu_ps(yrow + j, m, acc);
    }
  }
}

void EpilogueRows(float* c, const float* add, size_t add_stride, size_t n,
                  size_t r0, size_t r1, Act act) {
  if (act == Act::kTanh || act == Act::kSigmoid) {
    // Transcendentals stay on the scalar libm path on every tier.
    for (size_t r = r0; r < r1; ++r) {
      float* crow = c + r * n;
      const float* arow = add == nullptr ? nullptr : add + r * add_stride;
      for (size_t j = 0; j < n; ++j) {
        const float z = arow == nullptr ? crow[j] : crow[j] + arow[j];
        crow[j] = ApplyAct(act, z);
      }
    }
    return;
  }
  const __m512 zero = _mm512_setzero_ps();
  for (size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    const float* arow = add == nullptr ? nullptr : add + r * add_stride;
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512 z = _mm512_loadu_ps(crow + j);
      if (arow != nullptr) z = _mm512_add_ps(z, _mm512_loadu_ps(arow + j));
      // Second-operand-on-equal/NaN semantics match scalar relu exactly,
      // as in the AVX2 tier.
      if (act == Act::kRelu) z = _mm512_max_ps(z, zero);
      _mm512_storeu_ps(crow + j, z);
    }
    if (j < n) {
      const __mmask16 m = TailMask(n - j);
      __m512 z = _mm512_maskz_loadu_ps(m, crow + j);
      if (arow != nullptr) {
        z = _mm512_add_ps(z, _mm512_maskz_loadu_ps(m, arow + j));
      }
      if (act == Act::kRelu) z = _mm512_max_ps(z, zero);
      _mm512_mask_storeu_ps(crow + j, m, z);
    }
  }
}

void MapAct(Act act, const float* in, float* out, size_t count) {
  if (act == Act::kRelu) {
    const __m512 zero = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= count; i += 16) {
      _mm512_storeu_ps(out + i,
                       _mm512_max_ps(_mm512_loadu_ps(in + i), zero));
    }
    if (i < count) {
      const __mmask16 m = TailMask(count - i);
      _mm512_mask_storeu_ps(
          out + i, m,
          _mm512_max_ps(_mm512_maskz_loadu_ps(m, in + i), zero));
    }
    return;
  }
  for (size_t i = 0; i < count; ++i) out[i] = ApplyAct(act, in[i]);
}

void GemmQuantRows(const float* a, const int8_t* q, const float* scale,
                   const int32_t* zero_point, float* c, size_t k, size_t n,
                   size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float m = arow[p] * scale[p];
      const int32_t zp = zero_point[p];
      const int8_t* qrow = q + p * n;
      const __m512 vm = _mm512_set1_ps(m);
      const __m512i vzp = _mm512_set1_epi32(zp);
      size_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m128i q8 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(qrow + j));
        const __m512i q32 =
            _mm512_sub_epi32(_mm512_cvtepi8_epi32(q8), vzp);
        const __m512 deq = _mm512_cvtepi32_ps(q32);
        _mm512_storeu_ps(
            crow + j,
            _mm512_fmadd_ps(vm, deq, _mm512_loadu_ps(crow + j)));
      }
      // Byte-granular masked loads need AVX-512BW; keep the tail scalar
      // so the tier only requires avx512f.
      for (; j < n; ++j) {
        crow[j] +=
            m * static_cast<float>(static_cast<int32_t>(qrow[j]) - zp);
      }
    }
  }
}

}  // namespace

const KernelTable& Avx512Kernels() {
  static const KernelTable table = {
      GemmRows,     GemmTransBRows, SpmmRows,
      EpilogueRows, MapAct,         GemmQuantRows,
  };
  return table;
}

}  // namespace turbo::la::internal

#endif  // TURBO_LA_HAVE_AVX512
