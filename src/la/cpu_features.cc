#include "la/cpu_features.h"

#include <atomic>
#include <cstdlib>

#include "util/check.h"

namespace turbo::la {

namespace {

CpuFeatures Probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults cpuid AND xgetbv, so it already
  // accounts for OS XSAVE support of the wide register files.
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#elif defined(__aarch64__)
  // Advanced SIMD is part of the aarch64 baseline; no HWCAP probe is
  // needed for the plain-NEON kernels this library ships.
  f.neon = true;
#endif
  return f;
}

bool CompiledIsa(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
#if defined(TURBO_LA_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#if defined(TURBO_LA_HAVE_AVX512)
      return true;
#else
      return false;
#endif
    case KernelIsa::kNeon:
#if defined(TURBO_LA_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

// Resolved active tier; kUnresolved until the first ActiveIsa() call or
// SetKernelIsa override.
constexpr int kUnresolved = -1;
std::atomic<int> g_active_isa{kUnresolved};

KernelIsa ResolveFromEnvironment() {
  if (const char* env = std::getenv("TURBO_KERNEL_ISA")) {
    KernelIsa isa;
    TURBO_CHECK_MSG(ParseIsaName(env, &isa),
                    "TURBO_KERNEL_ISA: unknown ISA name '" << env << "'");
    TURBO_CHECK_MSG(IsaSupported(isa),
                    "TURBO_KERNEL_ISA=" << env
                                        << " is not supported on this host "
                                           "(or not compiled in)");
    return isa;
  }
  return BestIsa();
}

}  // namespace

const CpuFeatures& CpuFeatures::Get() {
  static const CpuFeatures features = Probe();
  return features;
}

bool IsaSupported(KernelIsa isa) {
  if (!CompiledIsa(isa)) return false;
  const CpuFeatures& f = CpuFeatures::Get();
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return f.avx2 && f.fma;
    case KernelIsa::kAvx512:
      return f.avx512f;
    case KernelIsa::kNeon:
      return f.neon;
  }
  return false;
}

KernelIsa BestIsa(const CpuFeatures& features) {
  if (features.avx512f && CompiledIsa(KernelIsa::kAvx512)) {
    return KernelIsa::kAvx512;
  }
  if (features.avx2 && features.fma && CompiledIsa(KernelIsa::kAvx2)) {
    return KernelIsa::kAvx2;
  }
  if (features.neon && CompiledIsa(KernelIsa::kNeon)) {
    return KernelIsa::kNeon;
  }
  return KernelIsa::kScalar;
}

KernelIsa ActiveIsa() {
  int isa = g_active_isa.load(std::memory_order_acquire);
  if (isa == kUnresolved) {
    // Benign race: concurrent first calls resolve to the same value.
    isa = static_cast<int>(ResolveFromEnvironment());
    g_active_isa.store(isa, std::memory_order_release);
  }
  return static_cast<KernelIsa>(isa);
}

void SetKernelIsa(KernelIsa isa) {
  TURBO_CHECK_MSG(IsaSupported(isa), "kernel ISA "
                                         << IsaName(isa)
                                         << " is not supported on this host "
                                            "(or not compiled in)");
  g_active_isa.store(static_cast<int>(isa), std::memory_order_release);
}

void ResetKernelIsa() {
  g_active_isa.store(kUnresolved, std::memory_order_release);
}

const char* IsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
    case KernelIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseIsaName(const std::string& name, KernelIsa* out) {
  if (name == "scalar") {
    *out = KernelIsa::kScalar;
  } else if (name == "avx2") {
    *out = KernelIsa::kAvx2;
  } else if (name == "avx512") {
    *out = KernelIsa::kAvx512;
  } else if (name == "neon") {
    *out = KernelIsa::kNeon;
  } else if (name == "auto") {
    *out = BestIsa();
  } else {
    return false;
  }
  return true;
}

ScopedKernelIsa::ScopedKernelIsa(KernelIsa isa) : previous_(ActiveIsa()) {
  SetKernelIsa(isa);
}

ScopedKernelIsa::~ScopedKernelIsa() { SetKernelIsa(previous_); }

}  // namespace turbo::la
