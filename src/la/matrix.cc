#include "la/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "util/thread_pool.h"

namespace turbo::la {

namespace {

// Kernel parallelism: rows are sliced across the shared pool only when
// the product is big enough to amortize the hand-off, and each row is
// computed start-to-finish by one thread, so the floating-point
// accumulation order (and therefore the result bits) never depends on
// the thread count.
constexpr size_t kParallelFlopThreshold = size_t{1} << 20;

std::atomic<int> g_kernel_threads{0};  // <= 0: hardware default

}  // namespace

namespace detail {

void ParallelRows(size_t rows, size_t flops_per_row,
                  const std::function<void(size_t, size_t)>& body) {
  const size_t total = rows * flops_per_row;
  const int cap = g_kernel_threads.load(std::memory_order_relaxed);
  if (total < kParallelFlopThreshold || rows < 2 || cap == 1) {
    body(0, rows);
    return;
  }
  // Aim for a few chunks per thread for load balance, but keep every
  // chunk above the threshold's worth of work.
  auto& pool = util::ThreadPool::Shared();
  size_t threads = static_cast<size_t>(pool.size()) + 1;
  if (cap > 0) threads = std::min(threads, static_cast<size_t>(cap));
  const size_t min_rows =
      std::max<size_t>(1, kParallelFlopThreshold / 4 / flops_per_row);
  const size_t grain =
      std::max(min_rows, (rows + 2 * threads - 1) / (2 * threads));
  pool.ParallelFor(rows, grain, body);
}

}  // namespace detail

void SetKernelThreads(int threads) {
  g_kernel_threads.store(threads <= 0 ? 0 : threads,
                         std::memory_order_relaxed);
}

int KernelThreads() {
  const int cap = g_kernel_threads.load(std::memory_order_relaxed);
  return cap > 0 ? cap : util::ThreadPool::Shared().size() + 1;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  TURBO_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    TURBO_CHECK_EQ(rows[r].size(), m.cols());
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

Matrix Matrix::Randn(size_t rows, size_t cols, Rng* rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng->NextGaussian() * stddev);
  return m;
}

Matrix Matrix::Glorot(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (auto& v : m.data_) v = static_cast<float>(rng->NextDouble(-a, a));
  return m;
}

void Matrix::Add(const Matrix& other, float alpha) {
  TURBO_CHECK(same_shape(other));
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o[i];
}

void Matrix::Scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::ostringstream oss;
  oss << "Matrix(" << rows_ << "x" << cols_ << ")[\n";
  for (size_t r = 0; r < rows_ && r < static_cast<size_t>(max_rows); ++r) {
    oss << "  ";
    for (size_t c = 0; c < cols_ && c < static_cast<size_t>(max_cols); ++c) {
      oss << (*this)(r, c) << " ";
    }
    if (cols_ > static_cast<size_t>(max_cols)) oss << "...";
    oss << "\n";
  }
  if (rows_ > static_cast<size_t>(max_rows)) oss << "  ...\n";
  oss << "]";
  return oss.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  TURBO_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  // ikj loop order: streams through b and c rows so the inner loop
  // vectorizes. The depth loop is blocked to keep the active slice of b
  // in cache for large k; blocks advance in increasing p, so each c[i,j]
  // accumulates in exactly the serial order. Dense inputs branch-predict
  // terribly on a zero-skip test, so none is attempted (the old kernel's
  // `if (av == 0.0f) continue;` cost ~30% on dense GEMM — see
  // bench_micro_kernels BM_MatMulReference).
  constexpr size_t kDepthBlock = 128;
  detail::ParallelRows(m, k * n, [&](size_t r0, size_t r1) {
    for (size_t p0 = 0; p0 < k; p0 += kDepthBlock) {
      const size_t p1 = std::min(k, p0 + kDepthBlock);
      for (size_t i = r0; i < r1; ++i) {
        float* crow = c.row(i);
        const float* arow = a.row(i);
        for (size_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          const float* brow = b.row(p);
          for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  TURBO_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  TURBO_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  // Row-of-a against two rows of b at a time: a[i,:] is loaded once per
  // pair instead of once per row of b. Each dot product keeps one
  // sequential accumulator, so results match the serial kernel exactly.
  detail::ParallelRows(m, k * n, [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      size_t j = 0;
      for (; j + 1 < n; j += 2) {
        const float* b0 = b.row(j);
        const float* b1 = b.row(j + 1);
        float s0 = 0.0f, s1 = 0.0f;
        for (size_t p = 0; p < k; ++p) {
          const float av = arow[p];
          s0 += av * b0[p];
          s1 += av * b1[p];
        }
        crow[j] = s0;
        crow[j + 1] = s1;
      }
      if (j < n) {
        const float* brow = b.row(j);
        float s = 0.0f;
        for (size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        crow[j] = s;
      }
    }
  });
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  }
  return t;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  TURBO_CHECK_EQ(bias.rows(), 1u);
  TURBO_CHECK_EQ(bias.cols(), a.cols());
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    float* orow = out.row(r);
    const float* brow = bias.row(0);
    for (size_t c = 0; c < a.cols(); ++c) orow[c] += brow[c];
  }
  return out;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& s) {
  TURBO_CHECK_EQ(s.cols(), 1u);
  TURBO_CHECK_EQ(s.rows(), a.rows());
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float g = s(r, 0);
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (size_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] * g;
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  TURBO_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), out.row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), out.row(r) + a.cols());
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* in = a.row(r);
    float* o = out.row(r);
    float mx = in[0];
    for (size_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = 0; c < a.cols(); ++c) o[c] *= inv;
  }
  return out;
}

Matrix RowSums(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    float s = 0.0f;
    const float* in = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) s += in[c];
    out(r, 0) = s;
  }
  return out;
}

Matrix Col(const Matrix& a, size_t c) {
  TURBO_CHECK_LT(c, a.cols());
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) out(r, 0) = a(r, c);
  return out;
}

Matrix SliceCols(const Matrix& a, size_t start, size_t len) {
  TURBO_CHECK_LE(start + len, a.cols());
  Matrix out(a.rows(), len);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* in = a.row(r) + start;
    std::copy(in, in + len, out.row(r));
  }
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, float atol, float rtol) {
  if (!a.same_shape(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    float x = a.data()[i], y = b.data()[i];
    if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
  }
  return true;
}

}  // namespace turbo::la
