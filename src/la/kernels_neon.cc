// NEON (aarch64 Advanced SIMD) kernel tier. Part of the aarch64
// baseline, so no per-file -m flags are needed; gated on
// TURBO_LA_HAVE_NEON which la/CMakeLists.txt defines only for arm64
// builds. Same structural contract as the AVX2 tier (kernels_avx2.cc):
// lanes span output columns, depth advances sequentially, scalar tails,
// transcendental epilogues stay scalar.
#if defined(TURBO_LA_HAVE_NEON)

#include <arm_neon.h>

#include "la/kernel_table.h"

namespace turbo::la::internal {
namespace {

void GemmRows(const float* a, const float* b, float* c, size_t k, size_t n,
              size_t r0, size_t r1, size_t p0, size_t p1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      float* cj = crow + j;
      float32x4_t acc0 = vld1q_f32(cj);
      float32x4_t acc1 = vld1q_f32(cj + 4);
      float32x4_t acc2 = vld1q_f32(cj + 8);
      float32x4_t acc3 = vld1q_f32(cj + 12);
      for (size_t p = p0; p < p1; ++p) {
        const float32x4_t av = vdupq_n_f32(arow[p]);
        const float* bj = b + p * n + j;
        acc0 = vfmaq_f32(acc0, av, vld1q_f32(bj));
        acc1 = vfmaq_f32(acc1, av, vld1q_f32(bj + 4));
        acc2 = vfmaq_f32(acc2, av, vld1q_f32(bj + 8));
        acc3 = vfmaq_f32(acc3, av, vld1q_f32(bj + 12));
      }
      vst1q_f32(cj, acc0);
      vst1q_f32(cj + 4, acc1);
      vst1q_f32(cj + 8, acc2);
      vst1q_f32(cj + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      float* cj = crow + j;
      float32x4_t acc = vld1q_f32(cj);
      for (size_t p = p0; p < p1; ++p) {
        acc = vfmaq_f32(acc, vdupq_n_f32(arow[p]), vld1q_f32(b + p * n + j));
      }
      vst1q_f32(cj, acc);
    }
    for (; j < n; ++j) {
      float s = crow[j];
      for (size_t p = p0; p < p1; ++p) s += arow[p] * b[p * n + j];
      crow[j] = s;
    }
  }
}

void GemmTransBRows(const float* a, const float* b, float* c, size_t k,
                    size_t n, size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float32x4_t acc = vdupq_n_f32(0.0f);
      size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        acc = vfmaq_f32(acc, vld1q_f32(arow + p), vld1q_f32(brow + p));
      }
      float s = vaddvq_f32(acc);
      for (; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

void SpmmRows(const uint32_t* row_ptr, const uint32_t* cols,
              const float* vals, const float* x, float* y, size_t n,
              size_t r0, size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    float* yrow = y + r * n;
    const uint32_t e0 = row_ptr[r], e1 = row_ptr[r + 1];
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float32x4_t acc0 = vld1q_f32(yrow + j);
      float32x4_t acc1 = vld1q_f32(yrow + j + 4);
      for (uint32_t e = e0; e < e1; ++e) {
        const float32x4_t v = vdupq_n_f32(vals[e]);
        const float* xj = x + static_cast<size_t>(cols[e]) * n + j;
        acc0 = vfmaq_f32(acc0, v, vld1q_f32(xj));
        acc1 = vfmaq_f32(acc1, v, vld1q_f32(xj + 4));
      }
      vst1q_f32(yrow + j, acc0);
      vst1q_f32(yrow + j + 4, acc1);
    }
    for (; j < n; ++j) {
      float s = yrow[j];
      for (uint32_t e = e0; e < e1; ++e) {
        s += vals[e] * x[static_cast<size_t>(cols[e]) * n + j];
      }
      yrow[j] = s;
    }
  }
}

void EpilogueRows(float* c, const float* add, size_t add_stride, size_t n,
                  size_t r0, size_t r1, Act act) {
  if (act == Act::kTanh || act == Act::kSigmoid) {
    for (size_t r = r0; r < r1; ++r) {
      float* crow = c + r * n;
      const float* arow = add == nullptr ? nullptr : add + r * add_stride;
      for (size_t j = 0; j < n; ++j) {
        const float z = arow == nullptr ? crow[j] : crow[j] + arow[j];
        crow[j] = ApplyAct(act, z);
      }
    }
    return;
  }
  const float32x4_t zero = vdupq_n_f32(0.0f);
  for (size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    const float* arow = add == nullptr ? nullptr : add + r * add_stride;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      float32x4_t z = vld1q_f32(crow + j);
      if (arow != nullptr) z = vaddq_f32(z, vld1q_f32(arow + j));
      if (act == Act::kRelu) z = vmaxq_f32(z, zero);
      vst1q_f32(crow + j, z);
    }
    for (; j < n; ++j) {
      const float z = arow == nullptr ? crow[j] : crow[j] + arow[j];
      crow[j] = ApplyAct(act, z);
    }
  }
}

void MapAct(Act act, const float* in, float* out, size_t count) {
  if (act == Act::kRelu) {
    const float32x4_t zero = vdupq_n_f32(0.0f);
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      vst1q_f32(out + i, vmaxq_f32(vld1q_f32(in + i), zero));
    }
    for (; i < count; ++i) out[i] = ApplyAct(act, in[i]);
    return;
  }
  for (size_t i = 0; i < count; ++i) out[i] = ApplyAct(act, in[i]);
}

void GemmQuantRows(const float* a, const int8_t* q, const float* scale,
                   const int32_t* zero_point, float* c, size_t k, size_t n,
                   size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float m = arow[p] * scale[p];
      const int32_t zp = zero_point[p];
      const int8_t* qrow = q + p * n;
      const float32x4_t vm = vdupq_n_f32(m);
      const int32x4_t vzp = vdupq_n_s32(zp);
      size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const int8x8_t q8 = vld1_s8(qrow + j);
        const int16x8_t q16 = vmovl_s8(q8);
        const int32x4_t lo = vsubq_s32(vmovl_s16(vget_low_s16(q16)), vzp);
        const int32x4_t hi = vsubq_s32(vmovl_s16(vget_high_s16(q16)), vzp);
        float32x4_t c0 = vld1q_f32(crow + j);
        float32x4_t c1 = vld1q_f32(crow + j + 4);
        c0 = vfmaq_f32(c0, vm, vcvtq_f32_s32(lo));
        c1 = vfmaq_f32(c1, vm, vcvtq_f32_s32(hi));
        vst1q_f32(crow + j, c0);
        vst1q_f32(crow + j + 4, c1);
      }
      for (; j < n; ++j) {
        crow[j] +=
            m * static_cast<float>(static_cast<int32_t>(qrow[j]) - zp);
      }
    }
  }
}

}  // namespace

const KernelTable& NeonKernels() {
  static const KernelTable table = {
      GemmRows,     GemmTransBRows, SpmmRows,
      EpilogueRows, MapAct,         GemmQuantRows,
  };
  return table;
}

}  // namespace turbo::la::internal

#endif  // TURBO_LA_HAVE_NEON
