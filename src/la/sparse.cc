#include "la/sparse.h"

#include <algorithm>

namespace turbo::la {

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    TURBO_CHECK_LT(t.row, rows);
    TURBO_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  for (size_t r = 0; r < rows; ++r) {
    m.row_ptr_[r] = static_cast<uint32_t>(m.col_idx_.size());
    while (i < triplets.size() && triplets[i].row == r) {
      uint32_t c = triplets[i].col;
      float v = triplets[i].value;
      ++i;
      // Merge duplicates.
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_ptr_[rows] = static_cast<uint32_t>(m.col_idx_.size());
  return m;
}

Matrix SparseMatrix::Multiply(const Matrix& x) const {
  TURBO_CHECK_EQ(cols_, x.rows());
  Matrix y(rows_, x.cols());
  const size_t n = x.cols();
  // Output rows are independent, so the row loop parallelizes without
  // changing any per-row accumulation order (threshold on average work
  // per row; see la/matrix.h SetKernelThreads).
  const size_t avg_flops =
      rows_ == 0 ? 0 : std::max<size_t>(1, nnz() * n / rows_);
  detail::ParallelRows(rows_, avg_flops, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* yrow = y.row(r);
      for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const float v = values_[k];
        const float* xrow = x.row(col_idx_[k]);
        for (size_t j = 0; j < n; ++j) yrow[j] += v * xrow[j];
      }
    }
  });
  return y;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& x) const {
  TURBO_CHECK_EQ(rows_, x.rows());
  Matrix y(cols_, x.cols());
  const size_t n = x.cols();
  for (size_t r = 0; r < rows_; ++r) {
    const float* xrow = x.row(r);
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float v = values_[k];
      float* yrow = y.row(col_idx_[k]);
      for (size_t j = 0; j < n; ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

Matrix SparseMatrix::RowSums() const {
  Matrix out(rows_, 1);
  for (size_t r = 0; r < rows_; ++r) {
    float s = 0.0f;
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += values_[k];
    out(r, 0) = s;
  }
  return out;
}

SparseMatrix SparseMatrix::RowNormalized() const {
  SparseMatrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    float s = 0.0f;
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += values_[k];
    if (s <= 0.0f) continue;
    const float inv = 1.0f / s;
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.values_[k] *= inv;
    }
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace turbo::la
