// Dense row-major float matrix and the kernels used by the autograd
// engine and the classical ML models.
//
// Deliberately simple: contiguous 64-byte-aligned vector storage,
// explicit shapes, bounds-checked accessors (TURBO_CHECK stays on in
// Release), and free-function kernels. No expression templates — the
// autograd layer is the composition mechanism.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/aligned_alloc.h"
#include "util/check.h"
#include "util/rng.h"

namespace turbo::la {

/// Matrix/SparseMatrix storage alignment: one cache line, which also
/// covers the widest vector load the SIMD kernel tiers issue (64-byte
/// zmm). Row STRIDES are not padded, so only row 0 is guaranteed
/// aligned — the kernel tiers use unaligned loads and this alignment
/// simply keeps them on their fast path for the common row-0 case and
/// avoids cache-line splits for small matrices.
inline constexpr std::size_t kMatrixAlignment = 64;

template <typename T>
using AlignedVector = std::vector<T, util::AlignedAllocator<T, kMatrixAlignment>>;

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
    TURBO_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  /// Builds from nested initializer-style rows (test convenience).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// Gaussian init with the given stddev.
  static Matrix Randn(size_t rows, size_t cols, Rng* rng,
                      float stddev = 1.0f);

  /// Glorot/Xavier-uniform init: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  static Matrix Glorot(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    TURBO_CHECK_LT(r, rows_);
    TURBO_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    TURBO_CHECK_LT(r, rows_);
    TURBO_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  /// Unchecked access for inner loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void SetZero() { Fill(0.0f); }

  /// In-place axpy: this += alpha * other. Shapes must match.
  void Add(const Matrix& other, float alpha = 1.0f);
  /// In-place scale.
  void Scale(float alpha);

  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Sum of all entries.
  double Sum() const;
  /// Max |entry|.
  float MaxAbs() const;

  std::string DebugString(int max_rows = 6, int max_cols = 8) const;

 private:
  size_t rows_, cols_;
  AlignedVector<float> data_;
};

// ---- kernels ----

/// C = A * B. Shapes: [m,k] x [k,n] -> [m,n]. Row-parallel on the shared
/// thread pool above a flop threshold; the per-element accumulation
/// order is independent of the thread count, so results are identical
/// across serial and parallel runs.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B. Shapes: [k,m] x [k,n] -> [m,n].
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T. Shapes: [m,k] x [n,k] -> [m,n]. Row-parallel like MatMul.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Caps the threads dense/sparse kernels may use (benches and tests pin
/// this for reproducible scaling runs). <= 0 restores the hardware
/// default. Thread count never changes numerical results.
void SetKernelThreads(int threads);
int KernelThreads();

namespace detail {
/// Runs `body(r0, r1)` over row ranges covering [0, rows), on the shared
/// pool when rows * flops_per_row clears the parallel threshold (and the
/// SetKernelThreads cap allows it), inline otherwise. Rows are never
/// split, so per-row accumulation order is thread-count independent.
void ParallelRows(size_t rows, size_t flops_per_row,
                  const std::function<void(size_t, size_t)>& body);
}  // namespace detail

Matrix Transpose(const Matrix& a);

/// Elementwise map over a compile-time functor: the hot path used by the
/// autograd ops and the tape-free inference forward (the callable is
/// inlined; no std::function dispatch).
template <typename F>
Matrix MapT(const Matrix& a, F&& f) {
  Matrix out(a.rows(), a.cols());
  const float* in = a.data();
  float* o = out.data();
  for (size_t i = 0; i < a.size(); ++i) o[i] = f(in[i]);
  return out;
}

/// Elementwise binary op over a compile-time functor; shapes must match.
template <typename F>
Matrix ZipT(const Matrix& a, const Matrix& b, F&& f) {
  TURBO_CHECK(a.same_shape(b));
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out.data();
  for (size_t i = 0; i < a.size(); ++i) o[i] = f(pa[i], pb[i]);
  return out;
}

/// Stateless elementwise functors shared by the autograd ops and the
/// tape-free inference forward. Using the same callable on both paths
/// keeps their results bit-identical (same instructions, same
/// fp-contraction decisions).
namespace kernels {
inline constexpr auto Relu = [](float x) { return x > 0.0f ? x : 0.0f; };
inline constexpr auto Tanh = [](float x) { return std::tanh(x); };
inline constexpr auto Sigmoid = [](float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
};
}  // namespace kernels

/// C[r,:] = a[r,:] + bias[0,:]; bias is [1, n].
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// C[r,c] = a[r,c] * s[r,0]; s is [m, 1] (per-row gate).
Matrix MulColBroadcast(const Matrix& a, const Matrix& s);

/// Concatenate along columns: [m,n1] ++ [m,n2] -> [m,n1+n2].
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// Per-row sums -> [m, 1].
Matrix RowSums(const Matrix& a);

/// Column c as an [m, 1] matrix.
Matrix Col(const Matrix& a, size_t c);

/// Columns [start, start+len) as an [m, len] matrix.
Matrix SliceCols(const Matrix& a, size_t start, size_t len);

/// True if max |a-b| <= atol + rtol*max|b|.
bool AllClose(const Matrix& a, const Matrix& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace turbo::la
