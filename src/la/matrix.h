// Dense row-major float matrix and the kernels used by the autograd
// engine and the classical ML models.
//
// Deliberately simple: contiguous std::vector<float> storage, explicit
// shapes, bounds-checked accessors (TURBO_CHECK stays on in Release), and
// free-function kernels. No expression templates — the autograd layer is
// the composition mechanism.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace turbo::la {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    TURBO_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  /// Builds from nested initializer-style rows (test convenience).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// Gaussian init with the given stddev.
  static Matrix Randn(size_t rows, size_t cols, Rng* rng,
                      float stddev = 1.0f);

  /// Glorot/Xavier-uniform init: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  static Matrix Glorot(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    TURBO_CHECK_LT(r, rows_);
    TURBO_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    TURBO_CHECK_LT(r, rows_);
    TURBO_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  /// Unchecked access for inner loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void SetZero() { Fill(0.0f); }

  /// In-place axpy: this += alpha * other. Shapes must match.
  void Add(const Matrix& other, float alpha = 1.0f);
  /// In-place scale.
  void Scale(float alpha);

  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Sum of all entries.
  double Sum() const;
  /// Max |entry|.
  float MaxAbs() const;

  std::string DebugString(int max_rows = 6, int max_cols = 8) const;

 private:
  size_t rows_, cols_;
  std::vector<float> data_;
};

// ---- kernels ----

/// C = A * B. Shapes: [m,k] x [k,n] -> [m,n].
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B. Shapes: [k,m] x [k,n] -> [m,n].
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T. Shapes: [m,k] x [n,k] -> [m,n].
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

Matrix Transpose(const Matrix& a);

/// Elementwise map.
Matrix Map(const Matrix& a, const std::function<float(float)>& f);
/// Elementwise binary op; shapes must match.
Matrix Zip(const Matrix& a, const Matrix& b,
           const std::function<float(float, float)>& f);

/// C[r,:] = a[r,:] + bias[0,:]; bias is [1, n].
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// C[r,c] = a[r,c] * s[r,0]; s is [m, 1] (per-row gate).
Matrix MulColBroadcast(const Matrix& a, const Matrix& s);

/// Concatenate along columns: [m,n1] ++ [m,n2] -> [m,n1+n2].
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// Per-row sums -> [m, 1].
Matrix RowSums(const Matrix& a);

/// Column c as an [m, 1] matrix.
Matrix Col(const Matrix& a, size_t c);

/// True if max |a-b| <= atol + rtol*max|b|.
bool AllClose(const Matrix& a, const Matrix& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace turbo::la
