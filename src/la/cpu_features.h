// Runtime CPU-capability probe and kernel-ISA selection.
//
// The SIMD kernel tiers (see kernel_dispatch.h) are compiled per-file
// with the matching -m flags and picked at runtime: CpuFeatures::Get()
// probes the host once (cpuid-backed __builtin_cpu_supports on x86,
// the architecture baseline on arm64), BestIsa() maps the probe to the
// widest tier this binary both compiled and the host supports, and the
// kernel table resolves against that choice the first time a dispatched
// kernel runs.
//
// Every tier is overridable for testing: SetKernelIsa() forces a
// specific tier (so one AVX-512 machine can exercise the scalar, AVX2,
// and AVX-512 paths in a single test binary), and the TURBO_KERNEL_ISA
// environment variable ("scalar" | "avx2" | "avx512" | "neon" | "auto")
// applies the same override at process start. Forcing a tier the host
// cannot execute is a CHECK failure, not an illegal instruction.
//
// The training path never consults this: autograd kernels are the plain
// scalar la:: functions regardless of the active ISA, so training stays
// bit-exact across machines (see DESIGN.md §13).
#pragma once

#include <string>

namespace turbo::la {

/// Kernel instruction-set tiers, narrowest first. kScalar is always
/// available; the SIMD tiers exist only when the binary was compiled
/// with the matching per-file flags AND the host CPU reports support.
enum class KernelIsa {
  kScalar = 0,
  kAvx2 = 1,    // AVX2 + FMA (x86-64-v3)
  kAvx512 = 2,  // AVX-512F (+FMA)
  kNeon = 3,    // aarch64 baseline
};

/// One-time host probe. Fields are false on architectures where the
/// feature does not exist.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool neon = false;

  /// Probed once, cached for the process lifetime.
  static const CpuFeatures& Get();
};

/// True when this binary contains the tier's kernels AND the host CPU
/// can execute them. kScalar is always true.
bool IsaSupported(KernelIsa isa);

/// Widest supported tier for the given probe (host probe by default).
KernelIsa BestIsa(const CpuFeatures& features = CpuFeatures::Get());

/// The tier dispatched kernels currently run on. Resolution order:
/// SetKernelIsa override > TURBO_KERNEL_ISA env var > BestIsa().
KernelIsa ActiveIsa();

/// Forces the active tier (CHECKs IsaSupported). Pass-through for
/// tests and benches; not meant to be called while kernels are in
/// flight on other threads.
void SetKernelIsa(KernelIsa isa);

/// Drops any override and re-resolves from the environment / probe.
void ResetKernelIsa();

/// "scalar" | "avx2" | "avx512" | "neon".
const char* IsaName(KernelIsa isa);

/// Inverse of IsaName; also accepts "auto" (reported as BestIsa()).
/// Returns false on an unknown name.
bool ParseIsaName(const std::string& name, KernelIsa* out);

/// RAII tier override for tests: forces `isa` on construction, restores
/// the previous resolution on destruction.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa);
  ~ScopedKernelIsa();
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  KernelIsa previous_;
};

}  // namespace turbo::la
