// Runtime-dispatched dense/sparse kernels for the tape-free inference
// path, plus the fused epilogues the model forwards use.
//
// Each function here mirrors the blocking and thread-pool structure of
// its plain la:: counterpart (la::MatMul, la::MatMulTransB,
// SparseMatrix::Multiply, MapT) but routes the inner row-range loops
// through the per-ISA kernel table selected by la::ActiveIsa() (see
// cpu_features.h). With KernelIsa::kScalar forced, every function is
// bit-identical to its la:: counterpart; SIMD tiers keep the same
// accumulation order and are held to a <= 4-ULP elementwise bound by
// tests/la/dispatch_test.cc and tests/core/simd_equivalence_test.cc.
//
// The autograd/training path never calls through here — it uses the
// plain scalar la:: kernels so training is bit-exact across machines.
#pragma once

#include "la/cpu_features.h"
#include "la/kernel_table.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace turbo::la::dispatch {

/// C = A * B, dispatched. Same shapes/blocking/parallelism as la::MatMul.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B^T, dispatched. Same contract as la::MatMulTransB.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Y = S * X, dispatched. Same contract as SparseMatrix::Multiply.
Matrix Spmm(const SparseMatrix& s, const Matrix& x);

/// Fused Y = act(S * X + addend): SpMM, addend and activation in one
/// pass over Y. `addend` may be null (no addend), [1,n] (row-broadcast
/// bias) or [m,n] (full addend, e.g. the self-transform branch of a
/// SAGE-style layer). The addend is applied after ALL accumulation, so
/// the result is bitwise equal to act(Spmm(s,x) + addend) composed from
/// unfused calls on the same ISA tier.
Matrix SpmmBiasAct(const SparseMatrix& s, const Matrix& x,
                   const Matrix* addend, Act act);

/// Fused C = act(A * B + addend); addend as in SpmmBiasAct. Bitwise
/// equal to act(MatMul(a,b) + addend) on the same tier.
Matrix MatMulBiasAct(const Matrix& a, const Matrix& b, const Matrix* addend,
                     Act act);

/// Elementwise out = act(a), dispatched. kRelu/kIdentity are exact on
/// every tier; kTanh/kSigmoid use the scalar libm path on every tier,
/// so MapAct is bit-identical across tiers (and to la::MapT with the
/// matching la::kernels functor).
Matrix MapAct(const Matrix& a, Act act);

namespace internal {
/// Kernel table for the currently active ISA (scalar fallback if the
/// active tier was not compiled in — unreachable via SetKernelIsa).
const la::internal::KernelTable& ActiveTable();
}  // namespace internal

}  // namespace turbo::la::dispatch
