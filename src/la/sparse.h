// CSR sparse matrix used for graph adjacency in GNN message passing.
//
// Structure is immutable after construction (built once per GraphBatch);
// only SpMM-style products against dense matrices are needed, plus the
// transposed product for the backward pass.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace turbo::la {

struct Triplet {
  uint32_t row;
  uint32_t col;
  float value;
};

class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Builds CSR from (row, col, value) triplets; duplicate (row, col)
  /// entries are summed.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   std::vector<Triplet> triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }

  const AlignedVector<uint32_t>& row_ptr() const { return row_ptr_; }
  const AlignedVector<uint32_t>& col_idx() const { return col_idx_; }
  const AlignedVector<float>& values() const { return values_; }

  /// Y = this * X. Shapes: [m,k] x [k,n] -> [m,n].
  Matrix Multiply(const Matrix& x) const;

  /// Y = this^T * X. Shapes: [m,k]^T x [m,n] -> [k,n].
  /// Backward of Multiply w.r.t. X.
  Matrix MultiplyTransposed(const Matrix& x) const;

  /// Per-row sum of values (weighted out-degree) -> [m,1] dense.
  Matrix RowSums() const;

  /// Returns a copy where every row is scaled to sum to 1 (rows with zero
  /// sum stay zero). Used for mean-aggregation adjacency.
  SparseMatrix RowNormalized() const;

  Matrix ToDense() const;

 private:
  size_t rows_, cols_;
  AlignedVector<uint32_t> row_ptr_;
  AlignedVector<uint32_t> col_idx_;
  AlignedVector<float> values_;
};

}  // namespace turbo::la
