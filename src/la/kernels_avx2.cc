// AVX2 + FMA kernel tier (x86-64-v3). Compiled with -mavx2 -mfma via
// per-file flags in la/CMakeLists.txt; only registered when the host
// CPU reports avx2+fma (see cpu_features.cc).
//
// Numerics: every kernel keeps the scalar tier's accumulation ORDER —
// vector lanes span independent output columns wherever possible, and
// the depth dimension advances sequentially — so the only rounding
// difference vs scalar is FMA contraction (one rounding per
// multiply-add instead of two) plus lane-wise horizontal sums in the
// dot-product kernel. Both are covered by the <= 4-ULP dispatch gate
// (tests/la/dispatch_test.cc). kTanh / kSigmoid epilogues call the
// scalar libm path on purpose: transcendental polynomial approximations
// are where SIMD math libraries silently diverge, and the elementwise
// cost is dwarfed by the GEMM/SpMM they follow.
#if defined(TURBO_LA_HAVE_AVX2)

#include <immintrin.h>

#include "la/kernel_table.h"

namespace turbo::la::internal {
namespace {

void GemmRows(const float* a, const float* b, float* c, size_t k, size_t n,
              size_t r0, size_t r1, size_t p0, size_t p1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    // 32-column register block: 4 ymm accumulators live across the
    // whole depth block, so B streams and C is touched once per block.
    for (; j + 32 <= n; j += 32) {
      float* cj = crow + j;
      __m256 acc0 = _mm256_loadu_ps(cj);
      __m256 acc1 = _mm256_loadu_ps(cj + 8);
      __m256 acc2 = _mm256_loadu_ps(cj + 16);
      __m256 acc3 = _mm256_loadu_ps(cj + 24);
      for (size_t p = p0; p < p1; ++p) {
        const __m256 av = _mm256_set1_ps(arow[p]);
        const float* bj = b + p * n + j;
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj + 8), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj + 16), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj + 24), acc3);
      }
      _mm256_storeu_ps(cj, acc0);
      _mm256_storeu_ps(cj + 8, acc1);
      _mm256_storeu_ps(cj + 16, acc2);
      _mm256_storeu_ps(cj + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      float* cj = crow + j;
      __m256 acc = _mm256_loadu_ps(cj);
      for (size_t p = p0; p < p1; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[p]),
                              _mm256_loadu_ps(b + p * n + j), acc);
      }
      _mm256_storeu_ps(cj, acc);
    }
    for (; j < n; ++j) {
      float s = crow[j];
      for (size_t p = p0; p < p1; ++p) s += arow[p] * b[p * n + j];
      crow[j] = s;
    }
  }
}

inline float HSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

void GemmTransBRows(const float* a, const float* b, float* c, size_t k,
                    size_t n, size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 1 < n; j += 2) {
      const float* b0 = b + j * k;
      const float* b1 = b + (j + 1) * k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 av = _mm256_loadu_ps(arow + p);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + p), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + p), acc1);
      }
      float s0 = HSum(acc0), s1 = HSum(acc1);
      for (; p < k; ++p) {
        s0 += arow[p] * b0[p];
        s1 += arow[p] * b1[p];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
    }
    if (j < n) {
      const float* brow = b + j * k;
      __m256 acc = _mm256_setzero_ps();
      size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                              _mm256_loadu_ps(brow + p), acc);
      }
      float s = HSum(acc);
      for (; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

void SpmmRows(const uint32_t* row_ptr, const uint32_t* cols,
              const float* vals, const float* x, float* y, size_t n,
              size_t r0, size_t r1) {
  for (size_t r = r0; r < r1; ++r) {
    float* yrow = y + r * n;
    const uint32_t e0 = row_ptr[r], e1 = row_ptr[r + 1];
    size_t j = 0;
    // Column tiles held in registers across the neighbor loop: each
    // gathered X row is touched once per tile.
    for (; j + 16 <= n; j += 16) {
      __m256 acc0 = _mm256_loadu_ps(yrow + j);
      __m256 acc1 = _mm256_loadu_ps(yrow + j + 8);
      for (uint32_t e = e0; e < e1; ++e) {
        const __m256 v = _mm256_set1_ps(vals[e]);
        const float* xj = x + static_cast<size_t>(cols[e]) * n + j;
        acc0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(xj), acc0);
        acc1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(xj + 8), acc1);
      }
      _mm256_storeu_ps(yrow + j, acc0);
      _mm256_storeu_ps(yrow + j + 8, acc1);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(yrow + j);
      for (uint32_t e = e0; e < e1; ++e) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(vals[e]),
            _mm256_loadu_ps(x + static_cast<size_t>(cols[e]) * n + j), acc);
      }
      _mm256_storeu_ps(yrow + j, acc);
    }
    for (; j < n; ++j) {
      float s = yrow[j];
      for (uint32_t e = e0; e < e1; ++e) {
        s += vals[e] * x[static_cast<size_t>(cols[e]) * n + j];
      }
      yrow[j] = s;
    }
  }
}

void EpilogueRows(float* c, const float* add, size_t add_stride, size_t n,
                  size_t r0, size_t r1, Act act) {
  if (act == Act::kTanh || act == Act::kSigmoid) {
    // Transcendentals stay on the scalar libm path on every tier.
    for (size_t r = r0; r < r1; ++r) {
      float* crow = c + r * n;
      const float* arow = add == nullptr ? nullptr : add + r * add_stride;
      for (size_t j = 0; j < n; ++j) {
        const float z = arow == nullptr ? crow[j] : crow[j] + arow[j];
        crow[j] = ApplyAct(act, z);
      }
    }
    return;
  }
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = r0; r < r1; ++r) {
    float* crow = c + r * n;
    const float* arow = add == nullptr ? nullptr : add + r * add_stride;
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 z = _mm256_loadu_ps(crow + j);
      if (arow != nullptr) z = _mm256_add_ps(z, _mm256_loadu_ps(arow + j));
      // max(z, +0) matches the scalar `x > 0 ? x : 0` bit-for-bit: on
      // equal operands (incl. -0) and on NaN, MAXPS returns the second
      // operand, here +0.
      if (act == Act::kRelu) z = _mm256_max_ps(z, zero);
      _mm256_storeu_ps(crow + j, z);
    }
    for (; j < n; ++j) {
      const float z = arow == nullptr ? crow[j] : crow[j] + arow[j];
      crow[j] = ApplyAct(act, z);
    }
  }
}

void MapAct(Act act, const float* in, float* out, size_t count) {
  if (act == Act::kRelu) {
    const __m256 zero = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= count; i += 8) {
      _mm256_storeu_ps(out + i,
                       _mm256_max_ps(_mm256_loadu_ps(in + i), zero));
    }
    for (; i < count; ++i) out[i] = ApplyAct(act, in[i]);
    return;
  }
  for (size_t i = 0; i < count; ++i) out[i] = ApplyAct(act, in[i]);
}

void GemmQuantRows(const float* a, const int8_t* q, const float* scale,
                   const int32_t* zero_point, float* c, size_t k, size_t n,
                   size_t r0, size_t r1) {
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float m = arow[p] * scale[p];
      const int32_t zp = zero_point[p];
      const int8_t* qrow = q + p * n;
      const __m256 vm = _mm256_set1_ps(m);
      const __m256i vzp = _mm256_set1_epi32(zp);
      size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m128i q8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(qrow + j));
        const __m256i q32 =
            _mm256_sub_epi32(_mm256_cvtepi8_epi32(q8), vzp);
        const __m256 deq = _mm256_cvtepi32_ps(q32);
        _mm256_storeu_ps(
            crow + j,
            _mm256_fmadd_ps(vm, deq, _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) {
        crow[j] +=
            m * static_cast<float>(static_cast<int32_t>(qrow[j]) - zp);
      }
    }
  }
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      GemmRows,     GemmTransBRows, SpmmRows,
      EpilogueRows, MapAct,         GemmQuantRows,
  };
  return table;
}

}  // namespace turbo::la::internal

#endif  // TURBO_LA_HAVE_AVX2
