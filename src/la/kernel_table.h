// Internal function-pointer kernel table backing la::dispatch.
//
// Each ISA tier (kernels_scalar.cc, kernels_avx2.cc, kernels_avx512.cc,
// kernels_neon.cc) fills one KernelTable with raw-pointer row-range
// microkernels; the drivers in kernel_dispatch.cc own the blocking /
// thread-pool structure and call through the table for the inner loops.
// Keeping the outer structure ISA-independent is what makes the tiers
// ULP-comparable: every tier accumulates each output element in exactly
// the same order (depth-sequential, rows never split), so the only
// numerical difference between tiers is FMA contraction inside a step.
//
// Contract per entry (all matrices row-major, fully packed):
//  * gemm_rows:    C[r,:] += A[r, p0:p1] * B[p0:p1, :] for r in [r0,r1).
//                  lda == k, ldb == ldc == n.
//  * gemm_transb_rows: C[r, j] = dot(A[r,:], B[j,:]) for r in [r0,r1),
//                  all j in [0,n). A is [m,k], B is [n,k].
//  * spmm_rows:    Y[r,:] += sum_e vals[e] * X[cols[e],:] over the CSR
//                  entries of row r, rows in [r0,r1). X/Y have n cols.
//  * epilogue_rows: C[r,:] = act(C[r,:] + add[r*add_stride ..]) for r in
//                  [r0,r1). `add` may be null (no addend); add_stride is
//                  0 for a broadcast [1,n] bias or n for a full [m,n]
//                  addend. Runs after ALL accumulation for those rows.
//  * map_act:      out[i] = act(in[i]) for i in [0,count). kTanh and
//                  kSigmoid call the scalar libm routine on every tier
//                  (bit-identical across tiers by construction); kRelu
//                  and kIdentity are exact on every tier.
//  * gemm_quant_rows: C[r,:] += A[r, :] * dequant(Q) with per-row
//                  (scale, zero-point) int8 weights: the multiplier
//                  a[r,p] * scale[p] is formed once per (r,p) in float
//                  and applied to (q[p,j] - zp[p]); accumulation stays
//                  float (never int32), depth-sequential.
#pragma once

#include <cstddef>
#include <cstdint>

namespace turbo::la {

/// Elementwise epilogue kinds the fused kernels understand.
enum class Act {
  kIdentity = 0,
  kRelu = 1,
  kTanh = 2,
  kSigmoid = 3,
};

namespace internal {

struct KernelTable {
  void (*gemm_rows)(const float* a, const float* b, float* c, size_t k,
                    size_t n, size_t r0, size_t r1, size_t p0, size_t p1);
  void (*gemm_transb_rows)(const float* a, const float* b, float* c,
                           size_t k, size_t n, size_t r0, size_t r1);
  void (*spmm_rows)(const uint32_t* row_ptr, const uint32_t* cols,
                    const float* vals, const float* x, float* y, size_t n,
                    size_t r0, size_t r1);
  void (*epilogue_rows)(float* c, const float* add, size_t add_stride,
                        size_t n, size_t r0, size_t r1, Act act);
  void (*map_act)(Act act, const float* in, float* out, size_t count);
  void (*gemm_quant_rows)(const float* a, const int8_t* q,
                          const float* scale, const int32_t* zero_point,
                          float* c, size_t k, size_t n, size_t r0,
                          size_t r1);
};

/// Scalar tier; always present. Bit-identical to the plain la:: kernels
/// (la::MatMul / SparseMatrix::Multiply / MapT) by construction.
const KernelTable& ScalarKernels();

// SIMD tiers; declared unconditionally, defined only when the matching
// TURBO_LA_HAVE_* flag compiled the TU. Callers gate on IsaSupported().
const KernelTable& Avx2Kernels();
const KernelTable& Avx512Kernels();
const KernelTable& NeonKernels();

/// Scalar activation shared by every tier's tail/transcendental paths.
float ApplyAct(Act act, float x);

}  // namespace internal
}  // namespace turbo::la
