#include "la/quant.h"

#include <algorithm>
#include <cmath>

#include "la/kernel_dispatch.h"

namespace turbo::la {

QuantizedMatrix QuantizedMatrix::Quantize(const Matrix& w) {
  QuantizedMatrix q;
  q.rows = w.rows();
  q.cols = w.cols();
  q.data.resize(w.size());
  q.scale.resize(w.rows());
  q.zero_point.resize(w.rows());
  for (size_t r = 0; r < w.rows(); ++r) {
    const float* in = w.row(r);
    float lo = in[0], hi = in[0];
    for (size_t c = 1; c < w.cols(); ++c) {
      lo = std::min(lo, in[c]);
      hi = std::max(hi, in[c]);
    }
    float scale;
    int32_t zp;
    if (hi == lo) {
      // Constant row: pick a scale that represents the value exactly
      // (q = +-127 or 0), zero-point 0.
      scale = lo == 0.0f ? 1.0f : std::abs(lo) / 127.0f;
      zp = 0;
    } else {
      scale = (hi - lo) / 255.0f;
      zp = static_cast<int32_t>(std::lround(-lo / scale)) - 128;
    }
    q.scale[r] = scale;
    q.zero_point[r] = zp;
    int8_t* out = q.data.data() + r * w.cols();
    for (size_t c = 0; c < w.cols(); ++c) {
      const long code = std::lround(in[c] / scale) + zp;
      out[c] = static_cast<int8_t>(std::clamp<long>(code, -128, 127));
    }
  }
  return q;
}

Matrix QuantizedMatrix::Dequantize() const {
  Matrix w(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const int8_t* in = data.data() + r * cols;
    float* out = w.row(r);
    for (size_t c = 0; c < cols; ++c) {
      out[c] = scale[r] *
               static_cast<float>(static_cast<int32_t>(in[c]) - zero_point[r]);
    }
  }
  return w;
}

const QuantizedMatrix& QuantCache::Add(const void* key, const Matrix& w) {
  return cache_[key] = QuantizedMatrix::Quantize(w);
}

const QuantizedMatrix* QuantCache::Find(const void* key) const {
  auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : &it->second;
}

namespace dispatch {
namespace {

Matrix MatMulQuantImpl(const Matrix& a, const QuantizedMatrix& q,
                       const Matrix* addend, Act act, bool fused) {
  TURBO_CHECK_EQ(a.cols(), q.rows);
  Matrix c(a.rows(), q.cols);
  const size_t m = a.rows(), k = a.cols(), n = q.cols;
  size_t add_stride = 0;
  const float* add = nullptr;
  if (fused && addend != nullptr) {
    TURBO_CHECK_EQ(addend->cols(), n);
    if (addend->rows() == 1) {
      add_stride = 0;
    } else {
      TURBO_CHECK_EQ(addend->rows(), m);
      add_stride = n;
    }
    add = addend->data();
  }
  const auto& t = internal::ActiveTable();
  detail::ParallelRows(m, k * n, [&](size_t r0, size_t r1) {
    t.gemm_quant_rows(a.data(), q.data.data(), q.scale.data(),
                      q.zero_point.data(), c.data(), k, n, r0, r1);
    if (fused) t.epilogue_rows(c.data(), add, add_stride, n, r0, r1, act);
  });
  return c;
}

}  // namespace

Matrix MatMulQuant(const Matrix& a, const QuantizedMatrix& q) {
  return MatMulQuantImpl(a, q, nullptr, Act::kIdentity, /*fused=*/false);
}

Matrix MatMulQuantBiasAct(const Matrix& a, const QuantizedMatrix& q,
                          const Matrix* addend, Act act) {
  return MatMulQuantImpl(a, q, addend, act, /*fused=*/true);
}

}  // namespace dispatch
}  // namespace turbo::la
