// Int8 row-quantized weights for the inference path.
//
// Weights are quantized per ROW with an affine (scale, zero-point)
// mapping: row p of a [k,n] weight matrix is stored as int8 with
// dequant(q) = scale[p] * (q - zero_point[p]). Activations stay float;
// the quantized GEMM folds the multiplier a[i,p] * scale[p] once per
// (i,p) and accumulates in float, so only the weight memory traffic
// shrinks (4x) — there is no int32 accumulation path to overflow and
// the accumulation order matches the float GEMM exactly.
//
// Quantization is lossy (max elementwise weight error is scale/2), so
// the int8 inference mode is gated by an AUC-equivalence test
// (tests/core/quantized_inference_test.cc, |dAUC| <= 0.002), not a ULP
// bound. It is opt-in per model via GnnModel::SetInferenceMode and per
// server via PredictionConfig::quantized_inference.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "la/kernel_table.h"
#include "la/matrix.h"
#include "util/aligned_alloc.h"

namespace turbo::la {

struct QuantizedMatrix {
  size_t rows = 0;
  size_t cols = 0;
  /// Row-major [rows, cols] int8 codes, 64-byte aligned like Matrix.
  std::vector<int8_t, util::AlignedAllocator<int8_t, 64>> data;
  std::vector<float> scale;        // [rows]
  std::vector<int32_t> zero_point;  // [rows]

  /// Per-row affine quantization of a float weight matrix. Each row's
  /// [min, max] range maps onto [-128, 127]; constant rows (including
  /// all-zero) get an exact representation.
  static QuantizedMatrix Quantize(const Matrix& w);

  /// Reconstructs the float weights (lossy round-trip; max elementwise
  /// error is scale[row] / 2).
  Matrix Dequantize() const;
};

/// Keyed store of quantized weights, owned by a model and filled once
/// when int8 inference mode is enabled. Keys are stable identity
/// pointers (the autograd Node* backing each weight tensor).
class QuantCache {
 public:
  /// Quantizes `w` and stores it under `key` (replaces any entry).
  const QuantizedMatrix& Add(const void* key, const Matrix& w);

  /// Null if `key` was never added.
  const QuantizedMatrix* Find(const void* key) const;

  void Clear() { cache_.clear(); }
  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<const void*, QuantizedMatrix> cache_;
};

namespace dispatch {

/// C = A * dequant(Q), dispatched; float accumulate. Same blocking /
/// parallelism contract as dispatch::MatMul.
Matrix MatMulQuant(const Matrix& a, const QuantizedMatrix& q);

/// Fused C = act(A * dequant(Q) + addend); addend as in MatMulBiasAct.
Matrix MatMulQuantBiasAct(const Matrix& a, const QuantizedMatrix& q,
                          const Matrix* addend, Act act);

}  // namespace dispatch
}  // namespace turbo::la
