// GraphBatch: the tensor-side representation of a sampled computation
// subgraph, shared by every GNN in the library (baselines and HAG).
//
// A batch carries the node feature matrix plus the adjacency views each
// model family needs:
//  * per-type weighted mean adjacency (HAG / SAO, Eq. 6),
//  * the homogeneous union graph in three normalizations: random-walk with
//    self-loops (GCN, as the paper re-implements it inductively),
//    row-normalized mean without self (GraphSAGE, Eq. 2/4), and the raw
//    structure with self-loops (GAT edge softmax).
//
// Rows 0..num_targets-1 are the prediction targets.
#pragma once

#include <array>
#include <vector>

#include "bn/sampler.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace turbo::gnn {

struct GraphBatch {
  la::Matrix features;                 // [n, d]
  std::vector<UserId> global_ids;      // size n
  size_t num_targets = 0;

  /// Per-edge-type weighted adjacency, row-normalized to a weighted mean.
  std::array<la::SparseMatrix, kNumEdgeTypes> type_mean;
  /// Per-edge-type raw weighted adjacency (influence analysis, stats).
  std::array<la::SparseMatrix, kNumEdgeTypes> type_adj;

  /// Union across types, weights summed.
  la::SparseMatrix union_adj;
  /// Random-walk normalized union with self-loops: D^-1 (A + I).
  la::SparseMatrix union_rw_self;
  /// Row-normalized union without self-loops (mean aggregator).
  la::SparseMatrix union_mean;
  /// Union structure including self-loops, unit values (GAT attention).
  la::SparseMatrix union_self_structure;

  size_t num_nodes() const { return features.rows(); }
};

/// Assembles a batch from a sampled subgraph; `all_features` is indexed by
/// global user id (rows). Subgraph edge weights are used as-is — pass a
/// subgraph sampled from a degree-normalized BnSnapshot (the default
/// Build() option) to match the paper's pipeline.
GraphBatch MakeGraphBatch(const bn::Subgraph& sg,
                          const la::Matrix& all_features);

}  // namespace turbo::gnn
