// Common interface for the graph neural networks of Table III and HAG.
#pragma once

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "gnn/graph_batch.h"
#include "la/kernel_dispatch.h"
#include "la/quant.h"
#include "util/rng.h"

namespace turbo::gnn {

/// Weight format of the tape-free inference forward. kFloat runs the
/// runtime-dispatched float kernels (ULP-equivalent to scalar); kInt8
/// additionally reads the large weight matrices from a per-row
/// quantized int8 cache (AUC-equivalent, see la/quant.h).
enum class InferenceMode { kFloat = 0, kInt8 = 1 };

struct GnnConfig {
  /// Hidden sizes of the two graph layers. The paper uses {128, 64}; the
  /// benches default to a single-core-friendly {64, 32}.
  std::vector<int> hidden = {64, 32};
  /// Classification head hidden units ("cascaded by a MLP with 32").
  int mlp_hidden = 32;
  /// Attention hidden size `t` for SAO/CFO/GAT (paper: 64).
  int attention_dim = 32;
  int gat_heads = 2;
  float dropout = 0.1f;
  uint64_t seed = 11;
};

/// Shared classification head: ReLU MLP with one hidden layer -> logit.
class MlpHead {
 public:
  void Init(int in_dim, int hidden, Rng* rng);
  ag::Tensor Forward(const ag::Tensor& h) const;
  /// Tape-free Forward on a raw matrix through the dispatched fused
  /// GEMM+bias+act kernels. With `qcache` non-null, weight matrices
  /// found in the cache are read in int8.
  la::Matrix ForwardInference(const la::Matrix& h,
                              const la::QuantCache* qcache = nullptr) const;
  /// Adds this head's weight matrices (not biases) to `cache`.
  void RegisterQuantWeights(la::QuantCache* cache) const;
  std::vector<ag::Tensor> Params() const;

 private:
  ag::Tensor w1_, b1_, w2_, b2_;
};

class GnnModel {
 public:
  virtual ~GnnModel() = default;

  /// Builds parameters for the given input feature dimension. Must be
  /// called once before Embed()/Logits().
  virtual void Init(int in_dim) = 0;

  /// Final node embeddings [n, d_k] — the representation the influence
  /// analysis (Definition 1) differentiates. `training` enables dropout.
  virtual ag::Tensor Embed(const GraphBatch& batch, bool training,
                           Rng* rng) = 0;

  /// Per-node logits [n, 1]: classification head over Embed().
  ag::Tensor Logits(const GraphBatch& batch, bool training, Rng* rng) {
    return head_.Forward(Embed(batch, training, rng));
  }

  /// Tape-free forward: Embed(batch, training=false) recomputed on raw
  /// la::Matrix values — no Node allocation, no backward closures, no
  /// std::function dispatch — through the runtime-dispatched SIMD
  /// kernels (la::dispatch) with fused SpMM/GEMM epilogues. The
  /// autograd forward stays on the plain scalar la:: kernels, so the
  /// two paths agree to tight float tolerance rather than bit-for-bit:
  /// SIMD tiers differ by FMA contraction (<= 4 ULP, enforced by
  /// tests/core/simd_equivalence_test) and some models reassociate
  /// aggregate-and-transform for fusion (verified in
  /// tests/core/inference_equivalence_test). Ignores SetInputOverride
  /// (serving path only — always reads batch.features).
  virtual la::Matrix EmbedInference(const GraphBatch& batch) const = 0;

  /// Tape-free Logits: classification head over EmbedInference().
  la::Matrix LogitsInference(const GraphBatch& batch) const {
    return head_.ForwardInference(EmbedInference(batch), QuantWeights());
  }

  /// Selects the weight format used by the tape-free forwards. kInt8
  /// (re)quantizes the current weight values into the model's cache —
  /// call again after further training to refresh. Training and the
  /// autograd forward are unaffected.
  void SetInferenceMode(InferenceMode mode);
  InferenceMode inference_mode() const { return inference_mode_; }

  virtual std::vector<ag::Tensor> Params() const = 0;
  virtual std::string name() const = 0;

  /// Replaces the batch-features input leaf with a caller-provided tensor
  /// on subsequent Embed() calls (pass nullptr to reset). Used by the
  /// influence analysis to differentiate embeddings w.r.t. node inputs.
  void SetInputOverride(ag::Tensor input) {
    input_override_ = std::move(input);
  }

 protected:
  /// Models obtain their input leaf through this hook.
  ag::Tensor InputTensor(const GraphBatch& batch) const {
    if (input_override_) {
      TURBO_CHECK(input_override_->value.same_shape(batch.features));
      return input_override_;
    }
    return ag::Constant(batch.features, "x");
  }

  /// Adds the model's quantization-eligible weight matrices to `cache`
  /// (typically the large [d_in, d_out] transforms; small projection
  /// vectors stay float). Called by SetInferenceMode(kInt8); the head's
  /// weights are registered separately.
  virtual void RegisterQuantWeights(la::QuantCache* cache) const {}

  /// The int8 weight cache when int8 mode is active, else null.
  const la::QuantCache* QuantWeights() const {
    return inference_mode_ == InferenceMode::kInt8 ? &qcache_ : nullptr;
  }

  /// a * w for inference forwards: int8 weight path when `w` is in the
  /// active quant cache, dispatched float GEMM otherwise.
  la::Matrix InfMul(const la::Matrix& a, const ag::Tensor& w) const;

  /// Fused act(a * w + addend); addend semantics as in
  /// la::dispatch::MatMulBiasAct.
  la::Matrix InfMulBiasAct(const la::Matrix& a, const ag::Tensor& w,
                           const la::Matrix* addend, la::Act act) const;

  MlpHead head_;

 private:
  ag::Tensor input_override_;
  InferenceMode inference_mode_ = InferenceMode::kFloat;
  la::QuantCache qcache_;
};

}  // namespace turbo::gnn
