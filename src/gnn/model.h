// Common interface for the graph neural networks of Table III and HAG.
#pragma once

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "gnn/graph_batch.h"
#include "util/rng.h"

namespace turbo::gnn {

struct GnnConfig {
  /// Hidden sizes of the two graph layers. The paper uses {128, 64}; the
  /// benches default to a single-core-friendly {64, 32}.
  std::vector<int> hidden = {64, 32};
  /// Classification head hidden units ("cascaded by a MLP with 32").
  int mlp_hidden = 32;
  /// Attention hidden size `t` for SAO/CFO/GAT (paper: 64).
  int attention_dim = 32;
  int gat_heads = 2;
  float dropout = 0.1f;
  uint64_t seed = 11;
};

/// Shared classification head: ReLU MLP with one hidden layer -> logit.
class MlpHead {
 public:
  void Init(int in_dim, int hidden, Rng* rng);
  ag::Tensor Forward(const ag::Tensor& h) const;
  /// Tape-free Forward on a raw matrix (same kernels, no tape).
  la::Matrix ForwardInference(const la::Matrix& h) const;
  std::vector<ag::Tensor> Params() const;

 private:
  ag::Tensor w1_, b1_, w2_, b2_;
};

class GnnModel {
 public:
  virtual ~GnnModel() = default;

  /// Builds parameters for the given input feature dimension. Must be
  /// called once before Embed()/Logits().
  virtual void Init(int in_dim) = 0;

  /// Final node embeddings [n, d_k] — the representation the influence
  /// analysis (Definition 1) differentiates. `training` enables dropout.
  virtual ag::Tensor Embed(const GraphBatch& batch, bool training,
                           Rng* rng) = 0;

  /// Per-node logits [n, 1]: classification head over Embed().
  ag::Tensor Logits(const GraphBatch& batch, bool training, Rng* rng) {
    return head_.Forward(Embed(batch, training, rng));
  }

  /// Tape-free forward: Embed(batch, training=false) recomputed on raw
  /// la::Matrix values — no Node allocation, no backward closures, no
  /// std::function dispatch. Same kernels as the autograd forward, so
  /// results match Embed() bit-for-bit (verified in
  /// tests/core/inference_equivalence_test). Ignores SetInputOverride
  /// (serving path only — always reads batch.features).
  virtual la::Matrix EmbedInference(const GraphBatch& batch) const = 0;

  /// Tape-free Logits: classification head over EmbedInference().
  la::Matrix LogitsInference(const GraphBatch& batch) const {
    return head_.ForwardInference(EmbedInference(batch));
  }

  virtual std::vector<ag::Tensor> Params() const = 0;
  virtual std::string name() const = 0;

  /// Replaces the batch-features input leaf with a caller-provided tensor
  /// on subsequent Embed() calls (pass nullptr to reset). Used by the
  /// influence analysis to differentiate embeddings w.r.t. node inputs.
  void SetInputOverride(ag::Tensor input) {
    input_override_ = std::move(input);
  }

 protected:
  /// Models obtain their input leaf through this hook.
  ag::Tensor InputTensor(const GraphBatch& batch) const {
    if (input_override_) {
      TURBO_CHECK(input_override_->value.same_shape(batch.features));
      return input_override_;
    }
    return ag::Constant(batch.features, "x");
  }

  MlpHead head_;

 private:
  ag::Tensor input_override_;
};

}  // namespace turbo::gnn
