#include "gnn/trainer.h"

#include <cmath>
#include <cstdio>

#include "autograd/optimizer.h"
#include "ml/model.h"

namespace turbo::gnn {

using ag::Tensor;

void MlpHead::Init(int in_dim, int hidden, Rng* rng) {
  w1_ = ag::Param(la::Matrix::Glorot(in_dim, hidden, rng), "head_w1");
  b1_ = ag::Param(la::Matrix(1, hidden), "head_b1");
  w2_ = ag::Param(la::Matrix::Glorot(hidden, 1, rng), "head_w2");
  b2_ = ag::Param(la::Matrix(1, 1), "head_b2");
}

Tensor MlpHead::Forward(const Tensor& h) const {
  TURBO_CHECK(w1_ != nullptr);
  Tensor z = ag::Relu(ag::AddRowBroadcast(ag::MatMul(h, w1_), b1_));
  return ag::AddRowBroadcast(ag::MatMul(z, w2_), b2_);
}

la::Matrix MlpHead::ForwardInference(const la::Matrix& h,
                                     const la::QuantCache* qcache) const {
  TURBO_CHECK(w1_ != nullptr);
  // Fused GEMM + bias + activation through the dispatched kernels; the
  // int8 weight path kicks in per matrix when a quant cache is active.
  auto mul = [&](const la::Matrix& a, const Tensor& w, const Tensor& b,
                 la::Act act) {
    if (qcache != nullptr) {
      if (const la::QuantizedMatrix* q = qcache->Find(w.get())) {
        return la::dispatch::MatMulQuantBiasAct(a, *q, &b->value, act);
      }
    }
    return la::dispatch::MatMulBiasAct(a, w->value, &b->value, act);
  };
  la::Matrix z = mul(h, w1_, b1_, la::Act::kRelu);
  return mul(z, w2_, b2_, la::Act::kIdentity);
}

void MlpHead::RegisterQuantWeights(la::QuantCache* cache) const {
  TURBO_CHECK(w1_ != nullptr);
  cache->Add(w1_.get(), w1_->value);
  cache->Add(w2_.get(), w2_->value);
}

std::vector<Tensor> MlpHead::Params() const {
  return {w1_, b1_, w2_, b2_};
}

double GnnTrainer::Fit(GnnModel* model, const GraphBatch& batch,
                       const std::vector<int>& labels) {
  TURBO_CHECK(model != nullptr);
  TURBO_CHECK_EQ(labels.size(), batch.num_targets);
  TURBO_CHECK_GT(batch.num_targets, 0u);

  const double wpos = cfg_.positive_weight > 0
                          ? cfg_.positive_weight
                          : ml::BalancedPositiveWeight(labels);
  const size_t n = batch.num_nodes();
  la::Matrix targets(n, 1);
  la::Matrix sample_w(n, 1);  // zero outside target rows (masked loss)
  for (size_t i = 0; i < labels.size(); ++i) {
    targets(i, 0) = static_cast<float>(labels[i]);
    sample_w(i, 0) = labels[i] != 0 ? static_cast<float>(wpos) : 1.0f;
  }

  ag::Adam opt(model->Params(), cfg_.lr, 0.9f, 0.999f, 1e-8f,
               cfg_.weight_decay);
  Rng rng(cfg_.seed);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    opt.ZeroGrad();
    Tensor logits = model->Logits(batch, /*training=*/true, &rng);
    Tensor loss = ag::BceWithLogits(logits, targets, sample_w);
    last_loss = loss->value(0, 0);
    ag::Backward(loss);
    opt.ClipGradNorm(cfg_.clip_norm);
    opt.Step();
    if (cfg_.verbose && (epoch % 10 == 0 || epoch + 1 == cfg_.epochs)) {
      std::printf("  [%s] epoch %3d loss %.4f\n", model->name().c_str(),
                  epoch, last_loss);
    }
  }
  return last_loss;
}

std::vector<double> GnnTrainer::PredictAll(GnnModel* model,
                                           const GraphBatch& batch) {
  Tensor logits = model->Logits(batch, /*training=*/false, nullptr);
  std::vector<double> out(batch.num_nodes());
  for (size_t i = 0; i < out.size(); ++i) {
    const float z = logits->value(i, 0);
    out[i] = z >= 0.0f ? 1.0 / (1.0 + std::exp(-z))
                       : std::exp(z) / (1.0 + std::exp(z));
  }
  return out;
}

std::vector<double> GnnTrainer::PredictTargets(GnnModel* model,
                                               const GraphBatch& batch) {
  auto all = PredictAll(model, batch);
  all.resize(batch.num_targets);
  return all;
}

std::vector<double> GnnTrainer::PredictAllInference(const GnnModel& model,
                                                    const GraphBatch& batch) {
  la::Matrix logits = model.LogitsInference(batch);
  std::vector<double> out(batch.num_nodes());
  for (size_t i = 0; i < out.size(); ++i) {
    const float z = logits(i, 0);
    out[i] = z >= 0.0f ? 1.0 / (1.0 + std::exp(-z))
                       : std::exp(z) / (1.0 + std::exp(z));
  }
  return out;
}

std::vector<double> GnnTrainer::PredictTargetsInference(
    const GnnModel& model, const GraphBatch& batch) {
  auto all = PredictAllInference(model, batch);
  all.resize(batch.num_targets);
  return all;
}

}  // namespace turbo::gnn
