// Shared training / inference harness for all GNNs.
//
// Training is "full-batch over the training computation subgraph": the
// batch contains every training target plus its sampled neighborhood, the
// loss is masked to the target rows, positives are up-weighted. Inference
// is inductive: any batch (e.g. a single user's sampled subgraph at
// serving time) can be scored without retraining.
#pragma once

#include <vector>

#include "gnn/model.h"
#include "util/rng.h"

namespace turbo::gnn {

struct TrainConfig {
  int epochs = 80;
  float lr = 5e-4f;          // paper's Adam learning rate
  float weight_decay = 1e-5f;
  float clip_norm = 5.0f;
  /// <= 0 means auto (neg/pos ratio over training targets).
  double positive_weight = -1.0;
  uint64_t seed = 17;
  bool verbose = false;
};

class GnnTrainer {
 public:
  explicit GnnTrainer(TrainConfig cfg = {}) : cfg_(cfg) {}

  /// Trains `model` on `batch`; `labels[i]` labels target row i
  /// (labels.size() == batch.num_targets). Returns final training loss.
  double Fit(GnnModel* model, const GraphBatch& batch,
             const std::vector<int>& labels);

  /// Sigmoid(logits) for the batch's target rows.
  static std::vector<double> PredictTargets(GnnModel* model,
                                            const GraphBatch& batch);

  /// Sigmoid(logits) for every node in the batch.
  static std::vector<double> PredictAll(GnnModel* model,
                                        const GraphBatch& batch);

  /// Tape-free variants over GnnModel::LogitsInference — identical
  /// predictions (same kernels), none of the tape's Node/closure
  /// allocation. These are what the serving path calls.
  static std::vector<double> PredictTargetsInference(const GnnModel& model,
                                                     const GraphBatch& batch);
  static std::vector<double> PredictAllInference(const GnnModel& model,
                                                 const GraphBatch& batch);

 private:
  TrainConfig cfg_;
};

}  // namespace turbo::gnn
