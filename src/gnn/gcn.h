// GCN baseline (Kipf & Welling), re-implemented as the paper does for the
// inductive setting: random-walk normalized aggregation D^-1 (A + I) over
// the homogeneous union graph.
#pragma once

#include "gnn/model.h"

namespace turbo::gnn {

class Gcn : public GnnModel {
 public:
  explicit Gcn(GnnConfig cfg = {}) : cfg_(cfg) {}

  void Init(int in_dim) override;
  ag::Tensor Embed(const GraphBatch& batch, bool training,
                   Rng* rng) override;
  la::Matrix EmbedInference(const GraphBatch& batch) const override;
  std::vector<ag::Tensor> Params() const override;
  std::string name() const override { return "GCN"; }

 protected:
  void RegisterQuantWeights(la::QuantCache* cache) const override;

 private:
  GnnConfig cfg_;
  std::vector<ag::Tensor> weights_;  // per layer
};

}  // namespace turbo::gnn
