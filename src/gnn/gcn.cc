#include "gnn/gcn.h"

namespace turbo::gnn {

using ag::Tensor;

void Gcn::Init(int in_dim) {
  Rng rng(cfg_.seed);
  weights_.clear();
  int d = in_dim;
  for (int h : cfg_.hidden) {
    weights_.push_back(ag::Param(la::Matrix::Glorot(d, h, &rng), "gcn_w"));
    d = h;
  }
  head_.Init(d, cfg_.mlp_hidden, &rng);
}

Tensor Gcn::Embed(const GraphBatch& batch, bool training, Rng* rng) {
  TURBO_CHECK(!weights_.empty());
  Tensor h = InputTensor(batch);
  for (const auto& w : weights_) {
    // Eq. 1 (random-walk form): H <- ReLU(Â H W), Â = D^-1 (A + I).
    h = ag::Relu(ag::MatMul(ag::SpMM(batch.union_rw_self, h), w));
    h = ag::Dropout(h, cfg_.dropout, training, rng);
  }
  return h;
}

la::Matrix Gcn::EmbedInference(const GraphBatch& batch) const {
  TURBO_CHECK(!weights_.empty());
  la::Matrix h = batch.features;
  for (const auto& w : weights_) {
    h = la::MapT(la::MatMul(batch.union_rw_self.Multiply(h), w->value),
                 la::kernels::Relu);
  }
  return h;
}

std::vector<Tensor> Gcn::Params() const {
  std::vector<Tensor> p = weights_;
  for (const auto& t : head_.Params()) p.push_back(t);
  return p;
}

}  // namespace turbo::gnn
