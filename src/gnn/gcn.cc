#include "gnn/gcn.h"

namespace turbo::gnn {

using ag::Tensor;

void Gcn::Init(int in_dim) {
  Rng rng(cfg_.seed);
  weights_.clear();
  int d = in_dim;
  for (int h : cfg_.hidden) {
    weights_.push_back(ag::Param(la::Matrix::Glorot(d, h, &rng), "gcn_w"));
    d = h;
  }
  head_.Init(d, cfg_.mlp_hidden, &rng);
}

Tensor Gcn::Embed(const GraphBatch& batch, bool training, Rng* rng) {
  TURBO_CHECK(!weights_.empty());
  Tensor h = InputTensor(batch);
  for (const auto& w : weights_) {
    // Eq. 1 (random-walk form): H <- ReLU(Â H W), Â = D^-1 (A + I).
    h = ag::Relu(ag::MatMul(ag::SpMM(batch.union_rw_self, h), w));
    h = ag::Dropout(h, cfg_.dropout, training, rng);
  }
  return h;
}

la::Matrix Gcn::EmbedInference(const GraphBatch& batch) const {
  TURBO_CHECK(!weights_.empty());
  la::Matrix h = batch.features;
  for (const auto& w : weights_) {
    // Inference-only reassociation of Eq. 1: ReLU((Â H) W) is computed
    // as ReLU(Â (H W)) so the SpMM is the last product and fuses with
    // the activation. H W also makes the SpMM operand the (smaller)
    // output width. Equal in exact arithmetic; float difference is
    // bounded by the inference-equivalence test.
    h = la::dispatch::SpmmBiasAct(batch.union_rw_self, InfMul(h, w),
                                  /*addend=*/nullptr, la::Act::kRelu);
  }
  return h;
}

void Gcn::RegisterQuantWeights(la::QuantCache* cache) const {
  for (const auto& w : weights_) cache->Add(w.get(), w->value);
}

std::vector<Tensor> Gcn::Params() const {
  std::vector<Tensor> p = weights_;
  for (const auto& t : head_.Params()) p.push_back(t);
  return p;
}

}  // namespace turbo::gnn
