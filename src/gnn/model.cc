#include "gnn/model.h"

namespace turbo::gnn {

void GnnModel::SetInferenceMode(InferenceMode mode) {
  qcache_.Clear();
  if (mode == InferenceMode::kInt8) {
    RegisterQuantWeights(&qcache_);
    head_.RegisterQuantWeights(&qcache_);
  }
  inference_mode_ = mode;
}

la::Matrix GnnModel::InfMul(const la::Matrix& a, const ag::Tensor& w) const {
  if (const la::QuantCache* qc = QuantWeights()) {
    if (const la::QuantizedMatrix* q = qc->Find(w.get())) {
      return la::dispatch::MatMulQuant(a, *q);
    }
  }
  return la::dispatch::MatMul(a, w->value);
}

la::Matrix GnnModel::InfMulBiasAct(const la::Matrix& a, const ag::Tensor& w,
                                   const la::Matrix* addend,
                                   la::Act act) const {
  if (const la::QuantCache* qc = QuantWeights()) {
    if (const la::QuantizedMatrix* q = qc->Find(w.get())) {
      return la::dispatch::MatMulQuantBiasAct(a, *q, addend, act);
    }
  }
  return la::dispatch::MatMulBiasAct(a, w->value, addend, act);
}

}  // namespace turbo::gnn
