// GraphSAGE baseline (Hamilton et al.), skip-connection form of Eq. 4:
//   h_v <- ReLU(W_s h_v + W_n mean_{u in N(v)} h_u)
// over the homogeneous union graph.
#pragma once

#include "gnn/model.h"

namespace turbo::gnn {

class GraphSage : public GnnModel {
 public:
  explicit GraphSage(GnnConfig cfg = {}) : cfg_(cfg) {}

  void Init(int in_dim) override;
  ag::Tensor Embed(const GraphBatch& batch, bool training,
                   Rng* rng) override;
  la::Matrix EmbedInference(const GraphBatch& batch) const override;
  std::vector<ag::Tensor> Params() const override;
  std::string name() const override { return "G-SAGE"; }

 protected:
  void RegisterQuantWeights(la::QuantCache* cache) const override;

 private:
  GnnConfig cfg_;
  std::vector<ag::Tensor> self_w_, neigh_w_;
};

}  // namespace turbo::gnn
