#include "gnn/gat.h"

#include "gnn/gat_ops.h"

namespace turbo::gnn {

using ag::Tensor;

void Gat::Init(int in_dim) {
  Rng rng(cfg_.seed);
  layers_.clear();
  int d = in_dim;
  for (int hdim : cfg_.hidden) {
    TURBO_CHECK_EQ(hdim % cfg_.gat_heads, 0);
    const int per_head = hdim / cfg_.gat_heads;
    std::vector<Head> heads;
    for (int h = 0; h < cfg_.gat_heads; ++h) {
      heads.push_back(Head{
          ag::Param(la::Matrix::Glorot(d, per_head, &rng), "gat_w"),
          ag::Param(la::Matrix::Glorot(per_head, 1, &rng), "gat_asrc"),
          ag::Param(la::Matrix::Glorot(per_head, 1, &rng), "gat_adst")});
    }
    layers_.push_back(std::move(heads));
    d = hdim;
  }
  head_.Init(d, cfg_.mlp_hidden, &rng);
}

Tensor Gat::Embed(const GraphBatch& batch, bool training, Rng* rng) {
  TURBO_CHECK(!layers_.empty());
  Tensor h = InputTensor(batch);
  for (const auto& heads : layers_) {
    std::vector<Tensor> outs;
    outs.reserve(heads.size());
    for (const auto& head : heads) {
      Tensor hw = ag::MatMul(h, head.w);
      Tensor s = ag::MatMul(hw, head.a_src);
      Tensor d = ag::MatMul(hw, head.a_dst);
      outs.push_back(
          GatAggregate(batch.union_self_structure, hw, s, d, 0.2f));
    }
    h = ag::Relu(outs.size() == 1 ? outs[0] : ag::ConcatColsN(outs));
    h = ag::Dropout(h, cfg_.dropout, training, rng);
  }
  return h;
}

la::Matrix Gat::EmbedInference(const GraphBatch& batch) const {
  TURBO_CHECK(!layers_.empty());
  la::Matrix h = batch.features;
  for (const auto& heads : layers_) {
    std::vector<la::Matrix> outs;
    outs.reserve(heads.size());
    for (const auto& head : heads) {
      la::Matrix hw = InfMul(h, head.w);
      // Attention projections are [d_out, 1] — dispatched float GEMM,
      // never quantized.
      la::Matrix s = la::dispatch::MatMul(hw, head.a_src->value);
      la::Matrix d = la::dispatch::MatMul(hw, head.a_dst->value);
      outs.push_back(GatAggregateInference(batch.union_self_structure, hw, s,
                                           d, 0.2f));
    }
    la::Matrix cat = outs[0];
    for (size_t i = 1; i < outs.size(); ++i) {
      cat = la::ConcatCols(cat, outs[i]);
    }
    h = la::dispatch::MapAct(cat, la::Act::kRelu);
  }
  return h;
}

void Gat::RegisterQuantWeights(la::QuantCache* cache) const {
  for (const auto& heads : layers_) {
    for (const auto& head : heads) cache->Add(head.w.get(), head.w->value);
  }
}

std::vector<Tensor> Gat::Params() const {
  std::vector<Tensor> p;
  for (const auto& heads : layers_) {
    for (const auto& head : heads) {
      p.push_back(head.w);
      p.push_back(head.a_src);
      p.push_back(head.a_dst);
    }
  }
  for (const auto& t : head_.Params()) p.push_back(t);
  return p;
}

}  // namespace turbo::gnn
