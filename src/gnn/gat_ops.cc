#include "gnn/gat_ops.h"

#include <cmath>

namespace turbo::gnn {

using ag::Node;
using ag::Tensor;
using la::Matrix;

namespace {

/// Forward shared by the autograd op and the tape-free inference entry:
/// per-edge softmax attention, normalized alphas (and lrelu'(z) signs)
/// written to the caller's buffers, aggregated output returned. Both
/// paths run this exact code, so their results are bit-identical.
Matrix GatForward(const la::SparseMatrix& structure, const Matrix& h,
                  const Matrix& s, const Matrix& d, float leaky_slope,
                  std::vector<float>* alpha_out,
                  std::vector<float>* zsign_out) {
  const size_t n = structure.rows();
  TURBO_CHECK_EQ(structure.cols(), n);
  TURBO_CHECK_EQ(h.rows(), n);
  TURBO_CHECK_EQ(s.rows(), n);
  TURBO_CHECK_EQ(s.cols(), 1u);
  TURBO_CHECK_EQ(d.rows(), n);
  TURBO_CHECK_EQ(d.cols(), 1u);
  const size_t f = h.cols();

  const auto& row_ptr = structure.row_ptr();
  const auto& col_idx = structure.col_idx();

  std::vector<float>& alpha = *alpha_out;
  std::vector<float>& zsign = *zsign_out;
  alpha.assign(structure.nnz(), 0.0f);
  zsign.assign(structure.nnz(), 0.0f);  // lrelu'(z)
  Matrix out(n, f);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t begin = row_ptr[i], end = row_ptr[i + 1];
    if (begin == end) continue;
    float mx = -std::numeric_limits<float>::infinity();
    for (uint32_t k = begin; k < end; ++k) {
      const float z = s(i, 0) + d(col_idx[k], 0);
      const float e = z > 0.0f ? z : leaky_slope * z;
      zsign[k] = z > 0.0f ? 1.0f : leaky_slope;
      alpha[k] = e;
      mx = std::max(mx, e);
    }
    float sum = 0.0f;
    for (uint32_t k = begin; k < end; ++k) {
      alpha[k] = std::exp(alpha[k] - mx);
      sum += alpha[k];
    }
    const float inv = 1.0f / sum;
    float* orow = out.row(i);
    for (uint32_t k = begin; k < end; ++k) {
      alpha[k] *= inv;
      const float* hrow = h.row(col_idx[k]);
      for (size_t c = 0; c < f; ++c) orow[c] += alpha[k] * hrow[c];
    }
  }
  return out;
}

}  // namespace

Matrix GatAggregateInference(const la::SparseMatrix& structure,
                             const Matrix& h, const Matrix& s,
                             const Matrix& d, float leaky_slope) {
  std::vector<float> alpha, zsign;
  return GatForward(structure, h, s, d, leaky_slope, &alpha, &zsign);
}

Tensor GatAggregate(const la::SparseMatrix& structure, const Tensor& h,
                    const Tensor& s, const Tensor& d, float leaky_slope) {
  std::vector<float> alpha, zsign;
  Matrix out = GatForward(structure, h->value, s->value, d->value,
                          leaky_slope, &alpha, &zsign);
  const size_t f = h->cols();

  la::SparseMatrix st = structure;  // keep structure alive in the closure
  return ag::MakeOp(
      "gat_aggregate", std::move(out), {h, s, d},
      [st, alpha, zsign, f](Node* node) {
        Node* hn = node->parents[0].get();
        Node* sn = node->parents[1].get();
        Node* dn = node->parents[2].get();
        const size_t n = st.rows();
        const auto& row_ptr = st.row_ptr();
        const auto& col_idx = st.col_idx();
        Matrix gh(n, f), gs(n, 1), gd(n, 1);
        std::vector<float> gdot;  // gout_i . h_j per edge of row i
        for (size_t i = 0; i < n; ++i) {
          const uint32_t begin = row_ptr[i], end = row_ptr[i + 1];
          if (begin == end) continue;
          const float* grow = node->grad.row(i);
          gdot.assign(end - begin, 0.0f);
          float weighted_sum = 0.0f;  // sum_k alpha_ik * g_ik
          for (uint32_t k = begin; k < end; ++k) {
            const float* hrow = hn->value.row(col_idx[k]);
            float dot = 0.0f;
            for (size_t c = 0; c < f; ++c) dot += grow[c] * hrow[c];
            gdot[k - begin] = dot;
            weighted_sum += alpha[k] * dot;
          }
          for (uint32_t k = begin; k < end; ++k) {
            const uint32_t j = col_idx[k];
            // Feature path: grad_h[j] += alpha_ij * gout_i.
            if (hn->requires_grad) {
              float* ghrow = gh.row(j);
              for (size_t c = 0; c < f; ++c) {
                ghrow[c] += alpha[k] * grow[c];
              }
            }
            // Attention path.
            const float de = alpha[k] * (gdot[k - begin] - weighted_sum);
            const float dz = de * zsign[k];
            gs(i, 0) += dz;
            gd(j, 0) += dz;
          }
        }
        if (hn->requires_grad) hn->AccumGrad(gh);
        if (sn->requires_grad) sn->AccumGrad(gs);
        if (dn->requires_grad) dn->AccumGrad(gd);
      });
}

}  // namespace turbo::gnn
