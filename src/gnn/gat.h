// GAT baseline (Veličković et al.): multi-head additive attention over
// the homogeneous union graph (self-loops included).
#pragma once

#include "gnn/model.h"

namespace turbo::gnn {

class Gat : public GnnModel {
 public:
  explicit Gat(GnnConfig cfg = {}) : cfg_(cfg) {}

  void Init(int in_dim) override;
  ag::Tensor Embed(const GraphBatch& batch, bool training,
                   Rng* rng) override;
  la::Matrix EmbedInference(const GraphBatch& batch) const override;
  std::vector<ag::Tensor> Params() const override;
  std::string name() const override { return "GAT"; }

 protected:
  void RegisterQuantWeights(la::QuantCache* cache) const override;

 private:
  struct Head {
    ag::Tensor w;      // [d_in, d_out]
    ag::Tensor a_src;  // [d_out, 1]
    ag::Tensor a_dst;  // [d_out, 1]
  };

  GnnConfig cfg_;
  std::vector<std::vector<Head>> layers_;  // [layer][head]
};

}  // namespace turbo::gnn
