#include "gnn/graph_batch.h"

#include <unordered_map>

namespace turbo::gnn {

GraphBatch MakeGraphBatch(const bn::Subgraph& sg,
                          const la::Matrix& all_features) {
  TURBO_CHECK(!sg.nodes.empty());
  const size_t n = sg.nodes.size();
  GraphBatch batch;
  batch.global_ids = sg.nodes;
  batch.num_targets = sg.num_targets;
  batch.features = la::Matrix(n, all_features.cols());
  for (size_t i = 0; i < n; ++i) {
    TURBO_CHECK_LT(sg.nodes[i], all_features.rows());
    const float* src = all_features.row(sg.nodes[i]);
    std::copy(src, src + all_features.cols(), batch.features.row(i));
  }

  // Per-type adjacency.
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    batch.type_adj[t] = la::SparseMatrix::FromTriplets(n, n, sg.edges[t]);
    batch.type_mean[t] = batch.type_adj[t].RowNormalized();
  }

  // Union graph: merge triplets across types.
  std::vector<la::Triplet> all_edges;
  size_t total = 0;
  for (const auto& e : sg.edges) total += e.size();
  all_edges.reserve(total);
  for (const auto& e : sg.edges) {
    all_edges.insert(all_edges.end(), e.begin(), e.end());
  }
  batch.union_adj = la::SparseMatrix::FromTriplets(n, n, all_edges);
  batch.union_mean = batch.union_adj.RowNormalized();

  // Self-loop variants.
  std::vector<la::Triplet> with_self = all_edges;
  std::vector<la::Triplet> self_structure;
  self_structure.reserve(total + n);
  for (const auto& e : all_edges) {
    self_structure.push_back({e.row, e.col, 1.0f});
  }
  for (uint32_t i = 0; i < n; ++i) {
    with_self.push_back({i, i, 1.0f});
    self_structure.push_back({i, i, 1.0f});
  }
  batch.union_rw_self =
      la::SparseMatrix::FromTriplets(n, n, with_self).RowNormalized();
  // Duplicate (i,j) structure entries collapse via summation; clamp back
  // to unit so GAT sees pure structure.
  auto structure = la::SparseMatrix::FromTriplets(n, n, self_structure);
  std::vector<la::Triplet> unit;
  unit.reserve(structure.nnz());
  for (size_t r = 0; r < structure.rows(); ++r) {
    for (uint32_t k = structure.row_ptr()[r]; k < structure.row_ptr()[r + 1];
         ++k) {
      unit.push_back({static_cast<uint32_t>(r), structure.col_idx()[k],
                      1.0f});
    }
  }
  batch.union_self_structure = la::SparseMatrix::FromTriplets(n, n, unit);
  return batch;
}

}  // namespace turbo::gnn
