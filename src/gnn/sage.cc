#include "gnn/sage.h"

namespace turbo::gnn {

using ag::Tensor;

void GraphSage::Init(int in_dim) {
  Rng rng(cfg_.seed);
  self_w_.clear();
  neigh_w_.clear();
  int d = in_dim;
  for (int h : cfg_.hidden) {
    self_w_.push_back(ag::Param(la::Matrix::Glorot(d, h, &rng), "sage_ws"));
    neigh_w_.push_back(ag::Param(la::Matrix::Glorot(d, h, &rng), "sage_wn"));
    d = h;
  }
  head_.Init(d, cfg_.mlp_hidden, &rng);
}

Tensor GraphSage::Embed(const GraphBatch& batch, bool training, Rng* rng) {
  TURBO_CHECK(!self_w_.empty());
  Tensor h = InputTensor(batch);
  for (size_t l = 0; l < self_w_.size(); ++l) {
    Tensor hn = ag::SpMM(batch.union_mean, h);
    h = ag::Relu(ag::Add(ag::MatMul(h, self_w_[l]),
                         ag::MatMul(hn, neigh_w_[l])));
    h = ag::Dropout(h, cfg_.dropout, training, rng);
  }
  return h;
}

la::Matrix GraphSage::EmbedInference(const GraphBatch& batch) const {
  TURBO_CHECK(!self_w_.empty());
  la::Matrix h = batch.features;
  for (size_t l = 0; l < self_w_.size(); ++l) {
    // Inference-only reassociation: ReLU(H Ws + (Ā H) Wn) computed as
    // ReLU(Ā (H Wn) + H Ws) — the SpMM runs on the transformed (narrow)
    // features and fuses with the self-term addend and the activation
    // in one pass. Equal in exact arithmetic; float difference is
    // bounded by the inference-equivalence test.
    la::Matrix self_term = InfMul(h, self_w_[l]);
    h = la::dispatch::SpmmBiasAct(batch.union_mean, InfMul(h, neigh_w_[l]),
                                  &self_term, la::Act::kRelu);
  }
  return h;
}

void GraphSage::RegisterQuantWeights(la::QuantCache* cache) const {
  for (const auto& w : self_w_) cache->Add(w.get(), w->value);
  for (const auto& w : neigh_w_) cache->Add(w.get(), w->value);
}

std::vector<Tensor> GraphSage::Params() const {
  std::vector<Tensor> p = self_w_;
  p.insert(p.end(), neigh_w_.begin(), neigh_w_.end());
  for (const auto& t : head_.Params()) p.push_back(t);
  return p;
}

}  // namespace turbo::gnn
