// Fused edge-softmax attention aggregation for GAT.
//
// Given per-node source scores s [n,1], destination scores d [n,1] and
// transformed features h [n,f], computes for every node i over its
// structural neighborhood N(i) (self-loops included in `structure`):
//   e_ij   = LeakyReLU(s_i + d_j)
//   alpha  = softmax over j of e_ij
//   out_i  = sum_j alpha_ij * h_j
// with a hand-derived backward validated by gradcheck tests.
#pragma once

#include "autograd/tensor.h"
#include "la/sparse.h"

namespace turbo::gnn {

ag::Tensor GatAggregate(const la::SparseMatrix& structure,
                        const ag::Tensor& h, const ag::Tensor& s,
                        const ag::Tensor& d, float leaky_slope = 0.2f);

/// Tape-free forward of GatAggregate on raw matrices: shares the forward
/// kernel with the autograd op (identical bits), skips the per-edge
/// alpha/zsign retention and Node allocation. Serving-path only.
la::Matrix GatAggregateInference(const la::SparseMatrix& structure,
                                 const la::Matrix& h, const la::Matrix& s,
                                 const la::Matrix& d,
                                 float leaky_slope = 0.2f);

}  // namespace turbo::gnn
