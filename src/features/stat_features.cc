#include "features/stat_features.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace turbo::features {

const std::array<std::string, kNumStatFeatures>& StatFeatureNames() {
  static const std::array<std::string, kNumStatFeatures> kNames = {
      "log_count_1d",      "log_count_7d",      "log_count_60d",
      "distinct_devices_7d", "distinct_ips_7d", "distinct_cells_7d",
      "distinct_wifi_7d",  "night_fraction",    "activity_span_days",
      "burst_ratio_1d",    "mean_gap_hours",    "logs_per_active_day",
      "device_switches",   "fresh_device_frac"};
  return kNames;
}

std::array<float, kNumStatFeatures> ComputeStatFeatures(
    const storage::LogStore& store, UserId uid, SimTime as_of,
    storage::SimClock* clock) {
  std::array<float, kNumStatFeatures> f{};
  const SimTime lo = as_of - 60 * kDay;
  auto logs = store.QueryUser(uid, lo, as_of, clock);
  if (logs.empty()) return f;

  int count_1d = 0, count_7d = 0, night = 0, burst_1d = 0;
  std::set<ValueId> devices_7d, ips_7d, cells_7d, wifi_7d, devices_all;
  std::set<ValueId> devices_1d;
  std::set<int64_t> active_days;
  ValueId last_device = 0;
  int device_switches = 0;
  SimTime first = logs.front().time, last = logs.front().time;
  std::vector<SimTime> session_times;

  for (const auto& l : logs) {
    first = std::min(first, l.time);
    last = std::max(last, l.time);
    const bool in_1d = l.time >= as_of - kDay;
    const bool in_7d = l.time >= as_of - 7 * kDay;
    active_days.insert(l.time / kDay);
    const int hour = static_cast<int>((l.time % kDay) / kHour);
    switch (l.type) {
      case BehaviorType::kDeviceId:
        session_times.push_back(l.time);
        count_1d += in_1d;
        count_7d += in_7d;
        if (hour >= 22 || hour < 6) ++night;
        burst_1d += (std::abs(l.time - as_of) <= kDay);
        devices_all.insert(l.value);
        if (in_7d) devices_7d.insert(l.value);
        if (in_1d) devices_1d.insert(l.value);
        if (last_device != 0 && l.value != last_device) ++device_switches;
        last_device = l.value;
        break;
      case BehaviorType::kIpv4:
        if (in_7d) ips_7d.insert(l.value);
        break;
      case BehaviorType::kGps100:
        if (in_7d) cells_7d.insert(l.value);
        break;
      case BehaviorType::kWifiMac:
        if (in_7d) wifi_7d.insert(l.value);
        break;
      default:
        break;
    }
  }

  const int sessions = static_cast<int>(session_times.size());
  f[0] = static_cast<float>(count_1d);
  f[1] = static_cast<float>(count_7d);
  f[2] = static_cast<float>(sessions);
  f[3] = static_cast<float>(devices_7d.size());
  f[4] = static_cast<float>(ips_7d.size());
  f[5] = static_cast<float>(cells_7d.size());
  f[6] = static_cast<float>(wifi_7d.size());
  f[7] = sessions > 0 ? static_cast<float>(night) / sessions : 0.0f;
  f[8] = static_cast<float>(last - first) / kDay;
  f[9] = sessions > 0 ? static_cast<float>(burst_1d) / sessions : 0.0f;
  if (sessions > 1) {
    f[10] = static_cast<float>(last - first) /
            (static_cast<float>(sessions - 1) * kHour);
  }
  f[11] = active_days.empty()
              ? 0.0f
              : static_cast<float>(sessions) / active_days.size();
  f[12] = static_cast<float>(device_switches);
  f[13] = devices_all.empty()
              ? 0.0f
              : static_cast<float>(devices_1d.size()) / devices_all.size();
  return f;
}

la::Matrix ComputeStatFeatureMatrix(const storage::LogStore& store,
                                    const std::vector<UserId>& uids,
                                    const std::vector<SimTime>& as_of) {
  TURBO_CHECK_EQ(uids.size(), as_of.size());
  la::Matrix out(uids.size(), kNumStatFeatures);
  for (size_t i = 0; i < uids.size(); ++i) {
    auto f = ComputeStatFeatures(store, uids[i], as_of[i]);
    std::copy(f.begin(), f.end(), out.row(i));
  }
  return out;
}

}  // namespace turbo::features
