// Behavior statistical features X_s (Section V: "frequency of logins, the
// number of associated devices in 1 hour, 6 hours, 1 day, etc."),
// computed from a user's raw logs as of a reference time (the audit
// moment — the paper triggers detection 24h after the application).
//
// In the deployed system this computation is the dominant serving cost
// when it has to scan raw logs from the relational store; the feature
// store in feature_store.h adds the Redis-style cache in front.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "storage/log_store.h"

namespace turbo::features {

inline constexpr int kNumStatFeatures = 14;

/// Names aligned with the feature vector indices.
const std::array<std::string, kNumStatFeatures>& StatFeatureNames();

/// Computes X_s for one user from their logs in [as_of - 60d, as_of].
/// Reads through `store`, charging `clock` when provided.
std::array<float, kNumStatFeatures> ComputeStatFeatures(
    const storage::LogStore& store, UserId uid, SimTime as_of,
    storage::SimClock* clock = nullptr);

/// Batch helper: X_s for many users -> [n, kNumStatFeatures].
la::Matrix ComputeStatFeatureMatrix(const storage::LogStore& store,
                                    const std::vector<UserId>& uids,
                                    const std::vector<SimTime>& as_of);

}  // namespace turbo::features
