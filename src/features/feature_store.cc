#include "features/feature_store.h"

namespace turbo::features {

FeatureStore::FeatureStore(FeatureStoreConfig config,
                           const storage::LogStore* logs)
    : config_(config),
      logs_(logs),
      profiles_(config.db_cost),
      cache_(config.cache_capacity, config.cache_cost) {
  TURBO_CHECK(logs_ != nullptr);
}

void FeatureStore::PutProfile(UserId uid, std::vector<float> row) {
  TURBO_CHECK(!row.empty());
  std::lock_guard<std::mutex> lock(mu_);
  if (profile_dim_ == 0) {
    profile_dim_ = row.size();
  } else {
    TURBO_CHECK_EQ(row.size(), profile_dim_);
  }
  profiles_.Put(uid, std::move(row));
}

std::vector<float> FeatureStore::GetFeatures(UserId uid, SimTime as_of,
                                             storage::SimClock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  // Rows are metered locally, then charged at the medium the active
  // configuration serves them from (SQL vs in-memory mirror).
  const storage::MediumCost& medium =
      config_.use_cache ? config_.cache_cost : config_.db_cost;
  storage::SimClock meter;
  auto profile = profiles_.Get(uid, &meter);
  if (clock) clock->ChargeQuery(medium, 1);
  if (!profile.has_value()) return {};

  std::array<float, kNumStatFeatures> stats{};
  const StatKey key = (static_cast<uint64_t>(uid) << 24) |
                      (static_cast<uint64_t>(as_of / kHour) & 0xffffff);
  bool have = false;
  if (config_.use_cache) {
    auto cached = cache_.Get(key, clock);
    if (cached.has_value()) {
      stats = *cached;
      have = true;
    }
  }
  if (!have) {
    storage::SimClock scan;
    stats = ComputeStatFeatures(*logs_, uid, as_of, &scan);
    if (clock) clock->ChargeQuery(medium, scan.rows());
    if (config_.use_cache) cache_.Put(key, stats, clock);
  }

  std::vector<float> out = *profile;
  out.insert(out.end(), stats.begin(), stats.end());
  return out;
}

}  // namespace turbo::features
