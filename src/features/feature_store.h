// Feature management module (Figure 2): serves the full node feature
// vector [X_u profile ; X_tau transaction ; X_s behavior statistics].
//
// The Section V optimization is modeled faithfully: with use_cache off,
// every profile row and raw-log row is charged at the networked-SQL
// cost; with use_cache on, the paper's Redis layer mirrors "the graph,
// user profile and application features, and behavior logs" in memory,
// so the same rows are charged at the in-memory cost, and an LRU
// additionally short-circuits recomputation of X_s within its key
// granularity.
//
// Thread safety: GetFeatures/PutProfile serialize on an internal mutex
// (the LRU mutates on every lookup), so concurrent prediction batches
// may share one store.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

#include "features/stat_features.h"
#include "la/matrix.h"
#include "storage/kv_store.h"
#include "storage/lru_cache.h"

namespace turbo::features {

struct FeatureStoreConfig {
  bool use_cache = true;
  size_t cache_capacity = 100000;
  storage::MediumCost db_cost = storage::MediumCost::NetworkedSql();
  storage::MediumCost cache_cost = storage::MediumCost::InMemoryCache();
};

class FeatureStore {
 public:
  FeatureStore(FeatureStoreConfig config, const storage::LogStore* logs);

  /// Registers a user's static profile+transaction feature row.
  void PutProfile(UserId uid, std::vector<float> row);

  /// Full feature vector for a user as of `as_of`. Profile part comes
  /// from the KV store; the statistical part is recomputed from raw logs
  /// on a cache miss and cached keyed by (uid, as_of bucketed hourly).
  /// Returns empty vector if the user has no profile row.
  std::vector<float> GetFeatures(UserId uid, SimTime as_of,
                                 storage::SimClock* clock = nullptr);

  /// Dimensionality of returned vectors (profile dim + stat dim).
  size_t dim() const { return profile_dim_ + kNumStatFeatures; }
  size_t profile_dim() const { return profile_dim_; }

  double cache_hit_rate() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.hit_rate();
  }

 private:
  using StatKey = uint64_t;  // (uid << 24) | hour bucket

  mutable std::mutex mu_;
  FeatureStoreConfig config_;
  const storage::LogStore* logs_;
  storage::KvStore<UserId, std::vector<float>> profiles_;
  storage::LruCache<StatKey, std::array<float, kNumStatFeatures>> cache_;
  size_t profile_dim_ = 0;
};

}  // namespace turbo::features
