// HAG — Heterogeneous Adaptive Graph neural network (Section IV), the
// paper's primary contribution.
//
// Two operators:
//
//  * SAO (Self-aware Aggregation Operator, Eq. 5–9): a per-node attention
//    gate between the node's own transformed feature and its aggregated
//    neighborhood, run independently on every homogeneous per-type
//    subgraph. The gate keeps clique members separable — plain GCN maps
//    every member of a clique to the same point after one round
//    (Theorem 1, verified empirically in tests/core/oversmoothing_test).
//
//  * CFO (Cross-type Fusion Operator, Eq. 10–15): fuses the per-type
//    final embeddings with node-wise attention (micro level) and per-type
//    transformation matrices M_r (macro level).
//
// Ablation switches `use_sao` / `use_cfo` reproduce Table V:
//   use_sao=false  -> SAO(-): the gate is dropped (GraphSAGE-style
//                     aggregation per type), CFO kept.
//   use_cfo=false  -> CFO(-): one SAO chain on the homogeneous union
//                     graph, no type distinction.
//   both false     -> Both(-).
#pragma once

#include <array>

#include "gnn/model.h"

namespace turbo::core {

struct HagConfig : gnn::GnnConfig {
  bool use_sao = true;
  bool use_cfo = true;
  /// Eq. 10 runs SAO independently per homogeneous subgraph; the paper
  /// leaves open whether the SAO transforms are type-specific. Sharing
  /// them (one SAO parameter set applied to every type's adjacency, with
  /// heterogeneity modeled by CFO's per-type attention and M_r) is far
  /// more sample-efficient at sub-paper dataset scales and is the
  /// default; set false for fully type-specific chains.
  bool share_type_weights = true;
};

class Hag : public gnn::GnnModel {
 public:
  explicit Hag(HagConfig cfg = {}) : cfg_(cfg) {}

  void Init(int in_dim) override;
  ag::Tensor Embed(const gnn::GraphBatch& batch, bool training,
                   Rng* rng) override;
  la::Matrix EmbedInference(const gnn::GraphBatch& batch) const override;
  std::vector<ag::Tensor> Params() const override;
  std::string name() const override;

  const HagConfig& config() const { return cfg_; }

 protected:
  void RegisterQuantWeights(la::QuantCache* cache) const override;

 private:
  /// One SAO layer's parameters (Eq. 5–9) for one edge type.
  struct SaoLayer {
    ag::Tensor w_self;   // W_ls  [d_in, d_out]
    ag::Tensor w_neigh;  // W_ln  [d_in, d_out]
    ag::Tensor w_s;      // W_s   [d_in, t]
    ag::Tensor w_n;      // W_n   [d_in, t]
    ag::Tensor p;        // p     [2t, 1]
  };
  /// CFO parameters for one edge type (Eq. 12–15).
  struct CfoType {
    ag::Tensor w_attn;  // W_r  [d_k, d_a]
    ag::Tensor v_attn;  // v_r  [d_a, 1]
    ag::Tensor m;       // M_r  [d_k, d_m]
  };

  SaoLayer MakeSaoLayer(int d_in, int d_out, Rng* rng) const;
  ag::Tensor ApplySao(const SaoLayer& layer, const ag::Tensor& h,
                      const la::SparseMatrix& mean_adj) const;
  la::Matrix ApplySaoInference(const SaoLayer& layer, const la::Matrix& h,
                               const la::SparseMatrix& mean_adj) const;

  HagConfig cfg_;
  /// chains_[type][layer]; with use_cfo=false there is a single chain.
  std::vector<std::vector<SaoLayer>> chains_;
  std::vector<CfoType> cfo_;
};

}  // namespace turbo::core
