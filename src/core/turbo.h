// Turbo offline pipeline facade: scenario logs -> BN construction ->
// feature assembly -> train/test computation subgraphs. Every experiment
// binary and example builds on these helpers; the online serving path
// lives in src/server.
//
// Fidelity note (documented in DESIGN.md): offline experiments construct
// one BN snapshot from the full log range, like the paper's offline
// evaluation; the per-request time-scoped path is exercised by the
// server module.
#pragma once

#include <memory>
#include <vector>

#include "bn/builder.h"
#include "bn/sampler.h"
#include "bn/snapshot.h"
#include "core/hag.h"
#include "datagen/scenario.h"
#include "features/feature_store.h"
#include "gnn/trainer.h"
#include "metrics/metrics.h"
#include "ml/scaler.h"

namespace turbo::core {

struct PipelineConfig {
  bn::BnConfig bn;
  bn::SamplerConfig sampler;
  double test_fraction = 0.2;
  uint64_t split_seed = 7;
  /// Concatenate the behavior statistical features X_s to the profile and
  /// transaction features (all models receive the same vector).
  bool include_stat_features = true;
  /// Audit delay: features and subgraphs are taken as of application time
  /// plus this offset (paper: 24 hours).
  SimTime audit_delay = 24 * kHour;
  /// >= 0 masks one edge type out of the network (Fig. 7 ablation).
  int mask_edge_type = -1;
};

/// Everything the experiments need, prepared once per dataset.
struct PreparedData {
  datagen::Dataset dataset;
  storage::LogStore logs;
  storage::EdgeStore edges;
  bn::GraphView network;  // degree-normalized CSR view, post-masking
  la::Matrix features;          // standardized [n, d]
  std::vector<int> labels;      // per uid
  std::vector<UserId> train_uids;
  std::vector<UserId> test_uids;
  ml::StandardScaler scaler;

  std::vector<int> LabelsFor(const std::vector<UserId>& uids) const;
  la::Matrix FeaturesFor(const std::vector<UserId>& uids) const;
};

/// Runs BN construction and feature preparation over a generated dataset.
std::unique_ptr<PreparedData> PrepareData(datagen::Dataset dataset,
                                          const PipelineConfig& config);

/// 80/20-style split by UID.
void SplitByUid(size_t num_users, double test_fraction, uint64_t seed,
                std::vector<UserId>* train, std::vector<UserId>* test);

/// Stratified variant: splits positives and negatives separately so both
/// partitions carry the (rare) fraud class. At the paper's scale (918
/// positives) a plain random split suffices; at the reduced scales these
/// benches run at, an unstratified split can easily draw zero test
/// positives.
void SplitByUidStratified(const std::vector<int>& labels,
                          double test_fraction, uint64_t seed,
                          std::vector<UserId>* train,
                          std::vector<UserId>* test);

/// Builds the full-batch computation subgraph whose targets are `targets`.
gnn::GraphBatch MakeBatch(const PreparedData& data,
                          const std::vector<UserId>& targets,
                          const bn::SamplerConfig& sampler_cfg);

/// Trains any GnnModel on the train split and scores the test split.
/// Returns test-set probabilities aligned with data.test_uids.
std::vector<double> TrainAndScoreGnn(gnn::GnnModel* model,
                                     const PreparedData& data,
                                     const bn::SamplerConfig& sampler_cfg,
                                     const gnn::TrainConfig& train_cfg);

}  // namespace turbo::core
