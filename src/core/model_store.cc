#include "core/model_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace turbo::core {

namespace {
constexpr char kMagic[] = "turbo-model v1";
}  // namespace

Status SaveModel(const gnn::GnnModel& model, const std::string& path,
                 const std::string& description) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for write");
  auto params = model.Params();
  out << kMagic << "\n";
  out << "model " << model.name() << "\n";
  out << "description " << description << "\n";
  out << "params " << params.size() << "\n";
  out.precision(9);
  for (const auto& p : params) {
    out << "tensor " << p->op_name << " " << p->value.rows() << " "
        << p->value.cols() << "\n";
    const float* d = p->value.data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      out << d[i] << (i + 1 == p->value.size() ? "\n" : " ");
    }
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Status LoadModel(const std::string& path, gnn::GnnModel* model) {
  TURBO_CHECK(model != nullptr);
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::InvalidArgument(path + ": bad magic '" + line + "'");
  }
  std::getline(in, line);  // model <name>
  std::getline(in, line);  // description ...
  size_t count = 0;
  {
    std::string tag;
    in >> tag >> count;
    if (tag != "params") {
      return Status::InvalidArgument(path + ": missing params header");
    }
  }
  auto params = model->Params();
  if (count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "%s: has %zu tensors, model expects %zu", path.c_str(), count,
        params.size()));
  }
  // Parse the whole file into staging buffers first: a truncated or
  // corrupt file must leave the model untouched, not half-overwritten
  // (the half-mutated state used to pass silently into serving).
  std::vector<std::vector<float>> staged(params.size());
  for (size_t pi = 0; pi < params.size(); ++pi) {
    const auto& p = params[pi];
    std::string tag, name;
    size_t rows = 0, cols = 0;
    in >> tag >> name >> rows >> cols;
    if (tag != "tensor") {
      return Status::InvalidArgument(path + ": missing tensor header");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument(StrFormat(
          "%s: tensor '%s' shape %zux%zu, model expects %zux%zu",
          path.c_str(), name.c_str(), rows, cols, p->value.rows(),
          p->value.cols()));
    }
    staged[pi].resize(p->value.size());
    for (float& v : staged[pi]) {
      if (!(in >> v)) {
        return Status::InvalidArgument(path + ": truncated tensor data");
      }
    }
  }
  for (size_t pi = 0; pi < params.size(); ++pi) {
    float* d = params[pi]->value.data();
    std::copy(staged[pi].begin(), staged[pi].end(), d);
  }
  return Status::OK();
}

std::string ModelRegistry::PathFor(const std::string& name,
                                   int version) const {
  return StrFormat("%s/%s.v%d.model", dir_.c_str(), name.c_str(), version);
}

int ModelRegistry::LatestVersion(const std::string& name) const {
  int v = 0;
  while (true) {
    std::ifstream probe(PathFor(name, v + 1));
    if (!probe) break;
    ++v;
  }
  return v;
}

Result<int> ModelRegistry::Publish(const gnn::GnnModel& model,
                                   const std::string& name,
                                   const std::string& description) {
  const int version = LatestVersion(name) + 1;
  TURBO_RETURN_IF_ERROR(SaveModel(model, PathFor(name, version),
                                  description));
  return version;
}

Status ModelRegistry::Load(const std::string& name, gnn::GnnModel* model,
                           int version) {
  if (version < 0) version = LatestVersion(name);
  if (version == 0) {
    return Status::NotFound("no published versions of " + name);
  }
  return LoadModel(PathFor(name, version), model);
}

}  // namespace turbo::core
