// Influence score and distribution (Definition 1), used by the Fig. 9
// case study and the Theorem 1 over-smoothing verification.
//
// S_i(j) = sum of absolute entries of the Jacobian d h_i^(k) / d x_j of
// node i's final embedding w.r.t. node j's input feature row;
// D_i(j) = S_i(j) / sum_k S_i(k).
//
// Computed exactly with one backward pass per (target node, embedding
// coordinate) — intended for case-study-sized subgraphs.
#pragma once

#include "gnn/model.h"
#include "la/matrix.h"

namespace turbo::core {

/// Influence scores S: S(i, j) = influence of node j on node i, for every
/// i in `targets` (rows of the result follow `targets` order, columns are
/// batch-local node indices).
la::Matrix InfluenceScores(gnn::GnnModel* model,
                           const gnn::GraphBatch& batch,
                           const std::vector<int>& targets);

/// Row-normalized influence distribution D (rows sum to 1; all-zero rows
/// stay zero).
la::Matrix InfluenceDistribution(gnn::GnnModel* model,
                                 const gnn::GraphBatch& batch,
                                 const std::vector<int>& targets);

}  // namespace turbo::core
