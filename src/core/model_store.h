// Model management module (Figure 2): serialization of trained model
// parameters and a versioned registry, so the daily offline retrain can
// publish a new HAG and the prediction server can hot-swap to it.
//
// Format: a self-describing text format ("turbo-model v1") listing each
// parameter tensor with its name, shape, and row-major float values —
// portable, diffable, and independent of struct layout.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gnn/model.h"
#include "util/status.h"

namespace turbo::core {

/// Writes a model's parameters to `path`. Parameters are matched by
/// position on load, so save/load must use identically-configured models.
Status SaveModel(const gnn::GnnModel& model, const std::string& path,
                 const std::string& description = "");

/// Loads parameters saved by SaveModel into `model`, which must already
/// be Init()-ed with the same architecture (shape mismatches fail).
Status LoadModel(const std::string& path, gnn::GnnModel* model);

/// Versioned on-disk registry: each Publish writes
/// `<dir>/<name>.v<N>.model` and records N as latest.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string dir) : dir_(std::move(dir)) {}

  /// Saves `model` as the next version of `name`; returns the version.
  Result<int> Publish(const gnn::GnnModel& model, const std::string& name,
                      const std::string& description = "");

  /// Loads the given version (or the latest if `version` < 0).
  Status Load(const std::string& name, gnn::GnnModel* model,
              int version = -1);

  /// Highest published version of `name`, or 0 if none.
  int LatestVersion(const std::string& name) const;

  std::string PathFor(const std::string& name, int version) const;

 private:
  std::string dir_;
};

}  // namespace turbo::core
