#include "core/influence.h"

#include <cmath>
#include <unordered_set>

namespace turbo::core {

namespace {

/// Clears accumulated gradients on every node reachable from `root`,
/// making the shared forward graph reusable across backward passes.
void ClearReachableGrads(const ag::Tensor& root) {
  std::unordered_set<ag::Node*> seen;
  std::vector<ag::Node*> stack = {root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    ag::Node* n = stack.back();
    stack.pop_back();
    n->ClearGrad();
    for (const auto& p : n->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
}

}  // namespace

la::Matrix InfluenceScores(gnn::GnnModel* model,
                           const gnn::GraphBatch& batch,
                           const std::vector<int>& targets) {
  TURBO_CHECK(model != nullptr);
  TURBO_CHECK(!targets.empty());
  const size_t n = batch.num_nodes();
  for (int t : targets) {
    TURBO_CHECK_GE(t, 0);
    TURBO_CHECK_LT(static_cast<size_t>(t), n);
  }

  // Differentiable input leaf shared by one forward pass.
  ag::Tensor x = ag::Param(batch.features, "x_influence");
  model->SetInputOverride(x);
  ag::Tensor embed = model->Embed(batch, /*training=*/false, nullptr);
  model->SetInputOverride(nullptr);
  const size_t d_k = embed->cols();

  la::Matrix scores(targets.size(), n);
  la::Matrix indicator(n, d_k);
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    const int i = targets[ti];
    for (size_t c = 0; c < d_k; ++c) {
      // One Jacobian row: d embed[i, c] / d x.
      ClearReachableGrads(embed);
      indicator.SetZero();
      indicator(i, c) = 1.0f;
      ag::Tensor scalar =
          ag::Sum(ag::Mul(embed, ag::Constant(indicator, "pick")));
      ag::Backward(scalar);
      if (!x->has_grad()) continue;
      for (size_t j = 0; j < n; ++j) {
        const float* row = x->grad.row(j);
        float s = 0.0f;
        for (size_t d = 0; d < x->grad.cols(); ++d) s += std::abs(row[d]);
        scores(ti, j) += s;
      }
    }
  }
  return scores;
}

la::Matrix InfluenceDistribution(gnn::GnnModel* model,
                                 const gnn::GraphBatch& batch,
                                 const std::vector<int>& targets) {
  la::Matrix s = InfluenceScores(model, batch, targets);
  for (size_t r = 0; r < s.rows(); ++r) {
    double total = 0.0;
    for (size_t c = 0; c < s.cols(); ++c) total += s(r, c);
    if (total <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / total);
    for (size_t c = 0; c < s.cols(); ++c) s(r, c) *= inv;
  }
  return s;
}

}  // namespace turbo::core
