#include "core/turbo.h"

#include <algorithm>

#include "features/stat_features.h"

namespace turbo::core {

std::vector<int> PreparedData::LabelsFor(
    const std::vector<UserId>& uids) const {
  std::vector<int> out;
  out.reserve(uids.size());
  for (UserId u : uids) out.push_back(labels[u]);
  return out;
}

la::Matrix PreparedData::FeaturesFor(const std::vector<UserId>& uids) const {
  la::Matrix out(uids.size(), features.cols());
  for (size_t i = 0; i < uids.size(); ++i) {
    const float* src = features.row(uids[i]);
    std::copy(src, src + features.cols(), out.row(i));
  }
  return out;
}

void SplitByUid(size_t num_users, double test_fraction, uint64_t seed,
                std::vector<UserId>* train, std::vector<UserId>* test) {
  TURBO_CHECK_GT(test_fraction, 0.0);
  TURBO_CHECK_LT(test_fraction, 1.0);
  std::vector<UserId> all(num_users);
  for (size_t i = 0; i < num_users; ++i) all[i] = static_cast<UserId>(i);
  Rng rng(seed);
  rng.Shuffle(&all);
  const size_t n_test = std::max<size_t>(
      1, static_cast<size_t>(num_users * test_fraction));
  test->assign(all.begin(), all.begin() + n_test);
  train->assign(all.begin() + n_test, all.end());
}

void SplitByUidStratified(const std::vector<int>& labels,
                          double test_fraction, uint64_t seed,
                          std::vector<UserId>* train,
                          std::vector<UserId>* test) {
  TURBO_CHECK_GT(test_fraction, 0.0);
  TURBO_CHECK_LT(test_fraction, 1.0);
  std::vector<UserId> pos, neg;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] != 0 ? pos : neg).push_back(static_cast<UserId>(i));
  }
  Rng rng(seed);
  rng.Shuffle(&pos);
  rng.Shuffle(&neg);
  train->clear();
  test->clear();
  auto take = [&](std::vector<UserId>& ids) {
    const size_t n_test = static_cast<size_t>(ids.size() * test_fraction);
    test->insert(test->end(), ids.begin(), ids.begin() + n_test);
    train->insert(train->end(), ids.begin() + n_test, ids.end());
  };
  take(pos);
  take(neg);
  rng.Shuffle(train);
  rng.Shuffle(test);
}

std::unique_ptr<PreparedData> PrepareData(datagen::Dataset dataset,
                                          const PipelineConfig& config) {
  auto data = std::make_unique<PreparedData>();
  data->dataset = std::move(dataset);
  const auto& ds = data->dataset;
  const size_t n = ds.users.size();

  // Ingest logs and build BN (Algorithm 1 over the full range).
  data->logs.AppendBatch(ds.logs);
  bn::BnBuilder builder(config.bn, &data->edges);
  builder.BuildFromLogs(ds.logs);
  // No TTL expiry here: the 60-day TTL is an online-serving mechanism
  // (Section V, exercised by server::BnServer); the paper's offline BN
  // keeps the full 18-month edge set (Table II).

  // Snapshot build fuses the per-type degree normalization; masking is a
  // zero-copy view over the same CSR arrays (per-type degrees are
  // independent across types, so mask-then-normalize and
  // normalize-then-mask coincide).
  bn::GraphView network(
      bn::BnSnapshot::Build(data->edges, static_cast<int>(n)));
  if (config.mask_edge_type >= 0) {
    network = network.WithTypeMasked(config.mask_edge_type);
  }
  data->network = network;

  // Node features: profile/transaction (+ behavior statistics as of the
  // audit moment).
  la::Matrix raw = ds.profile_features;
  if (config.include_stat_features) {
    std::vector<UserId> uids(n);
    std::vector<SimTime> as_of(n);
    for (size_t i = 0; i < n; ++i) {
      uids[i] = static_cast<UserId>(i);
      as_of[i] = ds.users[i].application_time + config.audit_delay;
    }
    la::Matrix stats =
        features::ComputeStatFeatureMatrix(data->logs, uids, as_of);
    raw = la::ConcatCols(raw, stats);
  }

  data->labels = ds.Labels();
  SplitByUidStratified(data->labels, config.test_fraction,
                       config.split_seed, &data->train_uids,
                       &data->test_uids);

  // Standardize on the training split only.
  std::vector<int> train_rows(data->train_uids.begin(),
                              data->train_uids.end());
  data->scaler.Fit(raw, train_rows);
  data->features = data->scaler.Transform(raw);
  return data;
}

gnn::GraphBatch MakeBatch(const PreparedData& data,
                          const std::vector<UserId>& targets,
                          const bn::SamplerConfig& sampler_cfg) {
  bn::SubgraphSampler sampler(data.network, sampler_cfg);
  auto sg = sampler.Sample(targets);
  return gnn::MakeGraphBatch(sg, data.features);
}

std::vector<double> TrainAndScoreGnn(gnn::GnnModel* model,
                                     const PreparedData& data,
                                     const bn::SamplerConfig& sampler_cfg,
                                     const gnn::TrainConfig& train_cfg) {
  model->Init(static_cast<int>(data.features.cols()));
  auto train_batch = MakeBatch(data, data.train_uids, sampler_cfg);
  gnn::GnnTrainer trainer(train_cfg);
  trainer.Fit(model, train_batch, data.LabelsFor(data.train_uids));
  auto test_batch = MakeBatch(data, data.test_uids, sampler_cfg);
  return gnn::GnnTrainer::PredictTargets(model, test_batch);
}

}  // namespace turbo::core
