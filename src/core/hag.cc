#include "core/hag.h"

namespace turbo::core {

using ag::Tensor;

Hag::SaoLayer Hag::MakeSaoLayer(int d_in, int d_out, Rng* rng) const {
  const int t = cfg_.attention_dim;
  return SaoLayer{
      ag::Param(la::Matrix::Glorot(d_in, d_out, rng), "sao_wls"),
      ag::Param(la::Matrix::Glorot(d_in, d_out, rng), "sao_wln"),
      ag::Param(la::Matrix::Glorot(d_in, t, rng), "sao_ws"),
      ag::Param(la::Matrix::Glorot(d_in, t, rng), "sao_wn"),
      ag::Param(la::Matrix::Glorot(2 * t, 1, rng), "sao_p"),
  };
}

void Hag::Init(int in_dim) {
  Rng rng(cfg_.seed);
  chains_.clear();
  cfo_.clear();
  const int num_chains =
      (cfg_.use_cfo && !cfg_.share_type_weights) ? kNumEdgeTypes : 1;
  for (int c = 0; c < num_chains; ++c) {
    std::vector<SaoLayer> chain;
    int d = in_dim;
    for (int h : cfg_.hidden) {
      chain.push_back(MakeSaoLayer(d, h, &rng));
      d = h;
    }
    chains_.push_back(std::move(chain));
  }
  const int d_k = cfg_.hidden.back();
  const int d_m = d_k;  // fused dimension matches the type embedding
  if (cfg_.use_cfo) {
    for (int r = 0; r < kNumEdgeTypes; ++r) {
      cfo_.push_back(CfoType{
          ag::Param(la::Matrix::Glorot(d_k, cfg_.attention_dim, &rng),
                    "cfo_w"),
          ag::Param(la::Matrix::Glorot(cfg_.attention_dim, 1, &rng),
                    "cfo_v"),
          ag::Param(la::Matrix::Glorot(d_k, d_m, &rng), "cfo_m"),
      });
    }
  }
  head_.Init(d_m, cfg_.mlp_hidden, &rng);
}

Tensor Hag::ApplySao(const SaoLayer& layer, const Tensor& h,
                     const la::SparseMatrix& mean_adj) const {
  // Eq. 6: weighted-mean neighborhood representation. The adjacency is
  // row-normalized over the (already degree-normalized) BN edge weights.
  Tensor hn = ag::SpMM(mean_adj, h);
  Tensor self_term = ag::MatMul(h, layer.w_self);
  Tensor neigh_term = ag::MatMul(hn, layer.w_neigh);
  if (!cfg_.use_sao) {
    // SAO(-): plain skip-connection aggregation (Eq. 4).
    return ag::Relu(ag::Add(self_term, neigh_term));
  }
  // Eq. 7–9: attention gate between self and neighborhood.
  Tensor hs = ag::MatMul(h, layer.w_s);
  Tensor hnn = ag::MatMul(hn, layer.w_n);
  Tensor a_self = ag::MatMul(ag::Tanh(ag::ConcatCols(hs, hs)), layer.p);
  Tensor a_neigh = ag::MatMul(ag::Tanh(ag::ConcatCols(hnn, hs)), layer.p);
  Tensor alphas = ag::SoftmaxRows(ag::ConcatCols(a_self, a_neigh));
  // Eq. 5.
  return ag::Relu(
      ag::Add(ag::MulColBroadcast(self_term, ag::SliceCols(alphas, 0, 1)),
              ag::MulColBroadcast(neigh_term, ag::SliceCols(alphas, 1, 1))));
}

la::Matrix Hag::ApplySaoInference(const SaoLayer& layer,
                                  const la::Matrix& h,
                                  const la::SparseMatrix& mean_adj) const {
  if (!cfg_.use_sao) {
    // SAO(-), inference-only reassociation: ReLU(H Wls + (Ā H) Wln)
    // computed as ReLU(Ā (H Wln) + H Wls) so the SpMM runs on the
    // transformed (narrow) features and fuses with the self-term addend
    // and the activation. Equal in exact arithmetic; float difference
    // is bounded by the inference-equivalence test.
    la::Matrix self_term = InfMul(h, layer.w_self);
    return la::dispatch::SpmmBiasAct(mean_adj, InfMul(h, layer.w_neigh),
                                     &self_term, la::Act::kRelu);
  }
  // Full SAO needs Ā H itself for the gate (Eq. 7–9), so the original
  // structure stays; the products run on the dispatched kernels.
  la::Matrix hn = la::dispatch::Spmm(mean_adj, h);
  la::Matrix self_term = InfMul(h, layer.w_self);
  la::Matrix neigh_term = InfMul(hn, layer.w_neigh);
  la::Matrix hs = InfMul(h, layer.w_s);
  la::Matrix hnn = InfMul(hn, layer.w_n);
  la::Matrix a_self = la::dispatch::MatMul(
      la::dispatch::MapAct(la::ConcatCols(hs, hs), la::Act::kTanh),
      layer.p->value);
  la::Matrix a_neigh = la::dispatch::MatMul(
      la::dispatch::MapAct(la::ConcatCols(hnn, hs), la::Act::kTanh),
      layer.p->value);
  la::Matrix alphas = la::SoftmaxRows(la::ConcatCols(a_self, a_neigh));
  la::Matrix z =
      la::MulColBroadcast(self_term, la::SliceCols(alphas, 0, 1));
  z.Add(la::MulColBroadcast(neigh_term, la::SliceCols(alphas, 1, 1)));
  return la::dispatch::MapAct(z, la::Act::kRelu);
}

la::Matrix Hag::EmbedInference(const gnn::GraphBatch& batch) const {
  TURBO_CHECK(!chains_.empty());
  const la::Matrix& x = batch.features;

  if (!cfg_.use_cfo) {
    la::Matrix h = x;
    for (const auto& layer : chains_[0]) {
      h = ApplySaoInference(layer, h, batch.union_mean);
    }
    return h;
  }

  std::vector<la::Matrix> type_embeddings;
  type_embeddings.reserve(kNumEdgeTypes);
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    const auto& chain = cfg_.share_type_weights ? chains_[0] : chains_[r];
    la::Matrix h = x;
    for (const auto& layer : chain) {
      h = ApplySaoInference(layer, h, batch.type_mean[r]);
    }
    type_embeddings.push_back(std::move(h));
  }

  la::Matrix scores;
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    la::Matrix sr = la::dispatch::MatMul(
        la::dispatch::MapAct(InfMul(type_embeddings[r], cfo_[r].w_attn),
                             la::Act::kTanh),
        cfo_[r].v_attn->value);
    scores = (r == 0) ? std::move(sr) : la::ConcatCols(scores, sr);
  }
  la::Matrix alphas = la::SoftmaxRows(scores);

  la::Matrix fused;
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    la::Matrix term =
        la::MulColBroadcast(InfMul(type_embeddings[r], cfo_[r].m),
                            la::SliceCols(alphas, r, 1));
    if (r == 0) {
      fused = std::move(term);
    } else {
      fused.Add(term);
    }
  }
  return fused;
}

Tensor Hag::Embed(const gnn::GraphBatch& batch, bool training, Rng* rng) {
  TURBO_CHECK(!chains_.empty());
  Tensor x = InputTensor(batch);

  if (!cfg_.use_cfo) {
    // CFO(-): one homogeneous chain on the union graph.
    Tensor h = x;
    for (const auto& layer : chains_[0]) {
      h = ApplySao(layer, h, batch.union_mean);
      h = ag::Dropout(h, cfg_.dropout, training, rng);
    }
    return h;
  }

  // Eq. 10: SAO run independently on every homogeneous subgraph (with
  // shared or type-specific transforms per config).
  std::vector<Tensor> type_embeddings;
  type_embeddings.reserve(kNumEdgeTypes);
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    const auto& chain =
        cfg_.share_type_weights ? chains_[0] : chains_[r];
    Tensor h = x;
    for (const auto& layer : chain) {
      h = ApplySao(layer, h, batch.type_mean[r]);
      h = ag::Dropout(h, cfg_.dropout, training, rng);
    }
    type_embeddings.push_back(h);
  }

  // Eq. 12: node-wise attention over types.
  std::vector<Tensor> scores;
  scores.reserve(kNumEdgeTypes);
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    scores.push_back(ag::MatMul(
        ag::Tanh(ag::MatMul(type_embeddings[r], cfo_[r].w_attn)),
        cfo_[r].v_attn));
  }
  Tensor alphas = ag::SoftmaxRows(ag::ConcatColsN(scores));

  // Eq. 13–15: macro-level transform M_r, micro-level mixing by alpha.
  Tensor fused;
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    Tensor term = ag::MulColBroadcast(
        ag::MatMul(type_embeddings[r], cfo_[r].m),
        ag::SliceCols(alphas, r, 1));
    fused = (r == 0) ? term : ag::Add(fused, term);
  }
  return fused;
}

void Hag::RegisterQuantWeights(la::QuantCache* cache) const {
  for (const auto& chain : chains_) {
    for (const auto& l : chain) {
      cache->Add(l.w_self.get(), l.w_self->value);
      cache->Add(l.w_neigh.get(), l.w_neigh->value);
      if (cfg_.use_sao) {
        cache->Add(l.w_s.get(), l.w_s->value);
        cache->Add(l.w_n.get(), l.w_n->value);
        // p is a [2t, 1] projection vector; stays float.
      }
    }
  }
  for (const auto& c : cfo_) {
    cache->Add(c.w_attn.get(), c.w_attn->value);
    cache->Add(c.m.get(), c.m->value);
    // v_attn is [d_a, 1]; stays float.
  }
}

std::vector<Tensor> Hag::Params() const {
  std::vector<Tensor> p;
  for (const auto& chain : chains_) {
    for (const auto& l : chain) {
      p.push_back(l.w_self);
      p.push_back(l.w_neigh);
      if (cfg_.use_sao) {
        p.push_back(l.w_s);
        p.push_back(l.w_n);
        p.push_back(l.p);
      }
    }
  }
  for (const auto& c : cfo_) {
    p.push_back(c.w_attn);
    p.push_back(c.v_attn);
    p.push_back(c.m);
  }
  for (const auto& t : head_.Params()) p.push_back(t);
  return p;
}

std::string Hag::name() const {
  if (cfg_.use_sao && cfg_.use_cfo) return "HAG";
  if (!cfg_.use_sao && cfg_.use_cfo) return "SAO(-)";
  if (cfg_.use_sao && !cfg_.use_cfo) return "CFO(-)";
  return "Both(-)";
}

}  // namespace turbo::core
