#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace turbo {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? n : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string WithThousands(int64_t v) {
  bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace turbo
