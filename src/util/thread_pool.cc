#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/check.h"

namespace turbo::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  TURBO_CHECK(fn != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    TURBO_CHECK(!stop_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared chunk cursor for one ParallelFor call. Helpers that wake up
/// after all chunks are claimed see next >= chunks and return without
/// touching `fn`, so the state outliving the call (via shared_ptr) is
/// safe even though `fn` is borrowed from the caller's frame.
struct LoopState {
  const std::function<void(size_t, size_t)>* fn = nullptr;
  size_t n = 0;
  size_t grain = 0;
  size_t chunks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;

  void RunChunks() {
    for (;;) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const size_t begin = c * grain;
      const size_t end = std::min(n, begin + grain);
      (*fn)(begin, end);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  TURBO_CHECK_GT(grain, 0u);
  if (n <= grain) {
    fn(0, n);
    return;
  }
  auto state = std::make_shared<LoopState>();
  state->fn = &fn;
  state->n = n;
  state->grain = grain;
  state->chunks = (n + grain - 1) / grain;
  const size_t helpers =
      std::min(state->chunks - 1, static_cast<size_t>(size()));
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace turbo::util
