// Minimal STL allocator handing out storage aligned to a fixed boundary.
//
// The dense/sparse linear-algebra containers (la::Matrix,
// la::SparseMatrix) use it at 64 bytes so the SIMD kernel tiers can
// assume cache-line-aligned base pointers: full-width vector loads never
// straddle a line at offset 0, and buffers never share their first line
// with unrelated allocations. Row pointers at arbitrary column counts
// are still only 4-byte aligned, so kernels keep using unaligned load
// instructions — on every ISA tier those run at aligned speed when the
// address happens to be aligned, which the allocator makes the common
// case.
#pragma once

#include <cstddef>
#include <new>

namespace turbo::util {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace turbo::util
