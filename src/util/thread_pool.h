// Fixed-size worker pool for the serving path and the dense kernels.
//
// Two usage modes:
//  * Submit(fn): fire-and-forget task queue (the prediction server's
//    micro-batch dispatcher schedules merged forwards this way).
//  * ParallelFor(n, grain, fn): data-parallel loop over [0, n) in chunks
//    of `grain`. The calling thread participates in the chunk loop, so
//    the call completes even when every worker is busy (or the pool has
//    zero threads) and nesting a ParallelFor inside a pool task cannot
//    deadlock. Chunks are claimed with an atomic cursor; each chunk is
//    a contiguous index range, so row-partitioned kernels keep their
//    per-element accumulation order (bit-identical results regardless
//    of thread count).
//
// The process-wide Shared() pool is what the la:: kernels use; servers
// that want isolation construct their own instance.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace turbo::util {

class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on a worker thread.
  void Submit(std::function<void()> fn);

  /// Runs `fn(begin, end)` over contiguous chunks covering [0, n), each
  /// at most `grain` long. Blocks until every chunk completed. The
  /// caller works through chunks alongside the pool.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Process-wide pool sized to the hardware; lazily constructed, never
  /// destroyed (serving kernels may run during static teardown).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace turbo::util
