// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed used to construct one) so that datasets, model training, and
// benchmark runs are reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace turbo {

/// SplitMix64 finalizer — a bijective 64-bit mix with full avalanche.
/// Used to derive decorrelated seeds from structured inputs (snapshot
/// versions, request counters, bucket coordinates) where naive shifting
/// or xoring would let the inputs bleed into each other.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combines two 64-bit values into one well-mixed seed. Unlike
/// `(a << k) ^ b` there is no bit budget that `b` can overflow into
/// `a`'s lane: the golden-ratio multiply spreads `b` over all 64 bits
/// before the finalizer. Collisions over realistic (version, sequence)
/// grids are regression-tested in tests/util/rng_test.cc.
inline uint64_t MixSeeds(uint64_t a, uint64_t b) {
  return Mix64(a + 0x9e3779b97f4a7c15ULL * (b + 1));
}

/// xoshiro256** — fast, high-quality, 64-bit state-splittable generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random> if needed,
/// but the convenience members below avoid libstdc++ distribution
/// implementation differences for reproducibility.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponential with given mean (> 0).
  double NextExponential(double mean);

  /// Poisson(lambda) — inversion for small lambda, normal approx for large.
  int NextPoisson(double lambda);

  /// Zipf-like rank sample in [0, n) with exponent `s` (s=0 -> uniform).
  /// Used for skewed behavior-value popularity (public Wi-Fi, hot IPs).
  uint64_t NextZipf(uint64_t n, double s);

  /// Sample index from unnormalized non-negative weights.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextUint(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), order randomized.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derive an independent child stream (for parallel-safe substructures).
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace turbo
