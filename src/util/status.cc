#include "util/status.h"

namespace turbo {

namespace {
const char* CodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace turbo
