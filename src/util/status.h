// Minimal Status/Result error-propagation types, RocksDB-style.
//
// Library code that can fail for data-dependent reasons (bad input file,
// unknown id, empty subgraph) returns Status / Result<T> instead of
// throwing; programming errors use TURBO_CHECK.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace turbo {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  /// Transient failure of a remote peer (connect refused, deadline
  /// expired, connection reset). The only code net-layer retry loops
  /// treat as retryable — data corruption and contract violations must
  /// never be retried into.
  kUnavailable,
};

/// Lightweight error carrier; cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Value-or-Status, move-friendly. Access with value() after checking ok().
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {    // NOLINT implicit
    TURBO_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() {
    TURBO_CHECK_MSG(ok(), "Result::value on error: " << status().ToString());
    return std::get<T>(v_);
  }
  const T& value() const {
    TURBO_CHECK_MSG(ok(), "Result::value on error: " << status().ToString());
    return std::get<T>(v_);
  }
  T&& take() {
    TURBO_CHECK(ok());
    return std::move(std::get<T>(v_));
  }

 private:
  std::variant<T, Status> v_;
};

#define TURBO_RETURN_IF_ERROR(expr)         \
  do {                                      \
    ::turbo::Status s_ = (expr);            \
    if (!s_.ok()) return s_;                \
  } while (0)

}  // namespace turbo
