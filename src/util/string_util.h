// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace turbo {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Trims ASCII whitespace on both ends.
std::string_view Trim(std::string_view s);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable count, e.g. 1234567 -> "1,234,567".
std::string WithThousands(int64_t v);

}  // namespace turbo
