// Simulation-time units and wall-clock helpers.
//
// All behavior-log timestamps in the library are int64 seconds on a
// simulated timeline (0 = dataset epoch start). Wall-clock helpers are
// only used by benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace turbo {

/// Simulated timestamp, seconds since scenario epoch.
using SimTime = int64_t;

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 24 * kHour;

/// Renders a SimTime as "Dd HH:MM:SS" for logs and table output.
std::string FormatSimTime(SimTime t);

/// Monotonic wall-clock stopwatch for harness timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace turbo
