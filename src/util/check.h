// Internal invariant-checking macros.
//
// These stay active in all build types (see top-level CMakeLists): a
// violated invariant in a research system must abort loudly rather than
// silently corrupt an experiment result.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace turbo::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace turbo::internal

#define TURBO_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::turbo::internal::CheckFail(__FILE__, __LINE__, #expr, "");     \
    }                                                                  \
  } while (0)

#define TURBO_CHECK_MSG(expr, ...)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream oss_;                                         \
      oss_ << __VA_ARGS__;                                             \
      ::turbo::internal::CheckFail(__FILE__, __LINE__, #expr,          \
                                   oss_.str());                        \
    }                                                                  \
  } while (0)

#define TURBO_CHECK_BINOP(a, b, op)                                    \
  do {                                                                 \
    auto va_ = (a);                                                    \
    auto vb_ = (b);                                                    \
    if (!(va_ op vb_)) {                                               \
      std::ostringstream oss_;                                         \
      oss_ << "lhs=" << va_ << " rhs=" << vb_;                         \
      ::turbo::internal::CheckFail(__FILE__, __LINE__,                 \
                                   #a " " #op " " #b, oss_.str());     \
    }                                                                  \
  } while (0)

#define TURBO_CHECK_EQ(a, b) TURBO_CHECK_BINOP(a, b, ==)
#define TURBO_CHECK_NE(a, b) TURBO_CHECK_BINOP(a, b, !=)
#define TURBO_CHECK_LT(a, b) TURBO_CHECK_BINOP(a, b, <)
#define TURBO_CHECK_LE(a, b) TURBO_CHECK_BINOP(a, b, <=)
#define TURBO_CHECK_GT(a, b) TURBO_CHECK_BINOP(a, b, >)
#define TURBO_CHECK_GE(a, b) TURBO_CHECK_BINOP(a, b, >=)
