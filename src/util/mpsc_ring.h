// Bounded lock-free multi-producer ring buffer (Vyukov-style array
// queue with per-slot sequence numbers). The ingestion front door of
// BnServer uses it as an MPSC queue: any number of producer threads
// TryPush concurrently while the single writer thread TryPops — but the
// algorithm is a full MPMC queue, so a pool of consumers is also safe.
//
// Properties the admission-control path relies on:
//  * Bounded, exactly: capacity is fixed at construction and enforced
//    by an occupancy counter — the slot array is sized up to a power of
//    two internally, but TryPush admits at most `capacity` queued
//    values (a BnServerConfig::ingest_queue_capacity of 100 means 100,
//    not 128). TryPush on a full ring fails immediately instead of
//    blocking or allocating — that failure IS the backpressure signal.
//  * Lock-free: producers contend only on a CAS over the enqueue
//    cursor; no mutex, no producer ever waits on the consumer.
//  * FIFO per producer: a producer acquires enqueue tickets in program
//    order and the consumer drains tickets in order, so two pushes from
//    one thread are always popped in push order (pushes from different
//    threads interleave by ticket acquisition, which is the only
//    meaningful order under concurrency).
//
// Fullness is decided by the occupancy counter before a slot is
// touched, so a TryPush racing an in-progress pop of the oldest slot
// may fail spuriously-early by one slot — acceptable for admission
// control, where "the queue is effectively full" is the answer either
// way; TryPush never admits past the configured capacity.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/check.h"

namespace turbo::util {

template <typename T>
class MpscRing {
 public:
  /// `capacity` is the exact number of values the ring admits
  /// (minimum 1). The slot array is the next power of two internally.
  explicit MpscRing(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    size_t cap = 2;
    while (cap < capacity_) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side: callable from any thread. Returns false when the
  /// ring is full (the value is untouched and nothing was enqueued).
  bool TryPush(const T& value) {
    // Claim occupancy first: this is what bounds the queue at the
    // *configured* capacity rather than the power-of-two slot count.
    // A claim that loses the slot race below is returned, so the
    // counter never drifts.
    if (size_.fetch_add(1, std::memory_order_acq_rel) >= capacity_) {
      size_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif = static_cast<intptr_t>(seq) -
                           static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        // The slot's pop is still in flight — the spurious-early
        // failure documented above. Return the occupancy claim.
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return false;
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side (single consumer in the MPSC deployment, but safe
  /// for many). Returns false when the ring is empty.
  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif = static_cast<intptr_t>(seq) -
                           static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the slot has not been published yet
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    // Released after the slot itself so a producer admitted by the
    // counter finds the slot reusable.
    size_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  /// The configured (and enforced) capacity, not the slot-array size.
  size_t capacity() const { return capacity_; }

  /// Momentary occupancy; racy under concurrency but never above
  /// capacity(). This is what the bn_ingest_queue_depth gauge reports,
  /// so the gauge and the admission decision agree on "full".
  size_t size_approx() const {
    const size_t n = size_.load(std::memory_order_relaxed);
    return n > capacity_ ? capacity_ : n;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  static constexpr size_t kCacheLine = 64;

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  size_t capacity_ = 0;
  /// Occupancy: claims admitted minus pops completed. Bounds the queue
  /// at capacity_ even though the slot array is a power of two.
  alignas(kCacheLine) std::atomic<size_t> size_{0};
  // The two cursors live on their own cache lines so producer CAS
  // traffic does not invalidate the consumer's line and vice versa.
  alignas(kCacheLine) std::atomic<size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace turbo::util
