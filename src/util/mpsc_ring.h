// Bounded lock-free multi-producer ring buffer (Vyukov-style array
// queue with per-slot sequence numbers). The ingestion front door of
// BnServer uses it as an MPSC queue: any number of producer threads
// TryPush concurrently while the single writer thread TryPops — but the
// algorithm is a full MPMC queue, so a pool of consumers is also safe.
//
// Properties the admission-control path relies on:
//  * Bounded: capacity is fixed at construction (rounded up to a power
//    of two). TryPush on a full ring fails immediately instead of
//    blocking or allocating — that failure IS the backpressure signal.
//  * Lock-free: producers contend only on a CAS over the enqueue
//    cursor; no mutex, no producer ever waits on the consumer.
//  * FIFO per producer: a producer acquires enqueue tickets in program
//    order and the consumer drains tickets in order, so two pushes from
//    one thread are always popped in push order (pushes from different
//    threads interleave by ticket acquisition, which is the only
//    meaningful order under concurrency).
//
// A full ring is detected from the slot sequence, not the cursors, so a
// TryPush racing an in-progress pop of the oldest slot may fail
// spuriously-early by one slot — acceptable for admission control,
// where "the queue is effectively full" is the answer either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/check.h"

namespace turbo::util {

template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit MpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side: callable from any thread. Returns false when the
  /// ring is full (the value is untouched and nothing was enqueued).
  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif = static_cast<intptr_t>(seq) -
                           static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed value
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side (single consumer in the MPSC deployment, but safe
  /// for many). Returns false when the ring is empty.
  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif = static_cast<intptr_t>(seq) -
                           static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the slot has not been published yet
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Racy by nature (cursors move concurrently); clamped to
  /// [0, capacity]. Good enough for a depth gauge.
  size_t size_approx() const {
    const size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    const size_t d = enq >= deq ? enq - deq : 0;
    return d > capacity() ? capacity() : d;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  static constexpr size_t kCacheLine = 64;

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // The two cursors live on their own cache lines so producer CAS
  // traffic does not invalidate the consumer's line and vice versa.
  alignas(kCacheLine) std::atomic<size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace turbo::util
