// Fixed-width ASCII table rendering for benchmark harness output.
//
// Every bench binary prints its paper table/figure through this class so
// the output format is uniform and diffable across runs.
#pragma once

#include <string>
#include <vector>

namespace turbo {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders the full table (header, separator, rows).
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace turbo
