#include "util/rng.h"

#include <cmath>

namespace turbo {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64 stream: seeds the xoshiro state from a single 64-bit seed.
inline uint64_t SplitMix64(uint64_t* state) {
  return Mix64(*state += 0x9e3779b97f4a7c15ULL);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // All-zero state is invalid for xoshiro; SplitMix64 never yields four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_gauss_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint(uint64_t n) {
  TURBO_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TURBO_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  gauss_ = mag * std::sin(2.0 * M_PI * u2);
  has_gauss_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double mean) {
  TURBO_CHECK_GT(mean, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

int Rng::NextPoisson(double lambda) {
  TURBO_CHECK_GE(lambda, 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    double l = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double v = NextGaussian(lambda, std::sqrt(lambda));
  return v < 0 ? 0 : static_cast<int>(v + 0.5);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  TURBO_CHECK_GT(n, 0u);
  if (s <= 0.0) return NextUint(n);
  // Inverse-CDF on the continuous approximation, clamped to [0, n).
  // Good enough for workload skew; exact Zipf not required.
  double u = NextDouble();
  if (std::abs(s - 1.0) < 1e-9) {
    double x = std::pow(static_cast<double>(n), u);
    uint64_t r = static_cast<uint64_t>(x) - 1 + 1;  // in [1, n]
    return (r - 1 < n) ? r - 1 : n - 1;
  }
  double p = 1.0 - s;
  double x = std::pow(u * (std::pow(static_cast<double>(n), p) - 1.0) + 1.0,
                      1.0 / p);
  uint64_t r = static_cast<uint64_t>(x);
  return r < n ? r : n - 1;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  TURBO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TURBO_CHECK_GE(w, 0.0);
    total += w;
  }
  TURBO_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TURBO_CHECK_LE(k, n);
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Floyd's algorithm for k << n.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = NextUint(j + 1);
    bool dup = false;
    for (size_t x : out) {
      if (x == t) {
        dup = true;
        break;
      }
    }
    out.push_back(dup ? j : t);
  }
  Shuffle(&out);
  return out;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace turbo
