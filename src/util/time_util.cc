#include "util/time_util.h"

#include <cstdio>

namespace turbo {

std::string FormatSimTime(SimTime t) {
  bool neg = t < 0;
  if (neg) t = -t;
  int64_t days = t / kDay;
  int64_t rem = t % kDay;
  int64_t h = rem / kHour;
  int64_t m = (rem % kHour) / kMinute;
  int64_t s = rem % kMinute;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%ldd %02ld:%02ld:%02ld", neg ? "-" : "",
                static_cast<long>(days), static_cast<long>(h),
                static_cast<long>(m), static_cast<long>(s));
  return buf;
}

}  // namespace turbo
