#include "util/table_printer.h"

#include <cstdio>

#include "util/check.h"
#include "util/string_util.h"

namespace turbo {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TURBO_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TURBO_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string sep = "+";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep.append(width[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace turbo
