// Computation-subgraph sampling (Section III-A "Sampling & normalization"
// and the BN-server sampling RPC of Figure 2).
//
// Given one or more target users, collects their k-hop neighborhood with a
// per-node, per-type fanout cap and returns the induced typed subgraph
// with local node indices — everything HAG needs to compute the targets'
// representations inductively.
//
// The sampler reads through a GraphView and therefore holds a reference
// on the underlying immutable BnSnapshot: any number of samplers can run
// concurrently on the same snapshot while the BN server publishes newer
// versions.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bn/snapshot.h"
#include "la/sparse.h"
#include "util/rng.h"

namespace turbo::bn {

struct SamplerConfig {
  int num_hops = 2;       // matches the 2-layer GNNs of the paper
  int fanout = 25;        // per node per type per hop
  /// true: keep the highest-weight neighbors (deterministic, favors
  /// certain relations); false: uniform random sample like GraphSAGE.
  bool top_by_weight = true;
};

struct Subgraph {
  /// Global ids; the first `num_targets` entries are the (distinct)
  /// targets. Duplicate requested targets collapse to one node — map a
  /// requested uid to its row via `local`.
  std::vector<UserId> nodes;
  size_t num_targets = 0;
  /// Global -> local index.
  std::unordered_map<UserId, int> local;
  /// Induced typed edges in local indices (both directions present).
  std::array<std::vector<la::Triplet>, kNumEdgeTypes> edges;
  /// Version of the snapshot this subgraph was sampled from.
  uint64_t snapshot_version = 0;

  size_t NumEdges() const {
    size_t s = 0;
    for (const auto& e : edges) s += e.size();
    return s / 2;
  }
};

class SubgraphSampler {
 public:
  SubgraphSampler(GraphView view, SamplerConfig config, uint64_t seed = 1);

  /// Samples the union computation subgraph of `targets`. Duplicates in
  /// `targets` are deduplicated (num_targets counts distinct targets).
  Subgraph Sample(const std::vector<UserId>& targets);
  Subgraph SampleOne(UserId target) { return Sample({target}); }

  const SamplerConfig& config() const { return config_; }
  const GraphView& view() const { return view_; }

 private:
  GraphView view_;
  SamplerConfig config_;
  Rng rng_;
};

}  // namespace turbo::bn
