#include "bn/sampler.h"

#include <algorithm>

namespace turbo::bn {

SubgraphSampler::SubgraphSampler(GraphView view, SamplerConfig config,
                                 uint64_t seed)
    : view_(std::move(view)), config_(config), rng_(seed) {
  TURBO_CHECK(view_.valid());
  TURBO_CHECK_GT(config_.num_hops, 0);
  TURBO_CHECK_GT(config_.fanout, 0);
}

Subgraph SubgraphSampler::Sample(const std::vector<UserId>& targets) {
  TURBO_CHECK(!targets.empty());
  Subgraph sg;
  sg.snapshot_version = view_.version();
  // Duplicate targets are legal (a serving batch may name one user
  // twice); they collapse to a single node, and callers map each request
  // back through sg.local.
  for (UserId t : targets) {
    TURBO_CHECK_LT(t, static_cast<UserId>(view_.num_nodes()));
    if (sg.local.emplace(t, static_cast<int>(sg.nodes.size())).second) {
      sg.nodes.push_back(t);
    }
  }
  sg.num_targets = sg.nodes.size();

  // Hop-by-hop frontier expansion with per-type fanout.
  std::vector<UserId> frontier = sg.nodes;
  std::vector<NeighborEntry> candidates;
  for (int hop = 0; hop < config_.num_hops; ++hop) {
    std::vector<UserId> next;
    for (UserId u : frontier) {
      for (int t = 0; t < kNumEdgeTypes; ++t) {
        const NeighborSpan nbrs = view_.Neighbors(t, u);
        candidates.assign(nbrs.begin(), nbrs.end());
        if (candidates.size() > static_cast<size_t>(config_.fanout)) {
          if (config_.top_by_weight) {
            std::partial_sort(
                candidates.begin(), candidates.begin() + config_.fanout,
                candidates.end(),
                [](const NeighborEntry& a, const NeighborEntry& b) {
                  return a.weight > b.weight;
                });
          } else {
            for (int i = 0; i < config_.fanout; ++i) {
              size_t j = i + rng_.NextUint(candidates.size() - i);
              std::swap(candidates[i], candidates[j]);
            }
          }
          candidates.resize(config_.fanout);
        }
        for (const auto& e : candidates) {
          if (sg.local.emplace(e.id, static_cast<int>(sg.nodes.size()))
                  .second) {
            sg.nodes.push_back(e.id);
            next.push_back(e.id);
          }
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  // Induced typed edges among selected nodes. Keeping all induced edges
  // (not only sampled tree edges) preserves the clique structure HAG's
  // SAO is designed around.
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    auto& out = sg.edges[t];
    for (size_t li = 0; li < sg.nodes.size(); ++li) {
      const UserId u = sg.nodes[li];
      const NeighborSpan nbrs = view_.Neighbors(t, u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        auto it = sg.local.find(nbrs.id(i));
        if (it == sg.local.end()) continue;
        out.push_back({static_cast<uint32_t>(li),
                       static_cast<uint32_t>(it->second), nbrs.weight(i)});
      }
    }
  }
  return sg;
}

}  // namespace turbo::bn
