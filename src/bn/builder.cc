#include "bn/builder.h"

#include <algorithm>
#include <unordered_map>

namespace turbo::bn {

std::vector<SimTime> BnConfig::DefaultWindows() {
  std::vector<SimTime> w;
  for (int h = 1; h <= 12; ++h) w.push_back(h * kHour);
  w.push_back(kDay);
  return w;
}

BnBuilder::BnBuilder(BnConfig config, storage::EdgeStore* edges)
    : config_(std::move(config)), edges_(edges) {
  TURBO_CHECK(edges_ != nullptr);
  TURBO_CHECK(!config_.windows.empty());
  for (SimTime w : config_.windows) TURBO_CHECK_GT(w, 0);
  TURBO_CHECK(std::is_sorted(config_.windows.begin(),
                             config_.windows.end()));
}

size_t BnBuilder::ConnectBucket(int edge_type,
                                const std::vector<UserId>& users,
                                SimTime stamp) {
  const size_t n = users.size();
  if (n < 2) return 0;
  const float w = config_.inverse_weighting
                      ? 1.0f / static_cast<float>(n)
                      : 1.0f;
  if (n <= static_cast<size_t>(config_.max_bucket_users)) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        edges_->AddWeight(edge_type, users[i], users[j], w, stamp);
      }
    }
    return n * (n - 1) / 2;
  }
  // Pathological bucket: connect a random subset, preserving the true 1/N.
  auto idx = rng_.SampleWithoutReplacement(
      n, static_cast<size_t>(config_.max_bucket_users));
  for (size_t i = 0; i < idx.size(); ++i) {
    for (size_t j = i + 1; j < idx.size(); ++j) {
      edges_->AddWeight(edge_type, users[idx[i]], users[idx[j]], w, stamp);
    }
  }
  return idx.size() * (idx.size() - 1) / 2;
}

void BnBuilder::BuildFromLogs(const BehaviorLogList& logs) {
  // Group observations by (type, value) once; each group is then bucketed
  // per window. This is the offline equivalent of running every window
  // job over the whole timeline.
  struct Key {
    BehaviorType type;
    ValueId value;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.value * 2654435761ULL +
                                   static_cast<uint64_t>(k.type));
    }
  };
  std::unordered_map<Key, std::vector<Obs>, KeyHash> groups;
  for (const auto& log : logs) {
    if (EdgeTypeIndex(log.type) < 0) continue;
    groups[Key{log.type, log.value}].push_back({log.uid, log.time});
  }

  std::vector<UserId> bucket_users;
  for (auto& [key, obs] : groups) {
    if (obs.size() < 2) continue;
    std::sort(obs.begin(), obs.end(), [](const Obs& a, const Obs& b) {
      return a.time < b.time;
    });
    const int edge_type = EdgeTypeIndex(key.type);
    for (SimTime window : config_.windows) {
      // Epochs are aligned to t0 = 0: epoch j covers ((j-1)*W, j*W].
      size_t i = 0;
      while (i < obs.size()) {
        // Epoch of obs[i]; time t belongs to epoch ceil(t / W).
        int64_t epoch = (obs[i].time + window - 1) / window;
        if (obs[i].time <= 0) epoch = 0;
        SimTime epoch_end = epoch * window;
        SimTime epoch_start = epoch_end - window;
        bucket_users.clear();
        size_t j = i;
        while (j < obs.size() && obs[j].time > epoch_start &&
               obs[j].time <= epoch_end) {
          bucket_users.push_back(obs[j].uid);
          ++j;
        }
        // Distinct users only: N_{j,s} counts users, not log rows.
        std::sort(bucket_users.begin(), bucket_users.end());
        bucket_users.erase(
            std::unique(bucket_users.begin(), bucket_users.end()),
            bucket_users.end());
        ConnectBucket(edge_type, bucket_users, epoch_end);
        i = j;
      }
    }
  }
}

size_t BnBuilder::RunWindowJob(const storage::LogStore& store,
                               SimTime window, SimTime epoch_end) {
  TURBO_CHECK_GT(window, 0);
  const SimTime epoch_start = epoch_end - window;
  auto active = store.ActiveValues(epoch_start + 1, epoch_end);
  std::vector<UserId> bucket_users;
  size_t updates = 0;
  for (const auto& key : active) {
    const int edge_type = EdgeTypeIndex(key.type);
    if (edge_type < 0) continue;
    auto obs = store.QueryValue(key.type, key.value, epoch_start + 1,
                                epoch_end);
    bucket_users.clear();
    for (const auto& o : obs) bucket_users.push_back(o.uid);
    std::sort(bucket_users.begin(), bucket_users.end());
    bucket_users.erase(
        std::unique(bucket_users.begin(), bucket_users.end()),
        bucket_users.end());
    updates += ConnectBucket(edge_type, bucket_users, epoch_end);
  }
  return updates;
}

size_t BnBuilder::ExpireOld(SimTime now) {
  return edges_->ExpireBefore(now - config_.edge_ttl);
}

}  // namespace turbo::bn
