#include "bn/builder.h"

#include <algorithm>

#include "util/time_util.h"

namespace turbo::bn {

std::vector<SimTime> BnConfig::DefaultWindows() {
  std::vector<SimTime> w;
  for (int h = 1; h <= 12; ++h) w.push_back(h * kHour);
  w.push_back(kDay);
  return w;
}

BnBuilder::BnBuilder(BnConfig config, storage::EdgeStore* edges)
    : config_(std::move(config)), edges_(edges) {
  TURBO_CHECK(edges_ != nullptr);
  TURBO_CHECK(!config_.windows.empty());
  for (SimTime w : config_.windows) TURBO_CHECK_GT(w, 0);
  TURBO_CHECK(std::is_sorted(config_.windows.begin(),
                             config_.windows.end()));
  TURBO_CHECK_GT(config_.window_job_shards, 0);
  reuse_eligible_ = config_.reuse_base_buckets;
  for (SimTime w : config_.windows) {
    if (w % base_window() != 0) reuse_eligible_ = false;
  }
}

void BnBuilder::SetMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  shard_ms_ = metrics->GetHistogram("bn_window_shard_ms");
  shard_keys_ = metrics->GetHistogram(
      "bn_window_shard_keys", obs::Histogram::LinearBuckets(0.0, 64.0, 65));
  merge_ms_ = metrics->GetHistogram("bn_window_merge_ms");
  cache_merge_jobs_ =
      metrics->GetCounter("bn_window_cache_merge_jobs_total");
  scan_jobs_ = metrics->GetCounter("bn_window_scan_jobs_total");
  cache_epochs_g_ = metrics->GetGauge("bn_bucket_cache_epochs");
  cache_bytes_g_ = metrics->GetGauge("bn_bucket_cache_bytes");
  UpdateCacheGauges();
}

void BnBuilder::UpdateCacheGauges() {
  if (cache_epochs_g_ != nullptr) {
    cache_epochs_g_->Set(static_cast<double>(base_buckets_.size()));
  }
  if (cache_bytes_g_ != nullptr) {
    cache_bytes_g_->Set(static_cast<double>(cache_bytes_));
  }
}

void BnBuilder::AppendBucketDeltas(int edge_type,
                                   const std::vector<UserId>& users,
                                   const ValueKey& key, SimTime window,
                                   SimTime epoch_end,
                                   std::vector<EdgeDelta>* out) const {
  const size_t n = users.size();
  if (n < 2) return;
  const float w = config_.inverse_weighting
                      ? 1.0f / static_cast<float>(n)
                      : 1.0f;
  if (n <= static_cast<size_t>(config_.max_bucket_users)) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        out->push_back({edge_type, users[i], users[j], w});
      }
    }
    return;
  }
  // Pathological bucket: connect a random subset, preserving the true
  // 1/N. The stream is seeded from the bucket's own coordinates, so the
  // drawn subset is a pure function of (key, window, epoch) — identical
  // no matter which shard, thread, or engine processes the bucket.
  uint64_t seed = MixSeeds(config_.bucket_sample_seed, key.value);
  seed = MixSeeds(seed, static_cast<uint64_t>(key.type));
  seed = MixSeeds(seed, static_cast<uint64_t>(window));
  seed = MixSeeds(seed, static_cast<uint64_t>(epoch_end));
  Rng rng(seed);
  auto idx = rng.SampleWithoutReplacement(
      n, static_cast<size_t>(config_.max_bucket_users));
  for (size_t i = 0; i < idx.size(); ++i) {
    for (size_t j = i + 1; j < idx.size(); ++j) {
      out->push_back({edge_type, users[idx[i]], users[idx[j]], w});
    }
  }
}

bool BnBuilder::HaveCachedRange(SimTime epoch_start,
                                SimTime epoch_end) const {
  for (SimTime e = epoch_start + base_window(); e <= epoch_end;
       e += base_window()) {
    if (!base_buckets_.contains(e)) return false;
  }
  return true;
}

void BnBuilder::MergeCachedUsers(const ValueKey& key, SimTime epoch_start,
                                 SimTime epoch_end,
                                 std::vector<UserId>* users) const {
  for (SimTime e = epoch_start + base_window(); e <= epoch_end;
       e += base_window()) {
    const auto& epoch_buckets = base_buckets_.at(e);
    auto it = epoch_buckets.find(key);
    if (it == epoch_buckets.end()) continue;
    users->insert(users->end(), it->second.begin(), it->second.end());
  }
  std::sort(users->begin(), users->end());
  users->erase(std::unique(users->begin(), users->end()), users->end());
}

size_t BnBuilder::RunWindowJob(const storage::LogStore& store,
                               SimTime window, SimTime epoch_end) {
  TURBO_CHECK_GT(window, 0);
  const SimTime epoch_start = epoch_end - window;
  // Epoch 1 covers [0, window]: include the origin in the query range.
  const SimTime lo = epoch_start > 0 ? epoch_start + 1 : 0;
  auto active = store.ActiveValues(lo, epoch_end);
  // Only edge-building keys this shard owns, in canonical order:
  // ActiveValues walks a hash set, and the shard contents must not
  // depend on its iteration order for the applied delta sequence to be
  // an engine invariant. The ownership filter is what makes a value
  // replicated to two cluster shards edge-build exactly once; under the
  // default single-shard topology it accepts every key.
  active.erase(std::remove_if(active.begin(), active.end(),
                              [this](const ValueKey& k) {
                                return EdgeTypeIndex(k.type) < 0 ||
                                       !OwnsValue(config_.topology,
                                                  k.type, k.value);
                              }),
               active.end());
  std::sort(active.begin(), active.end(), [](const ValueKey& a,
                                             const ValueKey& b) {
    return a.type != b.type ? a.type < b.type : a.value < b.value;
  });

  const bool is_base = reuse_eligible_ && window == base_window();
  const bool from_cache = reuse_eligible_ && window != base_window() &&
                          HaveCachedRange(epoch_start, epoch_end);
  const size_t num_shards =
      std::min<size_t>(config_.window_job_shards,
                       std::max<size_t>(1, active.size()));
  std::vector<ShardState> shards(num_shards);
  for (const auto& key : active) {
    shards[ValueKeyHash()(key) % num_shards].keys.push_back(key);
  }

  auto run_shard = [&](size_t s) {
    Stopwatch sw;
    ShardState& shard = shards[s];
    std::vector<UserId> users;
    for (const ValueKey& key : shard.keys) {
      users.clear();
      if (from_cache) {
        MergeCachedUsers(key, epoch_start, epoch_end, &users);
      } else {
        auto obs = store.QueryValue(key.type, key.value, lo, epoch_end);
        users.reserve(obs.size());
        for (const auto& o : obs) users.push_back(o.uid);
        // Distinct users only: N_{j,s} counts users, not log rows.
        std::sort(users.begin(), users.end());
        users.erase(std::unique(users.begin(), users.end()), users.end());
      }
      if (is_base) shard.buckets.emplace_back(key, users);
      AppendBucketDeltas(EdgeTypeIndex(key.type), users, key, window,
                         epoch_end, &shard.deltas);
    }
    shard.millis = sw.ElapsedMillis();
  };
  if (pool_ != nullptr && num_shards > 1) {
    pool_->ParallelFor(num_shards, 1, [&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) run_shard(s);
    });
  } else {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s);
  }

  // Merge in shard-index order: together with the per-shard sorted key
  // order and the exact double accumulation in EdgeStore, the final
  // weights are bit-identical for any thread count.
  Stopwatch merge_sw;
  size_t updates = 0;
  for (ShardState& shard : shards) {
    for (const EdgeDelta& d : shard.deltas) {
      edges_->AddWeight(d.edge_type, d.u, d.v, d.w, epoch_end);
      // Both endpoints' adjacency rows changed — the churn contract the
      // incremental snapshot / delta checkpoint consumers rely on.
      pending_churn_.Touch(d.edge_type, d.u);
      pending_churn_.Touch(d.edge_type, d.v);
    }
    updates += shard.deltas.size();
    if (shard_ms_ != nullptr) {
      shard_ms_->Observe(shard.millis);
      shard_keys_->Observe(static_cast<double>(shard.keys.size()));
    }
  }
  if (is_base) {
    // Record the epoch even when empty — completeness is what the merge
    // path's HaveCachedRange checks.
    auto& slot = base_buckets_[epoch_end];
    for (ShardState& shard : shards) {
      for (auto& [key, users] : shard.buckets) {
        cache_bytes_ += BucketBytes(users);
        slot.emplace(key, std::move(users));
      }
    }
  }
  if (merge_ms_ != nullptr) {
    merge_ms_->Observe(merge_sw.ElapsedMillis());
    (from_cache ? cache_merge_jobs_ : scan_jobs_)->Increment();
    UpdateCacheGauges();
  }
  return updates;
}

void BnBuilder::BuildFromLogs(const BehaviorLogList& logs) {
  // Replay the live schedule offline: index the logs once, then run every
  // (window, epoch) job in global epoch-time order — exactly the order a
  // BnServer advancing to the end of the timeline executes, so streamed
  // and offline construction produce bit-identical weights.
  storage::LogStore store;  // free-cost medium: no modeled DB charge
  SimTime max_t = 0;
  for (const auto& log : logs) {
    TURBO_CHECK_MSG(log.time >= 0, "negative timestamp "
                                       << log.time << " for uid "
                                       << log.uid
                                       << "; logs must use t >= 0");
    if (EdgeTypeIndex(log.type) < 0) continue;
    store.Append(log);
    max_t = std::max(max_t, log.time);
  }
  base_buckets_.clear();
  cache_bytes_ = 0;
  if (store.size() == 0) return;

  // Every window runs to the latest epoch boundary any window needs:
  // trailing jobs past the data are empty (and nearly free), but their
  // base-bucket entries keep the merge path complete for the larger
  // windows' final epochs.
  const size_t num_windows = config_.windows.size();
  SimTime cap = 0;
  for (SimTime w : config_.windows) {
    cap = std::max(cap, EpochIndex(max_t, w) * w);
  }
  std::vector<SimTime> last_end(num_windows, 0);
  for (;;) {
    // Earliest due job; ties go to the smaller window so base-window
    // buckets are cached before the jobs that merge them.
    int best = -1;
    SimTime best_end = 0;
    for (size_t i = 0; i < num_windows; ++i) {
      const SimTime next = last_end[i] + config_.windows[i];
      if (next > cap) continue;
      if (best < 0 || next < best_end) {
        best = static_cast<int>(i);
        best_end = next;
      }
    }
    if (best < 0) break;
    RunWindowJob(store, config_.windows[best], best_end);
    last_end[best] = best_end;
    EvictCachedBuckets(*std::min_element(last_end.begin(), last_end.end()));
  }
  base_buckets_.clear();
  cache_bytes_ = 0;
  // Offline builds have no incremental consumers; drop the churn the
  // replayed jobs recorded instead of handing the whole graph to the
  // next TakeChurn() caller.
  pending_churn_.Clear();
  UpdateCacheGauges();
}

void BnBuilder::SerializeCache(storage::BinaryWriter* w) const {
  SerializeCacheSince(0, w);
}

void BnBuilder::SerializeCacheSince(SimTime after,
                                    storage::BinaryWriter* w) const {
  // Epoch ends are positive and the map is ordered, so `after == 0`
  // degenerates to the full cache and the wire format stays identical.
  const auto begin = base_buckets_.upper_bound(after);
  w->U64(static_cast<uint64_t>(std::distance(begin, base_buckets_.end())));
  for (auto eit = begin; eit != base_buckets_.end(); ++eit) {
    const auto& [epoch_end, buckets] = *eit;
    w->I64(epoch_end);
    w->U64(buckets.size());
    // Canonical key order: the map is unordered and equal caches must
    // serialize to equal bytes.
    std::vector<ValueKey> keys;
    keys.reserve(buckets.size());
    for (const auto& [key, users] : buckets) keys.push_back(key);
    std::sort(keys.begin(), keys.end(),
              [](const ValueKey& a, const ValueKey& b) {
                return a.type != b.type ? a.type < b.type
                                        : a.value < b.value;
              });
    for (const ValueKey& key : keys) {
      const auto& users = buckets.at(key);
      w->U8(static_cast<uint8_t>(key.type));
      w->U64(key.value);
      w->U64(users.size());
      w->Bytes(users.data(), users.size() * sizeof(UserId));
    }
  }
}

Status BnBuilder::DeserializeCache(storage::BinaryReader* r) {
  base_buckets_.clear();
  cache_bytes_ = 0;
  return DeserializeCacheDelta(r);
}

Status BnBuilder::DeserializeCacheDelta(storage::BinaryReader* r) {
  const auto fail = [this] {
    base_buckets_.clear();
    cache_bytes_ = 0;
    UpdateCacheGauges();
    return Status::InvalidArgument("truncated bucket-cache section");
  };
  const uint64_t epochs = r->U64();
  for (uint64_t i = 0; i < epochs; ++i) {
    const SimTime epoch_end = r->I64();
    const uint64_t num_keys = r->U64();
    std::unordered_map<ValueKey, std::vector<UserId>, ValueKeyHash> slot;
    for (uint64_t k = 0; k < num_keys; ++k) {
      ValueKey key;
      key.type = static_cast<BehaviorType>(r->U8());
      key.value = r->U64();
      const uint64_t n = r->U64();
      if (!r->ok() || n > r->remaining() / sizeof(UserId)) {
        return fail();
      }
      std::vector<UserId> users(n);
      r->Bytes(users.data(), n * sizeof(UserId));
      slot.emplace(key, std::move(users));
    }
    // Replace the epoch wholesale (on the delta path it is always new —
    // epochs are only ever added above the previous maximum).
    auto it = base_buckets_.find(epoch_end);
    if (it != base_buckets_.end()) {
      for (const auto& [key, users] : it->second) {
        cache_bytes_ -= BucketBytes(users);
      }
      base_buckets_.erase(it);
    }
    for (const auto& [key, users] : slot) cache_bytes_ += BucketBytes(users);
    base_buckets_.emplace(epoch_end, std::move(slot));
  }
  if (!r->ok()) {
    return fail();
  }
  UpdateCacheGauges();
  return Status::OK();
}

size_t BnBuilder::ExpireOld(SimTime now) {
  return edges_->ExpireBefore(now - config_.edge_ttl, &pending_churn_);
}

storage::EdgeChurn BnBuilder::TakeChurn() {
  storage::EdgeChurn out = std::move(pending_churn_);
  pending_churn_.Clear();
  return out;
}

void BnBuilder::EvictCachedBuckets(SimTime upto) {
  const auto end = base_buckets_.upper_bound(upto);
  for (auto it = base_buckets_.begin(); it != end; ++it) {
    for (const auto& [key, users] : it->second) {
      cache_bytes_ -= BucketBytes(users);
    }
  }
  base_buckets_.erase(base_buckets_.begin(), end);
  UpdateCacheGauges();
}

}  // namespace turbo::bn
