#include "bn/snapshot.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

namespace turbo::bn {

namespace {

/// Leading byte of the serialized snapshot payload. Version 2 added the
/// row-group layout's weighted-degree doubles; older payloads are
/// rejected (checkpoints are not forward-migrated).
constexpr uint8_t kSnapshotFormat = 2;

/// Runs fn(begin, end) over contiguous chunks of [0, n) on `num_threads`
/// threads (inline when one thread suffices). The build passes below are
/// embarrassingly parallel over nodes: every (type, node) row is written
/// by exactly one chunk and the EdgeStore is only read.
template <typename Fn>
void ParallelOverNodes(int num_threads, int n, const Fn& fn) {
  if (num_threads <= 1 || n < 2 * num_threads) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const int chunk = (n + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const int begin = t * chunk;
    const int end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

std::shared_ptr<const BnSnapshot> BnSnapshot::Build(
    const storage::EdgeStore& store, int num_nodes,
    const SnapshotOptions& options, uint64_t version) {
  TURBO_CHECK_GT(num_nodes, 0);
  auto snap = std::shared_ptr<BnSnapshot>(new BnSnapshot());
  snap->num_nodes_ = num_nodes;
  snap->version_ = version;
  snap->normalized_ = options.normalize;
  const int threads = ResolveThreads(options.num_threads);
  const size_t num_groups = NumGroups(num_nodes);

  // Per-row counts and weighted degrees (the latter feed the fused
  // normalization and are retained per group for ApplyDeltas).
  std::array<std::vector<size_t>, kNumEdgeTypes> counts;
  std::array<std::vector<double>, kNumEdgeTypes> wdeg;

  // Pass 1 — degrees.
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    counts[t].assign(num_nodes, 0);
    if (options.normalize) wdeg[t].assign(num_nodes, 0.0);
  }
  ParallelOverNodes(threads, num_nodes, [&](int begin, int end) {
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      for (int u = begin; u < end; ++u) {
        const auto& nbrs = store.Neighbors(t, static_cast<UserId>(u));
        counts[t][u] = nbrs.size();
        if (options.normalize) {
          double s = 0.0;
          for (const auto& [v, e] : nbrs) s += e.weight;
          wdeg[t][u] = s;
        }
      }
    }
  });

  // Group scaffolding: local prefix sums, pre-sized arrays, wdeg slices.
  // Kept mutable (raw pointers) until the fill pass is done.
  std::array<std::vector<RowGroup*>, kNumEdgeTypes> mutable_groups;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TypeCsr& csr = snap->csr_[t];
    csr.groups.resize(num_groups);
    mutable_groups[t].resize(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const size_t base = g << kRowGroupShift;
      const size_t rows = GroupRows(num_nodes, g);
      auto rg = std::make_shared<RowGroup>();
      rg->offsets.resize(rows + 1);
      rg->offsets[0] = 0;
      for (size_t i = 0; i < rows; ++i) {
        rg->offsets[i + 1] = rg->offsets[i] + counts[t][base + i];
      }
      const size_t total = rg->offsets[rows];
      rg->neighbor.resize(total);
      rg->weight.resize(total);
      if (options.normalize) {
        rg->wdeg.assign(wdeg[t].begin() + base, wdeg[t].begin() + base + rows);
      }
      csr.entries += total;
      mutable_groups[t][g] = rg.get();
      csr.groups[g] = std::move(rg);
    }
  }

  // Pass 2 — fill: each row is sorted by neighbor id and written into
  // its pre-sized group slice; normalization is applied in place of a
  // second copy. Rows are disjoint, so chunks may straddle groups.
  ParallelOverNodes(threads, num_nodes, [&](int begin, int end) {
    std::vector<std::pair<UserId, float>> row;
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      for (int u = begin; u < end; ++u) {
        const auto& nbrs = store.Neighbors(t, static_cast<UserId>(u));
        RowGroup& rg =
            *mutable_groups[t][static_cast<size_t>(u) >> kRowGroupShift];
        row.clear();
        row.reserve(nbrs.size());
        for (const auto& [v, e] : nbrs) {
          TURBO_CHECK_LT(v, static_cast<UserId>(num_nodes));
          row.push_back({v, static_cast<float>(e.weight)});
        }
        std::sort(row.begin(), row.end());
        size_t k = rg.offsets[static_cast<size_t>(u) & (kRowGroupSize - 1)];
        for (const auto& [v, w] : row) {
          rg.neighbor[k] = v;
          float out = w;
          if (options.normalize) {
            const double d = wdeg[t][u] * wdeg[t][v];
            out = d > 0.0 ? static_cast<float>(w / std::sqrt(d)) : 0.0f;
          }
          rg.weight[k] = out;
          ++k;
        }
      }
    }
  });
  return snap;
}

std::shared_ptr<const BnSnapshot> BnSnapshot::ApplyDeltas(
    const std::shared_ptr<const BnSnapshot>& prev,
    const storage::EdgeStore& store, const storage::EdgeChurn& churn,
    const SnapshotOptions& options, uint64_t version, ApplyStats* stats) {
  TURBO_CHECK(prev != nullptr);
  TURBO_CHECK_EQ(prev->normalized_, options.normalize);
  const int num_nodes = prev->num_nodes_;
  const int threads = ResolveThreads(options.num_threads);
  const size_t num_groups = NumGroups(num_nodes);
  auto snap = std::shared_ptr<BnSnapshot>(new BnSnapshot());
  snap->num_nodes_ = num_nodes;
  snap->version_ = version;
  snap->normalized_ = prev->normalized_;

  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const TypeCsr& in = prev->csr_[t];
    TypeCsr& out = snap->csr_[t];
    // Start fully shared; dirty groups are replaced below.
    out.groups = in.groups;
    out.entries = in.entries;
    const auto& churned = churn.nodes[t];
    if (churned.empty()) {
      if (stats != nullptr) stats->shared_groups += num_groups;
      continue;
    }

    // Recompute set: the churned rows themselves plus — under
    // normalization — their current neighbors, whose stored floats
    // embed the churned nodes' weighted degrees. (A row outside this
    // set has unchanged raw weights AND unchanged endpoint degrees, so
    // its floats are unchanged; see the expiry argument in DESIGN.md.)
    // Both the set and the degree table are dense arrays, not hash
    // containers: the rebuild loop below probes them once per row and
    // once per edge, so per-probe cost must match Build()'s flat
    // indexing or the patch loses its asymptotic win to constant
    // factors. The O(num_nodes) doubles copy is memcpy-speed and
    // amortizes over every probe.
    std::vector<double> wdeg_all;
    if (options.normalize) {
      wdeg_all.resize(static_cast<size_t>(num_nodes));
      for (size_t g = 0; g < num_groups; ++g) {
        const RowGroup& rg = *in.groups[g];
        std::copy(rg.wdeg.begin(), rg.wdeg.end(),
                  wdeg_all.begin() + (g << kRowGroupShift));
      }
    }
    std::vector<uint8_t> rebuild(static_cast<size_t>(num_nodes), 0);
    size_t touched = 0;
    std::vector<uint32_t> dirty;
    const auto mark = [&](UserId u) {
      TURBO_CHECK_LT(u, static_cast<UserId>(num_nodes));
      if (rebuild[u]) return;
      rebuild[u] = 1;
      ++touched;
      const auto g = static_cast<uint32_t>(u >> kRowGroupShift);
      if (dirty.empty() || dirty.back() != g) dirty.push_back(g);
    };
    for (UserId u : churned) {
      mark(u);
      if (options.normalize) {
        // The churned nodes' new exact degrees overwrite the prev-era
        // table first so row rebuilds can mix new and prev degrees
        // without ordering hazards.
        wdeg_all[u] = store.WeightedDegree(t, u);
        for (const auto& [v, e] : store.Neighbors(t, u)) mark(v);
      }
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    if (stats != nullptr) {
      stats->touched_rows += touched;
      stats->rebuilt_groups += dirty.size();
      stats->shared_groups += num_groups - dirty.size();
    }

    // Rebuild dirty groups in parallel: untouched rows are copied
    // byte-wise from prev, touched rows are rebuilt from the store with
    // the exact same gather/sort/normalize sequence as Build().
    std::vector<int64_t> entry_delta(dirty.size(), 0);
    ParallelOverNodes(threads, static_cast<int>(dirty.size()),
                      [&](int dbegin, int dend) {
      std::vector<std::pair<UserId, float>> row;
      for (int di = dbegin; di < dend; ++di) {
        const size_t g = dirty[di];
        const RowGroup& old = *in.groups[g];
        const size_t base = g << kRowGroupShift;
        const size_t rows = GroupRows(num_nodes, g);
        auto rg = std::make_shared<RowGroup>();
        rg->offsets.resize(rows + 1);
        rg->offsets[0] = 0;
        for (size_t i = 0; i < rows; ++i) {
          const UserId u = static_cast<UserId>(base + i);
          const size_t n = rebuild[u] != 0
                               ? store.Neighbors(t, u).size()
                               : old.offsets[i + 1] - old.offsets[i];
          rg->offsets[i + 1] = rg->offsets[i] + n;
        }
        const size_t total = rg->offsets[rows];
        rg->neighbor.resize(total);
        rg->weight.resize(total);
        if (options.normalize) {
          // wdeg_all already overlays the churned nodes' new degrees on
          // the prev-era table, so the group slice is just a copy.
          rg->wdeg.assign(wdeg_all.begin() + base,
                          wdeg_all.begin() + base + rows);
        }
        for (size_t i = 0; i < rows; ++i) {
          const UserId u = static_cast<UserId>(base + i);
          size_t k = rg->offsets[i];
          if (rebuild[u] == 0) {
            const size_t old_begin = old.offsets[i];
            const size_t n = old.offsets[i + 1] - old_begin;
            std::copy_n(old.neighbor.begin() + old_begin, n,
                        rg->neighbor.begin() + k);
            std::copy_n(old.weight.begin() + old_begin, n,
                        rg->weight.begin() + k);
            continue;
          }
          const auto& nbrs = store.Neighbors(t, u);
          row.clear();
          row.reserve(nbrs.size());
          for (const auto& [v, e] : nbrs) {
            TURBO_CHECK_LT(v, static_cast<UserId>(num_nodes));
            row.push_back({v, static_cast<float>(e.weight)});
          }
          std::sort(row.begin(), row.end());
          for (const auto& [v, w] : row) {
            rg->neighbor[k] = v;
            float out = w;
            if (options.normalize) {
              const double d = wdeg_all[u] * wdeg_all[v];
              out = d > 0.0 ? static_cast<float>(w / std::sqrt(d)) : 0.0f;
            }
            rg->weight[k] = out;
            ++k;
          }
        }
        entry_delta[di] = static_cast<int64_t>(total) -
                          static_cast<int64_t>(old.offsets.back());
        out.groups[g] = std::move(rg);
      }
    });
    int64_t delta = 0;
    for (int64_t d : entry_delta) delta += d;
    out.entries = static_cast<size_t>(static_cast<int64_t>(out.entries) +
                                      delta);
  }
  return snap;
}

void BnSnapshot::Serialize(storage::BinaryWriter* w) const {
  w->U8(kSnapshotFormat);
  w->U64(version_);
  w->I64(num_nodes_);
  w->U8(normalized_ ? 1 : 0);
  const size_t num_groups = NumGroups(num_nodes_);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const TypeCsr& csr = csr_[t];
    w->U64(csr.entries);
    // Flattened global offsets: group-local offsets plus the running base.
    uint64_t base = 0;
    w->U64(0);
    for (size_t g = 0; g < num_groups; ++g) {
      const RowGroup& rg = *csr.groups[g];
      for (size_t i = 1; i < rg.offsets.size(); ++i) {
        w->U64(base + rg.offsets[i]);
      }
      base += rg.offsets.back();
    }
    for (size_t g = 0; g < num_groups; ++g) {
      const RowGroup& rg = *csr.groups[g];
      w->Bytes(rg.neighbor.data(), rg.neighbor.size() * sizeof(UserId));
    }
    for (size_t g = 0; g < num_groups; ++g) {
      const RowGroup& rg = *csr.groups[g];
      w->Bytes(rg.weight.data(), rg.weight.size() * sizeof(float));
    }
    if (normalized_) {
      for (size_t g = 0; g < num_groups; ++g) {
        const RowGroup& rg = *csr.groups[g];
        w->Bytes(rg.wdeg.data(), rg.wdeg.size() * sizeof(double));
      }
    }
  }
}

Result<std::shared_ptr<const BnSnapshot>> BnSnapshot::Deserialize(
    storage::BinaryReader* r) {
  if (r->U8() != kSnapshotFormat) {
    return Status::InvalidArgument("unsupported snapshot format");
  }
  auto snap = std::shared_ptr<BnSnapshot>(new BnSnapshot());
  snap->version_ = r->U64();
  snap->num_nodes_ = static_cast<int>(r->I64());
  snap->normalized_ = r->U8() != 0;
  if (!r->ok() || snap->num_nodes_ <= 0) {
    return Status::InvalidArgument("corrupt snapshot header");
  }
  const size_t rows = static_cast<size_t>(snap->num_nodes_);
  const size_t num_groups = NumGroups(snap->num_nodes_);
  // Size claims must fit the remaining payload before any resize — a
  // corrupt length would otherwise turn into a huge allocation.
  if (rows + 1 > r->remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument("corrupt snapshot node count");
  }
  std::vector<uint64_t> offsets(rows + 1);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TypeCsr& csr = snap->csr_[t];
    const uint64_t entries = r->U64();
    if (entries > r->remaining() / (sizeof(UserId) + sizeof(float))) {
      return Status::InvalidArgument("corrupt snapshot entry count");
    }
    for (size_t i = 0; i <= rows; ++i) offsets[i] = r->U64();
    if (!r->ok() || offsets[0] != 0 || offsets[rows] != entries ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      return Status::InvalidArgument("corrupt snapshot CSR offsets");
    }
    csr.entries = entries;
    // Re-segment into row groups: local offsets, then contiguous array
    // slices carved out of the flattened neighbor / weight / wdeg blocks.
    std::vector<std::shared_ptr<RowGroup>> groups(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const size_t base = g << kRowGroupShift;
      const size_t grows = GroupRows(snap->num_nodes_, g);
      auto rg = std::make_shared<RowGroup>();
      rg->offsets.resize(grows + 1);
      for (size_t i = 0; i <= grows; ++i) {
        rg->offsets[i] = offsets[base + i] - offsets[base];
      }
      groups[g] = std::move(rg);
    }
    for (auto& rg : groups) {
      rg->neighbor.resize(rg->offsets.back());
      r->Bytes(rg->neighbor.data(), rg->neighbor.size() * sizeof(UserId));
    }
    for (auto& rg : groups) {
      rg->weight.resize(rg->offsets.back());
      r->Bytes(rg->weight.data(), rg->weight.size() * sizeof(float));
    }
    if (snap->normalized_) {
      for (auto& rg : groups) {
        rg->wdeg.resize(rg->offsets.size() - 1);
        r->Bytes(rg->wdeg.data(), rg->wdeg.size() * sizeof(double));
      }
    }
    csr.groups.assign(groups.begin(), groups.end());
    if (!r->ok()) {
      return Status::InvalidArgument("truncated snapshot CSR arrays");
    }
    for (const auto& grp : csr.groups) {
      for (UserId v : grp->neighbor) {
        if (v >= static_cast<UserId>(snap->num_nodes_)) {
          return Status::InvalidArgument(
              "snapshot neighbor id out of range");
        }
      }
      for (double d : grp->wdeg) {
        if (!(d >= 0.0)) {
          return Status::InvalidArgument(
              "snapshot weighted degree out of range");
        }
      }
    }
  }
  return std::shared_ptr<const BnSnapshot>(std::move(snap));
}

void BnSnapshot::SerializeDiff(const BnSnapshot& base,
                               storage::BinaryWriter* w) const {
  TURBO_CHECK_EQ(num_nodes_, base.num_nodes_);
  TURBO_CHECK_EQ(normalized_, base.normalized_);
  w->U8(kSnapshotFormat);
  w->U64(version_);
  w->I64(num_nodes_);
  w->U8(normalized_ ? 1 : 0);
  const size_t num_groups = NumGroups(num_nodes_);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const TypeCsr& csr = csr_[t];
    w->U64(csr.entries);
    // A group not pointer-shared with the base is emitted whole; with
    // incremental publishes in between, pointer inequality == "some row
    // in it was rebuilt", so the diff is O(churned groups). (A group
    // rebuilt to identical bytes would be a harmless false positive.)
    uint32_t changed = 0;
    for (size_t g = 0; g < num_groups; ++g) {
      if (csr.groups[g] != base.csr_[t].groups[g]) ++changed;
    }
    w->U32(changed);
    for (size_t g = 0; g < num_groups; ++g) {
      if (csr.groups[g] == base.csr_[t].groups[g]) continue;
      const RowGroup& rg = *csr.groups[g];
      w->U32(static_cast<uint32_t>(g));
      w->U64(rg.offsets.back());
      for (size_t i = 1; i < rg.offsets.size(); ++i) w->U64(rg.offsets[i]);
      w->Bytes(rg.neighbor.data(), rg.neighbor.size() * sizeof(UserId));
      w->Bytes(rg.weight.data(), rg.weight.size() * sizeof(float));
      if (normalized_) {
        w->Bytes(rg.wdeg.data(), rg.wdeg.size() * sizeof(double));
      }
    }
  }
}

Result<std::shared_ptr<const BnSnapshot>> BnSnapshot::DeserializePatched(
    const std::shared_ptr<const BnSnapshot>& base, storage::BinaryReader* r) {
  TURBO_CHECK(base != nullptr);
  if (r->U8() != kSnapshotFormat) {
    return Status::InvalidArgument("unsupported snapshot format");
  }
  auto snap = std::shared_ptr<BnSnapshot>(new BnSnapshot());
  snap->version_ = r->U64();
  snap->num_nodes_ = static_cast<int>(r->I64());
  snap->normalized_ = r->U8() != 0;
  if (!r->ok() || snap->num_nodes_ != base->num_nodes_ ||
      snap->normalized_ != base->normalized_) {
    return Status::InvalidArgument("snapshot diff does not match its base");
  }
  const size_t num_groups = NumGroups(snap->num_nodes_);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TypeCsr& csr = snap->csr_[t];
    csr.groups = base->csr_[t].groups;
    const uint64_t entries = r->U64();
    const uint32_t changed = r->U32();
    if (!r->ok() || changed > num_groups) {
      return Status::InvalidArgument("corrupt snapshot diff header");
    }
    int64_t prev_g = -1;
    for (uint32_t c = 0; c < changed; ++c) {
      const uint32_t g = r->U32();
      const uint64_t gentries = r->U64();
      if (!r->ok() || g >= num_groups || static_cast<int64_t>(g) <= prev_g) {
        return Status::InvalidArgument("corrupt snapshot diff group index");
      }
      prev_g = g;
      if (gentries > r->remaining() / (sizeof(UserId) + sizeof(float))) {
        return Status::InvalidArgument("corrupt snapshot diff group size");
      }
      const size_t grows = GroupRows(snap->num_nodes_, g);
      auto rg = std::make_shared<RowGroup>();
      rg->offsets.resize(grows + 1);
      rg->offsets[0] = 0;
      for (size_t i = 1; i <= grows; ++i) rg->offsets[i] = r->U64();
      if (!r->ok() || rg->offsets[grows] != gentries ||
          !std::is_sorted(rg->offsets.begin(), rg->offsets.end())) {
        return Status::InvalidArgument("corrupt snapshot diff offsets");
      }
      rg->neighbor.resize(gentries);
      rg->weight.resize(gentries);
      r->Bytes(rg->neighbor.data(), gentries * sizeof(UserId));
      r->Bytes(rg->weight.data(), gentries * sizeof(float));
      if (snap->normalized_) {
        rg->wdeg.resize(grows);
        r->Bytes(rg->wdeg.data(), grows * sizeof(double));
      }
      if (!r->ok()) {
        return Status::InvalidArgument("truncated snapshot diff group");
      }
      for (UserId v : rg->neighbor) {
        if (v >= static_cast<UserId>(snap->num_nodes_)) {
          return Status::InvalidArgument(
              "snapshot diff neighbor id out of range");
        }
      }
      for (double d : rg->wdeg) {
        if (!(d >= 0.0)) {
          return Status::InvalidArgument(
              "snapshot diff weighted degree out of range");
        }
      }
      csr.groups[g] = std::move(rg);
    }
    // The declared entry total must match what the patched groups sum
    // to — a mismatch means the diff was applied over the wrong base.
    size_t sum = 0;
    for (const auto& grp : csr.groups) sum += grp->offsets.back();
    if (sum != entries) {
      return Status::InvalidArgument("snapshot diff entry total mismatch");
    }
    csr.entries = entries;
  }
  return std::shared_ptr<const BnSnapshot>(std::move(snap));
}

double BnSnapshot::WeightedDegree(int edge_type, UserId u) const {
  const NeighborSpan span = Neighbors(edge_type, u);
  double s = 0.0;
  for (size_t i = 0; i < span.size(); ++i) s += span.weight(i);
  return s;
}

size_t BnSnapshot::TotalEdges() const {
  size_t s = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) s += NumEdges(t);
  return s;
}

size_t BnSnapshot::MemoryBytes() const {
  size_t s = 0;
  for (const TypeCsr& csr : csr_) {
    for (const auto& rg : csr.groups) {
      s += rg->offsets.capacity() * sizeof(size_t);
      s += rg->neighbor.capacity() * sizeof(UserId);
      s += rg->weight.capacity() * sizeof(float);
      s += rg->wdeg.capacity() * sizeof(double);
    }
  }
  return s;
}

size_t BnSnapshot::SharedGroupsWith(const BnSnapshot& other) const {
  size_t shared = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const auto& a = csr_[t].groups;
    const auto& b = other.csr_[t].groups;
    const size_t n = std::min(a.size(), b.size());
    for (size_t g = 0; g < n; ++g) {
      if (a[g] == b[g]) ++shared;
    }
  }
  return shared;
}

double GraphView::WeightedDegree(int edge_type, UserId u) const {
  const NeighborSpan span = Neighbors(edge_type, u);
  double s = 0.0;
  for (size_t i = 0; i < span.size(); ++i) s += span.weight(i);
  return s;
}

std::vector<NeighborEntry> GraphView::UnionNeighbors(UserId u) const {
  TURBO_CHECK(valid());
  std::unordered_map<UserId, float> merged;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const NeighborSpan span = Neighbors(t, u);
    for (size_t i = 0; i < span.size(); ++i) {
      merged[span.id(i)] += span.weight(i);
    }
  }
  std::vector<NeighborEntry> out;
  out.reserve(merged.size());
  for (const auto& [v, w] : merged) out.push_back({v, w});
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) {
              return a.id < b.id;
            });
  return out;
}

double GraphView::UnionWeightedDegree(UserId u) const {
  double s = 0.0;
  for (const auto& e : UnionNeighbors(u)) s += e.weight;
  return s;
}

size_t GraphView::TotalEdges() const {
  size_t s = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) s += NumEdges(t);
  return s;
}

}  // namespace turbo::bn
