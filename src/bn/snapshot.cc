#include "bn/snapshot.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

namespace turbo::bn {

namespace {

/// Runs fn(begin, end) over contiguous chunks of [0, n) on `num_threads`
/// threads (inline when one thread suffices). The build passes below are
/// embarrassingly parallel over nodes: every (type, node) row is written
/// by exactly one chunk and the EdgeStore is only read.
template <typename Fn>
void ParallelOverNodes(int num_threads, int n, const Fn& fn) {
  if (num_threads <= 1 || n < 2 * num_threads) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const int chunk = (n + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const int begin = t * chunk;
    const int end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

std::shared_ptr<const BnSnapshot> BnSnapshot::Build(
    const storage::EdgeStore& store, int num_nodes,
    const SnapshotOptions& options, uint64_t version) {
  TURBO_CHECK_GT(num_nodes, 0);
  auto snap = std::shared_ptr<BnSnapshot>(new BnSnapshot());
  snap->num_nodes_ = num_nodes;
  snap->version_ = version;
  snap->normalized_ = options.normalize;
  const int threads = ResolveThreads(options.num_threads);

  // Weighted degree per (type, node), needed by the fused normalization.
  std::array<std::vector<double>, kNumEdgeTypes> wdeg;

  // Pass 1 — degrees: per-row counts (into the offsets array, shifted by
  // one so the prefix sum below lands begin offsets at offsets[u]) and
  // weighted degrees.
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    snap->csr_[t].offsets.assign(static_cast<size_t>(num_nodes) + 1, 0);
    if (options.normalize) wdeg[t].assign(num_nodes, 0.0);
  }
  ParallelOverNodes(threads, num_nodes, [&](int begin, int end) {
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      TypeCsr& csr = snap->csr_[t];
      for (int u = begin; u < end; ++u) {
        const auto& nbrs = store.Neighbors(t, static_cast<UserId>(u));
        csr.offsets[u + 1] = nbrs.size();
        if (options.normalize) {
          double s = 0.0;
          for (const auto& [v, e] : nbrs) s += e.weight;
          wdeg[t][u] = s;
        }
      }
    }
  });
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TypeCsr& csr = snap->csr_[t];
    for (int u = 0; u < num_nodes; ++u) csr.offsets[u + 1] += csr.offsets[u];
    csr.neighbor.resize(csr.offsets[num_nodes]);
    csr.weight.resize(csr.offsets[num_nodes]);
  }

  // Pass 2 — fill: each row is sorted by neighbor id and written into its
  // pre-sized slice; normalization is applied in place of a second copy.
  ParallelOverNodes(threads, num_nodes, [&](int begin, int end) {
    std::vector<std::pair<UserId, float>> row;
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      TypeCsr& csr = snap->csr_[t];
      for (int u = begin; u < end; ++u) {
        const auto& nbrs = store.Neighbors(t, static_cast<UserId>(u));
        row.clear();
        row.reserve(nbrs.size());
        for (const auto& [v, e] : nbrs) {
          TURBO_CHECK_LT(v, static_cast<UserId>(num_nodes));
          row.push_back({v, static_cast<float>(e.weight)});
        }
        std::sort(row.begin(), row.end());
        size_t k = csr.offsets[u];
        for (const auto& [v, w] : row) {
          csr.neighbor[k] = v;
          float out = w;
          if (options.normalize) {
            const double d = wdeg[t][u] * wdeg[t][v];
            out = d > 0.0 ? static_cast<float>(w / std::sqrt(d)) : 0.0f;
          }
          csr.weight[k] = out;
          ++k;
        }
      }
    }
  });
  return snap;
}

void BnSnapshot::Serialize(storage::BinaryWriter* w) const {
  w->U64(version_);
  w->I64(num_nodes_);
  w->U8(normalized_ ? 1 : 0);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const TypeCsr& csr = csr_[t];
    w->U64(csr.neighbor.size());
    for (size_t off : csr.offsets) w->U64(off);
    w->Bytes(csr.neighbor.data(), csr.neighbor.size() * sizeof(UserId));
    w->Bytes(csr.weight.data(), csr.weight.size() * sizeof(float));
  }
}

Result<std::shared_ptr<const BnSnapshot>> BnSnapshot::Deserialize(
    storage::BinaryReader* r) {
  auto snap = std::shared_ptr<BnSnapshot>(new BnSnapshot());
  snap->version_ = r->U64();
  snap->num_nodes_ = static_cast<int>(r->I64());
  snap->normalized_ = r->U8() != 0;
  if (!r->ok() || snap->num_nodes_ <= 0) {
    return Status::InvalidArgument("corrupt snapshot header");
  }
  const size_t rows = static_cast<size_t>(snap->num_nodes_);
  // Size claims must fit the remaining payload before any resize — a
  // corrupt length would otherwise turn into a huge allocation.
  if (rows + 1 > r->remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument("corrupt snapshot node count");
  }
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TypeCsr& csr = snap->csr_[t];
    const uint64_t entries = r->U64();
    if (entries > r->remaining() / (sizeof(UserId) + sizeof(float))) {
      return Status::InvalidArgument("corrupt snapshot entry count");
    }
    csr.offsets.resize(rows + 1);
    for (size_t i = 0; i <= rows; ++i) csr.offsets[i] = r->U64();
    if (!r->ok() || csr.offsets[0] != 0 || csr.offsets[rows] != entries ||
        !std::is_sorted(csr.offsets.begin(), csr.offsets.end())) {
      return Status::InvalidArgument("corrupt snapshot CSR offsets");
    }
    csr.neighbor.resize(entries);
    csr.weight.resize(entries);
    r->Bytes(csr.neighbor.data(), entries * sizeof(UserId));
    r->Bytes(csr.weight.data(), entries * sizeof(float));
    if (!r->ok()) {
      return Status::InvalidArgument("truncated snapshot CSR arrays");
    }
    for (UserId v : csr.neighbor) {
      if (v >= static_cast<UserId>(snap->num_nodes_)) {
        return Status::InvalidArgument("snapshot neighbor id out of range");
      }
    }
  }
  return std::shared_ptr<const BnSnapshot>(std::move(snap));
}

double BnSnapshot::WeightedDegree(int edge_type, UserId u) const {
  const NeighborSpan span = Neighbors(edge_type, u);
  double s = 0.0;
  for (size_t i = 0; i < span.size(); ++i) s += span.weight(i);
  return s;
}

size_t BnSnapshot::TotalEdges() const {
  size_t s = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) s += NumEdges(t);
  return s;
}

size_t BnSnapshot::MemoryBytes() const {
  size_t s = 0;
  for (const TypeCsr& csr : csr_) {
    s += csr.offsets.capacity() * sizeof(size_t);
    s += csr.neighbor.capacity() * sizeof(UserId);
    s += csr.weight.capacity() * sizeof(float);
  }
  return s;
}

double GraphView::WeightedDegree(int edge_type, UserId u) const {
  const NeighborSpan span = Neighbors(edge_type, u);
  double s = 0.0;
  for (size_t i = 0; i < span.size(); ++i) s += span.weight(i);
  return s;
}

std::vector<NeighborEntry> GraphView::UnionNeighbors(UserId u) const {
  TURBO_CHECK(valid());
  std::unordered_map<UserId, float> merged;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const NeighborSpan span = Neighbors(t, u);
    for (size_t i = 0; i < span.size(); ++i) {
      merged[span.id(i)] += span.weight(i);
    }
  }
  std::vector<NeighborEntry> out;
  out.reserve(merged.size());
  for (const auto& [v, w] : merged) out.push_back({v, w});
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) {
              return a.id < b.id;
            });
  return out;
}

double GraphView::UnionWeightedDegree(UserId u) const {
  double s = 0.0;
  for (const auto& e : UnionNeighbors(u)) s += e.weight;
  return s;
}

size_t GraphView::TotalEdges() const {
  size_t s = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) s += NumEdges(t);
  return s;
}

}  // namespace turbo::bn
