// Ownership hashing for the multi-shard BN cluster (DESIGN.md §14).
//
// Two independent hash partitions govern a cluster:
//  * Users are partitioned by uid — the owner shard holds the user's
//    complete raw-log history (feature reads) and adjacency rows are
//    sampled through it.
//  * Behavior *values* are partitioned by (type, value) — the owner
//    shard is the single place the co-occurrence bucket of that value
//    is turned into edges, so every cross-shard edge is built exactly
//    once no matter how many shards saw logs for the value.
//
// Both partitions use MixSeeds (full-avalanche) so ownership is
// uniform and decorrelated from the ingestion layer's own value
// hashing. The seeds and the shard count are part of the checkpoint
// config fingerprint: state taken under one layout is rejected by
// Recover under another instead of silently building a skewed graph.
#pragma once

#include <cstdint>

#include "storage/behavior_log.h"
#include "util/rng.h"

namespace turbo::bn {

/// One shard's view of the cluster layout. The default (1 shard, index
/// 0) is the standalone-server topology: every user and every value is
/// owned locally and the owner filter is the identity.
struct ShardTopology {
  int shard_count = 1;
  int shard_index = 0;
  /// Seed of the user -> shard partition.
  uint64_t user_seed = 0x7572626f75736572ULL;
  /// Seed of the (type, value) -> shard partition.
  uint64_t value_seed = 0x7572626f76616c75ULL;

  bool operator==(const ShardTopology&) const = default;
};

/// Shard owning user `uid` under `seed` with `shard_count` shards.
inline int OwnerOfUser(UserId uid, uint64_t seed, int shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<int>(MixSeeds(seed, uid) %
                          static_cast<uint64_t>(shard_count));
}

/// Shard owning behavior value (type, value).
inline int OwnerOfValue(BehaviorType type, ValueId value, uint64_t seed,
                        int shard_count) {
  if (shard_count <= 1) return 0;
  const uint64_t key =
      MixSeeds(static_cast<uint64_t>(type) + 1, value);
  return static_cast<int>(MixSeeds(seed, key) %
                          static_cast<uint64_t>(shard_count));
}

inline int OwnerOfUser(const ShardTopology& t, UserId uid) {
  return OwnerOfUser(uid, t.user_seed, t.shard_count);
}

inline int OwnerOfValue(const ShardTopology& t, BehaviorType type,
                        ValueId value) {
  return OwnerOfValue(type, value, t.value_seed, t.shard_count);
}

/// True when this shard is the one that builds edges for (type, value).
inline bool OwnsValue(const ShardTopology& t, BehaviorType type,
                      ValueId value) {
  return OwnerOfValue(t, type, value) == t.shard_index;
}

}  // namespace turbo::bn
