#include "bn/network.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace turbo::bn {

BehaviorNetwork BehaviorNetwork::FromEdgeStore(
    const storage::EdgeStore& store, int num_nodes) {
  TURBO_CHECK_GT(num_nodes, 0);
  BehaviorNetwork net;
  net.num_nodes_ = num_nodes;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    net.adj_[t].resize(num_nodes);
    for (UserId u = 0; u < static_cast<UserId>(num_nodes); ++u) {
      const auto& nbrs = store.Neighbors(t, u);
      auto& row = net.adj_[t][u];
      row.reserve(nbrs.size());
      for (const auto& [v, e] : nbrs) {
        TURBO_CHECK_LT(v, static_cast<UserId>(num_nodes));
        row.push_back({v, e.weight});
      }
      std::sort(row.begin(), row.end(),
                [](const NeighborEntry& a, const NeighborEntry& b) {
                  return a.id < b.id;
                });
    }
  }
  return net;
}

BehaviorNetwork BehaviorNetwork::Normalized() const {
  BehaviorNetwork out = *this;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    std::vector<double> deg(num_nodes_, 0.0);
    for (UserId u = 0; u < static_cast<UserId>(num_nodes_); ++u) {
      for (const auto& e : adj_[t][u]) deg[u] += e.weight;
    }
    for (UserId u = 0; u < static_cast<UserId>(num_nodes_); ++u) {
      for (auto& e : out.adj_[t][u]) {
        const double d = deg[u] * deg[e.id];
        e.weight = d > 0.0
                       ? static_cast<float>(e.weight / std::sqrt(d))
                       : 0.0f;
      }
    }
  }
  return out;
}

BehaviorNetwork BehaviorNetwork::WithTypeMasked(int edge_type) const {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  BehaviorNetwork out = *this;
  out.adj_[edge_type].assign(num_nodes_, {});
  return out;
}

std::vector<NeighborEntry> BehaviorNetwork::UnionNeighbors(UserId u) const {
  std::unordered_map<UserId, float> merged;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (const auto& e : Neighbors(t, u)) merged[e.id] += e.weight;
  }
  std::vector<NeighborEntry> out;
  out.reserve(merged.size());
  for (const auto& [v, w] : merged) out.push_back({v, w});
  std::sort(out.begin(), out.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) {
              return a.id < b.id;
            });
  return out;
}

double BehaviorNetwork::WeightedDegree(int edge_type, UserId u) const {
  double s = 0.0;
  for (const auto& e : Neighbors(edge_type, u)) s += e.weight;
  return s;
}

size_t BehaviorNetwork::UnionDegree(UserId u) const {
  return UnionNeighbors(u).size();
}

double BehaviorNetwork::UnionWeightedDegree(UserId u) const {
  double s = 0.0;
  for (const auto& e : UnionNeighbors(u)) s += e.weight;
  return s;
}

size_t BehaviorNetwork::NumEdges(int edge_type) const {
  size_t s = 0;
  for (const auto& row : adj_[edge_type]) s += row.size();
  return s / 2;
}

size_t BehaviorNetwork::TotalEdges() const {
  size_t s = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) s += NumEdges(t);
  return s;
}

}  // namespace turbo::bn
