// BN construction — Algorithm 1 of the paper.
//
// For every edge-building behavior type r, every hierarchical time window
// W in **W**, and every epoch (t_{j-1}, t_j] of that window, users whose
// logs share the same value s within the epoch are pairwise connected;
// each such pair receives weight 1/N_{j,s} (inverse weight assignment,
// N_{j,s} = number of distinct users sharing s in epoch j). Weights
// accumulate across epochs and across windows, so co-occurrences inside a
// small window — which every larger window also catches — end up with
// proportionally larger total weight (hierarchical time windows).
#pragma once

#include <vector>

#include "storage/behavior_log.h"
#include "storage/edge_store.h"
#include "storage/log_store.h"
#include "util/rng.h"

namespace turbo::bn {

struct BnConfig {
  /// Hierarchical windows **W**; the paper's empirical setting is
  /// [1h, 2h, ..., 12h, 1d].
  std::vector<SimTime> windows = DefaultWindows();

  /// Ablation knob: when false, each co-occurring pair receives weight 1
  /// instead of 1/N (used by bench_ablation_bn).
  bool inverse_weighting = true;

  /// Section V: edges not refreshed for 60 days are expired.
  SimTime edge_ttl = 60 * kDay;

  /// Safety valve for pathological buckets (e.g. a stadium AP): if more
  /// than this many distinct users share one value in one epoch, a random
  /// subset of this size is pairwise-connected (weights still use the true
  /// 1/N, so total mass stays faithful). Large enough to be inactive on
  /// realistic data.
  int max_bucket_users = 500;

  static std::vector<SimTime> DefaultWindows();
};

/// Streams behavior logs into an EdgeStore according to Algorithm 1.
class BnBuilder {
 public:
  BnBuilder(BnConfig config, storage::EdgeStore* edges);

  /// Offline batch construction over a full log list (experiments). `now`
  /// stamps edge recency for TTL purposes; pass the scenario end time.
  void BuildFromLogs(const BehaviorLogList& logs);

  /// Online path: processes the epoch (epoch_end - window, epoch_end] of
  /// one window size, querying the log store for the active values — this
  /// is the "hourly job for the 1-hour window" of Section V. Returns the
  /// number of edge-weight updates applied (observability).
  size_t RunWindowJob(const storage::LogStore& store, SimTime window,
                      SimTime epoch_end);

  /// Expires edges older than `now - edge_ttl`. Returns edges removed.
  size_t ExpireOld(SimTime now);

  const BnConfig& config() const { return config_; }

 private:
  struct Obs {
    UserId uid;
    SimTime time;
  };
  /// Connects distinct users of one (type, value, window, epoch) bucket.
  /// Returns the number of pairwise weight updates applied.
  size_t ConnectBucket(int edge_type, const std::vector<UserId>& users,
                       SimTime stamp);

  BnConfig config_;
  storage::EdgeStore* edges_;
  Rng rng_{0x5eed};
};

}  // namespace turbo::bn
