// BN construction — Algorithm 1 of the paper.
//
// For every edge-building behavior type r, every hierarchical time window
// W in **W**, and every epoch (t_{j-1}, t_j] of that window, users whose
// logs share the same value s within the epoch are pairwise connected;
// each such pair receives weight 1/N_{j,s} (inverse weight assignment,
// N_{j,s} = number of distinct users sharing s in epoch j). Weights
// accumulate across epochs and across windows, so co-occurrences inside a
// small window — which every larger window also catches — end up with
// proportionally larger total weight (hierarchical time windows).
//
// Window-job engine (DESIGN.md "Ingestion & window jobs"): one job
// processes one (window, epoch) slice. Its active (type, value) keys are
// partitioned across `window_job_shards` shards by the log store's key
// hash; shards run concurrently on an optional util::ThreadPool, each
// accumulating edge-weight deltas into a private buffer. Buffers are
// merged into the EdgeStore in shard-index order, and every per-bucket
// random draw is seeded from the bucket's own coordinates, so the
// resulting weights are bit-identical for any thread count, any shard
// count, and the serial path. On top of the shards, jobs for windows
// that are multiples of the smallest window reuse that base window's
// deduped per-value user buckets (cached when the base job ran) instead
// of re-querying raw logs — a day of traffic costs one log scan plus
// merges, not one scan per window.
//
// Timestamps must be non-negative; epoch 1 of every window covers
// [0, W] (the origin belongs to the first epoch) and epoch j > 1 covers
// ((j-1)W, jW].
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bn/partition.h"
#include "obs/metrics.h"
#include "storage/behavior_log.h"
#include "storage/checkpoint_io.h"
#include "storage/edge_store.h"
#include "storage/log_store.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace turbo::bn {

struct BnConfig {
  /// Hierarchical windows **W**; the paper's empirical setting is
  /// [1h, 2h, ..., 12h, 1d].
  std::vector<SimTime> windows = DefaultWindows();

  /// Ablation knob: when false, each co-occurring pair receives weight 1
  /// instead of 1/N (used by bench_ablation_bn).
  bool inverse_weighting = true;

  /// Section V: edges not refreshed for 60 days are expired.
  SimTime edge_ttl = 60 * kDay;

  /// Safety valve for pathological buckets (e.g. a stadium AP): if more
  /// than this many distinct users share one value in one epoch, a random
  /// subset of this size is pairwise-connected (weights still use the true
  /// 1/N, so total mass stays faithful). Large enough to be inactive on
  /// realistic data.
  int max_bucket_users = 500;

  /// Shards the active keys of one window job are partitioned into.
  /// Purely a parallelism knob: results are identical for any value.
  int window_job_shards = 8;

  /// Reuse the smallest window's deduped per-value user buckets when
  /// running jobs for larger windows (requires every window to be a
  /// multiple of the smallest; disabled automatically otherwise).
  bool reuse_base_buckets = true;

  /// Seed mixed into per-bucket RNG streams (pathological-bucket
  /// subsampling). Same seed => same subsets on every engine.
  uint64_t bucket_sample_seed = 0x5eed;

  /// Cluster shard layout (partition.h). Window jobs only process
  /// (type, value) keys this shard owns, so a value replicated to both
  /// its user-owner and value-owner shards is edge-built exactly once
  /// cluster-wide. The default single-shard topology owns every key —
  /// standalone servers are unaffected. Part of the checkpoint config
  /// fingerprint.
  ShardTopology topology;

  static std::vector<SimTime> DefaultWindows();
};

/// Streams behavior logs into an EdgeStore according to Algorithm 1.
class BnBuilder {
 public:
  BnBuilder(BnConfig config, storage::EdgeStore* edges);

  /// Pool the per-job shards run on; nullptr (default) executes shards
  /// serially on the calling thread. The pool is borrowed, not owned.
  void SetThreadPool(util::ThreadPool* pool) { pool_ = pool; }

  /// Registry receiving per-shard job metrics (bn_window_shard_*,
  /// bn_window_merge_ms, bucket-cache counters). Optional; nullptr
  /// disables reporting. Handles are resolved once here, so the call
  /// must precede the first job.
  void SetMetrics(obs::MetricsRegistry* metrics);

  /// Offline batch construction over a full log list (experiments).
  /// Replays the exact window-job schedule a live server would run while
  /// advancing to the end of the timeline, so the resulting weights are
  /// bit-identical to streamed ingestion over the same logs. Rejects
  /// negative timestamps.
  void BuildFromLogs(const BehaviorLogList& logs);

  /// Online path: processes the epoch (epoch_end - window, epoch_end] of
  /// one window size (the first epoch, epoch_end == window, additionally
  /// includes t = 0), querying the log store for the active values — this
  /// is the "hourly job for the 1-hour window" of Section V. Returns the
  /// number of edge-weight updates applied (observability).
  size_t RunWindowJob(const storage::LogStore& store, SimTime window,
                      SimTime epoch_end);

  /// Expires edges older than `now - edge_ttl`. Returns edges removed.
  /// Expired-edge endpoints are recorded in the pending churn set.
  size_t ExpireOld(SimTime now);

  /// Both endpoints of every edge touched (weight added or expired) since
  /// the last TakeChurn() call. This is the churn set the incremental
  /// snapshot and delta-checkpoint paths consume: a node absent from it
  /// has a bit-identical adjacency row in the EdgeStore.
  const storage::EdgeChurn& PendingChurn() const { return pending_churn_; }

  /// Returns the pending churn set and resets the accumulator. The
  /// caller (BnServer) merges it into its per-consumer churn sets — one
  /// cleared at each snapshot publish, one at each checkpoint.
  storage::EdgeChurn TakeChurn();

  /// Drops cached base-window buckets for epochs ending at or before
  /// `upto`. The server calls this with the minimum per-window job
  /// frontier: no future job can need buckets at or before it.
  void EvictCachedBuckets(SimTime upto);

  /// Base-window epochs currently cached (observability / tests).
  size_t CachedBucketEpochs() const { return base_buckets_.size(); }

  /// Approximate bytes held by the bucket cache (keys + user arrays) —
  /// mirrored into the bn_bucket_cache_bytes gauge.
  size_t CachedBucketBytes() const { return cache_bytes_; }

  /// Largest cached base-epoch end, or 0 when the cache is empty. New
  /// epochs only ever appear above this (jobs run forward in time), so
  /// (MaxCachedEpoch at checkpoint k, SerializeCacheSince at k+1) yields
  /// exactly the epochs added in between.
  SimTime MaxCachedEpoch() const {
    return base_buckets_.empty() ? 0 : base_buckets_.rbegin()->first;
  }

  /// Checkpoint hook: persists the cached base-window buckets (epoch by
  /// epoch, keys in canonical order) so a recovered builder's merge path
  /// serves the same jobs from cache that the uncrashed one would — a
  /// lost cache would silently fall back to raw-log scans, which is
  /// bit-identical but defeats the hierarchical-reuse speedup.
  void SerializeCache(storage::BinaryWriter* w) const;

  /// Restores a SerializeCache()d bucket cache, replacing the current
  /// one. Fails (cache cleared) on truncation.
  Status DeserializeCache(storage::BinaryReader* r);

  /// Delta-checkpoint hook: like SerializeCache but only epochs ending
  /// strictly after `after` (same wire format). Pass 0 for everything.
  void SerializeCacheSince(SimTime after, storage::BinaryWriter* w) const;

  /// Applies a SerializeCacheSince()d section on top of the current
  /// cache: listed epochs replace same-keyed entries, others are kept.
  /// The caller then evicts with the recovered job frontiers to drop
  /// epochs the checkpoint writer had already evicted.
  Status DeserializeCacheDelta(storage::BinaryReader* r);

  /// Epoch index of time `t` (>= 0) for `window`: epoch 1 covers
  /// [0, window], epoch j > 1 covers ((j-1)*window, j*window].
  static int64_t EpochIndex(SimTime t, SimTime window) {
    TURBO_CHECK_GE(t, 0);
    TURBO_CHECK_GT(window, 0);
    return t <= window ? 1 : (t + window - 1) / window;
  }

  const BnConfig& config() const { return config_; }

 private:
  using ValueKey = storage::LogStore::ValueKey;
  using ValueKeyHash = storage::LogStore::ValueKeyHash;

  /// One pending edge-weight update. Stamps are implicit (the job's
  /// epoch_end), so a delta is 16 bytes.
  struct EdgeDelta {
    int edge_type;
    UserId u;
    UserId v;
    float w;
  };

  struct ShardState {
    std::vector<ValueKey> keys;
    std::vector<EdgeDelta> deltas;
    // Deduped user buckets recorded while running a base-window job.
    std::vector<std::pair<ValueKey, std::vector<UserId>>> buckets;
    double millis = 0.0;
  };

  /// Appends the pairwise deltas of one (type, value, window, epoch)
  /// bucket of distinct users. Pathological buckets draw their subset
  /// from a stream seeded by the bucket coordinates, independent of
  /// processing order.
  void AppendBucketDeltas(int edge_type, const std::vector<UserId>& users,
                          const ValueKey& key, SimTime window,
                          SimTime epoch_end,
                          std::vector<EdgeDelta>* out) const;

  /// Smallest window, the granularity buckets are cached at.
  SimTime base_window() const { return config_.windows.front(); }

  /// True when all needed base epochs of (epoch_start, epoch_end] are
  /// cached, i.e. the merge path can serve this job without touching the
  /// log store.
  bool HaveCachedRange(SimTime epoch_start, SimTime epoch_end) const;

  /// Sorted deduped union of the cached base buckets of `key` across the
  /// base epochs spanning (epoch_start, epoch_end].
  void MergeCachedUsers(const ValueKey& key, SimTime epoch_start,
                        SimTime epoch_end,
                        std::vector<UserId>* users) const;

  /// Cache-accounting cost of one bucket (key + user array payload).
  static size_t BucketBytes(const std::vector<UserId>& users) {
    return sizeof(ValueKey) + users.size() * sizeof(UserId);
  }

  /// Mirrors the cache size counters into their gauges (when registered).
  void UpdateCacheGauges();

  BnConfig config_;
  storage::EdgeStore* edges_;
  util::ThreadPool* pool_ = nullptr;
  /// Endpoints touched since the last TakeChurn() (see PendingChurn).
  storage::EdgeChurn pending_churn_;
  /// Running BucketBytes() total over the cache (see CachedBucketBytes).
  size_t cache_bytes_ = 0;
  /// True when every window is a multiple of the smallest — the
  /// precondition for base-bucket reuse.
  bool reuse_eligible_ = false;
  /// Per base-epoch (keyed by epoch_end) deduped user buckets of every
  /// active edge-building key. An entry exists for every base epoch whose
  /// job ran (possibly empty), which is what HaveCachedRange tests.
  std::map<SimTime,
           std::unordered_map<ValueKey, std::vector<UserId>, ValueKeyHash>>
      base_buckets_;

  // Metric handles (null when SetMetrics was not called).
  obs::Histogram* shard_ms_ = nullptr;
  obs::Histogram* shard_keys_ = nullptr;
  obs::Histogram* merge_ms_ = nullptr;
  obs::Counter* cache_merge_jobs_ = nullptr;
  obs::Counter* scan_jobs_ = nullptr;
  obs::Gauge* cache_epochs_g_ = nullptr;
  obs::Gauge* cache_bytes_g_ = nullptr;
};

}  // namespace turbo::bn
