// Immutable snapshot of the Behavior Network used by sampling, analysis,
// and GNN batch construction.
//
// Holds one weighted undirected adjacency per edge type, in sorted
// adjacency-list form. Produced from the live EdgeStore; optionally
// carries the per-type symmetric degree normalization
//   w'_r(u,v) = w_r(u,v) / sqrt(deg'_r(u) * deg'_r(v))
// from Section III-A ("Sampling & normalization").
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "storage/behavior_log.h"
#include "storage/edge_store.h"

namespace turbo::bn {

struct NeighborEntry {
  UserId id;
  float weight;
};

class BehaviorNetwork {
 public:
  BehaviorNetwork() : num_nodes_(0) {}

  /// Snapshots the store. `num_nodes` fixes the node-id space (uids are
  /// dense in the datasets).
  static BehaviorNetwork FromEdgeStore(const storage::EdgeStore& store,
                                       int num_nodes);

  /// Returns a copy with per-type symmetric degree normalization applied.
  BehaviorNetwork Normalized() const;

  /// Returns a copy with the given edge type removed (Fig. 7 ablation).
  BehaviorNetwork WithTypeMasked(int edge_type) const;

  int num_nodes() const { return num_nodes_; }

  const std::vector<NeighborEntry>& Neighbors(int edge_type,
                                              UserId u) const {
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    TURBO_CHECK_LT(u, static_cast<UserId>(num_nodes_));
    return adj_[edge_type][u];
  }

  /// Union of neighbors across all edge types (deduplicated, weights
  /// summed) — the homogeneous view used by homophily analysis and the
  /// single-relation GNN baselines.
  std::vector<NeighborEntry> UnionNeighbors(UserId u) const;

  size_t Degree(int edge_type, UserId u) const {
    return Neighbors(edge_type, u).size();
  }
  double WeightedDegree(int edge_type, UserId u) const;
  /// Distinct neighbors across all types.
  size_t UnionDegree(UserId u) const;
  double UnionWeightedDegree(UserId u) const;

  size_t NumEdges(int edge_type) const;
  size_t TotalEdges() const;

 private:
  int num_nodes_;
  std::array<std::vector<std::vector<NeighborEntry>>, kNumEdgeTypes> adj_;
};

}  // namespace turbo::bn
