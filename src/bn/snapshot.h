// Immutable, versioned CSR snapshot of the Behavior Network — the read
// side of the BN server (Figure 2) and of every offline consumer
// (sampling, analysis, GNN batch construction).
//
// Layout: one CSR block per edge type, segmented into immutable row
// groups of kRowGroupSize consecutive nodes. Each group holds its own
// local offsets array plus parallel neighbor-id and weight arrays
// (neighbors sorted by id within each row), so a row read is one shift,
// one mask, and two contiguous array slices. Groups are held by
// shared_ptr: ApplyDeltas() builds the next snapshot by *sharing* every
// group no touched row falls into and rebuilding only the dirty ones
// (copy-on-write), which makes publish cost proportional to churn
// instead of graph size (DESIGN.md "Incremental snapshots & delta
// checkpoints").
//
// The per-type symmetric degree normalization of Section III-A
//   w'_r(u,v) = w_r(u,v) / sqrt(deg'_r(u) * deg'_r(v))
// is fused into the build (a degree pass followed by a fill pass over the
// live EdgeStore — no intermediate adjacency copy). Build() parallelizes
// both passes over node ranges.
//
// A BnSnapshot is immutable after Build() and carries a monotonically
// increasing version id assigned by its publisher. Consumers read through
// GraphView, a two-word value type (snapshot pointer + per-type mask)
// whose WithTypeMasked() is a zero-copy mask flip — the Fig. 7 edge-type
// ablation no longer deep-copies the graph.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "storage/behavior_log.h"
#include "storage/checkpoint_io.h"
#include "storage/edge_store.h"
#include "util/status.h"

namespace turbo::bn {

struct NeighborEntry {
  UserId id;
  float weight;
};

/// Non-owning view over one CSR adjacency row: parallel id/weight arrays.
/// Iteration yields NeighborEntry values, so range-for code written
/// against the old adjacency-list API keeps working.
class NeighborSpan {
 public:
  NeighborSpan() = default;
  NeighborSpan(const UserId* ids, const float* weights, size_t size)
      : ids_(ids), weights_(weights), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  UserId id(size_t i) const { return ids_[i]; }
  float weight(size_t i) const { return weights_[i]; }
  const UserId* ids() const { return ids_; }
  const float* weights() const { return weights_; }
  NeighborEntry operator[](size_t i) const { return {ids_[i], weights_[i]}; }

  class Iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = NeighborEntry;
    using difference_type = std::ptrdiff_t;
    using pointer = const NeighborEntry*;
    using reference = NeighborEntry;

    Iterator() = default;
    Iterator(const NeighborSpan* span, size_t i) : span_(span), i_(i) {}
    NeighborEntry operator*() const { return (*span_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++i_;
      return tmp;
    }
    Iterator& operator--() {
      --i_;
      return *this;
    }
    Iterator operator--(int) {
      Iterator tmp = *this;
      --i_;
      return tmp;
    }
    Iterator& operator+=(difference_type d) {
      i_ += d;
      return *this;
    }
    Iterator& operator-=(difference_type d) {
      i_ -= d;
      return *this;
    }
    friend Iterator operator+(Iterator it, difference_type d) {
      it += d;
      return it;
    }
    friend Iterator operator+(difference_type d, Iterator it) {
      it += d;
      return it;
    }
    friend Iterator operator-(Iterator it, difference_type d) {
      it -= d;
      return it;
    }
    difference_type operator-(const Iterator& o) const {
      return static_cast<difference_type>(i_) -
             static_cast<difference_type>(o.i_);
    }
    NeighborEntry operator[](difference_type d) const {
      return (*span_)[i_ + d];
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }
    bool operator<(const Iterator& o) const { return i_ < o.i_; }
    bool operator>(const Iterator& o) const { return i_ > o.i_; }
    bool operator<=(const Iterator& o) const { return i_ <= o.i_; }
    bool operator>=(const Iterator& o) const { return i_ >= o.i_; }

   private:
    const NeighborSpan* span_ = nullptr;
    size_t i_ = 0;
  };

  Iterator begin() const { return {this, 0}; }
  Iterator end() const { return {this, size_}; }

 private:
  const UserId* ids_ = nullptr;
  const float* weights_ = nullptr;
  size_t size_ = 0;
};

struct SnapshotOptions {
  /// Fuse the per-type symmetric degree normalization into the build.
  bool normalize = true;
  /// Threads for the build passes; 0 = hardware concurrency.
  int num_threads = 0;
};

class BnSnapshot {
 public:
  /// Row-group granularity of the copy-on-write CSR: a group covers 1024
  /// consecutive node ids. Small enough that low-churn epochs rebuild a
  /// small fraction of groups; large enough that the per-group pointer +
  /// header overhead stays negligible.
  static constexpr int kRowGroupShift = 10;
  static constexpr size_t kRowGroupSize = size_t{1} << kRowGroupShift;

  /// What ApplyDeltas actually did (observability / tests).
  struct ApplyStats {
    size_t touched_rows = 0;    // rows recomputed, summed over types
    size_t rebuilt_groups = 0;  // groups rebuilt, summed over types
    size_t shared_groups = 0;   // groups shared with prev, summed
  };

  /// Snapshots the store into per-type CSR arrays. `num_nodes` fixes the
  /// node-id space (uids are dense in the datasets); `version` is the
  /// publisher-assigned snapshot id.
  static std::shared_ptr<const BnSnapshot> Build(
      const storage::EdgeStore& store, int num_nodes,
      const SnapshotOptions& options = {}, uint64_t version = 0);

  /// Incremental publish: produces the snapshot Build(store, ...) would,
  /// bit for bit, by patching `prev` — sharing every row group without a
  /// recomputed row and rebuilding the rest from the store.
  ///
  /// `churn` must cover every node whose store adjacency changed since
  /// `prev` was built (both endpoints of every added/expired edge — the
  /// EdgeChurn contract). For a normalized snapshot the recomputed set
  /// is the churned nodes plus their *current* store neighbors: a
  /// churned node's weighted degree changes, and that degree sits under
  /// the sqrt in every incident row. Exact double accumulation in the
  /// store (see EdgeInfo) is what makes the renormalized floats
  /// bit-identical to a full rebuild.
  ///
  /// `options.normalize` must match prev->normalized(); `num_threads`
  /// parallelizes over dirty groups.
  static std::shared_ptr<const BnSnapshot> ApplyDeltas(
      const std::shared_ptr<const BnSnapshot>& prev,
      const storage::EdgeStore& store, const storage::EdgeChurn& churn,
      const SnapshotOptions& options, uint64_t version,
      ApplyStats* stats = nullptr);

  int num_nodes() const { return num_nodes_; }
  uint64_t version() const { return version_; }
  bool normalized() const { return normalized_; }

  NeighborSpan Neighbors(int edge_type, UserId u) const {
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    TURBO_CHECK_LT(u, static_cast<UserId>(num_nodes_));
    const RowGroup& g =
        *csr_[edge_type].groups[static_cast<size_t>(u) >> kRowGroupShift];
    const size_t local = static_cast<size_t>(u) & (kRowGroupSize - 1);
    const size_t begin = g.offsets[local];
    return {g.neighbor.data() + begin, g.weight.data() + begin,
            g.offsets[local + 1] - begin};
  }

  size_t Degree(int edge_type, UserId u) const {
    return Neighbors(edge_type, u).size();
  }
  double WeightedDegree(int edge_type, UserId u) const;

  /// Undirected edge count per type and total (each edge stored twice).
  size_t NumEdges(int edge_type) const {
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    return csr_[edge_type].entries / 2;
  }
  size_t TotalEdges() const;

  /// Bytes held by the CSR arrays (capacity planning / bench reporting).
  /// Counts every group this snapshot references; groups shared with
  /// other snapshots are counted in each (this is the serving footprint,
  /// not the marginal allocation).
  size_t MemoryBytes() const;

  /// Row groups (summed over types) this snapshot shares, pointer-
  /// identical, with `other` — the structural-sharing observable the
  /// incremental-publish tests assert on.
  size_t SharedGroupsWith(const BnSnapshot& other) const;

  /// Checkpoint hook: writes version, node count, normalization flag,
  /// and per type the flattened CSR (global offsets / neighbor ids /
  /// weights, plus the exact weighted-degree doubles when normalized),
  /// so a recovered server republishes the exact snapshot its readers
  /// were being served from — no rebuild on the recovery path. The
  /// bytes depend only on content, never on how the group structure is
  /// shared.
  void Serialize(storage::BinaryWriter* w) const;

  /// Restores a Serialize()d snapshot. Validates offset monotonicity and
  /// array sizing, so a corrupt payload fails instead of producing a
  /// snapshot whose spans read out of bounds. The restored snapshot is a
  /// bit-identical ApplyDeltas base: row contents and weighted degrees
  /// round-trip exactly.
  static Result<std::shared_ptr<const BnSnapshot>> Deserialize(
      storage::BinaryReader* r);

  /// Delta-checkpoint hook: writes only the row groups that are NOT
  /// pointer-shared with `base` (plus the header). With incremental
  /// publishes in between, that is O(churn) — the copy-on-write sharing
  /// doubles as a free diff. `base` must have the same num_nodes and
  /// normalization.
  void SerializeDiff(const BnSnapshot& base, storage::BinaryWriter* w) const;

  /// Restores a SerializeDiff()d snapshot over a base with the same
  /// *content* as the diff's base (pointer identity not required —
  /// recovery applies diffs over deserialized bases). Untouched groups
  /// are shared with `base`.
  static Result<std::shared_ptr<const BnSnapshot>> DeserializePatched(
      const std::shared_ptr<const BnSnapshot>& base,
      storage::BinaryReader* r);

 private:
  /// One immutable block of kRowGroupSize consecutive rows (the last
  /// group of a type may be shorter). `offsets` is group-local with
  /// rows + 1 entries; `wdeg` holds the rows' exact weighted-degree
  /// doubles and is only populated for normalized snapshots (ApplyDeltas
  /// reads untouched endpoints' degrees from here).
  struct RowGroup {
    std::vector<size_t> offsets;
    std::vector<UserId> neighbor;
    std::vector<float> weight;
    std::vector<double> wdeg;
  };
  struct TypeCsr {
    std::vector<std::shared_ptr<const RowGroup>> groups;
    size_t entries = 0;  // directed entries summed over groups
  };

  static size_t NumGroups(int num_nodes) {
    return (static_cast<size_t>(num_nodes) + kRowGroupSize - 1) >>
           kRowGroupShift;
  }
  /// Rows covered by group `g` of a `num_nodes`-row CSR.
  static size_t GroupRows(int num_nodes, size_t g) {
    const size_t base = g << kRowGroupShift;
    return std::min(kRowGroupSize, static_cast<size_t>(num_nodes) - base);
  }
  BnSnapshot() = default;

  int num_nodes_ = 0;
  uint64_t version_ = 0;
  bool normalized_ = false;
  std::array<TypeCsr, kNumEdgeTypes> csr_;
};

/// Lightweight read handle: a shared snapshot plus a per-type enable
/// mask. Copying a view is two words plus a refcount bump; the snapshot
/// stays alive as long as any view (or sampler holding one) references
/// it, which is what makes the RCU-style publish in BnServer safe.
class GraphView {
 public:
  GraphView() = default;
  explicit GraphView(std::shared_ptr<const BnSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {
    mask_.fill(true);
  }

  bool valid() const { return snapshot_ != nullptr; }
  const std::shared_ptr<const BnSnapshot>& snapshot() const {
    return snapshot_;
  }

  int num_nodes() const { return snapshot_ ? snapshot_->num_nodes() : 0; }
  uint64_t version() const { return snapshot_ ? snapshot_->version() : 0; }

  /// Zero-copy type ablation (Fig. 7): flips one mask bit.
  GraphView WithTypeMasked(int edge_type) const {
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    GraphView out = *this;
    out.mask_[edge_type] = false;
    return out;
  }

  bool type_enabled(int edge_type) const {
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    return mask_[edge_type];
  }

  NeighborSpan Neighbors(int edge_type, UserId u) const {
    TURBO_CHECK(valid());
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    if (!mask_[edge_type]) return {};
    return snapshot_->Neighbors(edge_type, u);
  }

  size_t Degree(int edge_type, UserId u) const {
    return Neighbors(edge_type, u).size();
  }
  double WeightedDegree(int edge_type, UserId u) const;

  /// Union of neighbors across enabled edge types (deduplicated, weights
  /// summed) — the homogeneous view used by homophily analysis and the
  /// single-relation GNN baselines.
  std::vector<NeighborEntry> UnionNeighbors(UserId u) const;
  size_t UnionDegree(UserId u) const { return UnionNeighbors(u).size(); }
  double UnionWeightedDegree(UserId u) const;

  size_t NumEdges(int edge_type) const {
    TURBO_CHECK(valid());
    TURBO_CHECK_GE(edge_type, 0);
    TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
    return mask_[edge_type] ? snapshot_->NumEdges(edge_type) : 0;
  }
  size_t TotalEdges() const;

 private:
  std::shared_ptr<const BnSnapshot> snapshot_;
  std::array<bool, kNumEdgeTypes> mask_{};
};

}  // namespace turbo::bn
