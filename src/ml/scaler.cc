#include "ml/scaler.h"

#include <cmath>

#include "util/check.h"

namespace turbo::ml {

void StandardScaler::Fit(const la::Matrix& x) {
  std::vector<int> rows(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) rows[i] = static_cast<int>(i);
  Fit(x, rows);
}

void StandardScaler::Fit(const la::Matrix& x, const std::vector<int>& rows) {
  TURBO_CHECK(!rows.empty());
  const size_t d = x.cols();
  mean_.assign(d, 0.0f);
  std_.assign(d, 0.0f);
  std::vector<double> sum(d, 0.0), sq(d, 0.0);
  for (int r : rows) {
    const float* row = x.row(static_cast<size_t>(r));
    for (size_t c = 0; c < d; ++c) {
      sum[c] += row[c];
      sq[c] += static_cast<double>(row[c]) * row[c];
    }
  }
  const double n = static_cast<double>(rows.size());
  for (size_t c = 0; c < d; ++c) {
    const double m = sum[c] / n;
    double var = sq[c] / n - m * m;
    if (var < 1e-12) var = 1.0;  // constant feature: leave centered only
    mean_[c] = static_cast<float>(m);
    std_[c] = static_cast<float>(std::sqrt(var));
  }
}

la::Matrix StandardScaler::Transform(const la::Matrix& x) const {
  TURBO_CHECK(fitted());
  TURBO_CHECK_EQ(x.cols(), mean_.size());
  la::Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* in = x.row(r);
    float* o = out.row(r);
    for (size_t c = 0; c < x.cols(); ++c) {
      o[c] = (in[c] - mean_[c]) / std_[c];
    }
  }
  return out;
}

}  // namespace turbo::ml
