#include "ml/linear.h"

#include <cmath>

#include "util/check.h"

namespace turbo::ml {

double BalancedPositiveWeight(const std::vector<int>& y, double max_weight) {
  int64_t pos = 0;
  for (int v : y) pos += (v != 0);
  const int64_t neg = static_cast<int64_t>(y.size()) - pos;
  if (pos == 0) return 1.0;
  return std::min(max_weight,
                  std::max(1.0, static_cast<double>(neg) / pos));
}

namespace {
inline float SigmoidStable(float z) {
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                   : std::exp(z) / (1.0f + std::exp(z));
}
}  // namespace

void LogisticRegression::Fit(const la::Matrix& x, const std::vector<int>& y) {
  TURBO_CHECK_EQ(x.rows(), y.size());
  TURBO_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows(), d = x.cols();
  const double wpos = cfg_.positive_weight > 0 ? cfg_.positive_weight
                                               : BalancedPositiveWeight(y);
  w_.assign(d, 0.0f);
  b_ = 0.0f;
  Rng rng(cfg_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  // Full-batch gradient descent with a cosine-decayed step: robust for the
  // modest feature dimensionalities used here.
  std::vector<float> grad(d);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0f);
    float gb = 0.0f;
    double wsum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* row = x.row(i);
      float z = b_;
      for (size_t c = 0; c < d; ++c) z += w_[c] * row[c];
      const float p = SigmoidStable(z);
      const float sw = y[i] != 0 ? static_cast<float>(wpos) : 1.0f;
      const float err = sw * (p - static_cast<float>(y[i]));
      for (size_t c = 0; c < d; ++c) grad[c] += err * row[c];
      gb += err;
      wsum += sw;
    }
    const float inv = static_cast<float>(1.0 / wsum);
    const float step =
        cfg_.lr * 0.5f *
        (1.0f + std::cos(static_cast<float>(M_PI) * epoch / cfg_.epochs));
    for (size_t c = 0; c < d; ++c) {
      w_[c] -= step * (grad[c] * inv + cfg_.l2 * w_[c]);
    }
    b_ -= step * gb * inv;
  }
}

std::vector<double> LogisticRegression::PredictProba(
    const la::Matrix& x) const {
  TURBO_CHECK_EQ(x.cols(), w_.size());
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.row(i);
    float z = b_;
    for (size_t c = 0; c < w_.size(); ++c) z += w_[c] * row[c];
    out[i] = SigmoidStable(z);
  }
  return out;
}

void LinearSvm::Fit(const la::Matrix& x, const std::vector<int>& y) {
  TURBO_CHECK_EQ(x.rows(), y.size());
  TURBO_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows(), d = x.cols();
  const double wpos = cfg_.positive_weight > 0 ? cfg_.positive_weight
                                               : BalancedPositiveWeight(y);
  w_.assign(d, 0.0f);
  b_ = 0.0f;
  Rng rng(cfg_.seed);

  // Pegasos: step 1/(lambda * t) on hinge subgradients. Warm-starting the
  // step counter at 1/lambda caps the first steps at eta <= 1; the raw
  // schedule's eta = 1/lambda first step swamps float precision and can
  // take many epochs to wash out.
  int64_t t = static_cast<int64_t>(1.0f / cfg_.lambda);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (size_t k = 0; k < n; ++k) {
      const size_t i = rng.NextUint(n);
      ++t;
      const float eta = 1.0f / (cfg_.lambda * static_cast<float>(t));
      const float* row = x.row(i);
      const float yi = y[i] != 0 ? 1.0f : -1.0f;
      const float sw = y[i] != 0 ? static_cast<float>(wpos) : 1.0f;
      float z = b_;
      for (size_t c = 0; c < d; ++c) z += w_[c] * row[c];
      // L2 shrink.
      const float shrink = 1.0f - eta * cfg_.lambda;
      for (size_t c = 0; c < d; ++c) w_[c] *= shrink;
      if (yi * z < 1.0f) {
        const float s = eta * sw * yi;
        for (size_t c = 0; c < d; ++c) w_[c] += s * row[c];
        b_ += s;
      }
    }
  }
}

double LinearSvm::Margin(const la::Matrix& x, size_t row) const {
  TURBO_CHECK_EQ(x.cols(), w_.size());
  const float* r = x.row(row);
  double z = b_;
  for (size_t c = 0; c < w_.size(); ++c) z += w_[c] * r[c];
  return z;
}

std::vector<double> LinearSvm::PredictProba(const la::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    out[i] = SigmoidStable(static_cast<float>(Margin(x, i)) *
                           cfg_.proba_scale);
  }
  return out;
}

}  // namespace turbo::ml
