#include "ml/mlp.h"

#include <cmath>

#include "util/check.h"

namespace turbo::ml {

using ag::Tensor;

Tensor Mlp::Forward(const Tensor& x, bool training, Rng* rng) const {
  Tensor h = x;
  for (size_t l = 0; l < weights_.size(); ++l) {
    h = ag::AddRowBroadcast(ag::MatMul(h, weights_[l]), biases_[l]);
    const bool is_output = (l + 1 == weights_.size());
    if (!is_output) {
      h = ag::Relu(h);
      h = ag::Dropout(h, cfg_.dropout, training, rng);
    }
  }
  return h;
}

void Mlp::Fit(const la::Matrix& x, const std::vector<int>& y) {
  TURBO_CHECK_EQ(x.rows(), y.size());
  const size_t n = x.rows();
  const double wpos = cfg_.positive_weight > 0 ? cfg_.positive_weight
                                               : BalancedPositiveWeight(y);
  Rng rng(cfg_.seed);

  weights_.clear();
  biases_.clear();
  int in_dim = static_cast<int>(x.cols());
  std::vector<int> dims = cfg_.hidden;
  dims.push_back(1);
  for (int out_dim : dims) {
    weights_.push_back(
        ag::Param(la::Matrix::Glorot(in_dim, out_dim, &rng), "w"));
    biases_.push_back(ag::Param(la::Matrix(1, out_dim), "b"));
    in_dim = out_dim;
  }

  la::Matrix targets(n, 1);
  la::Matrix sample_w(n, 1);
  for (size_t i = 0; i < n; ++i) {
    targets(i, 0) = static_cast<float>(y[i]);
    sample_w(i, 0) = y[i] != 0 ? static_cast<float>(wpos) : 1.0f;
  }

  std::vector<Tensor> params;
  for (auto& w : weights_) params.push_back(w);
  for (auto& b : biases_) params.push_back(b);
  ag::Adam opt(params, cfg_.lr, 0.9f, 0.999f, 1e-8f, cfg_.weight_decay);

  Tensor input = ag::Constant(x, "x");
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    opt.ZeroGrad();
    Tensor logits = Forward(input, /*training=*/true, &rng);
    Tensor loss = ag::BceWithLogits(logits, targets, sample_w);
    ag::Backward(loss);
    opt.ClipGradNorm(5.0);
    opt.Step();
  }
}

std::vector<double> Mlp::PredictProba(const la::Matrix& x) const {
  TURBO_CHECK(!weights_.empty());
  Tensor logits =
      Forward(ag::Constant(x, "x"), /*training=*/false, nullptr);
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const float z = logits->value(i, 0);
    out[i] = z >= 0.0f ? 1.0 / (1.0 + std::exp(-z))
                       : std::exp(z) / (1.0 + std::exp(z));
  }
  return out;
}

}  // namespace turbo::ml
