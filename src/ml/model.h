// Common interface for the feature-based classifiers of Table III.
#pragma once

#include <string>
#include <vector>

#include "la/matrix.h"

namespace turbo::ml {

class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on features x [n, d] and labels y in {0, 1}.
  virtual void Fit(const la::Matrix& x, const std::vector<int>& y) = 0;

  /// Fraud probabilities in [0, 1], one per row of x.
  virtual std::vector<double> PredictProba(const la::Matrix& x) const = 0;

  virtual std::string name() const = 0;
};

/// Positive-class weight that balances an imbalanced training set:
/// (#neg / #pos), clamped to [1, max_weight].
double BalancedPositiveWeight(const std::vector<int>& y,
                              double max_weight = 50.0);

}  // namespace turbo::ml
