// Gradient-boosted decision trees on logistic loss, histogram-based with
// second-order (Newton) leaf values — the GBDT baseline of Table III and
// the booster behind BLP / DeepTrax feature classification.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/model.h"
#include "util/rng.h"

namespace turbo::ml {

struct GbdtConfig {
  int num_trees = 150;
  int max_depth = 4;
  float learning_rate = 0.1f;
  int num_bins = 32;
  float min_child_weight = 1.0f;  // min hessian sum per leaf
  float l2 = 1.0f;                // lambda in the gain formula
  float min_gain = 0.0f;          // gamma
  double row_subsample = 0.8;
  double col_subsample = 0.9;
  /// <= 0 means auto (neg/pos ratio).
  double positive_weight = -1.0;
  uint64_t seed = 3;
};

class Gbdt : public BinaryClassifier {
 public:
  explicit Gbdt(GbdtConfig cfg = {}) : cfg_(cfg) {}

  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const la::Matrix& x) const override;
  std::string name() const override { return "GBDT"; }

  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Total split gain per feature, a standard importance measure.
  std::vector<double> FeatureImportance() const;

 private:
  struct Node {
    int feature = -1;       // -1 for leaf
    float threshold = 0.0f; // go left if value <= threshold
    int left = -1;
    int right = -1;
    float value = 0.0f;     // leaf output
    double gain = 0.0;
  };
  struct Tree {
    std::vector<Node> nodes;
    float Predict(const float* row) const;
  };

  void ComputeBinEdges(const la::Matrix& x);
  int Bin(int feature, float value) const;
  void BuildTree(const la::Matrix& x, const std::vector<float>& grad,
                 const std::vector<float>& hess,
                 const std::vector<uint32_t>& rows, Rng* rng, Tree* tree);
  int BuildNode(const la::Matrix& x, const std::vector<float>& grad,
                const std::vector<float>& hess, std::vector<uint32_t>& rows,
                size_t begin, size_t end, int depth,
                const std::vector<int>& features, Tree* tree);

  GbdtConfig cfg_;
  float base_score_ = 0.0f;  // log-odds prior
  std::vector<std::vector<float>> bin_edges_;  // per feature
  std::vector<Tree> trees_;
  size_t num_features_ = 0;
};

}  // namespace turbo::ml
