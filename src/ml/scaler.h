// Per-feature standardization (zero mean, unit variance), fit on the
// training split only.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace turbo::ml {

class StandardScaler {
 public:
  void Fit(const la::Matrix& x);
  /// Optionally restrict the fit to the given row subset (train rows).
  void Fit(const la::Matrix& x, const std::vector<int>& rows);
  la::Matrix Transform(const la::Matrix& x) const;
  la::Matrix FitTransform(const la::Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace turbo::ml
