// Linear baselines of Table III: logistic regression and a linear SVM
// trained with Pegasos-style stochastic subgradient descent.
#pragma once

#include <cstdint>

#include "ml/model.h"
#include "util/rng.h"

namespace turbo::ml {

struct LogisticRegressionConfig {
  int epochs = 200;
  float lr = 0.1f;
  float l2 = 1e-4f;
  /// <= 0 means auto (neg/pos ratio).
  double positive_weight = -1.0;
  uint64_t seed = 1;
};

class LogisticRegression : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig cfg = {})
      : cfg_(cfg) {}

  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const la::Matrix& x) const override;
  std::string name() const override { return "LR"; }

  const std::vector<float>& weights() const { return w_; }
  float bias() const { return b_; }

 private:
  LogisticRegressionConfig cfg_;
  std::vector<float> w_;
  float b_ = 0.0f;
};

struct LinearSvmConfig {
  int epochs = 60;
  float lambda = 1e-3f;  // L2 regularization strength
  /// <= 0 means auto (neg/pos ratio).
  double positive_weight = -1.0;
  uint64_t seed = 2;
  /// Scale for mapping margins to pseudo-probabilities via a sigmoid.
  float proba_scale = 1.0f;
};

class LinearSvm : public BinaryClassifier {
 public:
  explicit LinearSvm(LinearSvmConfig cfg = {}) : cfg_(cfg) {}

  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const la::Matrix& x) const override;
  std::string name() const override { return "SVM"; }

  /// Raw decision margin w.x + b.
  double Margin(const la::Matrix& x, size_t row) const;

 private:
  LinearSvmConfig cfg_;
  std::vector<float> w_;
  float b_ = 0.0f;
};

}  // namespace turbo::ml
