#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace turbo::ml {

namespace {
inline float SigmoidStable(float z) {
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                   : std::exp(z) / (1.0f + std::exp(z));
}
}  // namespace

float Gbdt::Tree::Predict(const float* row) const {
  int i = 0;
  while (nodes[i].feature >= 0) {
    i = row[nodes[i].feature] <= nodes[i].threshold ? nodes[i].left
                                                    : nodes[i].right;
  }
  return nodes[i].value;
}

void Gbdt::ComputeBinEdges(const la::Matrix& x) {
  const size_t d = x.cols();
  bin_edges_.assign(d, {});
  std::vector<float> col(x.rows());
  for (size_t f = 0; f < d; ++f) {
    for (size_t r = 0; r < x.rows(); ++r) col[r] = x(r, f);
    std::sort(col.begin(), col.end());
    auto& edges = bin_edges_[f];
    // Quantile edges; duplicates collapse for low-cardinality features.
    for (int b = 1; b < cfg_.num_bins; ++b) {
      const size_t q = (col.size() * b) / cfg_.num_bins;
      const float e = col[std::min(q, col.size() - 1)];
      if (edges.empty() || e > edges.back()) edges.push_back(e);
    }
  }
}

int Gbdt::Bin(int feature, float value) const {
  const auto& edges = bin_edges_[feature];
  return static_cast<int>(
      std::lower_bound(edges.begin(), edges.end(), value) - edges.begin());
}

int Gbdt::BuildNode(const la::Matrix& x, const std::vector<float>& grad,
                    const std::vector<float>& hess,
                    std::vector<uint32_t>& rows, size_t begin, size_t end,
                    int depth, const std::vector<int>& features,
                    Tree* tree) {
  double g_total = 0.0, h_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_total += grad[rows[i]];
    h_total += hess[rows[i]];
  }
  const int node_id = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  auto make_leaf = [&] {
    tree->nodes[node_id].feature = -1;
    tree->nodes[node_id].value =
        static_cast<float>(-g_total / (h_total + cfg_.l2));
    return node_id;
  };

  if (depth >= cfg_.max_depth || end - begin < 2 ||
      h_total < 2.0 * cfg_.min_child_weight) {
    return make_leaf();
  }

  // Best histogram split across candidate features.
  const double parent_score = g_total * g_total / (h_total + cfg_.l2);
  double best_gain = cfg_.min_gain;
  int best_feature = -1;
  int best_bin = -1;
  std::vector<double> gh(cfg_.num_bins + 1), hh(cfg_.num_bins + 1);
  for (int f : features) {
    std::fill(gh.begin(), gh.end(), 0.0);
    std::fill(hh.begin(), hh.end(), 0.0);
    for (size_t i = begin; i < end; ++i) {
      const int b = Bin(f, x(rows[i], f));
      gh[b] += grad[rows[i]];
      hh[b] += hess[rows[i]];
    }
    double gl = 0.0, hl = 0.0;
    const int usable_bins = static_cast<int>(bin_edges_[f].size());
    for (int b = 0; b < usable_bins; ++b) {
      gl += gh[b];
      hl += hh[b];
      const double gr = g_total - gl, hr = h_total - hl;
      if (hl < cfg_.min_child_weight || hr < cfg_.min_child_weight) continue;
      const double gain = 0.5 * (gl * gl / (hl + cfg_.l2) +
                                 gr * gr / (hr + cfg_.l2) - parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_bin = b;
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  const float threshold = bin_edges_[best_feature][best_bin];
  auto mid_it = std::partition(
      rows.begin() + begin, rows.begin() + end, [&](uint32_t r) {
        return x(r, best_feature) <= threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) return make_leaf();

  tree->nodes[node_id].feature = best_feature;
  tree->nodes[node_id].threshold = threshold;
  tree->nodes[node_id].gain = best_gain;
  const int left =
      BuildNode(x, grad, hess, rows, begin, mid, depth + 1, features, tree);
  const int right =
      BuildNode(x, grad, hess, rows, mid, end, depth + 1, features, tree);
  tree->nodes[node_id].left = left;
  tree->nodes[node_id].right = right;
  return node_id;
}

void Gbdt::BuildTree(const la::Matrix& x, const std::vector<float>& grad,
                     const std::vector<float>& hess,
                     const std::vector<uint32_t>& rows, Rng* rng,
                     Tree* tree) {
  std::vector<int> features;
  for (size_t f = 0; f < x.cols(); ++f) {
    if (rng->NextBool(cfg_.col_subsample)) {
      features.push_back(static_cast<int>(f));
    }
  }
  if (features.empty()) features.push_back(static_cast<int>(
      rng->NextUint(x.cols())));
  std::vector<uint32_t> rws = rows;
  BuildNode(x, grad, hess, rws, 0, rws.size(), 0, features, tree);
}

void Gbdt::Fit(const la::Matrix& x, const std::vector<int>& y) {
  TURBO_CHECK_EQ(x.rows(), y.size());
  TURBO_CHECK_GT(x.rows(), 0u);
  num_features_ = x.cols();
  const size_t n = x.rows();
  const double wpos = cfg_.positive_weight > 0 ? cfg_.positive_weight
                                               : BalancedPositiveWeight(y);
  ComputeBinEdges(x);
  trees_.clear();

  // Weighted prior log-odds.
  double pos_w = 0.0, total_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = y[i] != 0 ? wpos : 1.0;
    pos_w += y[i] != 0 ? w : 0.0;
    total_w += w;
  }
  double p0 = std::clamp(pos_w / total_w, 1e-4, 1.0 - 1e-4);
  base_score_ = static_cast<float>(std::log(p0 / (1.0 - p0)));

  std::vector<float> score(n, base_score_);
  std::vector<float> grad(n), hess(n);
  Rng rng(cfg_.seed);
  for (int t = 0; t < cfg_.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      const float p = SigmoidStable(score[i]);
      const float w = y[i] != 0 ? static_cast<float>(wpos) : 1.0f;
      grad[i] = w * (p - static_cast<float>(y[i]));
      hess[i] = w * std::max(1e-6f, p * (1.0f - p));
    }
    std::vector<uint32_t> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(cfg_.row_subsample)) {
        rows.push_back(static_cast<uint32_t>(i));
      }
    }
    if (rows.size() < 2) continue;
    Tree tree;
    BuildTree(x, grad, hess, rows, &rng, &tree);
    for (size_t i = 0; i < n; ++i) {
      score[i] += cfg_.learning_rate * tree.Predict(x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> Gbdt::PredictProba(const la::Matrix& x) const {
  TURBO_CHECK_EQ(x.cols(), num_features_);
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    float z = base_score_;
    for (const auto& tree : trees_) {
      z += cfg_.learning_rate * tree.Predict(x.row(i));
    }
    out[i] = SigmoidStable(z);
  }
  return out;
}

std::vector<double> Gbdt::FeatureImportance() const {
  std::vector<double> imp(num_features_, 0.0);
  for (const auto& tree : trees_) {
    for (const auto& node : tree.nodes) {
      if (node.feature >= 0) imp[node.feature] += node.gain;
    }
  }
  return imp;
}

}  // namespace turbo::ml
