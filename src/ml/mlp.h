// DNN baseline of Table III: a three-layer MLP (128-64-32 hidden units in
// the paper's setting) trained with Adam on weighted BCE, built on the
// autograd engine.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "ml/model.h"
#include "util/rng.h"

namespace turbo::ml {

struct MlpConfig {
  std::vector<int> hidden = {128, 64, 32};
  int epochs = 150;
  float lr = 5e-4f;
  float weight_decay = 1e-5f;
  float dropout = 0.1f;
  /// <= 0 means auto (neg/pos ratio).
  double positive_weight = -1.0;
  uint64_t seed = 4;
};

class Mlp : public BinaryClassifier {
 public:
  explicit Mlp(MlpConfig cfg = {}) : cfg_(cfg) {}

  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const la::Matrix& x) const override;
  std::string name() const override { return "DNN"; }

 private:
  ag::Tensor Forward(const ag::Tensor& x, bool training, Rng* rng) const;

  MlpConfig cfg_;
  std::vector<ag::Tensor> weights_;  // per layer
  std::vector<ag::Tensor> biases_;
};

}  // namespace turbo::ml
