#include "analysis/empirical.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace turbo::analysis {

const std::array<const char*, kNumIntervalBuckets> kIntervalBucketNames = {
    "<1h", "<6h", "<1d", "<3d", "<7d", "<30d", ">=30d"};

BurstComparison TimeBurst(const datagen::Dataset& ds) {
  struct Acc {
    std::vector<double> spans;
    int64_t logs = 0, within_1d = 0, within_3d = 0;
  };
  Acc acc[2];

  std::unordered_map<UserId, std::pair<SimTime, SimTime>> ranges;
  for (const auto& l : ds.logs) {
    auto [it, inserted] = ranges.try_emplace(l.uid, l.time, l.time);
    if (!inserted) {
      it->second.first = std::min(it->second.first, l.time);
      it->second.second = std::max(it->second.second, l.time);
    }
    const auto& u = ds.users[l.uid];
    Acc& a = acc[u.is_fraud];
    ++a.logs;
    const SimTime d = std::abs(l.time - u.application_time);
    a.within_1d += (d <= kDay);
    a.within_3d += (d <= 3 * kDay);
  }
  for (const auto& [uid, mm] : ranges) {
    acc[ds.users[uid].is_fraud].spans.push_back(
        static_cast<double>(mm.second - mm.first) / kDay);
  }

  auto stats = [](Acc& a) {
    BurstStats s{};
    s.num_users = static_cast<int>(a.spans.size());
    if (!a.spans.empty()) {
      double sum = 0.0;
      for (double v : a.spans) sum += v;
      s.mean_span_days = sum / a.spans.size();
      std::sort(a.spans.begin(), a.spans.end());
      s.median_span_days = a.spans[a.spans.size() / 2];
    }
    if (a.logs > 0) {
      s.frac_logs_within_1d = static_cast<double>(a.within_1d) / a.logs;
      s.frac_logs_within_3d = static_cast<double>(a.within_3d) / a.logs;
    }
    return s;
  };
  return BurstComparison{stats(acc[0]), stats(acc[1])};
}

namespace {

int IntervalBucket(SimTime d) {
  if (d < kHour) return 0;
  if (d < 6 * kHour) return 1;
  if (d < kDay) return 2;
  if (d < 3 * kDay) return 3;
  if (d < 7 * kDay) return 4;
  if (d < 30 * kDay) return 5;
  return 6;
}

}  // namespace

IntervalDistribution TemporalAggregation(const datagen::Dataset& ds,
                                         BehaviorType type,
                                         int max_pairs_per_value) {
  std::unordered_map<ValueId, std::vector<std::pair<UserId, SimTime>>>
      by_value;
  for (const auto& l : ds.logs) {
    if (l.type == type) by_value[l.value].push_back({l.uid, l.time});
  }
  std::array<int64_t, kNumIntervalBuckets> counts[2] = {{}, {}};
  int64_t totals[2] = {0, 0};
  for (const auto& [v, obs] : by_value) {
    if (obs.size() < 2) continue;
    int pairs = 0;
    for (size_t i = 0; i < obs.size() && pairs < max_pairs_per_value; ++i) {
      for (size_t j = i + 1;
           j < obs.size() && pairs < max_pairs_per_value; ++j) {
        if (obs[i].first == obs[j].first) continue;  // same user
        const bool fi = ds.users[obs[i].first].is_fraud;
        const bool fj = ds.users[obs[j].first].is_fraud;
        if (fi != fj) continue;  // mixed pair: attributed to neither group
        const SimTime d = std::abs(obs[i].second - obs[j].second);
        ++counts[fi][IntervalBucket(d)];
        ++totals[fi];
        ++pairs;
      }
    }
  }
  IntervalDistribution out;
  out.normal_pairs = totals[0];
  out.fraud_pairs = totals[1];
  for (int b = 0; b < kNumIntervalBuckets; ++b) {
    if (totals[0] > 0) {
      out.normal[b] = static_cast<double>(counts[0][b]) / totals[0];
    }
    if (totals[1] > 0) {
      out.fraud[b] = static_cast<double>(counts[1][b]) / totals[1];
    }
  }
  return out;
}

std::vector<std::vector<UserId>> HopFrontiers(
    const bn::GraphView& net, UserId seed_node, int hops,
    int edge_type) {
  std::vector<std::vector<UserId>> frontiers;
  std::unordered_map<UserId, bool> visited;
  visited[seed_node] = true;
  std::vector<UserId> current = {seed_node};
  for (int h = 0; h < hops; ++h) {
    std::vector<UserId> next;
    for (UserId u : current) {
      auto expand = [&](const auto& nbrs) {
        for (const auto& e : nbrs) {
          if (visited.emplace(e.id, true).second) next.push_back(e.id);
        }
      };
      if (edge_type < 0) {
        expand(net.UnionNeighbors(u));
      } else {
        expand(net.Neighbors(edge_type, u));
      }
    }
    frontiers.push_back(next);
    current = std::move(next);
    if (current.empty()) {
      // Remaining hops are empty frontiers.
      while (static_cast<int>(frontiers.size()) < hops) {
        frontiers.emplace_back();
      }
      break;
    }
  }
  while (static_cast<int>(frontiers.size()) < hops) frontiers.emplace_back();
  return frontiers;
}

namespace {

std::vector<UserId> SampleSeeds(const std::vector<int>& labels, int label,
                                int max_seeds, uint64_t seed) {
  std::vector<UserId> ids;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) ids.push_back(static_cast<UserId>(i));
  }
  Rng rng(seed);
  rng.Shuffle(&ids);
  if (static_cast<int>(ids.size()) > max_seeds) ids.resize(max_seeds);
  return ids;
}

}  // namespace

HopSeries HopFraudRatio(const bn::GraphView& net,
                        const std::vector<int>& labels, int hops,
                        int edge_type, int max_seeds, uint64_t seed) {
  HopSeries out;
  for (int cls : {1, 0}) {
    auto seeds = SampleSeeds(labels, cls, max_seeds, seed + cls);
    std::vector<double> ratio_sum(hops, 0.0);
    std::vector<int> ratio_cnt(hops, 0);
    for (UserId s : seeds) {
      auto frontiers = HopFrontiers(net, s, hops, edge_type);
      for (int h = 0; h < hops; ++h) {
        if (frontiers[h].empty()) continue;
        int fraud = 0;
        for (UserId u : frontiers[h]) fraud += (labels[u] != 0);
        ratio_sum[h] += static_cast<double>(fraud) / frontiers[h].size();
        ++ratio_cnt[h];
      }
    }
    std::vector<double> series(hops, 0.0);
    for (int h = 0; h < hops; ++h) {
      if (ratio_cnt[h] > 0) series[h] = ratio_sum[h] / ratio_cnt[h];
    }
    (cls == 1 ? out.fraud_seed : out.normal_seed) = std::move(series);
  }
  return out;
}

HopSeries HopMeanDegree(const bn::GraphView& net,
                        const std::vector<int>& labels, int hops,
                        bool weighted, int max_seeds, uint64_t seed) {
  HopSeries out;
  for (int cls : {1, 0}) {
    auto seeds = SampleSeeds(labels, cls, max_seeds, seed + cls);
    std::vector<double> sum(hops, 0.0);
    std::vector<int64_t> cnt(hops, 0);
    for (UserId s : seeds) {
      auto frontiers = HopFrontiers(net, s, hops, /*edge_type=*/-1);
      for (int h = 0; h < hops; ++h) {
        for (UserId u : frontiers[h]) {
          sum[h] += weighted ? net.UnionWeightedDegree(u)
                             : static_cast<double>(net.UnionDegree(u));
          ++cnt[h];
        }
      }
    }
    std::vector<double> series(hops, 0.0);
    for (int h = 0; h < hops; ++h) {
      if (cnt[h] > 0) series[h] = sum[h] / cnt[h];
    }
    (cls == 1 ? out.fraud_seed : out.normal_seed) = std::move(series);
  }
  return out;
}

}  // namespace turbo::analysis
