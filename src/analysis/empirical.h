// Empirical-study computations behind Figure 4 (Section III-B): the four
// observations that motivate BN's hierarchical windows and HAG's design.
//
// Each function returns the numeric series a plot of the corresponding
// subfigure would be drawn from; bench_fig4_empirical prints them.
#pragma once

#include <array>
#include <vector>

#include "bn/snapshot.h"
#include "datagen/scenario.h"

namespace turbo::analysis {

// ---- Fig. 4a-b: time burst ----
struct BurstStats {
  double mean_span_days;        // per-user activity span
  double median_span_days;
  double frac_logs_within_1d;   // fraction of logs within ±1d of the
                                // user's application time
  double frac_logs_within_3d;
  int num_users;
};
struct BurstComparison {
  BurstStats normal;
  BurstStats fraud;
};
BurstComparison TimeBurst(const datagen::Dataset& ds);

// ---- Fig. 4c: temporal aggregation ----
/// Interval histogram buckets: <1h, <6h, <1d, <3d, <7d, <30d, >=30d.
inline constexpr int kNumIntervalBuckets = 7;
extern const std::array<const char*, kNumIntervalBuckets>
    kIntervalBucketNames;

struct IntervalDistribution {
  // Normalized histogram (sums to 1 unless empty) per group.
  std::array<double, kNumIntervalBuckets> normal{};
  std::array<double, kNumIntervalBuckets> fraud{};
  int64_t normal_pairs = 0;
  int64_t fraud_pairs = 0;
};
/// Pairwise |t_i - t_j| of same-(type, value) logs; a pair is fraud if
/// both users are fraudsters, normal if both are normal. `max_pairs_per
/// _value` bounds the quadratic blow-up on hub values.
IntervalDistribution TemporalAggregation(const datagen::Dataset& ds,
                                         BehaviorType type,
                                         int max_pairs_per_value = 200);

// ---- Fig. 4d-g: homophily ----
struct HopSeries {
  std::vector<double> fraud_seed;   // indexed by hop-1
  std::vector<double> normal_seed;
};
/// Fraud ratio among exactly-n-hop neighbors (union graph), n = 1..hops.
/// `edge_type` < 0 uses the union of all types (Fig. 4d); otherwise a
/// single type (Fig. 4e-g). `max_seeds` nodes per class are sampled.
HopSeries HopFraudRatio(const bn::GraphView& net,
                        const std::vector<int>& labels, int hops,
                        int edge_type = -1, int max_seeds = 400,
                        uint64_t seed = 5);

// ---- Fig. 4h-i: structural difference ----
/// Mean (weighted) degree of exactly-n-hop neighbors for fraud/normal
/// seeds. `weighted` selects Fig. 4i (weighted degree) vs 4h.
HopSeries HopMeanDegree(const bn::GraphView& net,
                        const std::vector<int>& labels, int hops,
                        bool weighted, int max_seeds = 400,
                        uint64_t seed = 6);

/// Exactly-n-hop frontiers around `seed_node` on the union graph
/// (shared BFS helper; frontier[0] = 1-hop).
std::vector<std::vector<UserId>> HopFrontiers(
    const bn::GraphView& net, UserId seed_node, int hops,
    int edge_type = -1);

}  // namespace turbo::analysis
