#include "net/wire.h"

namespace turbo::net {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(
      std::string("malformed message: ") + what);
}

}  // namespace

void EncodeBehaviorLog(const BehaviorLog& log, storage::BinaryWriter* w) {
  w->U32(log.uid);
  w->U8(static_cast<uint8_t>(log.type));
  w->U64(log.value);
  w->I64(log.time);
}

Status DecodeBehaviorLog(storage::BinaryReader* r, BehaviorLog* log) {
  log->uid = r->U32();
  const uint8_t type = r->U8();
  log->value = r->U64();
  log->time = r->I64();
  if (!r->ok()) return Malformed("behavior log");
  if (type >= kNumBehaviorTypes) return Malformed("behavior type");
  log->type = static_cast<BehaviorType>(type);
  return Status::OK();
}

void EncodeLogBatch(const BehaviorLogList& logs,
                    storage::BinaryWriter* w) {
  w->U64(logs.size());
  for (const BehaviorLog& log : logs) EncodeBehaviorLog(log, w);
}

Status DecodeLogBatch(storage::BinaryReader* r, BehaviorLogList* logs) {
  const uint64_t n = r->U64();
  // 21 bytes per encoded log bounds n against the body that carries it.
  if (!r->ok() || n > r->remaining() / 21 + 1) {
    return Malformed("log batch count");
  }
  logs->clear();
  logs->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    BehaviorLog log;
    TURBO_RETURN_IF_ERROR(DecodeBehaviorLog(r, &log));
    logs->push_back(log);
  }
  return Status::OK();
}

void EncodeSubgraph(const bn::Subgraph& sg, storage::BinaryWriter* w) {
  w->U64(sg.nodes.size());
  for (UserId uid : sg.nodes) w->U32(uid);
  w->U64(sg.num_targets);
  w->U64(sg.snapshot_version);
  for (const auto& edges : sg.edges) {
    w->U64(edges.size());
    for (const la::Triplet& t : edges) {
      w->U32(t.row);
      w->U32(t.col);
      w->F32(t.value);
    }
  }
}

Status DecodeSubgraph(storage::BinaryReader* r, bn::Subgraph* sg) {
  const uint64_t num_nodes = r->U64();
  if (!r->ok() || num_nodes > r->remaining() / 4 + 1) {
    return Malformed("subgraph node count");
  }
  sg->nodes.clear();
  sg->nodes.reserve(num_nodes);
  sg->local.clear();
  for (uint64_t i = 0; i < num_nodes; ++i) {
    const UserId uid = r->U32();
    sg->nodes.push_back(uid);
    sg->local.emplace(uid, static_cast<int>(i));
  }
  sg->num_targets = r->U64();
  sg->snapshot_version = r->U64();
  if (!r->ok() || sg->num_targets > sg->nodes.size()) {
    return Malformed("subgraph targets");
  }
  for (auto& edges : sg->edges) {
    const uint64_t n = r->U64();
    if (!r->ok() || n > r->remaining() / 12 + 1) {
      return Malformed("subgraph edge count");
    }
    edges.clear();
    edges.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      la::Triplet t;
      t.row = r->U32();
      t.col = r->U32();
      t.value = r->F32();
      if (t.row >= num_nodes || t.col >= num_nodes) {
        return Malformed("subgraph edge index");
      }
      edges.push_back(t);
    }
  }
  if (!r->ok()) return Malformed("subgraph");
  return Status::OK();
}

void EncodePredictionResponse(const server::PredictionResponse& resp,
                              storage::BinaryWriter* w) {
  w->F64(resp.fraud_probability);
  w->U8(resp.blocked ? 1 : 0);
  w->U32(static_cast<uint32_t>(resp.subgraph_nodes));
  w->U64(resp.request_id);
  w->U64(resp.snapshot_version);
  w->U32(static_cast<uint32_t>(resp.batch_size));
  w->U8(resp.cache_hit ? 1 : 0);
  w->U8(resp.shed ? 1 : 0);
  w->F64(resp.sampling_ms);
  w->F64(resp.feature_ms);
  w->F64(resp.inference_ms);
  w->F64(resp.total_ms);
}

Status DecodePredictionResponse(storage::BinaryReader* r,
                                server::PredictionResponse* resp) {
  resp->fraud_probability = r->F64();
  resp->blocked = r->U8() != 0;
  resp->subgraph_nodes = static_cast<int>(r->U32());
  resp->request_id = r->U64();
  resp->snapshot_version = r->U64();
  resp->batch_size = static_cast<int>(r->U32());
  resp->cache_hit = r->U8() != 0;
  resp->shed = r->U8() != 0;
  resp->sampling_ms = r->F64();
  resp->feature_ms = r->F64();
  resp->inference_ms = r->F64();
  resp->total_ms = r->F64();
  if (!r->ok()) return Malformed("prediction response");
  return Status::OK();
}

}  // namespace turbo::net
