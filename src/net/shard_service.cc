#include "net/shard_service.h"

#include <utility>

#include "net/wal_stream.h"
#include "net/wire.h"
#include "storage/checkpoint_io.h"
#include "util/string_util.h"

namespace turbo::net {

std::string ShardMethodName(uint8_t method) {
  switch (static_cast<ShardMethod>(method)) {
    case ShardMethod::kIngest: return "ingest";
    case ShardMethod::kIngestBatch: return "ingest_batch";
    case ShardMethod::kOfferIngest: return "offer_ingest";
    case ShardMethod::kDrainIngest: return "drain_ingest";
    case ShardMethod::kQueueDepth: return "queue_depth";
    case ShardMethod::kAdvanceTo: return "advance_to";
    case ShardMethod::kCheckpoint: return "checkpoint";
    case ShardMethod::kRecover: return "recover";
    case ShardMethod::kSampleSubgraph: return "sample_subgraph";
    case ShardMethod::kSnapshotVersion: return "snapshot_version";
    case ShardMethod::kNow: return "now";
    case ShardMethod::kTotalEdges: return "total_edges";
    case ShardMethod::kPredict: return "predict";
  }
  switch (static_cast<WalSinkMethod>(method)) {
    case WalSinkMethod::kStat: return "wal_stat";
    case WalSinkMethod::kAppendAt: return "wal_append_at";
    case WalSinkMethod::kWriteAtomic: return "wal_write_atomic";
    case WalSinkMethod::kDelete: return "wal_delete";
    case WalSinkMethod::kListFiles: return "wal_list_files";
  }
  return StrFormat("method%u", static_cast<unsigned>(method));
}

ShardService::ShardService(ShardServiceConfig config,
                           server::BnServer* server,
                           server::PredictionServer* prediction)
    : config_(std::move(config)), server_(server), prediction_(prediction) {}

Result<std::unique_ptr<ShardService>> ShardService::Start(
    ShardServiceConfig config, server::BnServer* server,
    server::PredictionServer* prediction) {
  std::unique_ptr<ShardService> service(
      new ShardService(std::move(config), server, prediction));
  RpcServerConfig rpc;
  rpc.endpoint = service->config_.endpoint;
  rpc.read_deadline_ms = service->config_.read_deadline_ms;
  rpc.write_deadline_ms = service->config_.write_deadline_ms;
  rpc.frame_limits = service->config_.frame_limits;
  rpc.metrics = service->config_.metrics;
  rpc.method_name = ShardMethodName;
  auto server_or = RpcServer::Start(
      std::move(rpc), [s = service.get()](uint8_t method,
                                          std::string_view body) {
        return s->Dispatch(method, body);
      });
  if (!server_or.ok()) return server_or.status();
  service->rpc_ = server_or.take();
  return service;
}

ShardService::~ShardService() { Stop(); }

void ShardService::Stop() {
  if (rpc_ != nullptr) rpc_->Stop();
}

void ShardService::CloseConnections() {
  if (rpc_ != nullptr) rpc_->CloseConnections();
}

Result<std::string> ShardService::Dispatch(uint8_t method,
                                           std::string_view body) {
  storage::BinaryWriter w;
  switch (static_cast<ShardMethod>(method)) {
    case ShardMethod::kIngest: {
      BehaviorLog log;
      TURBO_RETURN_IF_ERROR(DecodeAll(body, &log, DecodeBehaviorLog));
      std::lock_guard<std::mutex> lock(writer_mu_);
      server_->Ingest(log);
      return std::string();
    }
    case ShardMethod::kIngestBatch: {
      BehaviorLogList logs;
      TURBO_RETURN_IF_ERROR(DecodeAll(body, &logs, DecodeLogBatch));
      std::lock_guard<std::mutex> lock(writer_mu_);
      server_->IngestBatch(logs);
      return std::string();
    }
    case ShardMethod::kOfferIngest: {
      BehaviorLog log;
      TURBO_RETURN_IF_ERROR(DecodeAll(body, &log, DecodeBehaviorLog));
      // Lock-free producer path by contract; no writer_mu_.
      w.U8(server_->OfferIngest(log) ? 1 : 0);
      return w.data();
    }
    case ShardMethod::kDrainIngest: {
      storage::BinaryReader r(body);
      const uint64_t max_events = r.U64();
      if (!r.ok() || r.remaining() != 0) {
        return Status::InvalidArgument("malformed drain request");
      }
      std::lock_guard<std::mutex> lock(writer_mu_);
      w.U64(server_->DrainIngest(max_events));
      return w.data();
    }
    case ShardMethod::kQueueDepth: {
      w.U64(server_->ingest_queue_depth());
      return w.data();
    }
    case ShardMethod::kAdvanceTo: {
      storage::BinaryReader r(body);
      const SimTime now = r.I64();
      if (!r.ok() || r.remaining() != 0) {
        return Status::InvalidArgument("malformed advance request");
      }
      std::lock_guard<std::mutex> lock(writer_mu_);
      server_->AdvanceTo(now);
      return std::string();
    }
    case ShardMethod::kCheckpoint: {
      if (config_.shard_dir.empty()) {
        return Status::FailedPrecondition("shard has no durability dir");
      }
      std::lock_guard<std::mutex> lock(writer_mu_);
      TURBO_RETURN_IF_ERROR(server_->Checkpoint(config_.shard_dir));
      return std::string();
    }
    case ShardMethod::kRecover: {
      if (config_.shard_dir.empty()) {
        return Status::FailedPrecondition("shard has no durability dir");
      }
      std::lock_guard<std::mutex> lock(writer_mu_);
      TURBO_RETURN_IF_ERROR(server_->Recover(config_.shard_dir));
      return std::string();
    }
    case ShardMethod::kSampleSubgraph: {
      storage::BinaryReader r(body);
      const UserId uid = r.U32();
      if (!r.ok() || r.remaining() != 0) {
        return Status::InvalidArgument("malformed sample request");
      }
      EncodeSubgraph(server_->SampleSubgraph(uid), &w);
      return w.data();
    }
    case ShardMethod::kSnapshotVersion: {
      w.U64(server_->snapshot_version());
      return w.data();
    }
    case ShardMethod::kNow: {
      w.I64(server_->now());
      return w.data();
    }
    case ShardMethod::kTotalEdges: {
      w.U64(server_->edges().TotalEdges());
      return w.data();
    }
    case ShardMethod::kPredict: {
      if (prediction_ == nullptr) {
        return Status::FailedPrecondition("shard serves no predictions");
      }
      storage::BinaryReader r(body);
      const UserId uid = r.U32();
      if (!r.ok() || r.remaining() != 0) {
        return Status::InvalidArgument("malformed predict request");
      }
      EncodePredictionResponse(prediction_->Handle(uid), &w);
      return w.data();
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown shard method %u", static_cast<unsigned>(method)));
}

}  // namespace turbo::net
