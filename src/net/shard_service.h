// Socket-facing service for one BN shard (DESIGN.md §15): hosts a
// borrowed BnServer (and optionally its PredictionServer) behind an
// RpcServer, exposing the exact server::ShardHandle contract plus
// Predict — the methods net::RemoteShardClient speaks.
//
// Writer discipline: the RPC layer runs one handler thread per
// connection, but BnServer's Ingest/DrainIngest/AdvanceTo/Checkpoint/
// Recover are single-writer operations. The service serializes them
// behind one mutex, turning "many connections" back into the one-writer
// contract the shard was built under. OfferIngest, SampleSubgraph, the
// gauges, and Predict stay lock-free exactly as in-process.
//
// The service does not own the shard: tests and embedding processes
// construct the BnServer (with its wal_dir), start a ShardService on an
// ephemeral port, and point RemoteShardClients at endpoint().
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "net/rpc.h"
#include "server/bn_server.h"
#include "server/prediction_server.h"

namespace turbo::net {

/// Method ids of the shard RPC surface (u8 on the wire). The WAL-ship
/// sink ids live in a disjoint range (wal_stream.h) so one process can
/// serve both off a single dispatcher without collisions.
enum class ShardMethod : uint8_t {
  kIngest = 1,
  kIngestBatch = 2,
  kOfferIngest = 3,
  kDrainIngest = 4,
  kQueueDepth = 5,
  kAdvanceTo = 6,
  kCheckpoint = 7,
  kRecover = 8,
  kSampleSubgraph = 9,
  kSnapshotVersion = 10,
  kNow = 11,
  kTotalEdges = 12,
  kPredict = 13,
};

/// Metric/log label for any method id this module knows (shard and
/// WAL-sink ranges); "method<N>" for foreign ids.
std::string ShardMethodName(uint8_t method);

struct ShardServiceConfig {
  Endpoint endpoint;  // port 0 = ephemeral
  /// Durability directory Checkpoint/Recover act on; empty rejects both
  /// with FailedPrecondition (a WAL-less shard has nothing to persist).
  std::string shard_dir;
  int read_deadline_ms = 30'000;
  int write_deadline_ms = 30'000;
  FrameLimits frame_limits;
  obs::MetricsRegistry* metrics = nullptr;  // not owned; null = private
};

class ShardService {
 public:
  /// Starts serving `server` (borrowed, must outlive the service).
  /// `prediction` may be null; Predict then returns FailedPrecondition.
  static Result<std::unique_ptr<ShardService>> Start(
      ShardServiceConfig config, server::BnServer* server,
      server::PredictionServer* prediction = nullptr);
  ~ShardService();

  void Stop();
  /// Chaos hook: hard-closes every live connection (see
  /// RpcServer::CloseConnections).
  void CloseConnections();

  Endpoint endpoint() const { return rpc_->endpoint(); }
  uint16_t port() const { return rpc_->port(); }
  const obs::MetricsRegistry& metrics() const { return rpc_->metrics(); }

 private:
  ShardService(ShardServiceConfig config, server::BnServer* server,
               server::PredictionServer* prediction);

  Result<std::string> Dispatch(uint8_t method, std::string_view body);

  ShardServiceConfig config_;
  server::BnServer* server_;
  server::PredictionServer* prediction_;
  /// Serializes the shard's writer-side operations across connections.
  std::mutex writer_mu_;
  std::unique_ptr<RpcServer> rpc_;
};

}  // namespace turbo::net
