// Framed request/response RPC over blocking sockets (DESIGN.md §15).
//
// Wire protocol: every message is one net::Frame. A request frame
// (type kRequestFrame) carries
//
//   u64 request_id | u8 method | body bytes
//
// and its response (type kResponseFrame) echoes
//
//   u64 request_id | u32 status_code | string message | body bytes
//
// Handlers return Result<std::string>: an error Status travels back as
// (status_code, message) and is rethrown as the client call's Status —
// remote failures are indistinguishable from local ones to the caller.
//
// Connection model: the client holds one connection and runs one call
// at a time (callers serialize; ShardRouter's writer thread is the
// natural owner). The server accepts N connections, one handler thread
// each; writer-side serialization is the *service's* job (see
// net::ShardService), not the transport's.
//
// Failure semantics:
//  * Connect failures and timeouts are Status::Unavailable. Call()
//    retries them with bounded exponential backoff — but only while the
//    request was provably never handed to the peer (connect/send of
//    byte 0 failed), or when the caller marked the method idempotent.
//    A non-idempotent request that died after send returns Unavailable
//    to the caller, who owns the double-apply decision.
//  * A corrupt frame (CRC mismatch) kills the connection on either
//    side: the server drops the peer (net_frame_corrupt_total), the
//    client reconnects on the next call (net_reconnects_total).
//
// Metrics (registry passed in the configs): net_rpc_latency_ms,
// net_rpc_<method>_ms, net_bytes_sent_total, net_bytes_received_total,
// net_reconnects_total, net_rpc_errors_total, net_frame_corrupt_total,
// net_server_connections.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace turbo::net {

inline constexpr uint8_t kRequestFrame = 1;
inline constexpr uint8_t kResponseFrame = 2;

/// Handles one decoded request: (method, body) -> response body or
/// error. Invoked on the connection's handler thread.
using RpcHandler =
    std::function<Result<std::string>(uint8_t method, std::string_view body)>;

/// Human-readable method name for metrics/spans; falls back to
/// "method<N>" when the dispatcher has no name table.
using MethodNameFn = std::function<std::string(uint8_t method)>;

struct RpcServerConfig {
  Endpoint endpoint;  // port 0 = ephemeral
  /// Per-read deadline while a request is in flight; an idle connection
  /// waits forever (<= 0 would also mean forever mid-request).
  int read_deadline_ms = 30'000;
  int write_deadline_ms = 30'000;
  FrameLimits frame_limits;
  obs::MetricsRegistry* metrics = nullptr;  // not owned; null = private
  MethodNameFn method_name;
};

class RpcServer {
 public:
  /// Binds and starts the accept loop. `handler` runs on per-connection
  /// threads and must be thread-safe.
  static Result<std::unique_ptr<RpcServer>> Start(RpcServerConfig config,
                                                  RpcHandler handler);
  ~RpcServer();

  /// Stops accepting, kills every live connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// Chaos hook: shuts down every currently live connection (clients
  /// see EOF/reset mid-call and must reconnect; each serving thread
  /// wakes and closes its own fd). The server keeps accepting.
  void CloseConnections();

  uint16_t port() const { return listener_->port(); }
  Endpoint endpoint() const { return listener_->endpoint(); }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  RpcServer(RpcServerConfig config, RpcHandler handler);

  void AcceptLoop();
  void ServeConn(std::shared_ptr<TcpConn> conn);

  RpcServerConfig config_;
  RpcHandler handler_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* frame_corrupt_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Gauge* connections_g_ = nullptr;

  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::mutex mu_;  // guards conns_ + threads_
  std::vector<std::shared_ptr<TcpConn>> conns_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
};

struct RpcClientConfig {
  Endpoint endpoint;
  int connect_deadline_ms = 2'000;
  int read_deadline_ms = 30'000;
  int write_deadline_ms = 30'000;
  /// Bounded retry of Unavailable failures: total attempts = 1 +
  /// max_retries, sleeping backoff_initial_ms * 2^k (capped at
  /// backoff_max_ms) between them.
  int max_retries = 3;
  int backoff_initial_ms = 5;
  int backoff_max_ms = 200;
  FrameLimits frame_limits;
  obs::MetricsRegistry* metrics = nullptr;  // not owned; null = private
  MethodNameFn method_name;
};

class RpcClient {
 public:
  explicit RpcClient(RpcClientConfig config);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// One request/response round trip. `idempotent` controls whether a
  /// failure *after* the request hit the wire may be retried on a fresh
  /// connection (reads, cursor queries, offset-checked appends) or must
  /// surface to the caller (ingest — applying twice would double
  /// weights). Calls are serialized by the owning thread.
  Result<std::string> Call(uint8_t method, std::string_view body,
                           bool idempotent = false);

  /// True after at least one successful round trip on the current
  /// connection.
  bool connected() const { return conn_ != nullptr; }

  /// Chaos hook: drops the current connection so the next Call must
  /// reconnect (counted in net_reconnects_total).
  void DebugDropConnection();

  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  const Endpoint& endpoint() const { return config_.endpoint; }

 private:
  Status EnsureConnected();
  /// One attempt on the current connection; `sent` reports whether any
  /// request byte may have reached the peer.
  Result<std::string> CallOnce(uint8_t method, std::string_view body,
                               uint64_t request_id, bool* sent);
  std::string MethodName(uint8_t method) const;

  RpcClientConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  obs::Counter* reconnects_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;
  std::map<uint8_t, obs::Histogram*> method_ms_;

  std::unique_ptr<TcpConn> conn_;
  FrameDecoder decoder_;
  uint64_t next_request_id_ = 1;
  bool ever_connected_ = false;
};

}  // namespace turbo::net
