// Length-prefixed, CRC'd binary frame codec — the unit of everything the
// cluster puts on a wire (DESIGN.md §15 "Wire transport").
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32 payload_len    byte count of the payload that follows the header
//   u8  type           message type tag (opaque to the codec)
//   u32 payload_crc    storage::Crc32 of the payload bytes
//   u32 header_crc     storage::Crc32 of the 9 header bytes above
//   payload bytes
//
// The header carries its own CRC so a bit flip in the length field is
// detected after 13 bytes instead of making the decoder wait forever for
// a phantom multi-gigabyte payload; payload_len is additionally bounded
// by FrameLimits::max_payload. CRC32 detects every single-bit and every
// burst error up to 32 bits, so the decoder contract the torture test
// (tests/net/frame_test.cc) enforces is strict: for any byte stream, the
// decoder yields either the exact frames that were encoded, kNeedMore
// (cleanly resumable — a prefix of a valid frame), or kCorrupt — never a
// crash and never a wrong payload.
//
// Corruption is sticky: a stream that framed garbage once has lost
// byte-sync, so the transport layer must close the connection and
// re-sync from a fresh one (net::RpcClient reconnects; net::RpcServer
// drops the peer).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace turbo::net {

/// Bytes before the payload: u32 len + u8 type + u32 payload_crc +
/// u32 header_crc.
inline constexpr size_t kFrameHeaderBytes = 13;

struct FrameLimits {
  /// Upper bound on payload_len; a header announcing more is corruption
  /// (a flipped length bit must not stall the stream). Checkpoint ships
  /// move whole files, so the default is generous.
  size_t max_payload = 256 * 1024 * 1024;
};

struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Appends the framed encoding of (type, payload) to `out`.
void AppendFrame(uint8_t type, std::string_view payload, std::string* out);

/// Convenience single-frame form.
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Incremental decoder over an arbitrary byte stream: Feed() bytes as
/// they arrive (any split — the torture test feeds one byte at a time),
/// Next() pops complete frames. Single-threaded.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

  enum class Event : uint8_t {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // buffered bytes are a valid proper prefix; feed more
    kCorrupt,   // CRC mismatch or bounds violation; stream is dead
  };

  void Feed(std::string_view bytes);

  /// Decodes the next frame out of the buffered bytes. After kCorrupt
  /// the decoder latches (every later call returns kCorrupt) — framing
  /// is unrecoverable without a new connection.
  Event Next(Frame* out);

  bool corrupt() const { return corrupt_; }
  /// Diagnostic for the corruption, empty until kCorrupt.
  const std::string& error() const { return error_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  FrameLimits limits_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool corrupt_ = false;
  std::string error_;
};

}  // namespace turbo::net
