// Wire encodings of the domain messages the cluster RPCs carry
// (DESIGN.md §15): behavior logs, sampled subgraphs, prediction
// responses. Built on storage::BinaryWriter/BinaryReader — the same
// fixed-width little-endian primitives as the checkpoint container, so
// every field is bit-exact across the wire (doubles travel as their bit
// patterns, which is what the bit-identity conformance suite relies
// on).
//
// Decoders return Status instead of CHECKing: a malformed body is a
// peer bug or corruption that slipped past the frame CRC, and must
// surface as an error response, not a server crash.
#pragma once

#include <string>
#include <string_view>

#include "bn/sampler.h"
#include "server/prediction_server.h"
#include "storage/behavior_log.h"
#include "storage/checkpoint_io.h"
#include "util/status.h"

namespace turbo::net {

void EncodeBehaviorLog(const BehaviorLog& log, storage::BinaryWriter* w);
Status DecodeBehaviorLog(storage::BinaryReader* r, BehaviorLog* log);

void EncodeLogBatch(const BehaviorLogList& logs,
                    storage::BinaryWriter* w);
Status DecodeLogBatch(storage::BinaryReader* r, BehaviorLogList* logs);

/// Subgraphs serialize nodes + typed triplets; the local index map is
/// rebuilt on decode (it is derived state: nodes[i] -> i).
void EncodeSubgraph(const bn::Subgraph& sg, storage::BinaryWriter* w);
Status DecodeSubgraph(storage::BinaryReader* r, bn::Subgraph* sg);

void EncodePredictionResponse(const server::PredictionResponse& resp,
                              storage::BinaryWriter* w);
Status DecodePredictionResponse(storage::BinaryReader* r,
                                server::PredictionResponse* resp);

/// Decode-side convenience: wraps `body` in a reader, runs `decode`,
/// and rejects trailing bytes (a length mismatch means the peers
/// disagree about the schema — fail loudly, not quietly).
template <typename T, typename DecodeFn>
Status DecodeAll(std::string_view body, T* out, DecodeFn decode) {
  storage::BinaryReader r(body);
  TURBO_RETURN_IF_ERROR(decode(&r, out));
  if (!r.ok() || r.remaining() != 0) {
    return Status::InvalidArgument("malformed message body");
  }
  return Status::OK();
}

}  // namespace turbo::net
