#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/string_util.h"

namespace turbo::net {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Remaining budget for a poll() call: -1 = block, >= 0 = wait that
/// long. `deadline_at` < 0 means "no deadline".
int PollBudget(int64_t deadline_at) {
  if (deadline_at < 0) return -1;
  const int64_t left = deadline_at - NowMs();
  return left <= 0 ? 0 : static_cast<int>(left);
}

int64_t DeadlineAt(int deadline_ms) {
  return deadline_ms <= 0 ? -1 : NowMs() + deadline_ms;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(
        StrFormat("fcntl(O_NONBLOCK): %s", std::strerror(errno)));
  }
  return Status::OK();
}

/// Waits for `events` on `fd`. Unavailable on timeout.
Status PollFor(int fd, short events, int64_t deadline_at,
               const char* what) {
  while (true) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = poll(&pfd, 1, PollBudget(deadline_at));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("poll(%s): %s", what, std::strerror(errno)));
    }
    if (rc == 0) {
      return Status::Unavailable(StrFormat("%s deadline expired", what));
    }
    return Status::OK();
  }
}

Status ParseAddr(const Endpoint& endpoint, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad IPv4 address '%s'", endpoint.host.c_str()));
  }
  return Status::OK();
}

}  // namespace

std::string Endpoint::ToString() const {
  return StrFormat("%s:%u", host.c_str(), static_cast<unsigned>(port));
}

TcpConn::TcpConn(int fd) : fd_(fd) {
  sockaddr_in local{};
  socklen_t len = sizeof(local);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&local), &len) == 0) {
    local_port_ = ntohs(local.sin_port);
  }
  // Request/response RPC wants the request on the wire now, not when
  // Nagle feels like it.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpConn::~TcpConn() { Close(); }

void TcpConn::Shutdown() {
  std::lock_guard<std::mutex> lock(close_mu_);
  const int fd = fd_.load();
  // shutdown() wakes a thread blocked in poll() on this fd with
  // POLLHUP; the fd stays open (and so cannot be reused) until the
  // owning thread notices and Close()s it.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void TcpConn::Close() {
  std::lock_guard<std::mutex> lock(close_mu_);
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

Result<std::unique_ptr<TcpConn>> TcpConn::Connect(const Endpoint& endpoint,
                                                  int deadline_ms) {
  sockaddr_in addr{};
  TURBO_RETURN_IF_ERROR(ParseAddr(endpoint, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket(): %s", std::strerror(errno)));
  }
  Status s = SetNonBlocking(fd);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  const int64_t deadline_at = DeadlineAt(deadline_ms);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno == EINPROGRESS) {
    s = PollFor(fd, POLLOUT, deadline_at, "connect");
    if (s.ok()) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
          err != 0) {
        s = Status::Unavailable(
            StrFormat("connect to %s: %s", endpoint.ToString().c_str(),
                      std::strerror(err != 0 ? err : errno)));
      }
    }
  } else if (rc < 0) {
    s = Status::Unavailable(
        StrFormat("connect to %s: %s", endpoint.ToString().c_str(),
                  std::strerror(errno)));
  }
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpConn>(new TcpConn(fd));
}

Status TcpConn::WriteAll(const void* p, size_t n, int deadline_ms) {
  const char* bytes = static_cast<const char*>(p);
  const int64_t deadline_at = DeadlineAt(deadline_ms);
  size_t sent = 0;
  while (sent < n) {
    const int fd = fd_.load();
    if (fd < 0) return Status::Unavailable("connection closed");
    const ssize_t rc = ::send(fd, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      TURBO_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline_at, "write"));
      continue;
    }
    return Status::Unavailable(
        StrFormat("send: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Result<size_t> TcpConn::ReadSome(void* p, size_t cap, int deadline_ms) {
  const int64_t deadline_at = DeadlineAt(deadline_ms);
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) return Status::Unavailable("connection closed");
    const ssize_t rc = ::recv(fd, p, cap, 0);
    if (rc > 0) return static_cast<size_t>(rc);
    if (rc == 0) return static_cast<size_t>(0);  // clean EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TURBO_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline_at, "read"));
      continue;
    }
    return Status::Unavailable(
        StrFormat("recv: %s", std::strerror(errno)));
  }
}

TcpListener::TcpListener(int fd, std::string host, uint16_t port)
    : fd_(fd), host_(std::move(host)), port_(port) {}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  ::close(fd);
}

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const Endpoint& endpoint) {
  sockaddr_in addr{};
  TURBO_RETURN_IF_ERROR(ParseAddr(endpoint, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::Internal(
        StrFormat("bind %s: %s", endpoint.ToString().c_str(),
                  std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    const Status s = Status::Internal(
        StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status s = Status::Internal(
        StrFormat("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  const Status s = SetNonBlocking(fd);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, endpoint.host, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<TcpConn>> TcpListener::Accept(int deadline_ms) {
  const int64_t deadline_at = DeadlineAt(deadline_ms);
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) return Status::Unavailable("listener closed");
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      const Status s = SetNonBlocking(conn);
      if (!s.ok()) {
        ::close(conn);
        return s;
      }
      return std::unique_ptr<TcpConn>(new TcpConn(conn));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TURBO_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline_at, "accept"));
      continue;
    }
    return Status::Unavailable(
        StrFormat("accept: %s", std::strerror(errno)));
  }
}

}  // namespace turbo::net
