// Minimal blocking-socket layer for the cluster transport (DESIGN.md
// §15): an IPv4 TCP listener and a connection with per-operation
// deadlines. Everything is Status-returning and EINTR-safe; deadlines
// are enforced with poll() over a non-blocking fd, so a dead peer turns
// into Status::Unavailable after the configured wait instead of a hung
// thread.
//
// The layer is deliberately small: loopback-heavy test/bench topologies
// and single-datacenter deployments need reliable byte pipes with
// timeouts, not an async reactor. One thread owns a TcpConn at a time;
// Shutdown() from another thread is the one sanctioned cross-thread
// call (it shutdown()s the fd without closing it, waking any blocked
// poll — how RpcServer::Stop and the chaos tests kill in-flight
// connections). Only the owning thread ever close()s the fd: a
// cross-thread close would race the owner's recv/send and could hand a
// reused descriptor to the wrong connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace turbo::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const;
};

/// One established TCP connection. Movable via unique_ptr only.
class TcpConn {
 public:
  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to `endpoint`, waiting at most `deadline_ms` (<= 0 means
  /// block indefinitely). Refused/unreachable/timeout all map to
  /// Status::Unavailable — the retryable class.
  static Result<std::unique_ptr<TcpConn>> Connect(const Endpoint& endpoint,
                                                  int deadline_ms);

  /// Writes all `n` bytes, waiting at most `deadline_ms` total (<= 0
  /// blocks). Partial progress before a timeout still fails the call —
  /// the frame layer treats the stream as torn.
  Status WriteAll(const void* p, size_t n, int deadline_ms);

  /// Reads 1..`cap` bytes into `p`; returns the count, 0 on clean EOF.
  /// Timeout and peer reset map to Status::Unavailable.
  Result<size_t> ReadSome(void* p, size_t cap, int deadline_ms);

  /// Shuts the socket down (both directions) without closing the fd:
  /// a blocked ReadSome / WriteAll on the owning thread wakes and fails
  /// with EOF / Unavailable. Safe from any thread; idempotent. The fd
  /// itself stays valid until the owner calls Close() (or the
  /// destructor runs), so no reader can ever see a reused descriptor.
  void Shutdown();

  /// Shuts down and closes the fd. Owner-side only: must not run
  /// concurrently with ReadSome / WriteAll on another thread — use
  /// Shutdown() for cross-thread kills. Idempotent.
  void Close();

  bool closed() const { return fd_.load() < 0; }
  /// Local port of this connection (diagnostics).
  uint16_t local_port() const { return local_port_; }

 private:
  friend class TcpListener;
  explicit TcpConn(int fd);

  std::atomic<int> fd_{-1};
  std::mutex close_mu_;  // serializes Shutdown() against Close()
  uint16_t local_port_ = 0;
};

/// Listening socket bound to 127.0.0.1 (or `host`). Port 0 binds an
/// ephemeral port, readable back through port().
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<std::unique_ptr<TcpListener>> Listen(
      const Endpoint& endpoint);

  /// Blocks until a peer connects or `deadline_ms` expires (then
  /// Unavailable; <= 0 blocks indefinitely). The accept loop polls with
  /// a finite deadline and rechecks its stop flag, so nothing ever
  /// needs to close this fd out from under a blocked Accept.
  Result<std::unique_ptr<TcpConn>> Accept(int deadline_ms = -1);

  /// Closes the listening fd. Owner-side only: call after the accepting
  /// thread has exited (joined), never concurrently with a blocked
  /// Accept. Idempotent.
  void Close();

  uint16_t port() const { return port_; }
  Endpoint endpoint() const { return Endpoint{host_, port_}; }

 private:
  TcpListener(int fd, std::string host, uint16_t port);

  std::atomic<int> fd_{-1};
  std::string host_;
  uint16_t port_ = 0;
};

}  // namespace turbo::net
