// Streaming WAL ship over the framed RPC layer (DESIGN.md §15): the
// primary runs the incremental ship algorithm (storage::ShipWal) with
// an RpcWalShipSink, pushing segment tails in chunks and checkpoint
// re-copies to a WalSinkService on the standby's host, which applies
// them to the local replica directory through storage::LocalDirSink.
//
// Cursor protocol: the sink's Stat/ListFiles responses ARE the
// standby's ack — each ship round first asks the receiver what it
// holds (per-file size = the shipped cursor), then sends only the
// bytes past it. The primary keeps no shipping state, so a restarted
// primary, a retried RPC, or a re-attached standby all converge by
// construction.
//
// Failure semantics:
//  * A connection killed mid-ship leaves at most one torn chunk in the
//    replica segment — exactly the torn-tail shape the standby's
//    replay already waits on; the next ship round re-stats and resumes
//    at the replica's true size.
//  * AppendAt is offset-checked receiver-side, so a duplicated append
//    (client retry after a lost response) lands as a verified no-op and
//    a gap or divergence fails FailedPrecondition instead of silently
//    corrupting the replica.
//  * The standby detects sequence gaps (it fell behind a checkpoint
//    rotation) in WarmStandby::CatchUp exactly as with local shipping
//    and initiates Rebootstrap() from the shipped checkpoint.
#pragma once

#include <memory>
#include <string>

#include "net/rpc.h"
#include "storage/wal_ship.h"

namespace turbo::net {

/// Method ids of the WAL-ship sink surface. Disjoint from ShardMethod
/// so one dispatcher can serve both.
enum class WalSinkMethod : uint8_t {
  kStat = 32,
  kAppendAt = 33,
  kWriteAtomic = 34,
  kDelete = 35,
  kListFiles = 36,
};

struct WalSinkServiceConfig {
  Endpoint endpoint;  // port 0 = ephemeral
  /// Replica directory the shipped files land in (the standby's
  /// WarmStandbyConfig::replica_dir).
  std::string replica_dir;
  int read_deadline_ms = 30'000;
  int write_deadline_ms = 30'000;
  FrameLimits frame_limits;
  obs::MetricsRegistry* metrics = nullptr;  // not owned; null = private
};

/// Standby-host receiver: serves the WalSinkMethod surface over a
/// storage::LocalDirSink rooted at replica_dir. The replay thread
/// (WarmStandby) reads the same directory between ship rounds.
class WalSinkService {
 public:
  static Result<std::unique_ptr<WalSinkService>> Start(
      WalSinkServiceConfig config);
  ~WalSinkService();

  void Stop();
  /// Chaos hook: hard-closes live connections mid-ship.
  void CloseConnections();

  Endpoint endpoint() const { return rpc_->endpoint(); }
  uint16_t port() const { return rpc_->port(); }
  const obs::MetricsRegistry& metrics() const { return rpc_->metrics(); }

 private:
  explicit WalSinkService(WalSinkServiceConfig config);
  Result<std::string> Dispatch(uint8_t method, std::string_view body);

  WalSinkServiceConfig config_;
  storage::LocalDirSink sink_;
  std::unique_ptr<RpcServer> rpc_;
};

/// Primary-side sink speaking WalSinkMethod over an RpcClient. Every
/// operation is idempotent at the receiver (offset-checked appends,
/// atomic writes, tolerant deletes), so all calls retry transparently
/// through the client's backoff loop.
class RpcWalShipSink final : public storage::WalShipSink {
 public:
  /// `client` is borrowed and used exclusively during ship calls (the
  /// RPC client is single-call; the shipper is single-threaded).
  explicit RpcWalShipSink(RpcClient* client) : client_(client) {}

  Result<storage::WalShipFileStat> Stat(const std::string& name,
                                        bool want_crc) override;
  Status AppendAt(const std::string& name, uint64_t offset,
                  std::string_view bytes) override;
  Status WriteAtomic(const std::string& name,
                     std::string_view bytes) override;
  Status Delete(const std::string& name) override;
  Result<std::vector<std::string>> ListFiles() override;

 private:
  RpcClient* client_;
};

/// One ship round of `src` into the remote replica behind `client`.
Result<storage::WalShipStats> ShipWalOverRpc(
    const std::string& src, RpcClient* client,
    const storage::WalShipOptions& options = {});

}  // namespace turbo::net
