#include "net/rpc.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "storage/checkpoint_io.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace turbo::net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

std::string EncodeRequest(uint64_t request_id, uint8_t method,
                          std::string_view body) {
  storage::BinaryWriter w;
  w.U64(request_id);
  w.U8(method);
  w.Bytes(body.data(), body.size());
  return EncodeFrame(kRequestFrame, w.data());
}

std::string EncodeResponse(uint64_t request_id, const Status& status,
                           std::string_view body) {
  storage::BinaryWriter w;
  w.U64(request_id);
  w.U32(static_cast<uint32_t>(status.code()));
  w.String(status.message());
  w.Bytes(body.data(), body.size());
  return EncodeFrame(kResponseFrame, w.data());
}

/// Reads frames off `conn` until one complete frame decodes. EOF before
/// a full frame is NotFound (clean close), corruption is Internal.
Status ReadFrame(TcpConn* conn, FrameDecoder* decoder, Frame* frame,
                 int deadline_ms, obs::Counter* bytes_received) {
  while (true) {
    switch (decoder->Next(frame)) {
      case FrameDecoder::Event::kFrame:
        return Status::OK();
      case FrameDecoder::Event::kCorrupt:
        return Status::Internal(
            StrFormat("corrupt frame: %s", decoder->error().c_str()));
      case FrameDecoder::Event::kNeedMore:
        break;
    }
    char buf[kReadChunk];
    auto n_or = conn->ReadSome(buf, sizeof(buf), deadline_ms);
    if (!n_or.ok()) return n_or.status();
    const size_t n = n_or.value();
    if (n == 0) {
      // Clean EOF. Mid-frame it is a torn stream, but still a *clean*
      // outcome: the peer died, nothing decoded wrong.
      return Status::NotFound(decoder->buffered() == 0
                                  ? "peer closed"
                                  : "peer closed mid-frame");
    }
    if (bytes_received != nullptr) bytes_received->Increment(n);
    decoder->Feed(std::string_view(buf, n));
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Server

RpcServer::RpcServer(RpcServerConfig config, RpcHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  requests_ = metrics_->GetCounter("net_server_requests_total");
  bytes_received_ = metrics_->GetCounter("net_bytes_received_total");
  bytes_sent_ = metrics_->GetCounter("net_bytes_sent_total");
  frame_corrupt_ = metrics_->GetCounter("net_frame_corrupt_total");
  errors_ = metrics_->GetCounter("net_rpc_errors_total");
  connections_g_ = metrics_->GetGauge("net_server_connections");
}

Result<std::unique_ptr<RpcServer>> RpcServer::Start(RpcServerConfig config,
                                                    RpcHandler handler) {
  auto listener_or = TcpListener::Listen(config.endpoint);
  if (!listener_or.ok()) return listener_or.status();
  std::unique_ptr<RpcServer> server(
      new RpcServer(std::move(config), std::move(handler)));
  server->listener_ = listener_or.take();
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  CloseConnections();
  // The accept loop polls with a finite deadline and rechecks
  // stopping_, so it exits on its own; only after the join is the
  // listener fd safe to close (no thread left polling it).
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_->Close();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void RpcServer::CloseConnections() {
  std::lock_guard<std::mutex> lock(mu_);
  // Shutdown, not Close: each serving thread owns its conn's fd and is
  // the only closer — shutdown() wakes it to clean up itself, so a kill
  // can never yank (and let the OS reuse) a descriptor mid-recv.
  for (auto& conn : conns_) conn->Shutdown();
}

void RpcServer::AcceptLoop() {
  // Finite poll so a stop request is noticed without anyone having to
  // close the listener fd out from under this thread.
  constexpr int kAcceptPollMs = 50;
  while (!stopping_.load()) {
    auto conn_or = listener_->Accept(kAcceptPollMs);
    if (!conn_or.ok()) {
      if (stopping_.load()) return;
      continue;  // poll deadline or transient accept failure
    }
    std::shared_ptr<TcpConn> conn(conn_or.take().release());
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      conn->Close();
      return;
    }
    // Reap finished connections opportunistically so a long-lived
    // server does not accumulate dead entries.
    std::erase_if(conns_, [](const std::shared_ptr<TcpConn>& c) {
      return c->closed();
    });
    conns_.push_back(conn);
    connections_g_->Set(static_cast<double>(conns_.size()));
    threads_.emplace_back(
        [this, conn = std::move(conn)] { ServeConn(conn); });
  }
}

void RpcServer::ServeConn(std::shared_ptr<TcpConn> conn) {
  FrameDecoder decoder(config_.frame_limits);
  while (!stopping_.load()) {
    Frame frame;
    // Idle wait has no deadline: a quiet client is not a dead client.
    const Status s = ReadFrame(conn.get(), &decoder, &frame,
                               /*deadline_ms=*/-1, bytes_received_);
    if (!s.ok()) {
      if (s.code() == StatusCode::kInternal) {
        // Corruption: the stream lost byte-sync; drop the peer.
        frame_corrupt_->Increment();
      }
      break;
    }
    if (frame.type != kRequestFrame) {
      frame_corrupt_->Increment();
      break;
    }
    storage::BinaryReader r(frame.payload);
    const uint64_t request_id = r.U64();
    const uint8_t method = r.U8();
    if (!r.ok()) {
      frame_corrupt_->Increment();
      break;
    }
    const std::string_view body(
        frame.payload.data() + (frame.payload.size() - r.remaining()),
        r.remaining());
    requests_->Increment();
    Result<std::string> result = handler_(method, body);
    if (!result.ok()) errors_->Increment();
    const std::string response =
        result.ok() ? EncodeResponse(request_id, Status::OK(),
                                     result.value())
                    : EncodeResponse(request_id, result.status(), {});
    const Status ws = conn->WriteAll(response.data(), response.size(),
                                     config_.write_deadline_ms);
    if (!ws.ok()) break;
    bytes_sent_->Increment(response.size());
  }
  conn->Close();
}

// ---------------------------------------------------------------------
// Client

RpcClient::RpcClient(RpcClientConfig config)
    : config_(std::move(config)), decoder_(config_.frame_limits) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  bytes_sent_ = metrics_->GetCounter("net_bytes_sent_total");
  bytes_received_ = metrics_->GetCounter("net_bytes_received_total");
  reconnects_ = metrics_->GetCounter("net_reconnects_total");
  errors_ = metrics_->GetCounter("net_rpc_errors_total");
  latency_ms_ = metrics_->GetHistogram("net_rpc_latency_ms");
}

RpcClient::~RpcClient() = default;

std::string RpcClient::MethodName(uint8_t method) const {
  if (config_.method_name) return config_.method_name(method);
  return StrFormat("method%u", static_cast<unsigned>(method));
}

void RpcClient::DebugDropConnection() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
}

Status RpcClient::EnsureConnected() {
  if (conn_ != nullptr) return Status::OK();
  auto conn_or =
      TcpConn::Connect(config_.endpoint, config_.connect_deadline_ms);
  if (!conn_or.ok()) return conn_or.status();
  conn_ = conn_or.take();
  decoder_ = FrameDecoder(config_.frame_limits);
  if (ever_connected_) reconnects_->Increment();
  ever_connected_ = true;
  return Status::OK();
}

Result<std::string> RpcClient::CallOnce(uint8_t method,
                                        std::string_view body,
                                        uint64_t request_id, bool* sent) {
  *sent = false;
  TURBO_RETURN_IF_ERROR(EnsureConnected());
  const std::string request = EncodeRequest(request_id, method, body);
  *sent = true;  // from here on, bytes may have reached the peer
  Status s = conn_->WriteAll(request.data(), request.size(),
                             config_.write_deadline_ms);
  if (!s.ok()) {
    conn_.reset();
    return s;
  }
  bytes_sent_->Increment(request.size());
  Frame frame;
  s = ReadFrame(conn_.get(), &decoder_, &frame, config_.read_deadline_ms,
                bytes_received_);
  if (!s.ok()) {
    conn_.reset();
    // EOF and corruption both mean "this call produced no response";
    // surface them as the retryable class — the request's fate is
    // unknown either way, and `idempotent` decides whether to retry.
    return Status::Unavailable(
        StrFormat("rpc %s: %s", MethodName(method).c_str(),
                  s.ToString().c_str()));
  }
  if (frame.type != kResponseFrame) {
    conn_.reset();
    return Status::Unavailable("rpc: unexpected frame type");
  }
  storage::BinaryReader r(frame.payload);
  const uint64_t echoed_id = r.U64();
  const uint32_t code = r.U32();
  const std::string message = r.String();
  if (!r.ok() || echoed_id != request_id) {
    conn_.reset();
    return Status::Unavailable("rpc: response desynchronized");
  }
  if (code != static_cast<uint32_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code), message);
  }
  return std::string(
      frame.payload.data() + (frame.payload.size() - r.remaining()),
      r.remaining());
}

Result<std::string> RpcClient::Call(uint8_t method, std::string_view body,
                                    bool idempotent) {
  auto it = method_ms_.find(method);
  if (it == method_ms_.end()) {
    it = method_ms_
             .emplace(method,
                      metrics_->GetHistogram(obs::LabeledMetricName(
                          "net_rpc", MethodName(method), "ms")))
             .first;
  }
  Stopwatch sw;
  int backoff_ms = config_.backoff_initial_ms;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, config_.backoff_max_ms);
    }
    bool sent = false;
    Result<std::string> result =
        CallOnce(method, body, next_request_id_++, &sent);
    if (result.ok()) {
      const double ms = sw.ElapsedMillis();
      latency_ms_->Observe(ms);
      it->second->Observe(ms);
      return result;
    }
    last = result.status();
    if (!last.IsUnavailable()) {
      // A definite remote answer (InvalidArgument, FailedPrecondition,
      // ...) — retrying cannot change it.
      errors_->Increment();
      return last;
    }
    if (sent && !idempotent) {
      // The request may have been applied; retrying could double-apply.
      errors_->Increment();
      return last;
    }
  }
  errors_->Increment();
  return Status::Unavailable(
      StrFormat("rpc %s: retries exhausted (%s)",
                MethodName(method).c_str(), last.message().c_str()));
}

}  // namespace turbo::net
