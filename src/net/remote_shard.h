// server::ShardHandle over the framed RPC layer (DESIGN.md §15): lets
// BnCluster/ShardRouter address a shard by endpoint instead of
// pointer. One client per shard; the cluster's writer thread owns the
// writer-side calls (the RPC client is single-call by contract).
//
// Error mapping follows the in-process contract: void writer operations
// (Ingest, AdvanceTo) are fail-stop — a transport failure that survived
// the retry budget CHECK-fails just as a local WAL write failure would,
// because silently dropping a routed copy would fork the cluster's
// bit-identity. OfferIngest maps transport failure to "not admitted"
// (the admission contract already allows shedding). Status-returning
// operations (Checkpoint, Recover) surface the remote Status verbatim.
//
// Retry policy per method: read-only methods (SampleSubgraph, gauges)
// are idempotent and retry freely; Ingest/IngestBatch/AdvanceTo and
// friends never retry once the request may have reached the peer —
// double-applying an ingest would double edge weights.
#pragma once

#include <memory>
#include <string>

#include "net/rpc.h"
#include "net/shard_service.h"
#include "server/prediction_server.h"
#include "server/shard_handle.h"

namespace turbo::net {

struct RemoteShardConfig {
  Endpoint endpoint;
  RpcClientConfig rpc;  // endpoint/method_name filled in by the client
};

class RemoteShardClient final : public server::ShardHandle {
 public:
  explicit RemoteShardClient(RemoteShardConfig config);

  void Ingest(const BehaviorLog& log) override;
  bool OfferIngest(const BehaviorLog& log) override;
  size_t DrainIngest(size_t max_events) override;
  size_t ingest_queue_depth() override;
  void AdvanceTo(SimTime now) override;
  Status Checkpoint() override;
  Status Recover() override;
  bn::Subgraph SampleSubgraph(UserId uid) override;
  uint64_t snapshot_version() override;
  SimTime now() override;
  uint64_t TotalEdges() override;

  /// Batch ingest (one RPC for the whole list).
  void IngestBatch(const BehaviorLogList& logs);

  /// Remote prediction (requires the shard service to host a
  /// PredictionServer).
  Result<server::PredictionResponse> Predict(UserId uid);

  RpcClient& client() { return client_; }

 private:
  Result<std::string> Call(ShardMethod method, std::string_view body,
                           bool idempotent);

  RpcClient client_;
};

}  // namespace turbo::net
