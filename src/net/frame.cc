#include "net/frame.h"

#include <cstring>

#include "storage/checkpoint_io.h"
#include "util/string_util.h"

namespace turbo::net {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  std::memcpy(b, &v, sizeof(v));
  out->append(b, sizeof(b));
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void AppendFrame(uint8_t type, std::string_view payload,
                 std::string* out) {
  std::string header;
  header.reserve(kFrameHeaderBytes);
  PutU32(static_cast<uint32_t>(payload.size()), &header);
  header.push_back(static_cast<char>(type));
  PutU32(storage::Crc32(payload.data(), payload.size()), &header);
  PutU32(storage::Crc32(header.data(), header.size()), &header);
  out->append(header);
  out->append(payload);
}

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, payload, &out);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (corrupt_) return;  // stream already dead; drop quietly
  // Compact the consumed prefix before growing, so a long-lived
  // connection does not accumulate every frame it ever decoded.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 64 * 1024) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

FrameDecoder::Event FrameDecoder::Next(Frame* out) {
  if (corrupt_) return Event::kCorrupt;
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Event::kNeedMore;
  const char* h = buf_.data() + pos_;
  const uint32_t stored_header_crc = GetU32(h + 9);
  const uint32_t actual_header_crc = storage::Crc32(h, 9);
  if (stored_header_crc != actual_header_crc) {
    corrupt_ = true;
    error_ = StrFormat("frame header CRC mismatch (stored %08x != %08x)",
                       stored_header_crc, actual_header_crc);
    return Event::kCorrupt;
  }
  const uint32_t payload_len = GetU32(h);
  if (payload_len > limits_.max_payload) {
    // The header CRC validated, so this is an honest peer announcing a
    // frame past the negotiated bound — still fatal, never a stall.
    corrupt_ = true;
    error_ = StrFormat("frame payload %u exceeds limit %zu", payload_len,
                       limits_.max_payload);
    return Event::kCorrupt;
  }
  if (avail < kFrameHeaderBytes + payload_len) return Event::kNeedMore;
  const char* payload = h + kFrameHeaderBytes;
  const uint32_t stored_payload_crc = GetU32(h + 5);
  const uint32_t actual_payload_crc = storage::Crc32(payload, payload_len);
  if (stored_payload_crc != actual_payload_crc) {
    corrupt_ = true;
    error_ =
        StrFormat("frame payload CRC mismatch (stored %08x != %08x)",
                  stored_payload_crc, actual_payload_crc);
    return Event::kCorrupt;
  }
  out->type = static_cast<uint8_t>(h[4]);
  out->payload.assign(payload, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  return Event::kFrame;
}

}  // namespace turbo::net
