#include "net/remote_shard.h"

#include <utility>

#include "net/wire.h"
#include "storage/checkpoint_io.h"
#include "util/string_util.h"

namespace turbo::net {

namespace {

RpcClientConfig MakeClientConfig(RemoteShardConfig config) {
  RpcClientConfig rpc = std::move(config.rpc);
  rpc.endpoint = config.endpoint;
  if (!rpc.method_name) rpc.method_name = ShardMethodName;
  return rpc;
}

}  // namespace

RemoteShardClient::RemoteShardClient(RemoteShardConfig config)
    : client_(MakeClientConfig(std::move(config))) {}

Result<std::string> RemoteShardClient::Call(ShardMethod method,
                                            std::string_view body,
                                            bool idempotent) {
  return client_.Call(static_cast<uint8_t>(method), body, idempotent);
}

void RemoteShardClient::Ingest(const BehaviorLog& log) {
  storage::BinaryWriter w;
  EncodeBehaviorLog(log, &w);
  auto result = Call(ShardMethod::kIngest, w.data(),
                     /*idempotent=*/false);
  TURBO_CHECK_MSG(result.ok(), "remote Ingest failed: "
                                   << result.status().ToString());
}

void RemoteShardClient::IngestBatch(const BehaviorLogList& logs) {
  storage::BinaryWriter w;
  EncodeLogBatch(logs, &w);
  auto result = Call(ShardMethod::kIngestBatch, w.data(),
                     /*idempotent=*/false);
  TURBO_CHECK_MSG(result.ok(), "remote IngestBatch failed: "
                                   << result.status().ToString());
}

bool RemoteShardClient::OfferIngest(const BehaviorLog& log) {
  storage::BinaryWriter w;
  EncodeBehaviorLog(log, &w);
  // A transport failure sheds the log — the admission contract's
  // "reject instead of stall", extended to "reject instead of guess
  // whether the peer applied it".
  auto result = Call(ShardMethod::kOfferIngest, w.data(),
                     /*idempotent=*/false);
  if (!result.ok()) return false;
  storage::BinaryReader r(result.value());
  const bool admitted = r.U8() != 0;
  return r.ok() && r.remaining() == 0 && admitted;
}

size_t RemoteShardClient::DrainIngest(size_t max_events) {
  storage::BinaryWriter w;
  w.U64(max_events);
  auto result = Call(ShardMethod::kDrainIngest, w.data(),
                     /*idempotent=*/false);
  TURBO_CHECK_MSG(result.ok(), "remote DrainIngest failed: "
                                   << result.status().ToString());
  storage::BinaryReader r(result.value());
  const uint64_t applied = r.U64();
  TURBO_CHECK(r.ok() && r.remaining() == 0);
  return applied;
}

size_t RemoteShardClient::ingest_queue_depth() {
  auto result = Call(ShardMethod::kQueueDepth, {}, /*idempotent=*/true);
  TURBO_CHECK_MSG(result.ok(), "remote queue_depth failed: "
                                   << result.status().ToString());
  storage::BinaryReader r(result.value());
  const uint64_t depth = r.U64();
  TURBO_CHECK(r.ok() && r.remaining() == 0);
  return depth;
}

void RemoteShardClient::AdvanceTo(SimTime now) {
  storage::BinaryWriter w;
  w.I64(now);
  // AdvanceTo is idempotent in effect (advancing to the same time
  // twice is a no-op), but a retried half-applied advance would still
  // re-run window jobs; the server's writer mutex makes the call
  // all-or-nothing, so effect-level idempotence holds and retrying a
  // lost response is safe.
  auto result = Call(ShardMethod::kAdvanceTo, w.data(),
                     /*idempotent=*/true);
  TURBO_CHECK_MSG(result.ok(), "remote AdvanceTo failed: "
                                   << result.status().ToString());
}

Status RemoteShardClient::Checkpoint() {
  auto result = Call(ShardMethod::kCheckpoint, {}, /*idempotent=*/true);
  return result.status();
}

Status RemoteShardClient::Recover() {
  auto result = Call(ShardMethod::kRecover, {}, /*idempotent=*/true);
  return result.status();
}

bn::Subgraph RemoteShardClient::SampleSubgraph(UserId uid) {
  storage::BinaryWriter w;
  w.U32(uid);
  auto result = Call(ShardMethod::kSampleSubgraph, w.data(),
                     /*idempotent=*/true);
  TURBO_CHECK_MSG(result.ok(), "remote SampleSubgraph failed: "
                                   << result.status().ToString());
  bn::Subgraph sg;
  const Status s = DecodeAll(result.value(), &sg, DecodeSubgraph);
  TURBO_CHECK_MSG(s.ok(), "bad subgraph payload: " << s.ToString());
  return sg;
}

uint64_t RemoteShardClient::snapshot_version() {
  auto result =
      Call(ShardMethod::kSnapshotVersion, {}, /*idempotent=*/true);
  TURBO_CHECK_MSG(result.ok(), "remote snapshot_version failed: "
                                   << result.status().ToString());
  storage::BinaryReader r(result.value());
  const uint64_t version = r.U64();
  TURBO_CHECK(r.ok() && r.remaining() == 0);
  return version;
}

SimTime RemoteShardClient::now() {
  auto result = Call(ShardMethod::kNow, {}, /*idempotent=*/true);
  TURBO_CHECK_MSG(result.ok(),
                  "remote now failed: " << result.status().ToString());
  storage::BinaryReader r(result.value());
  const SimTime now = r.I64();
  TURBO_CHECK(r.ok() && r.remaining() == 0);
  return now;
}

uint64_t RemoteShardClient::TotalEdges() {
  auto result = Call(ShardMethod::kTotalEdges, {}, /*idempotent=*/true);
  TURBO_CHECK_MSG(result.ok(), "remote TotalEdges failed: "
                                   << result.status().ToString());
  storage::BinaryReader r(result.value());
  const uint64_t edges = r.U64();
  TURBO_CHECK(r.ok() && r.remaining() == 0);
  return edges;
}

Result<server::PredictionResponse> RemoteShardClient::Predict(
    UserId uid) {
  storage::BinaryWriter w;
  w.U32(uid);
  auto result = Call(ShardMethod::kPredict, w.data(),
                     /*idempotent=*/true);
  if (!result.ok()) return result.status();
  server::PredictionResponse resp;
  TURBO_RETURN_IF_ERROR(
      DecodeAll(result.value(), &resp, DecodePredictionResponse));
  return resp;
}

}  // namespace turbo::net
