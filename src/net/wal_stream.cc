#include "net/wal_stream.h"

#include <utility>

#include "net/shard_service.h"
#include "storage/checkpoint_io.h"
#include "util/string_util.h"

namespace turbo::net {

namespace {

/// Flat replica file names must stay inside the replica directory; a
/// peer sending "../x" is malformed or hostile either way.
Status CheckName(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find("..") != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("bad replica file name '%s'", name.c_str()));
  }
  return Status::OK();
}

}  // namespace

// --- WalSinkService ---------------------------------------------------

WalSinkService::WalSinkService(WalSinkServiceConfig config)
    : config_(std::move(config)), sink_(config_.replica_dir) {}

Result<std::unique_ptr<WalSinkService>> WalSinkService::Start(
    WalSinkServiceConfig config) {
  std::unique_ptr<WalSinkService> service(
      new WalSinkService(std::move(config)));
  RpcServerConfig rpc;
  rpc.endpoint = service->config_.endpoint;
  rpc.read_deadline_ms = service->config_.read_deadline_ms;
  rpc.write_deadline_ms = service->config_.write_deadline_ms;
  rpc.frame_limits = service->config_.frame_limits;
  rpc.metrics = service->config_.metrics;
  rpc.method_name = ShardMethodName;
  auto server_or = RpcServer::Start(
      std::move(rpc), [s = service.get()](uint8_t method,
                                          std::string_view body) {
        return s->Dispatch(method, body);
      });
  if (!server_or.ok()) return server_or.status();
  service->rpc_ = server_or.take();
  return service;
}

WalSinkService::~WalSinkService() { Stop(); }

void WalSinkService::Stop() {
  if (rpc_ != nullptr) rpc_->Stop();
}

void WalSinkService::CloseConnections() {
  if (rpc_ != nullptr) rpc_->CloseConnections();
}

Result<std::string> WalSinkService::Dispatch(uint8_t method,
                                             std::string_view body) {
  storage::BinaryReader r(body);
  storage::BinaryWriter w;
  switch (static_cast<WalSinkMethod>(method)) {
    case WalSinkMethod::kStat: {
      const std::string name = r.String();
      const bool want_crc = r.U8() != 0;
      if (!r.ok() || r.remaining() != 0) {
        return Status::InvalidArgument("malformed stat request");
      }
      TURBO_RETURN_IF_ERROR(CheckName(name));
      auto stat_or = sink_.Stat(name, want_crc);
      if (!stat_or.ok()) return stat_or.status();
      w.U8(stat_or.value().exists ? 1 : 0);
      w.U64(stat_or.value().size);
      w.U32(stat_or.value().crc32);
      return w.data();
    }
    case WalSinkMethod::kAppendAt: {
      const std::string name = r.String();
      const uint64_t offset = r.U64();
      if (!r.ok()) {
        return Status::InvalidArgument("malformed append request");
      }
      TURBO_RETURN_IF_ERROR(CheckName(name));
      const std::string_view bytes(
          body.data() + (body.size() - r.remaining()), r.remaining());
      TURBO_RETURN_IF_ERROR(sink_.AppendAt(name, offset, bytes));
      return std::string();
    }
    case WalSinkMethod::kWriteAtomic: {
      const std::string name = r.String();
      if (!r.ok()) {
        return Status::InvalidArgument("malformed write request");
      }
      TURBO_RETURN_IF_ERROR(CheckName(name));
      const std::string_view bytes(
          body.data() + (body.size() - r.remaining()), r.remaining());
      TURBO_RETURN_IF_ERROR(sink_.WriteAtomic(name, bytes));
      return std::string();
    }
    case WalSinkMethod::kDelete: {
      const std::string name = r.String();
      if (!r.ok() || r.remaining() != 0) {
        return Status::InvalidArgument("malformed delete request");
      }
      TURBO_RETURN_IF_ERROR(CheckName(name));
      TURBO_RETURN_IF_ERROR(sink_.Delete(name));
      return std::string();
    }
    case WalSinkMethod::kListFiles: {
      if (r.remaining() != 0) {
        return Status::InvalidArgument("malformed list request");
      }
      auto names_or = sink_.ListFiles();
      if (!names_or.ok()) return names_or.status();
      w.U64(names_or.value().size());
      for (const std::string& name : names_or.value()) w.String(name);
      return w.data();
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown wal-sink method %u",
                static_cast<unsigned>(method)));
}

// --- RpcWalShipSink ---------------------------------------------------

Result<storage::WalShipFileStat> RpcWalShipSink::Stat(
    const std::string& name, bool want_crc) {
  storage::BinaryWriter w;
  w.String(name);
  w.U8(want_crc ? 1 : 0);
  auto body_or =
      client_->Call(static_cast<uint8_t>(WalSinkMethod::kStat), w.data(),
                    /*idempotent=*/true);
  if (!body_or.ok()) return body_or.status();
  storage::BinaryReader r(body_or.value());
  storage::WalShipFileStat stat;
  stat.exists = r.U8() != 0;
  stat.size = r.U64();
  stat.crc32 = r.U32();
  if (!r.ok() || r.remaining() != 0) {
    return Status::Internal("malformed stat response");
  }
  return stat;
}

Status RpcWalShipSink::AppendAt(const std::string& name, uint64_t offset,
                                std::string_view bytes) {
  storage::BinaryWriter w;
  w.String(name);
  w.U64(offset);
  w.Bytes(bytes.data(), bytes.size());
  // Offset-checked at the receiver: a duplicated delivery is a verified
  // no-op, which is what makes this retry-safe.
  auto body_or =
      client_->Call(static_cast<uint8_t>(WalSinkMethod::kAppendAt),
                    w.data(), /*idempotent=*/true);
  return body_or.status();
}

Status RpcWalShipSink::WriteAtomic(const std::string& name,
                                   std::string_view bytes) {
  storage::BinaryWriter w;
  w.String(name);
  w.Bytes(bytes.data(), bytes.size());
  auto body_or =
      client_->Call(static_cast<uint8_t>(WalSinkMethod::kWriteAtomic),
                    w.data(), /*idempotent=*/true);
  return body_or.status();
}

Status RpcWalShipSink::Delete(const std::string& name) {
  storage::BinaryWriter w;
  w.String(name);
  auto body_or =
      client_->Call(static_cast<uint8_t>(WalSinkMethod::kDelete),
                    w.data(), /*idempotent=*/true);
  return body_or.status();
}

Result<std::vector<std::string>> RpcWalShipSink::ListFiles() {
  auto body_or =
      client_->Call(static_cast<uint8_t>(WalSinkMethod::kListFiles), {},
                    /*idempotent=*/true);
  if (!body_or.ok()) return body_or.status();
  storage::BinaryReader r(body_or.value());
  const uint64_t n = r.U64();
  if (!r.ok() || n > r.remaining() / 8 + 1) {
    return Status::Internal("malformed list response");
  }
  std::vector<std::string> names;
  names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) names.push_back(r.String());
  if (!r.ok() || r.remaining() != 0) {
    return Status::Internal("malformed list response");
  }
  return names;
}

Result<storage::WalShipStats> ShipWalOverRpc(
    const std::string& src, RpcClient* client,
    const storage::WalShipOptions& options) {
  RpcWalShipSink sink(client);
  return storage::ShipWal(src, &sink, options);
}

}  // namespace turbo::net
