// Synthetic deposit-free-leasing workload generator.
//
// Substitutes for the proprietary Jimi Store dataset (see DESIGN.md §2).
// The generator is built to reproduce the paper's four empirical
// observations on BN (Section III-B):
//
//  1. *Time burst*    — fraudsters' behavior logs concentrate in a short
//                       window around the application; normal users' logs
//                       scatter over the whole lease period.
//  2. *Temporal aggregation* — logs sharing the same (type, value) occur
//                       at short pairwise intervals for fraudsters (ring
//                       members act within 0–3 days of each other).
//  3. *Homophily*     — fraudsters' n-hop neighborhoods are fraud-rich
//                       because rings share devices/IPs/locations.
//  4. *Structural difference* — fraudster nodes have higher (weighted)
//                       degree.
//
// Fraudsters come in two flavors mirroring the grey-industry tactics the
// paper cites: "risky" fraudsters whose profile features are visibly bad
// (thin credit, fresh phone numbers), and "stealth" fraudsters using
// stolen/packaged identities whose profile features are drawn from the
// normal population — only their graph context betrays them. This split is
// what gives feature-only baselines their high-precision/low-recall shape
// in Table III.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "storage/behavior_log.h"
#include "util/rng.h"

namespace turbo::datagen {

struct ScenarioConfig {
  uint64_t seed = 20210415;

  // --- population ---
  int num_users = 8000;
  double fraud_rate = 0.014;          // D1: 918 / 67,072 ≈ 1.37%
  double stealth_fraud_fraction = 0.5;
  int min_ring_size = 4;
  int max_ring_size = 15;

  // --- timeline ---
  SimTime horizon = 540 * kDay;       // Jan 2017 – Jun 2018
  SimTime lease_period = 90 * kDay;
  SimTime fraud_burst_span = 3 * kDay;   // ring members apply within this
  SimTime fraud_activity_halfwidth = 36 * kHour;  // logs around own app

  // --- normal-user activity ---
  double normal_events_mean = 40.0;   // app sessions over the lease
  /// Log-normal spread of per-user activity (sigma of log events).
  double normal_events_sigma = 0.8;
  /// Fraction of normal applicants who registered only days before
  /// applying — their audit-time history is as thin and bursty as a
  /// fraudster's, which is what caps feature-only precision/recall.
  double normal_new_user_fraction = 0.6;
  double household_ip_users = 1.35;   // avg users behind one home IP
  double household_device_prob = 0.02;  // per-event use of a shared family
                                        // device (tablet etc.)
  /// Refurbished/secondhand handsets circulate between owners at
  /// *different times*. Time-windowed BN construction correctly ignores
  /// them; time-agnostic bipartite baselines (BLP/DTX) are confused by
  /// them — one of the paper's arguments for BN.
  double secondhand_device_fraction = 0.15;
  double secondhand_pool_per_user = 0.06;
  double public_wifi_prob = 0.04;     // per-event chance of a shared AP
  int num_public_wifi = 150;           // shared AP pool (Zipf popularity)
  double workplace_share_prob = 0.35; // user has a multi-user workplace
  int workplace_pool = 400;
  double workplace_checkin_prob = 0.25;  // per-session workplace log
  /// Delivery addresses cluster into apartment buildings; unrelated
  /// neighbors applying the same day get (uninformative) GPSDev edges.
  double users_per_delivery_building = 40.0;
  int gps_grid = 4000;                // distinct 100m cells in the city
  double cell_zipf = 0.4;             // popularity skew of city cells
  double mobility = 0.2;              // per-event chance of a non-home cell

  // --- fraud behavior ---
  /// Fraction of fraudsters operating alone (churn-and-run with a single
  /// identity): bursty in time but graph-isolated, which bounds any graph
  /// method's recall — mirroring the paper's imperfect recall ceiling.
  double lone_fraud_fraction = 0.08;
  /// Ring operational discipline varies: each ring scales its sharing
  /// probabilities by U(ring_discipline_min, 1).
  double ring_discipline_min = 0.45;
  /// Grey-industry operators run several rings as one campaign: member
  /// rings launch within `campaign_spread` of each other and draw part
  /// of their devices/IPs from the campaign's farm pool. This produces
  /// the overlapping cliques of the paper's Fig. 6 and the high fraud-
  /// neighborhood degrees of Fig. 4h-i.
  double farm_pool_fraction = 0.5;
  int rings_per_campaign = 4;
  SimTime campaign_spread = 5 * kDay;
  double ring_device_sharing = 0.75;  // chance an event uses a ring device
  double ring_devices_per_member = 0.4;  // ring device pool ≈ size * this
  double ring_ip_sharing = 0.7;
  double ring_gps_sharing = 0.8;
  double ring_delivery_sharing = 0.5;
  /// Rings often operate from ordinary city locations, so their GPS cells
  /// collide with normal users' cells.
  double ring_cell_from_city_prob = 0.8;
  /// Fraudsters also ride public Wi-Fi, wiring them weakly into the
  /// normal population (the mixed-clique case SAO is designed for).
  double fraud_public_wifi_prob = 0.1;
  /// Fraction of fraudsters on aged/"warmed" accounts (stolen identities
  /// or deliberately packaged credit) whose background activity predates
  /// the burst, blunting the statistical-feature signal.
  double fraud_warmed_fraction = 0.3;
  double fraud_events_mean = 14.0;

  // --- derived dataset presets ---
  /// D1-like: labeled post-audit population, ~1.4% positive.
  static ScenarioConfig D1Like(int num_users = 8000);
  /// D2-like: includes applications rejected by the legacy risk system,
  /// so positives dominate (Table II: 989,728 / 1,072,205 ≈ 92%). We keep
  /// the majority-positive character at a trainable 65%.
  static ScenarioConfig D2Like(int num_users = 20000);
};

struct UserRecord {
  UserId uid = 0;
  bool is_fraud = false;
  bool stealth = false;     // identity-theft fraudster (clean features)
  /// Ring index; -1 for normal users and for lone-wolf fraudsters.
  int ring_id = -1;
  bool lone_fraud = false;  // fraudster operating without a ring
  SimTime registration_time = 0;
  SimTime application_time = 0;
};

inline constexpr int kNumProfileFeatures = 26;

struct Dataset {
  ScenarioConfig config;
  std::vector<UserRecord> users;          // index == uid
  BehaviorLogList logs;                   // sorted by time
  la::Matrix profile_features;            // [num_users, kNumProfileFeatures]
  std::vector<std::string> feature_names; // size kNumProfileFeatures

  int NumFraud() const;
  std::vector<int> Labels() const;  // 0/1 per uid
};

/// Generates a full dataset. Deterministic in config.seed.
Dataset GenerateScenario(const ScenarioConfig& config);

}  // namespace turbo::datagen
