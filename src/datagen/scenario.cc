#include "datagen/scenario.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace turbo::datagen {

namespace {

float Clip(double v, double lo, double hi) {
  return static_cast<float>(std::min(hi, std::max(lo, v)));
}

float Clip01(double v) { return Clip(v, 0.0, 1.0); }

/// A physical handset: three hardware identities observed together.
struct Device {
  ValueId device_id;
  ValueId imei;
  ValueId imsi;
};

class ValueAllocator {
 public:
  ValueId Next() { return next_++; }
  Device NextDevice() { return Device{Next(), Next(), Next()}; }

 private:
  ValueId next_ = 1;  // 0 reserved as "no value"
};

struct RingResources {
  std::vector<Device> devices;
  std::vector<ValueId> ips;
  ValueId wifi_mac;
  std::vector<ValueId> gps_cells;
  ValueId delivery_cell;
  SimTime start_time;
  double discipline = 1.0;  // scales all sharing probabilities
};

class Generator {
 public:
  explicit Generator(const ScenarioConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  Dataset Run();

 private:
  void AssignRoles();
  void BuildSharedPools();
  int DrawEventCount();
  ValueId MobileIp(UserId uid);
  const Device& OwnDevice(UserId uid);
  void EmitNormalSession(UserId uid, SimTime t);
  void EmitNormalUser(UserId uid);
  void EmitFraudster(UserId uid, const RingResources& ring);
  void EmitLoneFraudster(UserId uid);
  void EmitWarmupBackground(UserId uid);
  /// Popularity-skewed city cell (hot malls / dense blocks collide).
  ValueId CityCell() {
    return gps_cells_[rng_.NextZipf(gps_cells_.size(), cfg_.cell_zipf)];
  }
  void EmitSessionLogs(UserId uid, SimTime t, const Device& dev, ValueId ip,
                       ValueId wifi_mac, ValueId gps_cell);
  void EmitApplicationLogs(UserId uid, SimTime t, ValueId delivery_cell,
                           ValueId workplace);
  la::Matrix MakeProfileFeatures();

  void Log(UserId uid, BehaviorType type, ValueId v, SimTime t) {
    if (v == 0) return;
    ds_.logs.push_back({uid, type, v, t});
  }

  ScenarioConfig cfg_;
  Rng rng_;
  ValueAllocator alloc_;
  Dataset ds_;

  // Shared normal-world pools.
  std::vector<ValueId> home_ips_;       // household NAT addresses
  std::vector<ValueId> home_wifis_;     // household AP MAC (parallel)
  std::vector<Device> home_devices_;    // shared family device (parallel)
  std::vector<ValueId> public_wifi_ip_;
  std::vector<ValueId> public_wifi_mac_;
  std::vector<ValueId> workplaces_;
  std::vector<ValueId> gps_cells_;
  std::vector<Device> secondhand_pool_;
  std::vector<ValueId> delivery_buildings_;
  std::vector<Device> farm_devices_;   // current campaign's device farm
  std::vector<ValueId> farm_ips_;
  int rings_in_campaign_ = 0;
  SimTime campaign_base_ = 0;

  // Per-user placement.
  std::vector<bool> warmed_;            // fraudster with aged account
  std::vector<int> household_;          // index into home_ips_
  std::vector<ValueId> home_cell_;
  std::vector<ValueId> workplace_;      // 0 if none/unique
  std::vector<Device> personal_device_;
  std::vector<Device> second_device_;   // laptop/tablet; device_id==0 if none
  std::vector<ValueId> mobile_nat_;     // current carrier-NAT address
  std::vector<RingResources> rings_;
};

void Generator::AssignRoles() {
  const int n = cfg_.num_users;
  ds_.users.resize(n);
  int target_fraud =
      std::max(cfg_.min_ring_size,
               static_cast<int>(std::lround(n * cfg_.fraud_rate)));

  // Pick fraud uids up front so rings are contiguous groups of random ids.
  auto fraud_ids = rng_.SampleWithoutReplacement(n, target_fraud);

  for (int uid = 0; uid < n; ++uid) {
    auto& u = ds_.users[uid];
    u.uid = static_cast<UserId>(uid);
    u.registration_time =
        static_cast<SimTime>(rng_.NextDouble(0, cfg_.horizon * 0.95));
  }

  // A fraction of fraudsters operate alone; the rest form rings.
  size_t num_lone = static_cast<size_t>(
      fraud_ids.size() * cfg_.lone_fraud_fraction);
  for (size_t k = 0; k < num_lone; ++k) {
    auto& u = ds_.users[fraud_ids[k]];
    u.is_fraud = true;
    u.lone_fraud = true;
    // Identity packaging is a grey-industry (ring) service; lone wolves
    // churn-and-run on their own visibly thin identities.
    u.stealth = false;
    u.application_time = static_cast<SimTime>(rng_.NextDouble(
        7.0 * kDay,
        std::max<double>(8.0 * kDay, cfg_.horizon - cfg_.lease_period)));
    u.registration_time =
        u.application_time -
        static_cast<SimTime>(rng_.NextExponential(5.0 * kDay));
    if (u.registration_time < 0) u.registration_time = 0;
  }

  // Partition the remaining fraudsters into rings with synchronized
  // timelines.
  size_t i = num_lone;
  while (i < fraud_ids.size()) {
    int size = static_cast<int>(
        rng_.NextInt(cfg_.min_ring_size, cfg_.max_ring_size));
    size = std::min<int>(size, static_cast<int>(fraud_ids.size() - i));
    RingResources ring;
    if (rings_in_campaign_ == 0) {
      // New campaign: fresh farm pools, fresh launch window.
      campaign_base_ = static_cast<SimTime>(rng_.NextDouble(
          7.0 * kDay, std::max<double>(8.0 * kDay,
                                       cfg_.horizon - cfg_.lease_period)));
      farm_devices_.clear();
      farm_ips_.clear();
      rings_in_campaign_ = std::max(1, cfg_.rings_per_campaign);
    }
    --rings_in_campaign_;
    ring.start_time =
        campaign_base_ + static_cast<SimTime>(rng_.NextDouble(
                             0, static_cast<double>(cfg_.campaign_spread)));
    int num_devices = std::max(
        1, static_cast<int>(std::lround(size * cfg_.ring_devices_per_member)));
    for (int d = 0; d < num_devices; ++d) {
      if (rng_.NextBool(cfg_.farm_pool_fraction)) {
        if (farm_devices_.size() < 4 || rng_.NextBool(0.3)) {
          farm_devices_.push_back(alloc_.NextDevice());
        }
        ring.devices.push_back(
            farm_devices_[rng_.NextUint(farm_devices_.size())]);
      } else {
        ring.devices.push_back(alloc_.NextDevice());
      }
    }
    int num_ips = 1 + static_cast<int>(rng_.NextBool(0.4));
    for (int d = 0; d < num_ips; ++d) {
      if (rng_.NextBool(cfg_.farm_pool_fraction)) {
        if (farm_ips_.size() < 3 || rng_.NextBool(0.3)) {
          farm_ips_.push_back(alloc_.Next());
        }
        ring.ips.push_back(farm_ips_[rng_.NextUint(farm_ips_.size())]);
      } else {
        ring.ips.push_back(alloc_.Next());
      }
    }
    ring.wifi_mac = alloc_.Next();
    ring.discipline = rng_.NextDouble(cfg_.ring_discipline_min, 1.0);
    int num_cells = 1 + static_cast<int>(rng_.NextBool(0.35));
    for (int d = 0; d < num_cells; ++d) {
      // Dens sit in ordinary city blocks half the time, colliding with
      // normal users' movement cells.
      ring.gps_cells.push_back(rng_.NextBool(cfg_.ring_cell_from_city_prob)
                                   ? 0  // patched after pools exist
                                   : alloc_.Next());
    }
    ring.delivery_cell = alloc_.Next();
    int ring_id = static_cast<int>(rings_.size());

    for (int m = 0; m < size; ++m, ++i) {
      auto& u = ds_.users[fraud_ids[i]];
      u.is_fraud = true;
      u.stealth = rng_.NextBool(cfg_.stealth_fraud_fraction);
      u.ring_id = ring_id;
      u.application_time =
          ring.start_time +
          static_cast<SimTime>(rng_.NextDouble(0, cfg_.fraud_burst_span));
      u.registration_time =
          u.application_time -
          static_cast<SimTime>(rng_.NextExponential(5.0 * kDay));
      if (u.registration_time < 0) u.registration_time = 0;
    }
    rings_.push_back(std::move(ring));
  }

  // Normal users: a share are brand-new registrants (thin history at
  // audit time, like a fraudster's); the rest apply well into an
  // established usage history.
  for (auto& u : ds_.users) {
    if (u.is_fraud) continue;
    if (rng_.NextBool(cfg_.normal_new_user_fraction)) {
      u.application_time =
          u.registration_time +
          static_cast<SimTime>(rng_.NextDouble(kHour, 3.0 * kDay));
    } else {
      double latest = std::max<double>(u.registration_time + kDay,
                                       cfg_.horizon - cfg_.lease_period / 3);
      u.application_time =
          u.registration_time +
          static_cast<SimTime>(rng_.NextDouble(
              kDay, std::max<double>(2.0 * kDay,
                                     latest - u.registration_time)));
    }
    if (u.application_time > cfg_.horizon) u.application_time = cfg_.horizon;
  }

  // Warmed fraud accounts: registration moved well before the burst.
  warmed_.assign(ds_.users.size(), false);
  for (auto& u : ds_.users) {
    if (u.is_fraud && rng_.NextBool(cfg_.fraud_warmed_fraction)) {
      warmed_[u.uid] = true;
      u.registration_time = std::max<SimTime>(
          0, u.application_time -
                 static_cast<SimTime>(rng_.NextDouble(30, 200) * kDay));
    }
  }
}

void Generator::BuildSharedPools() {
  const int n = cfg_.num_users;
  int num_households = std::max(
      1, static_cast<int>(n / cfg_.household_ip_users));
  home_ips_.resize(num_households);
  home_wifis_.resize(num_households);
  home_devices_.resize(num_households);
  for (int h = 0; h < num_households; ++h) {
    home_ips_[h] = alloc_.Next();
    home_wifis_[h] = alloc_.Next();
    home_devices_[h] = alloc_.NextDevice();
  }
  public_wifi_ip_.resize(cfg_.num_public_wifi);
  public_wifi_mac_.resize(cfg_.num_public_wifi);
  for (int w = 0; w < cfg_.num_public_wifi; ++w) {
    public_wifi_ip_[w] = alloc_.Next();
    public_wifi_mac_[w] = alloc_.Next();
  }
  workplaces_.resize(cfg_.workplace_pool);
  for (auto& w : workplaces_) w = alloc_.Next();
  const int refurb = std::max(
      1, static_cast<int>(n * cfg_.secondhand_pool_per_user));
  secondhand_pool_.resize(refurb);
  for (auto& d : secondhand_pool_) d = alloc_.NextDevice();
  delivery_buildings_.resize(std::max(
      1, static_cast<int>(n / cfg_.users_per_delivery_building)));
  for (auto& b : delivery_buildings_) b = alloc_.Next();
  gps_cells_.resize(cfg_.gps_grid);
  for (auto& g : gps_cells_) g = alloc_.Next();

  household_.resize(n);
  home_cell_.resize(n);
  workplace_.resize(n);
  personal_device_.resize(n);
  second_device_.resize(n);
  mobile_nat_.resize(n);
  for (int uid = 0; uid < n; ++uid) {
    household_[uid] = static_cast<int>(rng_.NextUint(num_households));
    home_cell_[uid] = gps_cells_[rng_.NextUint(gps_cells_.size())];
    workplace_[uid] =
        (ds_.users[uid].is_fraud ||
         rng_.NextBool(cfg_.workplace_share_prob))
            ? workplaces_[rng_.NextUint(workplaces_.size())]
            : alloc_.Next();
    personal_device_[uid] =
        rng_.NextBool(cfg_.secondhand_device_fraction)
            ? secondhand_pool_[rng_.NextZipf(secondhand_pool_.size(), 0.7)]
            : alloc_.NextDevice();
    second_device_[uid] = rng_.NextBool(0.35) ? alloc_.NextDevice()
                                              : Device{0, 0, 0};
    mobile_nat_[uid] = alloc_.Next();
  }
}

void Generator::EmitSessionLogs(UserId uid, SimTime t, const Device& dev,
                                ValueId ip, ValueId wifi_mac,
                                ValueId gps_cell) {
  Log(uid, BehaviorType::kDeviceId, dev.device_id, t);
  Log(uid, BehaviorType::kImei, dev.imei, t);
  Log(uid, BehaviorType::kImsi, dev.imsi, t);
  Log(uid, BehaviorType::kIpv4, ip, t);
  Log(uid, BehaviorType::kWifiMac, wifi_mac, t);
  Log(uid, BehaviorType::kGps100, gps_cell, t);
  // Raw GPS coordinates: unique per observation (never collide), recorded
  // for completeness like the paper's Table I.
  Log(uid, BehaviorType::kGps, alloc_.Next(), t);
}

void Generator::EmitApplicationLogs(UserId uid, SimTime t,
                                    ValueId delivery_cell,
                                    ValueId workplace) {
  Log(uid, BehaviorType::kGpsDev, alloc_.Next(), t);
  Log(uid, BehaviorType::kGpsDev100, delivery_cell, t);
  Log(uid, BehaviorType::kWorkplace, workplace, t);
}

ValueId Generator::MobileIp(UserId uid) {
  // Carrier NAT addresses are sticky but re-roll on reconnects.
  if (rng_.NextBool(0.3)) mobile_nat_[uid] = alloc_.Next();
  return mobile_nat_[uid];
}

const Device& Generator::OwnDevice(UserId uid) {
  if (second_device_[uid].device_id != 0 && rng_.NextBool(0.25)) {
    return second_device_[uid];
  }
  return personal_device_[uid];
}

int Generator::DrawEventCount() {
  // Log-normal activity: median normal_events_mean, heavy right tail.
  const double mu = std::log(cfg_.normal_events_mean);
  const double lambda =
      std::exp(rng_.NextGaussian(mu, cfg_.normal_events_sigma));
  return std::max(2, rng_.NextPoisson(lambda));
}

void Generator::EmitNormalSession(UserId uid, SimTime t) {
  ValueId ip, wifi = 0;
  double r = rng_.NextDouble();
  if (r < cfg_.public_wifi_prob) {
    size_t w = rng_.NextZipf(public_wifi_ip_.size(), 1.1);
    ip = public_wifi_ip_[w];
    wifi = public_wifi_mac_[w];
  } else if (r < cfg_.public_wifi_prob + 0.62) {
    ip = home_ips_[household_[uid]];
    wifi = home_wifis_[household_[uid]];
  } else {
    ip = MobileIp(uid);
  }
  ValueId cell = rng_.NextBool(cfg_.mobility) ? CityCell() : home_cell_[uid];
  const Device& dev = rng_.NextBool(cfg_.household_device_prob)
                          ? home_devices_[household_[uid]]
                          : OwnDevice(uid);
  EmitSessionLogs(uid, t, dev, ip, wifi, cell);
  if (rng_.NextBool(cfg_.workplace_checkin_prob)) {
    Log(uid, BehaviorType::kWorkplace, workplace_[uid], t);
  }
}

void Generator::EmitNormalUser(UserId uid) {
  const auto& u = ds_.users[uid];
  const SimTime lo = std::max<SimTime>(0, u.registration_time);
  const SimTime hi =
      std::min<SimTime>(cfg_.horizon, u.application_time + cfg_.lease_period);

  // Background usage over the whole membership, thinned for short
  // histories (recent registrants simply haven't had the time).
  int events = DrawEventCount();
  const double window_days = static_cast<double>(hi - lo) / kDay;
  events = std::min<int>(events,
                         std::max(2, static_cast<int>(window_days * 8)));
  for (int e = 0; e < events; ++e) {
    SimTime t = lo + static_cast<SimTime>(
                         rng_.NextDouble(0, static_cast<double>(hi - lo)));
    EmitNormalSession(uid, t);
  }

  // Pre-application shopping burst: every applicant researches the item
  // in the days before applying, so elevated recent activity alone does
  // not mark fraud.
  int burst = 1 + rng_.NextPoisson(9.0);
  const SimTime b_lo = std::max<SimTime>(lo, u.application_time - 2 * kDay);
  const SimTime b_hi = std::min<SimTime>(hi, u.application_time + kDay);
  for (int e = 0; e < burst; ++e) {
    SimTime t =
        b_lo + static_cast<SimTime>(
                   rng_.NextDouble(0, static_cast<double>(b_hi - b_lo)));
    EmitNormalSession(uid, t);
  }
  EmitApplicationLogs(
      uid, u.application_time,
      delivery_buildings_[rng_.NextUint(delivery_buildings_.size())],
      workplace_[uid]);
}

void Generator::EmitFraudster(UserId uid, const RingResources& ring) {
  const auto& u = ds_.users[uid];
  if (warmed_[uid]) EmitWarmupBackground(uid);
  int events = std::max(4, rng_.NextPoisson(cfg_.fraud_events_mean));
  for (int e = 0; e < events; ++e) {
    // Burst: triangular-ish concentration around the application moment.
    double span = static_cast<double>(cfg_.fraud_activity_halfwidth);
    double offset = (rng_.NextDouble() - rng_.NextDouble()) * span;
    SimTime t = u.application_time + static_cast<SimTime>(offset);
    if (t < 0) t = 0;
    if (t > cfg_.horizon) t = cfg_.horizon;

    const double disc = ring.discipline;
    Device dev = rng_.NextBool(cfg_.ring_device_sharing * disc)
                     ? ring.devices[rng_.NextUint(ring.devices.size())]
                     : personal_device_[uid];
    ValueId ip, wifi = 0;
    if (rng_.NextBool(cfg_.fraud_public_wifi_prob)) {
      const size_t w = rng_.NextZipf(public_wifi_ip_.size(), 1.1);
      ip = public_wifi_ip_[w];
      wifi = public_wifi_mac_[w];
    } else if (rng_.NextBool(cfg_.ring_ip_sharing * disc)) {
      ip = ring.ips[rng_.NextUint(ring.ips.size())];
      wifi = ring.wifi_mac;
    } else {
      ip = MobileIp(uid);
    }
    ValueId cell =
        rng_.NextBool(cfg_.ring_gps_sharing * disc)
            ? ring.gps_cells[rng_.NextUint(ring.gps_cells.size())]
            : (rng_.NextBool(0.7) ? home_cell_[uid] : CityCell());
    EmitSessionLogs(uid, t, dev, ip, wifi, cell);
    // Fabricated workplace check-ins keep the cover story alive and wire
    // the fraudster to random real "coworkers" — a misleading edge type.
    if (rng_.NextBool(cfg_.workplace_checkin_prob)) {
      Log(uid, BehaviorType::kWorkplace, workplace_[uid], t);
    }
  }
  ValueId delivery =
      rng_.NextBool(cfg_.ring_delivery_sharing)
          ? ring.delivery_cell
          : delivery_buildings_[rng_.NextUint(delivery_buildings_.size())];
  EmitApplicationLogs(uid, u.application_time, delivery, workplace_[uid]);
}

void Generator::EmitWarmupBackground(UserId uid) {
  // Aged-account fraudsters carry ordinary-looking background activity
  // between registration and the burst.
  const auto& u = ds_.users[uid];
  const SimTime lo = u.registration_time;
  const SimTime hi =
      std::max<SimTime>(lo + kDay, u.application_time - 2 * kDay);
  int events = std::max(2, rng_.NextPoisson(cfg_.normal_events_mean / 3));
  for (int e = 0; e < events; ++e) {
    SimTime t = lo + static_cast<SimTime>(
                         rng_.NextDouble(0, static_cast<double>(hi - lo)));
    ValueId ip = rng_.NextBool(0.6) ? home_ips_[household_[uid]]
                                    : MobileIp(uid);
    ValueId wifi = ip == home_ips_[household_[uid]]
                       ? home_wifis_[household_[uid]]
                       : 0;
    ValueId cell = rng_.NextBool(0.8) ? home_cell_[uid] : CityCell();
    EmitSessionLogs(uid, t, personal_device_[uid], ip, wifi, cell);
  }
}

void Generator::EmitLoneFraudster(UserId uid) {
  const auto& u = ds_.users[uid];
  if (warmed_[uid]) EmitWarmupBackground(uid);
  int events = std::max(4, rng_.NextPoisson(cfg_.fraud_events_mean));
  for (int e = 0; e < events; ++e) {
    double span = static_cast<double>(cfg_.fraud_activity_halfwidth);
    double offset = (rng_.NextDouble() - rng_.NextDouble()) * span;
    SimTime t = u.application_time + static_cast<SimTime>(offset);
    if (t < 0) t = 0;
    if (t > cfg_.horizon) t = cfg_.horizon;
    ValueId ip, wifi = 0;
    if (rng_.NextBool(cfg_.fraud_public_wifi_prob)) {
      const size_t w = rng_.NextZipf(public_wifi_ip_.size(), 1.1);
      ip = public_wifi_ip_[w];
      wifi = public_wifi_mac_[w];
    } else if (rng_.NextBool(0.5)) {
      ip = home_ips_[household_[uid]];
      wifi = home_wifis_[household_[uid]];
    } else {
      ip = MobileIp(uid);
    }
    ValueId cell = rng_.NextBool(0.7) ? home_cell_[uid] : CityCell();
    EmitSessionLogs(uid, t, personal_device_[uid], ip, wifi, cell);
  }
  EmitApplicationLogs(
      uid, u.application_time,
      delivery_buildings_[rng_.NextUint(delivery_buildings_.size())],
      workplace_[uid]);
}

la::Matrix Generator::MakeProfileFeatures() {
  const int n = cfg_.num_users;
  la::Matrix x(n, kNumProfileFeatures);
  for (int uid = 0; uid < n; ++uid) {
    const auto& u = ds_.users[uid];
    // "Risky" fraudsters carry visibly bad identity/credit features;
    // stealth fraudsters (stolen identities) look like normal users on
    // those dimensions. Transaction-shaped features shift for all fraud.
    const bool risky = u.is_fraud && !u.stealth;
    auto& r = rng_;
    float age = risky ? Clip(r.NextGaussian(30, 8), 18, 70)
                      : Clip(r.NextGaussian(33, 9), 18, 70);
    float occupation_risk = risky ? Clip01(r.NextDouble(0.2, 1.0))
                                  : Clip01(r.NextDouble());
    float income = risky ? Clip(r.NextGaussian(0.9, 0.33), 0.1, 3)
                         : Clip(r.NextGaussian(1.0, 0.35), 0.1, 3);
    float credit = risky ? Clip(r.NextGaussian(605, 70), 300, 850)
                         : Clip(r.NextGaussian(650, 60), 300, 850);
    float history = risky ? Clip(r.NextGaussian(4.5, 3.0), 0, 30)
                          : Clip(r.NextGaussian(7, 4), 0, 30);
    float accounts = static_cast<float>(r.NextPoisson(risky ? 2.2 : 3.0));
    float mortgage = r.NextBool(risky ? 0.18 : 0.3) ? 1.0f : 0.0f;
    float account_age = risky
                            ? Clip(r.NextExponential(90), 0, 1000)
                            : Clip(r.NextExponential(200), 0, 1000);
    float prior_leases = static_cast<float>(r.NextPoisson(risky ? 0.6 : 1.2));
    float ontime = risky ? Clip01(r.NextGaussian(0.82, 0.18))
                         : Clip01(r.NextGaussian(0.93, 0.1));
    float id_verif = risky ? Clip01(r.NextGaussian(0.87, 0.09))
                           : Clip01(r.NextGaussian(0.92, 0.06));
    float face = risky ? Clip01(r.NextGaussian(0.89, 0.08))
                       : Clip01(r.NextGaussian(0.93, 0.06));
    float phone_age = static_cast<float>(
        r.NextExponential(risky ? 12.0 : 36.0));
    float carrier_risk = r.NextBool(risky ? 0.3 : 0.12) ? 1.0f : 0.0f;
    float addr_stability =
        static_cast<float>(r.NextExponential(risky ? 2.2 : 4.0));
    float city_tier = static_cast<float>(r.NextInt(1, 4));
    float promo = r.NextBool(risky ? 0.45 : 0.3) ? 1.0f : 0.0f;
    float night = r.NextBool(risky ? 0.3 : 0.15) ? 1.0f : 0.0f;
    float price = std::exp(static_cast<float>(
        risky ? r.NextGaussian(7.55, 0.45) : r.NextGaussian(7.3, 0.5)));
    float term = risky ? (r.NextBool(0.6) ? 12.0f : 6.0f)
                       : (r.NextBool(0.4) ? 12.0f
                                          : (r.NextBool(0.5) ? 6.0f : 3.0f));
    float rent = price / term * 1.12f;
    float price_to_income = price / (income * 30000.0f);
    float items = 1.0f + static_cast<float>(r.NextPoisson(risky ? 0.4 : 0.2));
    float express = r.NextBool(risky ? 0.45 : 0.25) ? 1.0f : 0.0f;
    float completeness = risky ? Clip01(r.NextGaussian(0.82, 0.13))
                               : Clip01(r.NextGaussian(0.9, 0.1));

    const float row[kNumProfileFeatures] = {
        age,        static_cast<float>(r.NextBool(0.55)),
        occupation_risk, income,       credit,       history,
        accounts,   mortgage,     account_age,  prior_leases,
        ontime,     id_verif,     face,         phone_age,
        carrier_risk, addr_stability, city_tier,  promo,
        night,      price,        term,         rent,
        price_to_income, items,   express,      completeness};
    for (int c = 0; c < kNumProfileFeatures; ++c) x(uid, c) = row[c];
  }
  return x;
}

Dataset Generator::Run() {
  ds_.config = cfg_;
  AssignRoles();
  BuildSharedPools();
  for (auto& ring : rings_) {
    for (auto& cell : ring.gps_cells) {
      if (cell == 0) cell = CityCell();
    }
  }
  ds_.logs.reserve(static_cast<size_t>(cfg_.num_users) *
                   static_cast<size_t>(cfg_.normal_events_mean * 7.5));
  for (int uid = 0; uid < cfg_.num_users; ++uid) {
    const auto& u = ds_.users[uid];
    if (u.is_fraud && u.ring_id >= 0) {
      EmitFraudster(static_cast<UserId>(uid), rings_[u.ring_id]);
    } else if (u.is_fraud) {
      EmitLoneFraudster(static_cast<UserId>(uid));
    } else {
      EmitNormalUser(static_cast<UserId>(uid));
    }
  }
  std::sort(ds_.logs.begin(), ds_.logs.end(),
            [](const BehaviorLog& a, const BehaviorLog& b) {
              return a.time != b.time ? a.time < b.time : a.uid < b.uid;
            });
  ds_.profile_features = MakeProfileFeatures();
  ds_.feature_names = {
      "age", "gender", "occupation_risk", "income_level", "credit_score",
      "credit_history_len", "num_credit_accounts", "has_mortgage",
      "account_age_days", "num_prior_leases", "prior_ontime_ratio",
      "id_verification_score", "face_match_score", "phone_age_months",
      "phone_carrier_risk", "address_stability_years", "city_tier",
      "app_channel_promo", "night_application", "item_price",
      "lease_term_months", "rent_amount", "price_to_income",
      "num_items", "express_shipping", "profile_completeness"};
  TURBO_CHECK_EQ(ds_.feature_names.size(),
                 static_cast<size_t>(kNumProfileFeatures));
  return std::move(ds_);
}

}  // namespace

ScenarioConfig ScenarioConfig::D1Like(int num_users) {
  ScenarioConfig cfg;
  cfg.num_users = num_users;
  cfg.fraud_rate = 0.014;
  return cfg;
}

ScenarioConfig ScenarioConfig::D2Like(int num_users) {
  ScenarioConfig cfg;
  cfg.seed = 20210416;
  cfg.num_users = num_users;
  cfg.fraud_rate = 0.65;
  // Rejected applications never reach a lease, so their log history is
  // shorter on average.
  cfg.normal_events_mean = 30.0;
  cfg.fraud_events_mean = 30.0;
  return cfg;
}

int Dataset::NumFraud() const {
  int n = 0;
  for (const auto& u : users) n += u.is_fraud;
  return n;
}

std::vector<int> Dataset::Labels() const {
  std::vector<int> y(users.size());
  for (size_t i = 0; i < users.size(); ++i) y[i] = users[i].is_fraud ? 1 : 0;
  return y;
}

Dataset GenerateScenario(const ScenarioConfig& config) {
  TURBO_CHECK_GT(config.num_users, 0);
  TURBO_CHECK_GT(config.horizon, 0);
  TURBO_CHECK_GE(config.fraud_rate, 0.0);
  TURBO_CHECK_LE(config.fraud_rate, 1.0);
  TURBO_CHECK_LE(config.min_ring_size, config.max_ring_size);
  return Generator(config).Run();
}

}  // namespace turbo::datagen
