#include "obs/trace.h"

#include "util/check.h"

namespace turbo::obs {

StageTimer::StageTimer(MetricsRegistry* registry, std::string prefix,
                       uint64_t request_id)
    : registry_(registry),
      prefix_(std::move(prefix)),
      request_id_(request_id) {
  TURBO_CHECK(registry_ != nullptr);
  TURBO_CHECK(!prefix_.empty());
}

StageTimer::~StageTimer() {
  if (!finished_) Finish();
}

double StageTimer::Span::Stop() {
  if (stopped_) return recorded_;
  stopped_ = true;
  recorded_ = stopwatch_.ElapsedMillis() + extra_;
  timer_->RecordStage(stage_, recorded_);
  return recorded_;
}

void StageTimer::RecordStage(const std::string& stage, double millis) {
  TURBO_CHECK_GE(millis, 0.0);
  spans_.push_back({stage, millis});
  registry_->GetHistogram(prefix_ + "_" + stage + "_ms")->Observe(millis);
}

double StageTimer::TotalMillis() const {
  double total = 0.0;
  for (const auto& s : spans_) total += s.millis;
  return total;
}

double StageTimer::Finish() {
  const double total = TotalMillis();
  if (!finished_) {
    finished_ = true;
    registry_->GetHistogram(prefix_ + "_total_ms")->Observe(total);
  }
  return total;
}

}  // namespace turbo::obs
