// Process-wide observability: a registry of named counters, gauges, and
// fixed-bucket latency histograms, designed for a single-writer-or-many
// serving path.
//
// Concurrency contract: metric objects are created through
// MetricsRegistry::Get* (a short mutex-guarded map insert, done once per
// name — callers cache the returned pointer) and are never destroyed
// before the registry. After creation, every operation on a Counter,
// Gauge, or Histogram is a relaxed atomic and therefore lock-free: any
// number of request threads can Increment/Observe while another thread
// renders the registry. Rendering takes the registration mutex only to
// walk the name -> metric maps; the values themselves are read with
// atomic loads, so a render concurrent with writers sees a slightly
// stale but internally monotonic view.
//
// Naming scheme (see DESIGN.md "Observability"): lowercase
// `<subsystem>_<what>_<unit-or-total>` — e.g. `bn_ingest_events_total`
// (counter), `bn_snapshot_build_ms` (histogram), `bn_snapshot_version`
// (gauge). RenderText emits Prometheus text exposition; RenderJson is
// the machine-readable dump embedded in BENCH_*.json files.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace turbo::obs {

/// Name of a per-shard cluster metric: "<prefix>_shard<index>_<what>",
/// e.g. ("bn_cluster", 2, "replica_lag_records") ->
/// "bn_cluster_shard2_replica_lag_records". The registry has no label
/// dimension, so cluster-scoped metrics encode the shard index in the
/// name — one gauge per shard instead of N shards fighting over one.
std::string ShardMetricName(const std::string& prefix, int shard,
                            const std::string& what);

/// Name of a string-labeled metric: "<prefix>_<label>_<what>" with any
/// non-alphanumeric label character replaced by '_', e.g.
/// ("net_rpc", "ingest", "ms") -> "net_rpc_ingest_ms". The same
/// no-label-dimension workaround as ShardMetricName, for label sets that
/// are small and fixed (RPC method names, not user ids).
std::string LabeledMetricName(const std::string& prefix,
                              const std::string& label,
                              const std::string& what);

/// Monotonically increasing event count.
class Counter {
 public:
  /// Returns the post-increment value. Concurrent incrementers must use
  /// this return (not a separate value() read, which can observe another
  /// thread's increment) when they need a unique id from the counter.
  uint64_t Increment(uint64_t n = 1) {
    return value_.fetch_add(n, std::memory_order_relaxed) + n;
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (snapshot version, bytes, lag).
class Gauge {
 public:
  void Set(double v);
  void Add(double delta);
  double value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of a double, initially 0.0
};

/// Fixed-bucket histogram with percentile extraction. Buckets are
/// cumulative-upper-bound style (Prometheus `le`); one implicit overflow
/// bucket catches everything above the last finite bound. Percentiles
/// linearly interpolate inside the owning bucket and are clamped to the
/// observed min/max, so p0/p100 are exact and mid quantiles carry at
/// most one bucket width of error.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// q in [0, 1]; returns 0 when empty.
  double Percentile(double q) const;

  /// One-line human summary, same shape the old LatencyTracker printed:
  /// "<label> n=… mean=… p50=… p99=… p999=… max=…".
  std::string Summary(const std::string& label) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  uint64_t BucketCount(size_t i) const;

  /// `count` bounds starting at `start`, each `factor` times the last.
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                int count);
  /// `count` evenly spaced bounds: start, start + width, ... Used for
  /// quantities with a known small range, e.g. active keys per window-job
  /// shard, where exponential buckets would waste resolution.
  static std::vector<double> LinearBuckets(double start, double width,
                                           int count);
  /// 1 microsecond .. ~10 minutes in milliseconds, factor 1.5 — tight
  /// enough that interpolated percentiles track the exact ones within a
  /// few percent across the serving range.
  static const std::vector<double>& DefaultLatencyBucketsMs();
  /// Power-of-two size buckets (subgraph nodes, edges): 1 .. 2^20.
  static const std::vector<double>& DefaultSizeBuckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// Owner of all metrics for one process (or one server instance in
/// tests/benches, which want isolation between runs).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. Names must match [a-zA-Z_][a-zA-Z0-9_]* and may be
  /// registered as only one metric kind. The returned pointer is stable
  /// for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Empty `bounds` selects DefaultLatencyBucketsMs(). If `name` already
  /// exists the existing histogram is returned (bounds are fixed at
  /// first registration).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Prometheus text exposition format.
  std::string RenderText() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, min, max, p50, p95, p99}}}.
  std::string RenderJson() const;

  /// The process-wide default registry.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;  // guards the maps, never the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace turbo::obs
