// Per-request stage tracing: a StageTimer collects named spans for one
// request id and mirrors every span into `<prefix>_<stage>_ms`
// histograms of a MetricsRegistry, so a stream of requests yields the
// Fig. 8-style per-module latency breakdown for free.
//
// Wall-clock and modeled time: spans measure real elapsed time with a
// Stopwatch; storage accesses additionally charge a virtual SimClock
// cost (see DESIGN.md §2), which callers fold in via
// Span::AddModeledMillis before the span stops. Recorded span durations
// are therefore wall + modeled, matching what PredictionResponse
// reports.
//
// StageTimer is single-threaded per request (one request = one timer);
// the histograms it writes into are the concurrency-safe obs metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/time_util.h"

namespace turbo::obs {

struct StageSpan {
  std::string stage;
  double millis = 0.0;
};

class StageTimer {
 public:
  /// Spans are recorded into `registry` under `<prefix>_<stage>_ms`;
  /// `request_id` ties the trace to a request for logging/debugging.
  StageTimer(MetricsRegistry* registry, std::string prefix,
             uint64_t request_id);
  /// Finishes implicitly (records the total) if the caller did not.
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Scoped span: starts timing on construction, records on Stop() (or
  /// destruction). Not copyable or movable — bind the returned prvalue
  /// directly: `auto span = timer.StartSpan("sample");`.
  class Span {
   public:
    ~Span() { Stop(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Adds virtual storage cost (SimClock) on top of wall time.
    void AddModeledMillis(double millis) { extra_ += millis; }
    /// Ends the span and records it; returns total millis. Idempotent.
    double Stop();

   private:
    friend class StageTimer;
    Span(StageTimer* timer, std::string stage)
        : timer_(timer), stage_(std::move(stage)) {}

    StageTimer* timer_;
    std::string stage_;
    Stopwatch stopwatch_;
    double extra_ = 0.0;
    double recorded_ = 0.0;
    bool stopped_ = false;
  };

  Span StartSpan(std::string stage) { return Span(this, std::move(stage)); }

  /// Records an externally measured stage duration (no Stopwatch).
  void RecordStage(const std::string& stage, double millis);

  /// Sum of all recorded spans so far.
  double TotalMillis() const;
  const std::vector<StageSpan>& spans() const { return spans_; }
  uint64_t request_id() const { return request_id_; }

  /// Records `<prefix>_total_ms` and returns the total. Idempotent;
  /// spans recorded after Finish() are ignored for the total.
  double Finish();

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
  uint64_t request_id_;
  std::vector<StageSpan> spans_;
  bool finished_ = false;
};

}  // namespace turbo::obs
