#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace turbo::obs {

std::string ShardMetricName(const std::string& prefix, int shard,
                            const std::string& what) {
  return StrFormat("%s_shard%d_%s", prefix.c_str(), shard,
                   what.c_str());
}

std::string LabeledMetricName(const std::string& prefix,
                              const std::string& label,
                              const std::string& what) {
  std::string sanitized = label;
  for (char& c : sanitized) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return StrFormat("%s_%s_%s", prefix.c_str(), sanitized.c_str(),
                   what.c_str());
}

namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }
double FromBits(uint64_t b) { return std::bit_cast<double>(b); }

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// Shortest %g rendering that survives JSON/Prometheus round-trips.
std::string Num(double v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

}  // namespace

void Gauge::Set(double v) {
  bits_.store(Bits(v), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(cur, Bits(FromBits(cur) + delta),
                                      std::memory_order_relaxed)) {
  }
}

double Gauge::value() const {
  return FromBits(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_bits_(Bits(std::numeric_limits<double>::infinity())),
      max_bits_(Bits(-std::numeric_limits<double>::infinity())) {
  TURBO_CHECK(!bounds_.empty());
  TURBO_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  TURBO_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
              bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  TURBO_CHECK(!std::isnan(v));
  const size_t b =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  // upper_bound leaves values equal to a bound in that bound's bucket
  // only if bound >= v; Prometheus `le` semantics want v <= bound, so
  // step back when v sits exactly on a bound.
  const size_t bucket = (b > 0 && bounds_[b - 1] == v) ? b - 1 : b;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(cur, Bits(FromBits(cur) + v),
                                          std::memory_order_relaxed)) {
  }
  cur = min_bits_.load(std::memory_order_relaxed);
  while (FromBits(cur) > v &&
         !min_bits_.compare_exchange_weak(cur, Bits(v),
                                          std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (FromBits(cur) < v &&
         !max_bits_.compare_exchange_weak(cur, Bits(v),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const {
  return FromBits(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Min() const {
  return count() == 0 ? 0.0
                      : FromBits(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::Max() const {
  return count() == 0 ? 0.0
                      : FromBits(max_bits_.load(std::memory_order_relaxed));
}

uint64_t Histogram::BucketCount(size_t i) const {
  TURBO_CHECK_LE(i, bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::Percentile(double q) const {
  TURBO_CHECK_GE(q, 0.0);
  TURBO_CHECK_LE(q, 1.0);
  // Snapshot the buckets once; concurrent writers may add samples while
  // we walk, so derive the total from the same snapshot.
  std::vector<uint64_t> snap(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i < snap.size(); ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  const double lo = Min();
  const double hi = Max();
  if (q <= 0.0) return lo;
  if (q >= 1.0) return hi;
  // Nearest-rank target within the snapshot.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < snap.size(); ++i) {
    if (snap[i] == 0) continue;
    if (seen + snap[i] < rank) {
      seen += snap[i];
      continue;
    }
    // Interpolate within bucket i, clamped to the observed range.
    double lower = i == 0 ? 0.0 : bounds_[i - 1];
    double upper = i < bounds_.size() ? bounds_[i] : hi;
    lower = std::max(lower, lo);
    upper = std::min(std::max(upper, lower), hi);
    const double frac =
        static_cast<double>(rank - seen) / static_cast<double>(snap[i]);
    return lower + frac * (upper - lower);
  }
  return hi;
}

std::string Histogram::Summary(const std::string& label) const {
  return StrFormat(
      "%-24s n=%llu mean=%.2fms p50=%.2fms p99=%.2fms p999=%.2fms "
      "max=%.2fms",
      label.c_str(), static_cast<unsigned long long>(count()), Mean(),
      Percentile(0.5), Percentile(0.99), Percentile(0.999), Max());
}

std::vector<double> Histogram::ExponentialBuckets(double start,
                                                  double factor,
                                                  int count) {
  TURBO_CHECK_GT(start, 0.0);
  TURBO_CHECK_GT(factor, 1.0);
  TURBO_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBuckets(double start, double width,
                                             int count) {
  TURBO_CHECK_GT(width, 0.0);
  TURBO_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  for (int i = 0; i < count; ++i) bounds.push_back(start + i * width);
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBucketsMs() {
  static const std::vector<double> kBounds =
      ExponentialBuckets(1e-3, 1.5, 50);
  return kBounds;
}

const std::vector<double>& Histogram::DefaultSizeBuckets() {
  static const std::vector<double> kBounds = ExponentialBuckets(1.0, 2.0, 21);
  return kBounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  TURBO_CHECK_MSG(ValidMetricName(name), "bad metric name: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    TURBO_CHECK_MSG(!gauges_.count(name) && !histograms_.count(name),
                    "metric " << name << " already registered as another "
                              << "kind");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  TURBO_CHECK_MSG(ValidMetricName(name), "bad metric name: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    TURBO_CHECK_MSG(!counters_.count(name) && !histograms_.count(name),
                    "metric " << name << " already registered as another "
                              << "kind");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  TURBO_CHECK_MSG(ValidMetricName(name), "bad metric name: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    TURBO_CHECK_MSG(!counters_.count(name) && !gauges_.count(name),
                    "metric " << name << " already registered as another "
                              << "kind");
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBucketsMs();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << Num(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->BucketCount(i);
      out << name << "_bucket{le=\"" << Num(h->bounds()[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += h->BucketCount(h->bounds().size());
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << name << "_sum " << Num(h->Sum()) << "\n";
    out << name << "_count " << h->count() << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << Num(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": " << Num(h->Sum())
        << ", \"mean\": " << Num(h->Mean())
        << ", \"min\": " << Num(h->Min()) << ", \"max\": " << Num(h->Max())
        << ", \"p50\": " << Num(h->Percentile(0.5))
        << ", \"p95\": " << Num(h->Percentile(0.95))
        << ", \"p99\": " << Num(h->Percentile(0.99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* kDefault = new MetricsRegistry();
  return *kDefault;
}

}  // namespace turbo::obs
