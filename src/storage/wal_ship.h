// WAL shipping: incremental file-level replication of one BN server's
// durability directory (WAL segments + checkpoint + delta chain) into a
// standby's replica directory (DESIGN.md §14 "Replication & failover").
//
// ShipWalDir is pull-style and idempotent: each call makes `dst` a
// consistent prefix-copy of `src` and does only incremental work —
//  * WAL segments are append-only until rotation deletes them, so a
//    segment already present in `dst` only has its new tail bytes
//    appended; an unchanged segment costs one stat. Re-shipping a
//    segment the standby already replayed is therefore a no-op, never a
//    duplicate apply.
//  * A segment the primary is mid-append on ships as-is: the copied
//    tail may end in a torn record, which the standby replays up to and
//    then *waits* on (the next ship completes the record). Nothing here
//    ever truncates a source file — the primary owns those bytes.
//  * checkpoint.bin is re-copied (atomically, temp + rename) when its
//    bytes changed; delta-checkpoint files are immutable once published
//    and are copied at most once.
//  * With mirror_deletes, files the primary's checkpoint rotation
//    removed are removed from `dst` too, so the replica directory stays
//    a valid Recover target and does not grow without bound.
//
// The shipper is the only writer of `dst`; run it from one thread at a
// time (the standby's replay thread is the natural place).
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace turbo::storage {

struct WalShipOptions {
  /// Remove files from `dst` that no longer exist in `src` (checkpoint
  /// rotation deletes covered segments and superseded delta files).
  bool mirror_deletes = true;
};

/// What one ShipWalDir call did (observability; all deltas, not totals).
struct WalShipStats {
  /// Segments newly created in `dst` this call.
  size_t segments_created = 0;
  /// Segment tail bytes appended (includes the bytes of new segments).
  size_t segment_bytes_appended = 0;
  /// checkpoint.bin + delta files (re)copied.
  size_t checkpoint_files_copied = 0;
  /// Files mirror-deleted from `dst`.
  size_t files_deleted = 0;
  /// Highest WAL segment seq present in `dst` after the call (0 = none).
  uint64_t max_segment_seq = 0;
};

/// Ships `src` into `dst` (created if missing). `src` must exist.
Result<WalShipStats> ShipWalDir(const std::string& src,
                                const std::string& dst,
                                const WalShipOptions& options = {});

}  // namespace turbo::storage
