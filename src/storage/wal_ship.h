// WAL shipping: incremental file-level replication of one BN server's
// durability directory (WAL segments + checkpoint + delta chain) into a
// standby's replica directory (DESIGN.md §14 "Replication & failover",
// §15 "Wire transport").
//
// The ship algorithm (ShipWal) is pull-style and idempotent: each call
// makes the sink a consistent prefix-copy of `src` and does only
// incremental work —
//  * WAL segments are append-only until rotation deletes them, so a
//    segment already present in the sink only has its new tail bytes
//    appended (in bounded chunks — a connection killed mid-ship leaves
//    a torn tail the standby's reader already tolerates); an unchanged
//    segment costs one stat. Re-shipping a segment the standby already
//    replayed is therefore a no-op, never a duplicate apply.
//  * A segment the primary is mid-append on ships as-is: the copied
//    tail may end in a torn record, which the standby replays up to and
//    then *waits* on (the next ship completes the record). Nothing here
//    ever truncates a source file — the primary owns those bytes.
//  * checkpoint.bin is re-copied (atomically) when its bytes changed
//    (size + CRC32 compare against the sink's stat — the bytes never
//    travel when nothing changed); delta-checkpoint files are immutable
//    once published and are copied at most once.
//  * With mirror_deletes, files the primary's checkpoint rotation
//    removed are removed from the sink too, so the replica directory
//    stays a valid Recover target and does not grow without bound.
//
// WalShipSink abstracts the destination: LocalDirSink writes a local
// replica directory (ShipWalDir keeps the original dir-to-dir
// signature), net::RpcWalShipSink forwards every operation to a
// standby host over the framed RPC layer. Offset-checked appends make
// the RPC form safely retryable: a replayed append whose bytes already
// landed is detected (size + tail CRC) and succeeds as a no-op.
//
// The shipper is the only writer of the sink; run it from one thread at
// a time (the standby's replay thread is the natural place).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace turbo::storage {

struct WalShipOptions {
  /// Remove files from the sink that no longer exist in `src`
  /// (checkpoint rotation deletes covered segments and superseded delta
  /// files).
  bool mirror_deletes = true;
  /// Segment tails are appended in pieces of at most this many bytes —
  /// the tear granularity when a ship dies mid-push.
  size_t append_chunk_bytes = 1 << 20;
};

/// What one ship call did (observability; all deltas, not totals).
struct WalShipStats {
  /// Segments newly created in the sink this call.
  size_t segments_created = 0;
  /// Segment tail bytes appended (includes the bytes of new segments).
  size_t segment_bytes_appended = 0;
  /// checkpoint.bin + delta files (re)copied.
  size_t checkpoint_files_copied = 0;
  /// Files mirror-deleted from the sink.
  size_t files_deleted = 0;
  /// Highest WAL segment seq present in the sink after the call
  /// (0 = none).
  uint64_t max_segment_seq = 0;
};

/// Stat of one replica file, as reported by the sink ("the standby's
/// cursor"): existence, size, and — when requested — a CRC32 of the
/// full contents.
struct WalShipFileStat {
  bool exists = false;
  uint64_t size = 0;
  uint32_t crc32 = 0;  // only meaningful when computed (want_crc)
};

/// Destination of a WAL ship. All names are flat file names inside the
/// replica directory (no path separators). Implementations must make
/// AppendAt offset-checked and replay-safe (see ShipWal's contract).
class WalShipSink {
 public:
  virtual ~WalShipSink() = default;

  /// Stat of `name`; `want_crc` asks for a contents CRC32 (costs a full
  /// read — request it only where the compare needs it).
  virtual Result<WalShipFileStat> Stat(const std::string& name,
                                       bool want_crc) = 0;

  /// Appends `bytes` at `offset` (file created when absent and offset
  /// is 0). Offset-checked: the file's current size must equal
  /// `offset`. A replayed append whose bytes already landed (size ==
  /// offset + |bytes| and the tail's CRC matches) succeeds as a no-op;
  /// any other mismatch is FailedPrecondition — the shipper re-stats
  /// and re-syncs.
  virtual Status AppendAt(const std::string& name, uint64_t offset,
                          std::string_view bytes) = 0;

  /// Atomically replaces `name` with `bytes` (temp + rename semantics:
  /// a reader never observes a half-written file). Idempotent.
  virtual Status WriteAtomic(const std::string& name,
                             std::string_view bytes) = 0;

  /// Removes `name`; OK when already absent.
  virtual Status Delete(const std::string& name) = 0;

  /// Flat names of every file currently in the replica.
  virtual Result<std::vector<std::string>> ListFiles() = 0;
};

/// Sink writing a local replica directory (created lazily).
class LocalDirSink final : public WalShipSink {
 public:
  explicit LocalDirSink(std::string dir) : dir_(std::move(dir)) {}

  Result<WalShipFileStat> Stat(const std::string& name,
                               bool want_crc) override;
  Status AppendAt(const std::string& name, uint64_t offset,
                  std::string_view bytes) override;
  Status WriteAtomic(const std::string& name,
                     std::string_view bytes) override;
  Status Delete(const std::string& name) override;
  Result<std::vector<std::string>> ListFiles() override;

  const std::string& dir() const { return dir_; }
  /// Creates the replica directory (write ops call this lazily).
  Status EnsureDir();

 private:
  std::string Path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

/// Ships `src` (which must exist) into `sink`.
Result<WalShipStats> ShipWal(const std::string& src, WalShipSink* sink,
                             const WalShipOptions& options = {});

/// Dir-to-dir form: ShipWal over a LocalDirSink rooted at `dst`.
Result<WalShipStats> ShipWalDir(const std::string& src,
                                const std::string& dst,
                                const WalShipOptions& options = {});

}  // namespace turbo::storage
