// Virtual latency accounting for the storage comparison in Section V.
//
// The paper's 6.8s -> 0.8s optimization is a property of *how many rows*
// each serving request touches in a networked RDBMS versus an in-memory
// cache. Rather than sleeping to emulate a MySQL round-trip, every storage
// access charges its modeled cost to a SimClock; benches then report the
// accumulated virtual latency per request. Real wall-clock time of the
// compute stages (sampling, feature math, HAG forward) is measured
// separately with util/time_util.h Stopwatch.
#pragma once

#include <cstdint>
#include <string>

namespace turbo::storage {

/// Per-operation cost parameters of a storage medium, in microseconds.
struct MediumCost {
  double query_overhead_us = 0.0;  // per-query fixed cost (network + parse)
  double per_row_us = 0.0;         // per returned/scanned row

  /// A MySQL-like networked relational store: ~0.5 ms query overhead,
  /// ~8 us per row streamed back. Matches the paper's observed multi-second
  /// latency when statistical features scan thousands of raw log rows.
  static MediumCost NetworkedSql() { return {500.0, 8.0}; }
  /// A Redis-like in-memory cache reached over loopback: ~50 us per
  /// command, ~0.2 us per row/field.
  static MediumCost InMemoryCache() { return {50.0, 0.2}; }
  /// Free (used by unit tests that don't care about latency accounting).
  static MediumCost Free() { return {0.0, 0.0}; }
};

/// Accumulates modeled storage latency. Not thread-safe by design — each
/// simulated request owns its own accounting scope.
class SimClock {
 public:
  void ChargeQuery(const MediumCost& cost, int64_t rows);
  void ChargeMicros(double us);

  double ElapsedMicros() const { return elapsed_us_; }
  double ElapsedMillis() const { return elapsed_us_ / 1e3; }
  double ElapsedSeconds() const { return elapsed_us_ / 1e6; }
  int64_t queries() const { return queries_; }
  int64_t rows() const { return rows_; }

  void Reset();

  std::string DebugString() const;

 private:
  double elapsed_us_ = 0.0;
  int64_t queries_ = 0;
  int64_t rows_ = 0;
};

}  // namespace turbo::storage
