// Append-only behavior-log store with the two secondary indexes the system
// needs: per-user time ranges (statistical features) and per-(type, value)
// time ranges (BN edge construction).
//
// Plays the role of the paper's "local database" holding raw logs. Every
// read can charge its modeled cost to a SimClock so the Section V cache
// study can compare media without changing callers.
//
// Thread safety: one writer (Append / AppendBatch / Deserialize) may run
// concurrently with any number of readers (QueryUser / QueryValue /
// ActiveValues / Users / Serialize / size) — the online system drains
// ingest on the BN writer thread while prediction workers read behavior
// statistics. Internally a shared_mutex serializes them; query paths
// take it shared and upgrade to exclusive only when a lazily-sorted
// index actually needs sorting.
#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/behavior_log.h"
#include "storage/checkpoint_io.h"
#include "storage/sim_clock.h"
#include "util/status.h"

namespace turbo::storage {

class LogStore {
 public:
  explicit LogStore(MediumCost cost = MediumCost::Free()) : cost_(cost) {}

  /// Appends one log. Out-of-order timestamps are accepted (indexes keep
  /// insertion order per key; queries sort lazily on first read after a
  /// write — logs arrive nearly sorted in practice).
  void Append(const BehaviorLog& log);
  void AppendBatch(const BehaviorLogList& logs);

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return total_;
  }

  /// All logs of `uid` with time in [t0, t1], charged to `clock` if given.
  BehaviorLogList QueryUser(UserId uid, SimTime t0, SimTime t1,
                            SimClock* clock = nullptr) const;

  /// All (uid, time) observations of value `v` of type `t` in [t0, t1].
  struct Observation {
    UserId uid;
    SimTime time;
  };
  std::vector<Observation> QueryValue(BehaviorType t, ValueId v, SimTime t0,
                                      SimTime t1,
                                      SimClock* clock = nullptr) const;

  /// Distinct (type, value) keys that received at least one log in
  /// [t0, t1] — drives the periodic BN window jobs.
  struct ValueKey {
    BehaviorType type;
    ValueId value;
    bool operator==(const ValueKey&) const = default;
  };
  /// Public so the BN window-job engine can shard active keys and cache
  /// per-key user buckets with the same hash the store indexes by.
  struct ValueKeyHash {
    size_t operator()(const ValueKey& k) const {
      return std::hash<uint64_t>()(k.value * 1315423911ULL +
                                   static_cast<uint64_t>(k.type));
    }
  };
  std::vector<ValueKey> ActiveValues(SimTime t0, SimTime t1) const;

  /// Users with at least one log (for dataset statistics).
  std::vector<UserId> Users() const;

  /// Checkpoint hook: writes the store structure-preserving, so restore
  /// is bulk vector fills instead of per-log re-indexing. Layout:
  ///
  ///   u64 total
  ///   u64 num_users; per user (uid ascending):
  ///     u32 uid, u8 sorted, u64 count, count x (u8 type, u64 value,
  ///     i64 time) in index order (uid implicit)
  ///   u64 num_keys; per (type, value) key ascending:
  ///     u8 type, u64 value, u8 sorted, u64 count, count x (u32 uid,
  ///     i64 time) in index order
  ///   u64 num_hours; per hour ascending:
  ///     i64 hour, u64 count, count x (u8 type, u64 value) key-ordered
  ///
  /// Cross-user interleaving of the original append sequence is not
  /// preserved — it is not observable through any query (per-key indexes
  /// sort lazily by time, and the sorted flags round-trip).
  void Serialize(BinaryWriter* w) const;

  /// Restores a Serialize()d store with one hash insert per user / key /
  /// hour bucket and bulk row decodes — roughly an order of magnitude
  /// cheaper than re-appending log by log, which is what keeps crash
  /// recovery ahead of a cold rebuild. Every count field is validated
  /// against the bytes remaining before allocation; fails (and leaves
  /// the store cleared) on truncation or inconsistent counts.
  Status Deserialize(BinaryReader* r);

  const MediumCost& cost() const { return cost_; }

 private:
  struct UserIndex {
    std::vector<BehaviorLog> logs;
    bool sorted = true;
  };
  struct ValueIndex {
    std::vector<Observation> obs;
    bool sorted = true;
  };

  void AppendLocked(const BehaviorLog& log);
  std::vector<UserId> UsersLocked() const;
  BehaviorLogList SliceUser(const UserIndex& idx, SimTime t0, SimTime t1,
                            SimClock* clock) const;
  std::vector<Observation> SliceValue(const ValueIndex& idx, SimTime t0,
                                      SimTime t1, SimClock* clock) const;

  MediumCost cost_;
  /// Writer-vs-reader guard (see the thread-safety note above). Mutable
  /// because const query paths lock it — and, when an index is lazily
  /// sorted, lock it exclusively.
  mutable std::shared_mutex mu_;
  size_t total_ = 0;
  mutable std::unordered_map<UserId, UserIndex> by_user_;
  mutable std::unordered_map<ValueKey, ValueIndex, ValueKeyHash> by_value_;
  /// Hour-bucketed index of touched keys so the periodic window jobs can
  /// enumerate active values without scanning the whole key space.
  std::unordered_map<int64_t,
                     std::unordered_set<ValueKey, ValueKeyHash>>
      touched_by_hour_;
};

}  // namespace turbo::storage
