#include "storage/wal_ship.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "storage/checkpoint_io.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace turbo::storage {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointFile[] = "checkpoint.bin";

std::string SegmentName(uint64_t seq) {
  return fs::path(WalSegmentPath("", seq)).filename().string();
}

std::string DeltaName(uint64_t seq) {
  return fs::path(CheckpointDeltaPath("", seq)).filename().string();
}

/// Parses `name` as a WAL segment file name (same re-format validation
/// as storage::ListWalSegments).
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  unsigned long long s = 0;
  if (std::sscanf(name.c_str(), "wal-%llu.log", &s) != 1) return false;
  *seq = s;
  return SegmentName(s) == name;
}

bool ParseDeltaName(const std::string& name, uint64_t* seq) {
  unsigned long long s = 0;
  if (std::sscanf(name.c_str(), "checkpoint-delta-%llu.bin", &s) != 1) {
    return false;
  }
  *seq = s;
  return DeltaName(s) == name;
}

/// Size of `path`, or 0 when it does not exist.
size_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

/// Reads bytes [from, from + n) of `path`.
Status ReadRange(const std::string& path, size_t from, size_t n,
                 std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Internal(StrFormat("cannot open '%s'", path.c_str()));
  }
  in.seekg(static_cast<std::streamoff>(from));
  out->resize(n);
  in.read(out->data(), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    return Status::Internal(
        StrFormat("short read from '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace

// --- LocalDirSink -----------------------------------------------------

Status LocalDirSink::EnsureDir() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create ship target '%s'", dir_.c_str()));
  }
  return Status::OK();
}

Result<WalShipFileStat> LocalDirSink::Stat(const std::string& name,
                                           bool want_crc) {
  WalShipFileStat stat;
  const std::string path = Path(name);
  if (!fs::exists(path)) return stat;
  stat.exists = true;
  stat.size = FileSize(path);
  if (want_crc) {
    auto bytes_or = ReadFileBytes(path);
    if (!bytes_or.ok()) return bytes_or.status();
    stat.crc32 = Crc32(bytes_or.value().data(), bytes_or.value().size());
  }
  return stat;
}

Status LocalDirSink::AppendAt(const std::string& name, uint64_t offset,
                              std::string_view bytes) {
  TURBO_RETURN_IF_ERROR(EnsureDir());
  const std::string path = Path(name);
  const size_t size = fs::exists(path) ? FileSize(path) : 0;
  if (size == offset + bytes.size() && !bytes.empty()) {
    // A replayed append: accept iff the landed tail is byte-identical.
    std::string tail;
    TURBO_RETURN_IF_ERROR(ReadRange(path, offset, bytes.size(), &tail));
    if (Crc32(tail.data(), tail.size()) ==
        Crc32(bytes.data(), bytes.size())) {
      return Status::OK();
    }
    return Status::FailedPrecondition(
        StrFormat("append to '%s' at %llu: tail mismatch", name.c_str(),
                  static_cast<unsigned long long>(offset)));
  }
  if (size != offset) {
    return Status::FailedPrecondition(StrFormat(
        "append to '%s' at %llu but replica holds %llu bytes",
        name.c_str(), static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(size)));
  }
  // Plain append is crash-equivalent to a torn primary write: the
  // standby's reader already tolerates a torn tail.
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Internal(StrFormat("cannot open '%s'", path.c_str()));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::Internal(
        StrFormat("short append to '%s'", path.c_str()));
  }
  return Status::OK();
}

Status LocalDirSink::WriteAtomic(const std::string& name,
                                 std::string_view bytes) {
  TURBO_RETURN_IF_ERROR(EnsureDir());
  return WriteFileAtomic(Path(name), bytes);
}

Status LocalDirSink::Delete(const std::string& name) {
  std::error_code ec;
  fs::remove(Path(name), ec);
  return Status::OK();
}

Result<std::vector<std::string>> LocalDirSink::ListFiles() {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

// --- ShipWal ----------------------------------------------------------

Result<WalShipStats> ShipWal(const std::string& src, WalShipSink* sink,
                             const WalShipOptions& options) {
  if (!fs::exists(src)) {
    return Status::NotFound(
        StrFormat("ship source '%s' does not exist", src.c_str()));
  }
  WalShipStats stats;

  // Checkpoint files first: after mirror deletes remove WAL segments a
  // new checkpoint covers, the covering checkpoint must already be in
  // place or a crash between the two steps would leave the replica
  // without either representation of that history.
  const std::string src_ckpt = src + "/" + kCheckpointFile;
  const bool have_ckpt = fs::exists(src_ckpt);
  if (have_ckpt) {
    auto bytes_or = ReadFileBytes(src_ckpt);
    if (!bytes_or.ok()) return bytes_or.status();
    const std::string& bytes = bytes_or.value();
    auto stat_or = sink->Stat(kCheckpointFile, /*want_crc=*/true);
    if (!stat_or.ok()) return stat_or.status();
    const WalShipFileStat& stat = stat_or.value();
    if (!stat.exists || stat.size != bytes.size() ||
        stat.crc32 != Crc32(bytes.data(), bytes.size())) {
      TURBO_RETURN_IF_ERROR(sink->WriteAtomic(kCheckpointFile, bytes));
      ++stats.checkpoint_files_copied;
    }
  }
  const std::vector<uint64_t> src_deltas = ListCheckpointDeltas(src);
  for (uint64_t seq : src_deltas) {
    // Delta files are immutable once published: present == shipped.
    const std::string name = DeltaName(seq);
    auto stat_or = sink->Stat(name, /*want_crc=*/false);
    if (!stat_or.ok()) return stat_or.status();
    if (stat_or.value().exists) continue;
    auto bytes_or = ReadFileBytes(CheckpointDeltaPath(src, seq));
    if (!bytes_or.ok()) return bytes_or.status();
    TURBO_RETURN_IF_ERROR(sink->WriteAtomic(name, bytes_or.value()));
    ++stats.checkpoint_files_copied;
  }

  const std::vector<uint64_t> src_segments = ListWalSegments(src);
  for (uint64_t seq : src_segments) {
    const std::string from = WalSegmentPath(src, seq);
    const std::string name = SegmentName(seq);
    const size_t src_size = FileSize(from);
    auto stat_or = sink->Stat(name, /*want_crc=*/false);
    if (!stat_or.ok()) return stat_or.status();
    const WalShipFileStat& stat = stat_or.value();
    const size_t dst_size = stat.exists ? stat.size : 0;
    if (dst_size > src_size) {
      // A replica segment longer than the source can only mean the
      // source was rewritten (e.g. a torn tail truncated by recovery
      // before this standby attached). Re-copy wholesale.
      auto bytes_or = ReadFileBytes(from);
      if (!bytes_or.ok()) return bytes_or.status();
      TURBO_RETURN_IF_ERROR(sink->WriteAtomic(name, bytes_or.value()));
    } else if (dst_size < src_size) {
      if (!stat.exists) ++stats.segments_created;
      // Chunked tail push: each chunk is one offset-checked append, so
      // a ship killed between chunks leaves a torn-but-consistent tail.
      const size_t chunk = std::max<size_t>(1, options.append_chunk_bytes);
      for (size_t at = dst_size; at < src_size;) {
        const size_t n = std::min(chunk, src_size - at);
        std::string tail;
        TURBO_RETURN_IF_ERROR(ReadRange(from, at, n, &tail));
        TURBO_RETURN_IF_ERROR(sink->AppendAt(name, at, tail));
        stats.segment_bytes_appended += n;
        at += n;
      }
    }
    stats.max_segment_seq = seq;
  }

  if (options.mirror_deletes) {
    const std::set<uint64_t> live(src_segments.begin(),
                                  src_segments.end());
    const std::set<uint64_t> live_deltas(src_deltas.begin(),
                                         src_deltas.end());
    auto names_or = sink->ListFiles();
    if (!names_or.ok()) return names_or.status();
    for (const std::string& name : names_or.value()) {
      uint64_t seq = 0;
      bool dead = false;
      if (ParseSegmentName(name, &seq)) {
        dead = live.count(seq) == 0;
      } else if (ParseDeltaName(name, &seq)) {
        dead = live_deltas.count(seq) == 0;
      } else if (name == kCheckpointFile) {
        dead = !have_ckpt;
      }
      if (!dead) continue;  // live, or a foreign file we never touch
      TURBO_RETURN_IF_ERROR(sink->Delete(name));
      ++stats.files_deleted;
    }
  }
  return stats;
}

Result<WalShipStats> ShipWalDir(const std::string& src,
                                const std::string& dst,
                                const WalShipOptions& options) {
  LocalDirSink sink(dst);
  // Dir-to-dir contract: `dst` exists after a successful ship even when
  // nothing was copied (the standby polls it for state to appear).
  TURBO_RETURN_IF_ERROR(sink.EnsureDir());
  return ShipWal(src, &sink, options);
}

}  // namespace turbo::storage
