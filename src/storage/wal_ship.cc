#include "storage/wal_ship.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "storage/checkpoint_io.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace turbo::storage {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointFile[] = "checkpoint.bin";

/// Size of `path`, or 0 when it does not exist.
size_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

/// Appends bytes [from, src_size) of `src` onto `dst` (created when
/// `from` == 0). Plain append is crash-equivalent to a torn primary
/// write: the standby's reader already tolerates a torn tail.
Status AppendTail(const std::string& src, const std::string& dst,
                  size_t from, size_t* appended) {
  std::ifstream in(src, std::ios::binary);
  if (!in) {
    return Status::Internal(StrFormat("cannot open '%s'", src.c_str()));
  }
  in.seekg(static_cast<std::streamoff>(from));
  std::string tail((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::ofstream out(dst, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Internal(StrFormat("cannot open '%s'", dst.c_str()));
  }
  out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  out.flush();
  if (!out) {
    return Status::Internal(StrFormat("short append to '%s'", dst.c_str()));
  }
  *appended = tail.size();
  return Status::OK();
}

/// Copies `src` over `dst` atomically when the bytes differ.
Status CopyIfChanged(const std::string& src, const std::string& dst,
                     bool* copied) {
  *copied = false;
  auto bytes_or = ReadFileBytes(src);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = bytes_or.value();
  if (FileSize(dst) == bytes.size()) {
    auto existing_or = ReadFileBytes(dst);
    if (existing_or.ok() && existing_or.value() == bytes) {
      return Status::OK();
    }
  }
  TURBO_RETURN_IF_ERROR(WriteFileAtomic(dst, bytes));
  *copied = true;
  return Status::OK();
}

}  // namespace

Result<WalShipStats> ShipWalDir(const std::string& src,
                                const std::string& dst,
                                const WalShipOptions& options) {
  if (!fs::exists(src)) {
    return Status::NotFound(
        StrFormat("ship source '%s' does not exist", src.c_str()));
  }
  std::error_code ec;
  fs::create_directories(dst, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create ship target '%s'", dst.c_str()));
  }
  WalShipStats stats;

  // Checkpoint files first: after mirror deletes remove WAL segments a
  // new checkpoint covers, the covering checkpoint must already be in
  // place or a crash between the two steps would leave `dst` without
  // either representation of that history.
  const std::string src_ckpt = src + "/" + kCheckpointFile;
  const std::string dst_ckpt = dst + "/" + kCheckpointFile;
  if (fs::exists(src_ckpt)) {
    bool copied = false;
    TURBO_RETURN_IF_ERROR(CopyIfChanged(src_ckpt, dst_ckpt, &copied));
    if (copied) ++stats.checkpoint_files_copied;
  }
  const std::vector<uint64_t> src_deltas = ListCheckpointDeltas(src);
  for (uint64_t seq : src_deltas) {
    // Delta files are immutable once published: present == shipped.
    const std::string to = CheckpointDeltaPath(dst, seq);
    if (fs::exists(to)) continue;
    bool copied = false;
    TURBO_RETURN_IF_ERROR(
        CopyIfChanged(CheckpointDeltaPath(src, seq), to, &copied));
    if (copied) ++stats.checkpoint_files_copied;
  }

  const std::vector<uint64_t> src_segments = ListWalSegments(src);
  for (uint64_t seq : src_segments) {
    const std::string from = WalSegmentPath(src, seq);
    const std::string to = WalSegmentPath(dst, seq);
    const size_t src_size = FileSize(from);
    size_t dst_size = FileSize(to);
    if (dst_size > src_size) {
      // A replica segment longer than the source can only mean the
      // source was rewritten (e.g. a torn tail truncated by recovery
      // before this standby attached). Re-copy wholesale.
      bool copied = false;
      TURBO_RETURN_IF_ERROR(CopyIfChanged(from, to, &copied));
      dst_size = src_size;
    } else if (dst_size < src_size) {
      if (dst_size == 0 && !fs::exists(to)) ++stats.segments_created;
      size_t appended = 0;
      TURBO_RETURN_IF_ERROR(AppendTail(from, to, dst_size, &appended));
      stats.segment_bytes_appended += appended;
    }
    stats.max_segment_seq = seq;
  }

  if (options.mirror_deletes) {
    const std::set<uint64_t> live(src_segments.begin(),
                                  src_segments.end());
    for (uint64_t seq : ListWalSegments(dst)) {
      if (live.count(seq) != 0) continue;
      fs::remove(WalSegmentPath(dst, seq), ec);
      ++stats.files_deleted;
    }
    const std::set<uint64_t> live_deltas(src_deltas.begin(),
                                         src_deltas.end());
    for (uint64_t seq : ListCheckpointDeltas(dst)) {
      if (live_deltas.count(seq) != 0) continue;
      fs::remove(CheckpointDeltaPath(dst, seq), ec);
      ++stats.files_deleted;
    }
    if (!fs::exists(src_ckpt) && fs::exists(dst_ckpt)) {
      fs::remove(dst_ckpt, ec);
      ++stats.files_deleted;
    }
  }
  return stats;
}

}  // namespace turbo::storage
