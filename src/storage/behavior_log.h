// Core record types shared by the storage, BN, and feature layers.
//
// A behavior log is the paper's [u, r, s, t] quadruple: user u performed a
// behavior of type r with observed value s at time t (Section II-B).
// Values are pre-hashed to 64-bit ids by the ingestion layer (the raw
// strings — MACs, coordinates, addresses — never matter to the algorithms,
// only equality within a type does).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/time_util.h"

namespace turbo {

using UserId = uint32_t;
using ValueId = uint64_t;

/// Behavior types from Table I. The raw GPS coordinates (kGps, kGpsDev)
/// are recorded but edge-building joins on their 100-meter square cells
/// (kGps100, kGpsDev100), mirroring the paper's derived types — two exact
/// double-precision coordinates essentially never collide.
enum class BehaviorType : uint8_t {
  kDeviceId = 0,
  kImei = 1,
  kImsi = 2,
  kIpv4 = 3,
  kWifiMac = 4,
  kGps = 5,
  kGps100 = 6,
  kGpsDev = 7,
  kGpsDev100 = 8,
  kWorkplace = 9,
};

inline constexpr int kNumBehaviorTypes = 10;

/// The 8 edge types of the constructed BN (Table II: "# type" = 8).
inline constexpr std::array<BehaviorType, 8> kEdgeTypes = {
    BehaviorType::kDeviceId,  BehaviorType::kImei,
    BehaviorType::kImsi,      BehaviorType::kIpv4,
    BehaviorType::kWifiMac,   BehaviorType::kGps100,
    BehaviorType::kGpsDev100, BehaviorType::kWorkplace,
};

inline constexpr int kNumEdgeTypes =
    static_cast<int>(kEdgeTypes.size());

std::string_view BehaviorTypeName(BehaviorType t);

/// Index of an edge type within kEdgeTypes, or -1 if the behavior type is
/// not an edge-building type.
int EdgeTypeIndex(BehaviorType t);

struct BehaviorLog {
  UserId uid;
  BehaviorType type;
  ValueId value;
  SimTime time;

  bool operator==(const BehaviorLog&) const = default;
};

using BehaviorLogList = std::vector<BehaviorLog>;

inline std::string_view BehaviorTypeName(BehaviorType t) {
  switch (t) {
    case BehaviorType::kDeviceId:
      return "DeviceId";
    case BehaviorType::kImei:
      return "IMEI";
    case BehaviorType::kImsi:
      return "IMSI";
    case BehaviorType::kIpv4:
      return "IPv4";
    case BehaviorType::kWifiMac:
      return "WiFiMAC";
    case BehaviorType::kGps:
      return "GPS";
    case BehaviorType::kGps100:
      return "GPS100";
    case BehaviorType::kGpsDev:
      return "GPSDev";
    case BehaviorType::kGpsDev100:
      return "GPSDev100";
    case BehaviorType::kWorkplace:
      return "Workplace";
  }
  return "Unknown";
}

inline int EdgeTypeIndex(BehaviorType t) {
  for (size_t i = 0; i < kEdgeTypes.size(); ++i) {
    if (kEdgeTypes[i] == t) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace turbo
