// Durable-store stand-in: an unordered map with storage-cost accounting.
//
// Used for profile/transaction feature rows ("MySQL" in the paper's
// deployment). Header-only template.
#pragma once

#include <optional>
#include <unordered_map>

#include "storage/sim_clock.h"

namespace turbo::storage {

template <typename K, typename V, typename Hash = std::hash<K>>
class KvStore {
 public:
  explicit KvStore(MediumCost cost = MediumCost::Free()) : cost_(cost) {}

  void Put(const K& key, V value) { map_[key] = std::move(value); }

  std::optional<V> Get(const K& key, SimClock* clock = nullptr) const {
    auto it = map_.find(key);
    if (clock) clock->ChargeQuery(cost_, it == map_.end() ? 0 : 1);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const K& key) const { return map_.count(key) > 0; }
  size_t size() const { return map_.size(); }
  const MediumCost& cost() const { return cost_; }

 private:
  MediumCost cost_;
  std::unordered_map<K, V, Hash> map_;
};

}  // namespace turbo::storage
