#include "storage/checkpoint_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace turbo::storage {

namespace {

constexpr char kMagic[8] = {'T', 'U', 'R', 'B', 'O', 'B', 'N', '2'};
constexpr uint32_t kFormatVersion = 2;

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[j] advances a byte through j more zero bytes, so eight input
/// bytes fold into the CRC with eight independent lookups per step.
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int j = 1; j < 8; ++j) {
      t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
    }
  }
  return t;
}

/// fsyncs the directory containing `path` so a just-renamed file's
/// directory entry is durable too.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Recovery CRCs every checkpoint section — tens to hundreds of MB on
  // the restart path — so this runs slicing-by-8 (~4x the plain table
  // loop) rather than byte-at-a-time. Same IEEE polynomial and check
  // values either way (little-endian word loads).
  static const std::array<std::array<uint32_t, 256>, 8> kT = MakeCrcTables();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = kT[7][lo & 0xFFu] ^ kT[6][(lo >> 8) & 0xFFu] ^
        kT[5][(lo >> 16) & 0xFFu] ^ kT[4][lo >> 24] ^ kT[3][hi & 0xFFu] ^
        kT[2][(hi >> 8) & 0xFFu] ^ kT[1][(hi >> 16) & 0xFFu] ^
        kT[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kT[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void CheckpointWriter::AddSection(const std::string& name,
                                  const BinaryWriter& payload) {
  TURBO_CHECK_MSG(!sections_.contains(name),
                  "duplicate checkpoint section '" << name << "'");
  sections_.emplace(name, payload.data());
}

void CheckpointWriter::SetChain(CheckpointKind kind, uint64_t covered_seq,
                                uint64_t parent_seq) {
  kind_ = kind;
  covered_seq_ = covered_seq;
  parent_seq_ = parent_seq;
}

size_t CheckpointWriter::TotalBytes() const {
  size_t n = sizeof(kMagic) + 2 * sizeof(uint32_t) + sizeof(uint8_t) +
             2 * sizeof(uint64_t);
  for (const auto& [name, payload] : sections_) {
    n += 2 * sizeof(uint64_t) + sizeof(uint32_t) + name.size() +
         payload.size();
  }
  return n;
}

Status CheckpointWriter::WriteFile(const std::string& path) const {
  BinaryWriter out;
  out.Bytes(kMagic, sizeof(kMagic));
  out.U32(kFormatVersion);
  out.U8(static_cast<uint8_t>(kind_));
  out.U64(covered_seq_);
  out.U64(parent_seq_);
  out.U32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.String(name);
    out.U64(payload.size());
    out.U32(Crc32(payload.data(), payload.size()));
    out.Bytes(payload.data(), payload.size());
  }
  return WriteFileAtomic(path, out.data());
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  CheckpointReader reader;
  reader.file_ = std::make_unique<std::string>(bytes.take());
  const std::string& file = *reader.file_;
  BinaryReader r(file);
  char magic[sizeof(kMagic)];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": bad checkpoint magic");
  }
  const uint32_t version = r.U32();
  if (version != kFormatVersion) {
    return Status::InvalidArgument(StrFormat(
        "%s: unsupported checkpoint format version %u", path.c_str(),
        version));
  }
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(CheckpointKind::kDelta)) {
    return Status::InvalidArgument(StrFormat(
        "%s: unknown checkpoint kind %u", path.c_str(), kind));
  }
  reader.kind_ = static_cast<CheckpointKind>(kind);
  reader.covered_seq_ = r.U64();
  reader.parent_seq_ = r.U64();
  const uint32_t count = r.U32();
  for (uint32_t i = 0; i < count; ++i) {
    const std::string name = r.String();
    const uint64_t size = r.U64();
    const uint32_t crc = r.U32();
    if (!r.ok() || size > r.remaining()) {
      return Status::InvalidArgument(
          StrFormat("%s: truncated at section %u", path.c_str(), i));
    }
    // Validate in place and keep a view — copying sections out would
    // double the recovery path's memory traffic.
    const char* payload = r.Take(size);
    if (Crc32(payload, size) != crc) {
      return Status::InvalidArgument(StrFormat(
          "%s: CRC mismatch in section '%s'", path.c_str(), name.c_str()));
    }
    reader.sections_.emplace(name, std::string_view(payload, size));
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::InvalidArgument(path + ": trailing or missing bytes");
  }
  return reader;
}

std::string_view CheckpointReader::Find(const std::string& name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? std::string_view() : it->second;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  // One sized read, not istreambuf iteration — checkpoints are tens to
  // hundreds of MB and this sits on the recovery path.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat " + path);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::Internal("read failed for " + path);
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal("cannot open " + tmp + " for write");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted by a signal; retry
      ::close(fd);
      return Status::Internal("write failed for " + tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("fsync failed for " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  SyncParentDir(path);
  return Status::OK();
}

}  // namespace turbo::storage
