// Self-describing, checksummed binary container for durable BN state —
// the "turbo-bn v2" format (DESIGN.md "Incremental snapshots & delta
// checkpoints").
//
// A checkpoint file is a magic header, a chain header, and named
// sections, each carrying its own CRC32:
//
//   "TURBOBN2"            8-byte magic ("turbo-bn v2")
//   u32 format_version    currently 2
//   u8  kind              0 = full checkpoint, 1 = delta
//   u64 covered_seq       WAL sequence covered by this file's state
//   u64 parent_seq        delta only: covered_seq of the previous link
//   u32 section_count
//   per section:
//     u64 name_len, name bytes
//     u64 payload_len
//     u32 crc32(payload)
//     payload bytes
//
// A full checkpoint is self-contained. A delta carries only state that
// changed since its parent (the full base or the previous delta, chained
// by parent_seq == parent's covered_seq); recovery loads the base and
// applies the chain in covered_seq order before replaying the WAL tail.
//
// Integers are little-endian, fixed width. Readers validate the magic,
// the version, and every section CRC before any payload is interpreted,
// so a truncated or bit-flipped file fails loudly with a Status instead
// of deserializing garbage. Files are published with write-to-temp +
// fsync + rename, so a crash mid-checkpoint leaves the previous
// checkpoint intact.
//
// BinaryWriter/BinaryReader are the primitive encode/decode layer shared
// by section payloads and the WAL record format (wal.h). BinaryReader is
// sticky-failure: reads past the end return zeros and latch !ok(), so
// deserializers can decode a whole struct and check ok() once.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace turbo::storage {

/// IEEE CRC32 (zlib-compatible polynomial), table-based.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Append-only little-endian encoder over a growable byte buffer.
class BinaryWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(const void* p, size_t n) { Raw(p, n); }
  void String(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian decoder. Reads past the end latch a
/// sticky failure and yield zero values; callers check ok() (and usually
/// remaining() == 0) after decoding a payload.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  float F32() {
    float v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  bool Bytes(void* p, size_t n) { return Raw(p, n); }
  /// Zero-copy bulk access: returns a pointer to the next `n` bytes and
  /// advances past them, or nullptr (latching failure) on overrun. The
  /// pointer aliases the reader's underlying buffer — valid only while
  /// that buffer lives. Lets row-decoding loops skip the per-field
  /// bounds check.
  const char* Take(size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      return nullptr;
    }
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::string String() {
    const uint64_t n = U64();
    if (n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool ok() const { return !failed_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Raw(void* p, size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      std::memset(p, 0, n);
      return false;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Position of a checkpoint file in the base + delta chain.
enum class CheckpointKind : uint8_t { kFull = 0, kDelta = 1 };

/// Collects named sections and publishes them atomically as one
/// checkpoint file (temp file + fsync + rename).
class CheckpointWriter {
 public:
  /// Adds a section; names must be unique per file.
  void AddSection(const std::string& name, const BinaryWriter& payload);

  /// Sets the chain header. Defaults to a standalone full checkpoint
  /// (kFull, covered_seq 0, parent_seq 0) when never called.
  void SetChain(CheckpointKind kind, uint64_t covered_seq,
                uint64_t parent_seq);

  /// Serialized size of the file body so far (capacity planning).
  size_t TotalBytes() const;

  /// Writes `<path>.tmp`, fsyncs it, and renames over `path`.
  Status WriteFile(const std::string& path) const;

 private:
  CheckpointKind kind_ = CheckpointKind::kFull;
  uint64_t covered_seq_ = 0;
  uint64_t parent_seq_ = 0;
  std::map<std::string, std::string> sections_;
};

/// Parses and validates a checkpoint file: magic, version, and every
/// section CRC are checked up front. Sections are views into the file
/// bytes held by the reader — no per-section copies — so they stay valid
/// exactly as long as the reader does.
class CheckpointReader {
 public:
  static Result<CheckpointReader> Open(const std::string& path);

  CheckpointReader(CheckpointReader&&) = default;
  CheckpointReader& operator=(CheckpointReader&&) = default;

  bool Has(const std::string& name) const {
    return sections_.contains(name);
  }
  /// Section payload (view into the reader's buffer), empty if absent.
  std::string_view Find(const std::string& name) const;
  size_t FileBytes() const { return file_->size(); }

  CheckpointKind kind() const { return kind_; }
  uint64_t covered_seq() const { return covered_seq_; }
  uint64_t parent_seq() const { return parent_seq_; }

 private:
  CheckpointReader() = default;

  CheckpointKind kind_ = CheckpointKind::kFull;
  uint64_t covered_seq_ = 0;
  uint64_t parent_seq_ = 0;
  // unique_ptr so moves don't invalidate the section views.
  std::unique_ptr<std::string> file_;
  std::map<std::string, std::string_view> sections_;
};

/// Reads a whole file into memory (shared by checkpoint + WAL readers).
Result<std::string> ReadFileBytes(const std::string& path);

/// Writes bytes to `<path>.tmp`, fsyncs, then renames over `path` —
/// readers see either the old file or the complete new one.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace turbo::storage
