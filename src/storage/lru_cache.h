// Bounded LRU cache modeling the Redis layer in front of the local
// database (Section V). Header-only template.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

#include "storage/sim_clock.h"
#include "util/check.h"

namespace turbo::storage {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity,
                    MediumCost cost = MediumCost::InMemoryCache())
      : capacity_(capacity), cost_(cost) {
    TURBO_CHECK_GT(capacity_, 0u);
  }

  /// Returns the cached value and refreshes recency; charges one cache
  /// round-trip either way.
  std::optional<V> Get(const K& key, SimClock* clock = nullptr) {
    if (clock) clock->ChargeQuery(cost_, 1);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void Put(const K& key, V value, SimClock* clock = nullptr) {
    if (clock) clock->ChargeQuery(cost_, 1);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      auto& lru = order_.back();
      map_.erase(lru.first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  void Erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    order_.erase(it->second);
    map_.erase(it);
  }

  void Clear() {
    map_.clear();
    order_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  double hit_rate() const {
    int64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  size_t capacity_;
  MediumCost cost_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace turbo::storage
