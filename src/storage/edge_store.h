// Global typed, weighted, undirected edge list of the Behavior Network,
// with incremental weight accumulation and TTL-based expiry (Section V:
// "a max TTL is set to 60 days for each edge").
//
// The store is keyed by (edge type, endpoint): adjacency is materialized
// in both directions so neighbor queries are O(deg).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/behavior_log.h"
#include "storage/checkpoint_io.h"
#include "util/check.h"
#include "util/status.h"

namespace turbo::storage {

struct EdgeInfo {
  /// Accumulated in double on purpose: every increment is a float-valued
  /// 1/N term (>= 1/max-bucket-size) and realistic totals stay far below
  /// 2^13, so each partial sum is exactly representable in a double's 53
  /// mantissa bits. Exact sums are order-independent, which is what lets
  /// the sharded window-job engine merge per-shard deltas in any
  /// interleaving — and the offline builder replay any job order — and
  /// still produce bit-identical weights (see DESIGN.md "Ingestion &
  /// window jobs").
  double weight = 0.0;
  SimTime last_update = 0;
};

/// Per-edge-type set of nodes whose adjacency rows changed since some
/// reference point (the last snapshot publish, the last checkpoint).
/// Both endpoints of every added or expired edge are recorded, so a
/// node absent from the set is guaranteed to have a bit-identical row —
/// the contract BnSnapshot::ApplyDeltas and the delta-checkpoint edge
/// sections are built on.
struct EdgeChurn {
  std::array<std::unordered_set<UserId>, kNumEdgeTypes> nodes;

  void Touch(int edge_type, UserId u) { nodes[edge_type].insert(u); }
  bool Empty() const;
  /// Sum of per-type touched-node counts (a node churned on two types
  /// counts twice — it has two rows to recompute).
  size_t TotalTouched() const;
  void Clear();
  void MergeFrom(const EdgeChurn& other);

  /// Per type: u64 count, then the touched ids ascending (u32 each).
  /// Deterministic: equal churn sets produce equal bytes.
  void Serialize(BinaryWriter* w) const;
  /// Restores a Serialize()d churn set, replacing current contents.
  /// Ids at or past `num_users` are rejected as corrupt.
  Status Deserialize(BinaryReader* r, UserId num_users);
};

class EdgeStore {
 public:
  /// Adds `w` to the weight of the undirected edge (u, v) of the given
  /// edge type (index into kEdgeTypes); refreshes its TTL timestamp.
  void AddWeight(int edge_type, UserId u, UserId v, float w, SimTime now);

  /// Removes every edge whose last update is strictly before `cutoff`.
  /// Returns the number of undirected edges removed. When `churn` is
  /// given, both endpoints of every removed edge are recorded in it.
  size_t ExpireBefore(SimTime cutoff, EdgeChurn* churn = nullptr);

  /// Neighbor map of u for one edge type (empty if none).
  const std::unordered_map<UserId, EdgeInfo>& Neighbors(int edge_type,
                                                        UserId u) const;

  /// Sum of edge weights incident to u for one edge type.
  double WeightedDegree(int edge_type, UserId u) const;

  /// Current weight of (u, v) on `edge_type`, or 0 if absent.
  float Weight(int edge_type, UserId u, UserId v) const;

  /// Undirected edge count per type and total.
  size_t NumEdges(int edge_type) const;
  size_t TotalEdges() const;

  /// Users that have at least one edge of any type.
  std::vector<UserId> ConnectedUsers() const;

  /// Checkpoint hook: writes every undirected edge (from its smaller
  /// endpoint, endpoints ascending) with its exact double weight bits and
  /// TTL timestamp. Deterministic: equal stores produce equal bytes.
  void Serialize(BinaryWriter* w) const;

  /// Restores a Serialize()d store, replacing current contents. Weights
  /// are restored bit-exactly (not re-accumulated through float adds).
  /// Records with an endpoint >= `num_users` are rejected as corrupt:
  /// without the bound a CRC-valid but hand-crafted id near 2^32 would
  /// drive a multi-billion-row adjacency resize instead of an error.
  Status Deserialize(BinaryReader* r, UserId num_users);

  /// Delta-checkpoint hook: writes, per type, the churned node ids
  /// (ascending) followed by the *current* state of every edge with at
  /// least one churned endpoint, each emitted exactly once with exact
  /// weight bits. Deterministic for equal (store, churn) inputs.
  void SerializeTouched(const EdgeChurn& churn, BinaryWriter* w) const;

  /// Applies a SerializeTouched()d section: clears the recorded nodes'
  /// rows (mirrors included), then inserts the emitted edges bit-exactly.
  /// Applying the section written against this store's own baseline
  /// reproduces the writer's store bit for bit. Validates endpoints
  /// against `num_users` like Deserialize.
  Status ApplyDeltaSection(BinaryReader* r, UserId num_users);

 private:
  /// Removes every edge incident to u (both directions), keeping the
  /// undirected edge counts consistent.
  void ClearNode(int edge_type, UserId u);
  using Adjacency = std::vector<std::unordered_map<UserId, EdgeInfo>>;

  void EnsureSize(Adjacency* adj, UserId u) {
    // Explicit widening: comparing size() against a narrower id must not
    // rely on implicit conversions (a signed id cast to UserId upstream
    // would wrap to a huge value — AddWeight rejects those).
    if (adj->size() <= static_cast<size_t>(u)) {
      adj->resize(static_cast<size_t>(u) + 1);
    }
  }

  std::array<Adjacency, kNumEdgeTypes> by_type_;
  std::array<size_t, kNumEdgeTypes> edge_count_{};  // undirected, per type
};

}  // namespace turbo::storage
