// Global typed, weighted, undirected edge list of the Behavior Network,
// with incremental weight accumulation and TTL-based expiry (Section V:
// "a max TTL is set to 60 days for each edge").
//
// The store is keyed by (edge type, endpoint): adjacency is materialized
// in both directions so neighbor queries are O(deg).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/behavior_log.h"
#include "storage/checkpoint_io.h"
#include "util/check.h"

namespace turbo::storage {

struct EdgeInfo {
  /// Accumulated in double on purpose: every increment is a float-valued
  /// 1/N term (>= 1/max-bucket-size) and realistic totals stay far below
  /// 2^13, so each partial sum is exactly representable in a double's 53
  /// mantissa bits. Exact sums are order-independent, which is what lets
  /// the sharded window-job engine merge per-shard deltas in any
  /// interleaving — and the offline builder replay any job order — and
  /// still produce bit-identical weights (see DESIGN.md "Ingestion &
  /// window jobs").
  double weight = 0.0;
  SimTime last_update = 0;
};

class EdgeStore {
 public:
  /// Adds `w` to the weight of the undirected edge (u, v) of the given
  /// edge type (index into kEdgeTypes); refreshes its TTL timestamp.
  void AddWeight(int edge_type, UserId u, UserId v, float w, SimTime now);

  /// Removes every edge whose last update is strictly before `cutoff`.
  /// Returns the number of undirected edges removed.
  size_t ExpireBefore(SimTime cutoff);

  /// Neighbor map of u for one edge type (empty if none).
  const std::unordered_map<UserId, EdgeInfo>& Neighbors(int edge_type,
                                                        UserId u) const;

  /// Sum of edge weights incident to u for one edge type.
  double WeightedDegree(int edge_type, UserId u) const;

  /// Current weight of (u, v) on `edge_type`, or 0 if absent.
  float Weight(int edge_type, UserId u, UserId v) const;

  /// Undirected edge count per type and total.
  size_t NumEdges(int edge_type) const;
  size_t TotalEdges() const;

  /// Users that have at least one edge of any type.
  std::vector<UserId> ConnectedUsers() const;

  /// Checkpoint hook: writes every undirected edge (from its smaller
  /// endpoint, endpoints ascending) with its exact double weight bits and
  /// TTL timestamp. Deterministic: equal stores produce equal bytes.
  void Serialize(BinaryWriter* w) const;

  /// Restores a Serialize()d store, replacing current contents. Weights
  /// are restored bit-exactly (not re-accumulated through float adds).
  /// Records with an endpoint >= `num_users` are rejected as corrupt:
  /// without the bound a CRC-valid but hand-crafted id near 2^32 would
  /// drive a multi-billion-row adjacency resize instead of an error.
  Status Deserialize(BinaryReader* r, UserId num_users);

 private:
  using Adjacency = std::vector<std::unordered_map<UserId, EdgeInfo>>;

  void EnsureSize(Adjacency* adj, UserId u) {
    // Explicit widening: comparing size() against a narrower id must not
    // rely on implicit conversions (a signed id cast to UserId upstream
    // would wrap to a huge value — AddWeight rejects those).
    if (adj->size() <= static_cast<size_t>(u)) {
      adj->resize(static_cast<size_t>(u) + 1);
    }
  }

  std::array<Adjacency, kNumEdgeTypes> by_type_;
  std::array<size_t, kNumEdgeTypes> edge_count_{};  // undirected, per type
};

}  // namespace turbo::storage
