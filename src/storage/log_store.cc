#include "storage/log_store.h"

#include <algorithm>

namespace turbo::storage {

void LogStore::Append(const BehaviorLog& log) {
  auto& ui = by_user_[log.uid];
  if (!ui.logs.empty() && ui.logs.back().time > log.time) ui.sorted = false;
  ui.logs.push_back(log);

  auto& vi = by_value_[ValueKey{log.type, log.value}];
  if (!vi.obs.empty() && vi.obs.back().time > log.time) vi.sorted = false;
  vi.obs.push_back({log.uid, log.time});
  touched_by_hour_[log.time / kHour].insert(
      ValueKey{log.type, log.value});
  ++total_;
}

void LogStore::AppendBatch(const BehaviorLogList& logs) {
  for (const auto& l : logs) Append(l);
}

BehaviorLogList LogStore::QueryUser(UserId uid, SimTime t0, SimTime t1,
                                    SimClock* clock) const {
  auto it = by_user_.find(uid);
  if (it == by_user_.end()) {
    if (clock) clock->ChargeQuery(cost_, 0);
    return {};
  }
  auto& idx = it->second;
  if (!idx.sorted) {
    std::sort(idx.logs.begin(), idx.logs.end(),
              [](const BehaviorLog& a, const BehaviorLog& b) {
                return a.time < b.time;
              });
    idx.sorted = true;
  }
  auto lo = std::lower_bound(idx.logs.begin(), idx.logs.end(), t0,
                             [](const BehaviorLog& l, SimTime t) {
                               return l.time < t;
                             });
  auto hi = std::upper_bound(idx.logs.begin(), idx.logs.end(), t1,
                             [](SimTime t, const BehaviorLog& l) {
                               return t < l.time;
                             });
  BehaviorLogList out(lo, hi);
  if (clock) clock->ChargeQuery(cost_, static_cast<int64_t>(out.size()));
  return out;
}

std::vector<LogStore::Observation> LogStore::QueryValue(
    BehaviorType t, ValueId v, SimTime t0, SimTime t1,
    SimClock* clock) const {
  auto it = by_value_.find(ValueKey{t, v});
  if (it == by_value_.end()) {
    if (clock) clock->ChargeQuery(cost_, 0);
    return {};
  }
  auto& idx = it->second;
  if (!idx.sorted) {
    std::sort(idx.obs.begin(), idx.obs.end(),
              [](const Observation& a, const Observation& b) {
                return a.time < b.time;
              });
    idx.sorted = true;
  }
  auto lo = std::lower_bound(
      idx.obs.begin(), idx.obs.end(), t0,
      [](const Observation& o, SimTime t) { return o.time < t; });
  auto hi = std::upper_bound(
      idx.obs.begin(), idx.obs.end(), t1,
      [](SimTime t, const Observation& o) { return t < o.time; });
  std::vector<Observation> out(lo, hi);
  if (clock) clock->ChargeQuery(cost_, static_cast<int64_t>(out.size()));
  return out;
}

std::vector<LogStore::ValueKey> LogStore::ActiveValues(SimTime t0,
                                                       SimTime t1) const {
  // Union of the hour buckets overlapping [t0, t1]; bucket granularity
  // makes this proportional to the touched keys, not the key space.
  std::unordered_set<ValueKey, ValueKeyHash> seen;
  const int64_t b0 = t0 >= 0 ? t0 / kHour : (t0 - kHour + 1) / kHour;
  const int64_t b1 = t1 >= 0 ? t1 / kHour : (t1 - kHour + 1) / kHour;
  for (int64_t b = b0; b <= b1; ++b) {
    auto it = touched_by_hour_.find(b);
    if (it == touched_by_hour_.end()) continue;
    seen.insert(it->second.begin(), it->second.end());
  }
  // Bucket overlap is coarse; filter to exact range membership. Sort the
  // key's observations lazily (same as QueryValue) so the membership
  // test is a binary search — a linear scan here is O(all rows of the
  // key) per call, which quietly dominated window jobs on hot keys whose
  // history is much longer than the queried epoch.
  std::vector<ValueKey> out;
  out.reserve(seen.size());
  for (const auto& key : seen) {
    auto& idx = by_value_.at(key);
    if (!idx.sorted) {
      std::sort(idx.obs.begin(), idx.obs.end(),
                [](const Observation& a, const Observation& b) {
                  return a.time < b.time;
                });
      idx.sorted = true;
    }
    auto lo = std::lower_bound(
        idx.obs.begin(), idx.obs.end(), t0,
        [](const Observation& o, SimTime t) { return o.time < t; });
    if (lo != idx.obs.end() && lo->time <= t1) out.push_back(key);
  }
  return out;
}

std::vector<UserId> LogStore::Users() const {
  std::vector<UserId> out;
  out.reserve(by_user_.size());
  for (const auto& [uid, idx] : by_user_) out.push_back(uid);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace turbo::storage
