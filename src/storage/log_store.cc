#include "storage/log_store.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <string>

namespace turbo::storage {

void LogStore::Append(const BehaviorLog& log) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AppendLocked(log);
}

void LogStore::AppendBatch(const BehaviorLogList& logs) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& l : logs) AppendLocked(l);
}

void LogStore::AppendLocked(const BehaviorLog& log) {
  auto& ui = by_user_[log.uid];
  if (!ui.logs.empty() && ui.logs.back().time > log.time) ui.sorted = false;
  ui.logs.push_back(log);

  auto& vi = by_value_[ValueKey{log.type, log.value}];
  if (!vi.obs.empty() && vi.obs.back().time > log.time) vi.sorted = false;
  vi.obs.push_back({log.uid, log.time});
  touched_by_hour_[log.time / kHour].insert(
      ValueKey{log.type, log.value});
  ++total_;
}

BehaviorLogList LogStore::SliceUser(const UserIndex& idx, SimTime t0,
                                    SimTime t1, SimClock* clock) const {
  auto lo = std::lower_bound(idx.logs.begin(), idx.logs.end(), t0,
                             [](const BehaviorLog& l, SimTime t) {
                               return l.time < t;
                             });
  auto hi = std::upper_bound(idx.logs.begin(), idx.logs.end(), t1,
                             [](SimTime t, const BehaviorLog& l) {
                               return t < l.time;
                             });
  BehaviorLogList out(lo, hi);
  if (clock) clock->ChargeQuery(cost_, static_cast<int64_t>(out.size()));
  return out;
}

BehaviorLogList LogStore::QueryUser(UserId uid, SimTime t0, SimTime t1,
                                    SimClock* clock) const {
  // Fast path: a shared lock suffices once the index is time-sorted.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = by_user_.find(uid);
    if (it == by_user_.end()) {
      if (clock) clock->ChargeQuery(cost_, 0);
      return {};
    }
    if (it->second.sorted) return SliceUser(it->second, t0, t1, clock);
  }
  // Lazy sort mutates the index: retake exclusively and redo the lookup
  // (the writer may have appended in the unlock/relock gap).
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_user_.find(uid);
  if (it == by_user_.end()) {
    if (clock) clock->ChargeQuery(cost_, 0);
    return {};
  }
  auto& idx = it->second;
  if (!idx.sorted) {
    std::sort(idx.logs.begin(), idx.logs.end(),
              [](const BehaviorLog& a, const BehaviorLog& b) {
                return a.time < b.time;
              });
    idx.sorted = true;
  }
  return SliceUser(idx, t0, t1, clock);
}

std::vector<LogStore::Observation> LogStore::SliceValue(
    const ValueIndex& idx, SimTime t0, SimTime t1, SimClock* clock) const {
  auto lo = std::lower_bound(
      idx.obs.begin(), idx.obs.end(), t0,
      [](const Observation& o, SimTime t) { return o.time < t; });
  auto hi = std::upper_bound(
      idx.obs.begin(), idx.obs.end(), t1,
      [](SimTime t, const Observation& o) { return t < o.time; });
  std::vector<Observation> out(lo, hi);
  if (clock) clock->ChargeQuery(cost_, static_cast<int64_t>(out.size()));
  return out;
}

std::vector<LogStore::Observation> LogStore::QueryValue(
    BehaviorType t, ValueId v, SimTime t0, SimTime t1,
    SimClock* clock) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = by_value_.find(ValueKey{t, v});
    if (it == by_value_.end()) {
      if (clock) clock->ChargeQuery(cost_, 0);
      return {};
    }
    if (it->second.sorted) return SliceValue(it->second, t0, t1, clock);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_value_.find(ValueKey{t, v});
  if (it == by_value_.end()) {
    if (clock) clock->ChargeQuery(cost_, 0);
    return {};
  }
  auto& idx = it->second;
  if (!idx.sorted) {
    std::sort(idx.obs.begin(), idx.obs.end(),
              [](const Observation& a, const Observation& b) {
                return a.time < b.time;
              });
    idx.sorted = true;
  }
  return SliceValue(idx, t0, t1, clock);
}

std::vector<LogStore::ValueKey> LogStore::ActiveValues(SimTime t0,
                                                       SimTime t1) const {
  // Window jobs run on the writer thread and this path may lazily sort,
  // so take the exclusive lock outright instead of upgrading per key.
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Union of the hour buckets overlapping [t0, t1]; bucket granularity
  // makes this proportional to the touched keys, not the key space.
  std::unordered_set<ValueKey, ValueKeyHash> seen;
  const int64_t b0 = t0 >= 0 ? t0 / kHour : (t0 - kHour + 1) / kHour;
  const int64_t b1 = t1 >= 0 ? t1 / kHour : (t1 - kHour + 1) / kHour;
  for (int64_t b = b0; b <= b1; ++b) {
    auto it = touched_by_hour_.find(b);
    if (it == touched_by_hour_.end()) continue;
    seen.insert(it->second.begin(), it->second.end());
  }
  // Bucket overlap is coarse; filter to exact range membership. Sort the
  // key's observations lazily (same as QueryValue) so the membership
  // test is a binary search — a linear scan here is O(all rows of the
  // key) per call, which quietly dominated window jobs on hot keys whose
  // history is much longer than the queried epoch.
  std::vector<ValueKey> out;
  out.reserve(seen.size());
  for (const auto& key : seen) {
    auto& idx = by_value_.at(key);
    if (!idx.sorted) {
      std::sort(idx.obs.begin(), idx.obs.end(),
                [](const Observation& a, const Observation& b) {
                  return a.time < b.time;
                });
      idx.sorted = true;
    }
    auto lo = std::lower_bound(
        idx.obs.begin(), idx.obs.end(), t0,
        [](const Observation& o, SimTime t) { return o.time < t; });
    if (lo != idx.obs.end() && lo->time <= t1) out.push_back(key);
  }
  return out;
}

namespace {

// Fixed row widths of the bulk log-section format (see log_store.h).
constexpr size_t kUserRowBytes = 1 + 8 + 8;  // type, value, time
constexpr size_t kObsRowBytes = 4 + 8;       // uid, time
constexpr size_t kKeyRowBytes = 1 + 8;       // type, value

}  // namespace

void LogStore::Serialize(BinaryWriter* w) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  w->U64(total_);

  // Per-user log runs, uid ascending; uid is implicit in the rows.
  w->U64(by_user_.size());
  for (UserId uid : UsersLocked()) {
    const UserIndex& idx = by_user_.at(uid);
    w->U32(uid);
    w->U8(idx.sorted ? 1 : 0);
    w->U64(idx.logs.size());
    for (const BehaviorLog& log : idx.logs) {
      char row[kUserRowBytes];
      row[0] = static_cast<char>(log.type);
      std::memcpy(row + 1, &log.value, sizeof(log.value));
      std::memcpy(row + 9, &log.time, sizeof(log.time));
      w->Bytes(row, sizeof(row));
    }
  }

  // Per-(type, value) observation runs, keys in (type, value) order.
  std::vector<ValueKey> keys;
  keys.reserve(by_value_.size());
  for (const auto& [key, idx] : by_value_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(),
            [](const ValueKey& a, const ValueKey& b) {
              return a.type != b.type ? a.type < b.type : a.value < b.value;
            });
  w->U64(keys.size());
  for (const ValueKey& key : keys) {
    const ValueIndex& idx = by_value_.at(key);
    w->U8(static_cast<uint8_t>(key.type));
    w->U64(key.value);
    w->U8(idx.sorted ? 1 : 0);
    w->U64(idx.obs.size());
    for (const Observation& o : idx.obs) {
      char row[kObsRowBytes];
      std::memcpy(row, &o.uid, sizeof(o.uid));
      std::memcpy(row + 4, &o.time, sizeof(o.time));
      w->Bytes(row, sizeof(row));
    }
  }

  // Hour buckets of touched keys, hours ascending, keys ordered.
  std::vector<int64_t> hours;
  hours.reserve(touched_by_hour_.size());
  for (const auto& [hour, keys_in_hour] : touched_by_hour_) {
    hours.push_back(hour);
  }
  std::sort(hours.begin(), hours.end());
  w->U64(hours.size());
  for (int64_t hour : hours) {
    const auto& keys_in_hour = touched_by_hour_.at(hour);
    std::vector<ValueKey> bucket(keys_in_hour.begin(), keys_in_hour.end());
    std::sort(bucket.begin(), bucket.end(),
              [](const ValueKey& a, const ValueKey& b) {
                return a.type != b.type ? a.type < b.type
                                        : a.value < b.value;
              });
    w->I64(hour);
    w->U64(bucket.size());
    for (const ValueKey& key : bucket) {
      char row[kKeyRowBytes];
      row[0] = static_cast<char>(key.type);
      std::memcpy(row + 1, &key.value, sizeof(key.value));
      w->Bytes(row, sizeof(row));
    }
  }
}

Status LogStore::Deserialize(BinaryReader* r) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  by_user_.clear();
  by_value_.clear();
  touched_by_hour_.clear();
  total_ = 0;
  auto fail = [this](const char* what) {
    by_user_.clear();
    by_value_.clear();
    touched_by_hour_.clear();
    total_ = 0;
    return Status::InvalidArgument(std::string("log section: ") + what);
  };

  const uint64_t total = r->U64();

  // Per-user runs. Every count is checked against the bytes actually
  // remaining before any allocation, so a corrupt length field fails
  // cleanly instead of triggering a huge resize.
  const uint64_t num_users = r->U64();
  if (!r->ok() || num_users > r->remaining() / (4 + 1 + 8)) {
    return fail("bad user count");
  }
  by_user_.reserve(num_users);
  uint64_t logs_seen = 0;
  for (uint64_t u = 0; u < num_users; ++u) {
    const UserId uid = r->U32();
    const uint8_t sorted = r->U8();
    const uint64_t count = r->U64();
    if (!r->ok() || count > r->remaining() / kUserRowBytes) {
      return fail("truncated user run");
    }
    UserIndex& idx = by_user_[uid];
    if (!idx.logs.empty()) return fail("duplicate user run");
    idx.sorted = sorted != 0;
    idx.logs.resize(count);
    const char* p = r->Take(count * kUserRowBytes);
    for (uint64_t i = 0; i < count; ++i, p += kUserRowBytes) {
      BehaviorLog& log = idx.logs[i];
      log.uid = uid;
      log.type = static_cast<BehaviorType>(static_cast<uint8_t>(p[0]));
      std::memcpy(&log.value, p + 1, sizeof(log.value));
      std::memcpy(&log.time, p + 9, sizeof(log.time));
    }
    logs_seen += count;
  }
  if (logs_seen != total) return fail("log count mismatch");

  // Per-(type, value) observation runs.
  const uint64_t num_keys = r->U64();
  if (!r->ok() || num_keys > r->remaining() / (1 + 8 + 1 + 8)) {
    return fail("bad value-key count");
  }
  by_value_.reserve(num_keys);
  uint64_t obs_seen = 0;
  for (uint64_t k = 0; k < num_keys; ++k) {
    ValueKey key;
    key.type = static_cast<BehaviorType>(r->U8());
    key.value = r->U64();
    const uint8_t sorted = r->U8();
    const uint64_t count = r->U64();
    if (!r->ok() || count > r->remaining() / kObsRowBytes) {
      return fail("truncated observation run");
    }
    ValueIndex& idx = by_value_[key];
    if (!idx.obs.empty()) return fail("duplicate value-key run");
    idx.sorted = sorted != 0;
    idx.obs.resize(count);
    const char* p = r->Take(count * kObsRowBytes);
    for (uint64_t i = 0; i < count; ++i, p += kObsRowBytes) {
      Observation& o = idx.obs[i];
      std::memcpy(&o.uid, p, sizeof(o.uid));
      std::memcpy(&o.time, p + 4, sizeof(o.time));
    }
    obs_seen += count;
  }
  if (obs_seen != total) return fail("observation count mismatch");

  // Hour buckets of touched keys.
  const uint64_t num_hours = r->U64();
  if (!r->ok() || num_hours > r->remaining() / (8 + 8)) {
    return fail("bad hour-bucket count");
  }
  touched_by_hour_.reserve(num_hours);
  for (uint64_t h = 0; h < num_hours; ++h) {
    const int64_t hour = r->I64();
    const uint64_t count = r->U64();
    if (!r->ok() || count > r->remaining() / kKeyRowBytes) {
      return fail("truncated hour bucket");
    }
    auto& bucket = touched_by_hour_[hour];
    if (!bucket.empty()) return fail("duplicate hour bucket");
    bucket.reserve(count);
    const char* p = r->Take(count * kKeyRowBytes);
    for (uint64_t i = 0; i < count; ++i, p += kKeyRowBytes) {
      ValueKey key;
      key.type = static_cast<BehaviorType>(static_cast<uint8_t>(p[0]));
      std::memcpy(&key.value, p + 1, sizeof(key.value));
      bucket.insert(key);
    }
    if (bucket.size() != count) return fail("duplicate key in hour bucket");
  }

  total_ = total;
  return Status::OK();
}

std::vector<UserId> LogStore::Users() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return UsersLocked();
}

std::vector<UserId> LogStore::UsersLocked() const {
  std::vector<UserId> out;
  out.reserve(by_user_.size());
  for (const auto& [uid, idx] : by_user_) out.push_back(uid);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace turbo::storage
