// Ingest write-ahead log for the BN server (DESIGN.md "Durability &
// recovery").
//
// The WAL is a sequence of numbered segment files `wal-<seq>.log` in the
// server's durability directory. Each segment starts with a fixed header
//
//   "TURBOWAL"    8-byte magic
//   u32 version   currently 1
//   u64 seq       segment sequence number
//
// followed by append-only records, each framed as
//
//   u8 kind | fixed-width payload | u32 crc32(kind + payload)
//
// Two record kinds exist: kIngest carries one behavior log [uid, type,
// value, ts]; kAdvance carries a clock-advance target. Replaying the
// record stream through BnServer's deterministic ingest + window-job
// engine reproduces the exact in-memory state of the process that wrote
// it (bit-identical weights and frontiers), which is what
// BnServer::Recover relies on.
//
// Writers batch appends in memory and flush on a group-commit threshold
// (records or bytes, whichever trips first); the fsync policy decides
// whether a flush also reaches the platter. Readers validate the header
// and every record CRC; a truncated or CRC-broken record — the signature
// of a torn write at crash time — cleanly ends the segment (`torn` is
// reported, the valid prefix is kept). Any record *after* a broken one
// would mean corruption, not a crash, so replay layers treat a torn
// non-final segment as an error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/behavior_log.h"
#include "util/status.h"

namespace turbo::storage {

struct WalRecord {
  enum class Kind : uint8_t { kIngest = 1, kAdvance = 2 };
  Kind kind = Kind::kIngest;
  BehaviorLog log{};        // kIngest
  SimTime advance_to = 0;   // kAdvance

  static WalRecord Ingest(const BehaviorLog& log) {
    WalRecord r;
    r.kind = Kind::kIngest;
    r.log = log;
    return r;
  }
  static WalRecord Advance(SimTime now) {
    WalRecord r;
    r.kind = Kind::kAdvance;
    r.advance_to = now;
    return r;
  }
};

struct WalOptions {
  enum class Fsync : uint8_t {
    kNever,        // OS page cache only; fastest, weakest
    kOnFlush,      // fsync once per group-commit flush (default)
    kEveryAppend,  // flush + fsync every record; crash loses nothing
  };
  Fsync fsync = Fsync::kOnFlush;
  /// Group-commit thresholds: a buffered batch is flushed when it holds
  /// this many records or this many bytes, whichever trips first.
  size_t group_commit_records = 64;
  size_t group_commit_bytes = 64 * 1024;
};

/// Path of segment `seq` inside `dir`.
std::string WalSegmentPath(const std::string& dir, uint64_t seq);

/// Sequence numbers of the WAL segments present in `dir`, ascending.
/// A missing directory yields an empty list.
std::vector<uint64_t> ListWalSegments(const std::string& dir);

/// Path of the delta checkpoint whose covered_seq is `seq` inside `dir`.
/// Delta files are named by their own covered WAL sequence so the chain
/// order is recoverable from the directory listing alone.
std::string CheckpointDeltaPath(const std::string& dir, uint64_t seq);

/// covered_seq values of the delta-checkpoint files present in `dir`,
/// ascending. A missing directory yields an empty list.
std::vector<uint64_t> ListCheckpointDeltas(const std::string& dir);

/// Single-writer append handle for one WAL segment.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates (truncates) segment `seq` in `dir` and writes its header.
  Status Open(const std::string& dir, uint64_t seq,
              const WalOptions& options);

  /// Buffers one record, flushing per the group-commit thresholds.
  Status Append(const WalRecord& record);

  /// Writes the buffered batch to the file (fsync per policy).
  Status Flush();

  /// Flushes and closes the segment. Idempotent.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t seq() const { return seq_; }
  /// Bytes appended to this segment, including buffered ones.
  size_t bytes_written() const { return bytes_written_; }
  size_t records_written() const { return records_written_; }

 private:
  Status WriteRaw(const char* p, size_t n);

  int fd_ = -1;
  uint64_t seq_ = 0;
  WalOptions options_;
  std::string buf_;
  size_t buffered_records_ = 0;
  size_t bytes_written_ = 0;
  size_t records_written_ = 0;
};

/// One parsed segment: the valid record prefix plus whether the tail was
/// torn (truncated or CRC-broken mid-record).
struct WalSegment {
  uint64_t seq = 0;
  std::vector<WalRecord> records;
  bool torn = false;
  size_t bytes = 0;
  /// Bytes of header + valid records; equals `bytes` unless torn, in
  /// which case truncating the file here removes exactly the torn tail.
  size_t valid_bytes = 0;
};

/// Reads and validates one segment file. A bad header is an error; a
/// torn tail is not (records before it are returned, torn = true).
Result<WalSegment> ReadWalSegment(const std::string& path);

/// Truncates a torn segment file to its valid prefix (`valid_bytes` from
/// ReadWalSegment) and fsyncs it, so later reads see a clean segment.
Status TruncateWalSegment(const std::string& path, size_t valid_bytes);

}  // namespace turbo::storage
