#include "storage/edge_store.h"

#include <algorithm>

namespace turbo::storage {

namespace {
const std::unordered_map<UserId, EdgeInfo> kEmptyNeighbors;
}  // namespace

void EdgeStore::AddWeight(int edge_type, UserId u, UserId v, float w,
                          SimTime now) {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  // A negative id cast to the unsigned UserId wraps past 2^31; without
  // this guard EnsureSize would try to allocate billions of adjacency
  // rows instead of aborting.
  TURBO_CHECK_GE(static_cast<int32_t>(u), 0);
  TURBO_CHECK_GE(static_cast<int32_t>(v), 0);
  TURBO_CHECK_NE(u, v);
  TURBO_CHECK_GT(w, 0.0f);
  auto& adj = by_type_[edge_type];
  EnsureSize(&adj, std::max(u, v));
  auto& fwd = adj[u][v];
  if (fwd.weight == 0.0) ++edge_count_[edge_type];
  fwd.weight += w;
  fwd.last_update = std::max(fwd.last_update, now);
  auto& bwd = adj[v][u];
  bwd.weight += w;
  bwd.last_update = std::max(bwd.last_update, now);
}

size_t EdgeStore::ExpireBefore(SimTime cutoff) {
  size_t removed = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    auto& adj = by_type_[t];
    for (UserId u = 0; u < adj.size(); ++u) {
      for (auto it = adj[u].begin(); it != adj[u].end();) {
        if (it->second.last_update < cutoff) {
          // Count each undirected edge once (from its smaller endpoint).
          if (u < it->first) {
            ++removed;
            --edge_count_[t];
          }
          it = adj[u].erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return removed;
}

const std::unordered_map<UserId, EdgeInfo>& EdgeStore::Neighbors(
    int edge_type, UserId u) const {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  const auto& adj = by_type_[edge_type];
  if (u >= adj.size()) return kEmptyNeighbors;
  return adj[u];
}

double EdgeStore::WeightedDegree(int edge_type, UserId u) const {
  double s = 0.0;
  for (const auto& [v, e] : Neighbors(edge_type, u)) s += e.weight;
  return s;
}

float EdgeStore::Weight(int edge_type, UserId u, UserId v) const {
  const auto& n = Neighbors(edge_type, u);
  auto it = n.find(v);
  return it == n.end() ? 0.0f : static_cast<float>(it->second.weight);
}

size_t EdgeStore::NumEdges(int edge_type) const {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  return edge_count_[edge_type];
}

size_t EdgeStore::TotalEdges() const {
  size_t s = 0;
  for (size_t c : edge_count_) s += c;
  return s;
}

std::vector<UserId> EdgeStore::ConnectedUsers() const {
  size_t max_size = 0;
  for (const auto& adj : by_type_) max_size = std::max(max_size, adj.size());
  std::vector<bool> seen(max_size, false);
  for (const auto& adj : by_type_) {
    for (UserId u = 0; u < adj.size(); ++u) {
      if (!adj[u].empty()) seen[u] = true;
    }
  }
  std::vector<UserId> out;
  for (UserId u = 0; u < seen.size(); ++u) {
    if (seen[u]) out.push_back(u);
  }
  return out;
}

}  // namespace turbo::storage
