#include "storage/edge_store.h"

#include <algorithm>

namespace turbo::storage {

namespace {
const std::unordered_map<UserId, EdgeInfo> kEmptyNeighbors;

std::vector<UserId> SortedIds(const std::unordered_set<UserId>& s) {
  std::vector<UserId> ids(s.begin(), s.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

bool EdgeChurn::Empty() const {
  for (const auto& s : nodes) {
    if (!s.empty()) return false;
  }
  return true;
}

size_t EdgeChurn::TotalTouched() const {
  size_t n = 0;
  for (const auto& s : nodes) n += s.size();
  return n;
}

void EdgeChurn::Clear() {
  for (auto& s : nodes) s.clear();
}

void EdgeChurn::MergeFrom(const EdgeChurn& other) {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    nodes[t].insert(other.nodes[t].begin(), other.nodes[t].end());
  }
}

void EdgeChurn::Serialize(BinaryWriter* w) const {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const std::vector<UserId> ids = SortedIds(nodes[t]);
    w->U64(ids.size());
    w->Bytes(ids.data(), ids.size() * sizeof(UserId));
  }
}

Status EdgeChurn::Deserialize(BinaryReader* r, UserId num_users) {
  Clear();
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const uint64_t n = r->U64();
    if (n > r->remaining() / sizeof(UserId)) {
      Clear();
      return Status::InvalidArgument("truncated churn section");
    }
    for (uint64_t i = 0; i < n; ++i) {
      const UserId u = r->U32();
      if (u >= num_users) {
        Clear();
        return Status::InvalidArgument("churn node id out of range");
      }
      nodes[t].insert(u);
    }
  }
  if (!r->ok()) {
    Clear();
    return Status::InvalidArgument("truncated churn section");
  }
  return Status::OK();
}

void EdgeStore::AddWeight(int edge_type, UserId u, UserId v, float w,
                          SimTime now) {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  // A negative id cast to the unsigned UserId wraps past 2^31; without
  // this guard EnsureSize would try to allocate billions of adjacency
  // rows instead of aborting.
  TURBO_CHECK_GE(static_cast<int32_t>(u), 0);
  TURBO_CHECK_GE(static_cast<int32_t>(v), 0);
  TURBO_CHECK_NE(u, v);
  TURBO_CHECK_GT(w, 0.0f);
  auto& adj = by_type_[edge_type];
  EnsureSize(&adj, std::max(u, v));
  auto& fwd = adj[u][v];
  if (fwd.weight == 0.0) ++edge_count_[edge_type];
  fwd.weight += w;
  fwd.last_update = std::max(fwd.last_update, now);
  auto& bwd = adj[v][u];
  bwd.weight += w;
  bwd.last_update = std::max(bwd.last_update, now);
}

size_t EdgeStore::ExpireBefore(SimTime cutoff, EdgeChurn* churn) {
  size_t removed = 0;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    auto& adj = by_type_[t];
    for (UserId u = 0; u < adj.size(); ++u) {
      for (auto it = adj[u].begin(); it != adj[u].end();) {
        if (it->second.last_update < cutoff) {
          // Count each undirected edge once (from its smaller endpoint).
          if (u < it->first) {
            ++removed;
            --edge_count_[t];
          }
          // The mirrored visit records the other endpoint, so both ends
          // of every expired edge land in the churn set.
          if (churn != nullptr) churn->Touch(t, u);
          it = adj[u].erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return removed;
}

void EdgeStore::ClearNode(int edge_type, UserId u) {
  auto& adj = by_type_[edge_type];
  if (u >= adj.size()) return;
  for (const auto& [v, e] : adj[u]) {
    adj[v].erase(u);
    --edge_count_[edge_type];
  }
  adj[u].clear();
}

const std::unordered_map<UserId, EdgeInfo>& EdgeStore::Neighbors(
    int edge_type, UserId u) const {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  const auto& adj = by_type_[edge_type];
  if (u >= adj.size()) return kEmptyNeighbors;
  return adj[u];
}

double EdgeStore::WeightedDegree(int edge_type, UserId u) const {
  double s = 0.0;
  for (const auto& [v, e] : Neighbors(edge_type, u)) s += e.weight;
  return s;
}

float EdgeStore::Weight(int edge_type, UserId u, UserId v) const {
  const auto& n = Neighbors(edge_type, u);
  auto it = n.find(v);
  return it == n.end() ? 0.0f : static_cast<float>(it->second.weight);
}

size_t EdgeStore::NumEdges(int edge_type) const {
  TURBO_CHECK_GE(edge_type, 0);
  TURBO_CHECK_LT(edge_type, kNumEdgeTypes);
  return edge_count_[edge_type];
}

size_t EdgeStore::TotalEdges() const {
  size_t s = 0;
  for (size_t c : edge_count_) s += c;
  return s;
}

void EdgeStore::Serialize(BinaryWriter* w) const {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    w->U64(edge_count_[t]);
    const auto& adj = by_type_[t];
    for (UserId u = 0; u < adj.size(); ++u) {
      // Neighbor maps are unordered; emit ascending ids so equal stores
      // serialize to equal bytes.
      std::vector<UserId> nbrs;
      nbrs.reserve(adj[u].size());
      for (const auto& [v, e] : adj[u]) {
        if (u < v) nbrs.push_back(v);
      }
      std::sort(nbrs.begin(), nbrs.end());
      for (UserId v : nbrs) {
        const EdgeInfo& e = adj[u].at(v);
        w->U32(u);
        w->U32(v);
        w->F64(e.weight);
        w->I64(e.last_update);
      }
    }
  }
}

Status EdgeStore::Deserialize(BinaryReader* r, UserId num_users) {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    by_type_[t].clear();
    edge_count_[t] = 0;
  }
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const uint64_t count = r->U64();
    auto& adj = by_type_[t];
    for (uint64_t i = 0; i < count; ++i) {
      const UserId u = r->U32();
      const UserId v = r->U32();
      const double weight = r->F64();
      const SimTime last_update = r->I64();
      if (!r->ok()) {
        return Status::InvalidArgument("truncated edge section");
      }
      if (u == v || weight <= 0.0) {
        return Status::InvalidArgument("corrupt edge record");
      }
      if (u >= num_users || v >= num_users) {
        return Status::InvalidArgument(
            "edge record endpoint out of range");
      }
      EnsureSize(&adj, std::max(u, v));
      adj[u][v] = EdgeInfo{weight, last_update};
      adj[v][u] = EdgeInfo{weight, last_update};
      ++edge_count_[t];
    }
  }
  return Status::OK();
}

void EdgeStore::SerializeTouched(const EdgeChurn& churn,
                                 BinaryWriter* w) const {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const auto& touched = churn.nodes[t];
    const std::vector<UserId> ids = SortedIds(touched);
    w->U64(ids.size());
    w->Bytes(ids.data(), ids.size() * sizeof(UserId));
    // Each edge with >= 1 touched endpoint is emitted exactly once: from
    // its touched endpoint when only one is touched, from the smaller id
    // when both are. Two passes (count, then rows) keep the layout
    // self-describing without buffering the rows.
    const auto emits = [&](UserId u, UserId v) {
      return !touched.contains(v) || v > u;
    };
    uint64_t count = 0;
    for (UserId u : ids) {
      for (const auto& [v, e] : Neighbors(t, u)) {
        if (emits(u, v)) ++count;
      }
    }
    w->U64(count);
    std::vector<UserId> nbrs;
    for (UserId u : ids) {
      const auto& row = Neighbors(t, u);
      nbrs.clear();
      nbrs.reserve(row.size());
      for (const auto& [v, e] : row) {
        if (emits(u, v)) nbrs.push_back(v);
      }
      std::sort(nbrs.begin(), nbrs.end());
      for (UserId v : nbrs) {
        const EdgeInfo& e = row.at(v);
        w->U32(u);
        w->U32(v);
        w->F64(e.weight);
        w->I64(e.last_update);
      }
    }
  }
}

Status EdgeStore::ApplyDeltaSection(BinaryReader* r, UserId num_users) {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    const uint64_t num_touched = r->U64();
    if (num_touched > r->remaining() / sizeof(UserId)) {
      return Status::InvalidArgument("truncated edge-delta section");
    }
    // Clear-then-insert: the emitted rows are the complete current state
    // of every touched node, so dropping the old rows first makes the
    // apply an exact replacement rather than an accumulation.
    for (uint64_t i = 0; i < num_touched; ++i) {
      const UserId u = r->U32();
      if (u >= num_users) {
        return Status::InvalidArgument(
            "edge-delta touched id out of range");
      }
      ClearNode(t, u);
    }
    const uint64_t count = r->U64();
    constexpr size_t kRecordBytes = 2 * sizeof(UserId) + sizeof(double) +
                                    sizeof(SimTime);
    if (count > r->remaining() / kRecordBytes) {
      return Status::InvalidArgument("truncated edge-delta section");
    }
    auto& adj = by_type_[t];
    for (uint64_t i = 0; i < count; ++i) {
      const UserId u = r->U32();
      const UserId v = r->U32();
      const double weight = r->F64();
      const SimTime last_update = r->I64();
      if (u == v || weight <= 0.0) {
        return Status::InvalidArgument("corrupt edge-delta record");
      }
      if (u >= num_users || v >= num_users) {
        return Status::InvalidArgument(
            "edge-delta endpoint out of range");
      }
      EnsureSize(&adj, std::max(u, v));
      if (adj[u].contains(v)) {
        // Each edge is emitted once; a duplicate would double-count.
        return Status::InvalidArgument("duplicate edge-delta record");
      }
      adj[u][v] = EdgeInfo{weight, last_update};
      adj[v][u] = EdgeInfo{weight, last_update};
      ++edge_count_[t];
    }
  }
  if (!r->ok()) {
    return Status::InvalidArgument("truncated edge-delta section");
  }
  return Status::OK();
}

std::vector<UserId> EdgeStore::ConnectedUsers() const {
  size_t max_size = 0;
  for (const auto& adj : by_type_) max_size = std::max(max_size, adj.size());
  std::vector<bool> seen(max_size, false);
  for (const auto& adj : by_type_) {
    for (UserId u = 0; u < adj.size(); ++u) {
      if (!adj[u].empty()) seen[u] = true;
    }
  }
  std::vector<UserId> out;
  for (UserId u = 0; u < seen.size(); ++u) {
    if (seen[u]) out.push_back(u);
  }
  return out;
}

}  // namespace turbo::storage
