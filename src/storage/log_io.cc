#include "storage/log_io.h"

#include <fstream>

#include "util/string_util.h"

namespace turbo::storage {

Result<BehaviorType> BehaviorTypeFromName(const std::string& name) {
  for (int t = 0; t < kNumBehaviorTypes; ++t) {
    const auto bt = static_cast<BehaviorType>(t);
    if (BehaviorTypeName(bt) == name) return bt;
  }
  return Status::NotFound("unknown behavior type '" + name + "'");
}

Result<BehaviorLog> ParseLogLine(const std::string& line) {
  auto fields = Split(line, ',');
  if (fields.size() != 4) {
    return Status::InvalidArgument(
        StrFormat("expected 4 fields, got %zu", fields.size()));
  }
  BehaviorLog log;
  try {
    log.uid = static_cast<UserId>(std::stoul(std::string(Trim(fields[0]))));
    auto type = BehaviorTypeFromName(std::string(Trim(fields[1])));
    if (!type.ok()) return type.status();
    log.type = type.value();
    log.value =
        static_cast<ValueId>(std::stoull(std::string(Trim(fields[2]))));
    log.time = static_cast<SimTime>(std::stoll(std::string(Trim(fields[3]))));
  } catch (const std::exception& e) {
    return Status::InvalidArgument(std::string("bad numeric field: ") +
                                   e.what());
  }
  if (log.value == 0) {
    return Status::InvalidArgument("value 0 is reserved");
  }
  return log;
}

Result<BehaviorLogList> ReadLogsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  BehaviorLogList logs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (lineno == 1 && trimmed == "uid,type,value,timestamp") continue;
    auto log = ParseLogLine(std::string(trimmed));
    if (!log.ok()) {
      return Status::InvalidArgument(StrFormat(
          "%s:%d: %s", path.c_str(), lineno,
          log.status().message().c_str()));
    }
    logs.push_back(log.value());
  }
  return logs;
}

Status WriteLogsCsv(const BehaviorLogList& logs, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for write");
  out << "uid,type,value,timestamp\n";
  for (const auto& l : logs) {
    out << l.uid << "," << BehaviorTypeName(l.type) << "," << l.value
        << "," << l.time << "\n";
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

}  // namespace turbo::storage
