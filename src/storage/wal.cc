#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>

#include "storage/checkpoint_io.h"
#include "util/string_util.h"

namespace turbo::storage {

namespace {

constexpr char kWalMagic[8] = {'T', 'U', 'R', 'B', 'O', 'W', 'A', 'L'};
constexpr uint32_t kWalVersion = 1;

/// Payload bytes per record kind (fixed-width framing keeps the reader
/// free of length fields that could themselves be torn).
size_t PayloadBytes(WalRecord::Kind kind) {
  switch (kind) {
    case WalRecord::Kind::kIngest:
      // u32 uid, u8 type, u64 value, i64 time
      return sizeof(uint32_t) + sizeof(uint8_t) + sizeof(uint64_t) +
             sizeof(int64_t);
    case WalRecord::Kind::kAdvance:
      return sizeof(int64_t);
  }
  return 0;
}

void EncodeRecord(const WalRecord& record, BinaryWriter* w) {
  BinaryWriter body;
  body.U8(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case WalRecord::Kind::kIngest:
      body.U32(record.log.uid);
      body.U8(static_cast<uint8_t>(record.log.type));
      body.U64(record.log.value);
      body.I64(record.log.time);
      break;
    case WalRecord::Kind::kAdvance:
      body.I64(record.advance_to);
      break;
  }
  w->Bytes(body.data().data(), body.size());
  w->U32(Crc32(body.data().data(), body.size()));
}

}  // namespace

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  return StrFormat("%s/wal-%08llu.log", dir.c_str(),
                   static_cast<unsigned long long>(seq));
}

std::vector<uint64_t> ListWalSegments(const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    // Validate by re-formatting rather than by length: sequences past
    // 10^8 outgrow the %08llu zero padding but are still our files,
    // while trailing junk or missing padding means a foreign file.
    if (std::sscanf(name.c_str(), "wal-%llu.log", &seq) == 1 &&
        std::filesystem::path(WalSegmentPath(dir, seq)).filename() ==
            name) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

std::string CheckpointDeltaPath(const std::string& dir, uint64_t seq) {
  return StrFormat("%s/checkpoint-delta-%08llu.bin", dir.c_str(),
                   static_cast<unsigned long long>(seq));
}

std::vector<uint64_t> ListCheckpointDeltas(const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    // Same re-format validation as ListWalSegments; a prefix sscanf
    // match alone would also accept `.tmp` leftovers of an interrupted
    // atomic publish.
    if (std::sscanf(name.c_str(), "checkpoint-delta-%llu.bin", &seq) == 1 &&
        std::filesystem::path(CheckpointDeltaPath(dir, seq)).filename() ==
            name) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& dir, uint64_t seq,
                       const WalOptions& options) {
  TURBO_CHECK_MSG(fd_ < 0, "WalWriter already open on segment " << seq_);
  const std::string path = WalSegmentPath(dir, seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Status::Internal("cannot open " + path + " for write");
  seq_ = seq;
  options_ = options;
  bytes_written_ = 0;
  records_written_ = 0;
  buffered_records_ = 0;
  buf_.clear();
  BinaryWriter header;
  header.Bytes(kWalMagic, sizeof(kWalMagic));
  header.U32(kWalVersion);
  header.U64(seq);
  TURBO_RETURN_IF_ERROR(
      WriteRaw(header.data().data(), header.size()));
  bytes_written_ += header.size();
  if (options_.fsync != WalOptions::Fsync::kNever && ::fsync(fd_) != 0) {
    return Status::Internal("fsync failed for " + path);
  }
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  TURBO_CHECK_MSG(fd_ >= 0, "Append on closed WalWriter");
  BinaryWriter w;
  EncodeRecord(record, &w);
  buf_.append(w.data());
  bytes_written_ += w.size();
  ++records_written_;
  ++buffered_records_;
  if (options_.fsync == WalOptions::Fsync::kEveryAppend ||
      buffered_records_ >= options_.group_commit_records ||
      buf_.size() >= options_.group_commit_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  TURBO_CHECK_MSG(fd_ >= 0, "Flush on closed WalWriter");
  if (!buf_.empty()) {
    TURBO_RETURN_IF_ERROR(WriteRaw(buf_.data(), buf_.size()));
    buf_.clear();
    buffered_records_ = 0;
  }
  if (options_.fsync != WalOptions::Fsync::kNever && ::fsync(fd_) != 0) {
    return Status::Internal(
        StrFormat("fsync failed for wal segment %llu",
                  static_cast<unsigned long long>(seq_)));
  }
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Flush();
  ::close(fd_);
  fd_ = -1;
  return s;
}

Status WalWriter::WriteRaw(const char* p, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd_, p + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;  // signal mid-append, not an error
      return Status::Internal(
          StrFormat("write failed for wal segment %llu",
                    static_cast<unsigned long long>(seq_)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<WalSegment> ReadWalSegment(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& file = bytes.value();
  BinaryReader r(file);
  char magic[sizeof(kWalMagic)];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument(path + ": bad WAL magic");
  }
  const uint32_t version = r.U32();
  if (version != kWalVersion) {
    return Status::InvalidArgument(StrFormat(
        "%s: unsupported WAL version %u", path.c_str(), version));
  }
  WalSegment segment;
  segment.seq = r.U64();
  segment.bytes = file.size();
  if (!r.ok()) {
    return Status::InvalidArgument(path + ": truncated WAL header");
  }
  segment.valid_bytes = file.size() - r.remaining();
  while (r.remaining() > 0) {
    // Decode one record; any shortfall or CRC mismatch is a torn tail.
    const size_t record_start = file.size() - r.remaining();
    const uint8_t kind_byte = r.U8();
    const auto kind = static_cast<WalRecord::Kind>(kind_byte);
    const size_t payload = PayloadBytes(kind);
    if (payload == 0 ||
        r.remaining() < payload + sizeof(uint32_t)) {
      segment.torn = true;
      break;
    }
    WalRecord record;
    record.kind = kind;
    switch (kind) {
      case WalRecord::Kind::kIngest:
        record.log.uid = r.U32();
        record.log.type = static_cast<BehaviorType>(r.U8());
        record.log.value = r.U64();
        record.log.time = r.I64();
        break;
      case WalRecord::Kind::kAdvance:
        record.advance_to = r.I64();
        break;
    }
    const uint32_t crc = r.U32();
    const size_t body = sizeof(uint8_t) + payload;
    if (!r.ok() ||
        Crc32(file.data() + record_start, body) != crc) {
      segment.torn = true;
      break;
    }
    segment.records.push_back(record);
    segment.valid_bytes = file.size() - r.remaining();
  }
  return segment;
}

Status TruncateWalSegment(const std::string& path, size_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for truncate");
  }
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("truncate failed for " + path);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace turbo::storage
