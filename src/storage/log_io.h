// CSV import/export for behavior logs — the bring-your-own-logs entry
// point. Format, one record per line:
//
//   uid,type,value,timestamp
//
// `type` is a behavior-type name from Table I (case-sensitive, e.g.
// "DeviceId", "IPv4", "GPS100"); `value` is the 64-bit hashed behavior
// value; `timestamp` is seconds since the dataset epoch. Lines starting
// with '#' and blank lines are skipped. A leading header line
// "uid,type,value,timestamp" is tolerated.
#pragma once

#include <string>

#include "storage/behavior_log.h"
#include "util/status.h"

namespace turbo::storage {

/// Parses one CSV record (no comment/header handling).
Result<BehaviorLog> ParseLogLine(const std::string& line);

/// Reads a whole CSV file; fails on the first malformed record with its
/// line number in the message.
Result<BehaviorLogList> ReadLogsCsv(const std::string& path);

/// Writes logs in the same format (with header).
Status WriteLogsCsv(const BehaviorLogList& logs, const std::string& path);

/// Behavior type from its Table-I name; -1-style NotFound on unknown.
Result<BehaviorType> BehaviorTypeFromName(const std::string& name);

}  // namespace turbo::storage
