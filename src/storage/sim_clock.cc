#include "storage/sim_clock.h"

#include "util/check.h"
#include "util/string_util.h"

namespace turbo::storage {

void SimClock::ChargeQuery(const MediumCost& cost, int64_t rows) {
  TURBO_CHECK_GE(rows, 0);
  elapsed_us_ += cost.query_overhead_us + cost.per_row_us * rows;
  ++queries_;
  rows_ += rows;
}

void SimClock::ChargeMicros(double us) {
  TURBO_CHECK_GE(us, 0.0);
  elapsed_us_ += us;
}

void SimClock::Reset() {
  elapsed_us_ = 0.0;
  queries_ = 0;
  rows_ = 0;
}

std::string SimClock::DebugString() const {
  return StrFormat("SimClock{%.1fus, %lld queries, %lld rows}", elapsed_us_,
                   static_cast<long long>(queries_),
                   static_cast<long long>(rows_));
}

}  // namespace turbo::storage
