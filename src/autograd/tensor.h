// Tape-based reverse-mode automatic differentiation.
//
// A Tensor is a shared handle to a Node holding a dense matrix value, an
// optional gradient, and a closure that pushes the node's gradient to its
// parents. The graph is rebuilt on every forward pass (define-by-run);
// Backward() topologically sorts reachable nodes and runs the closures in
// reverse order.
//
// Custom fused operators (sparse aggregation, edge softmax, losses) are
// created with MakeOp and a hand-written backward closure; all backward
// implementations are validated against numerical differentiation in
// tests/autograd/.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace turbo::ag {

class Node;
using Tensor = std::shared_ptr<Node>;

class Node {
 public:
  Node(std::string op, la::Matrix value, bool requires_grad)
      : op_name(std::move(op)),
        value(std::move(value)),
        requires_grad(requires_grad) {}

  std::string op_name;
  la::Matrix value;
  la::Matrix grad;  // empty until first accumulation
  bool requires_grad;
  std::vector<Tensor> parents;
  /// Pushes this->grad into parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  size_t rows() const { return value.rows(); }
  size_t cols() const { return value.cols(); }

  bool has_grad() const { return !grad.empty(); }
  /// Adds g into grad, allocating a zero grad on first call.
  void AccumGrad(const la::Matrix& g);
  /// Grad as a zero matrix if never touched (convenience for backward fns).
  const la::Matrix& GradOrZero();
  void ClearGrad() { grad = la::Matrix(); }

 private:
  la::Matrix zero_cache_;
};

/// Leaf with no gradient (inputs, labels, fixed masks).
Tensor Constant(la::Matrix value, std::string name = "const");

/// Leaf with gradient (trainable parameter).
Tensor Param(la::Matrix value, std::string name = "param");

/// Interior node; requires_grad is inherited from any parent.
Tensor MakeOp(std::string name, la::Matrix value,
              std::vector<Tensor> parents,
              std::function<void(Node*)> backward);

/// Runs reverse-mode accumulation from `root`, which must be 1x1 (a loss).
/// Parameter gradients accumulate across calls until cleared.
void Backward(const Tensor& root);

/// Distinct-node count reachable from root (diagnostics/tests).
size_t GraphSize(const Tensor& root);

}  // namespace turbo::ag
