#include "autograd/ops.h"

#include <cmath>

namespace turbo::ag {

using la::Matrix;

Tensor Add(const Tensor& a, const Tensor& b) {
  TURBO_CHECK(a->value.same_shape(b->value));
  Matrix v = a->value;
  v.Add(b->value);
  return MakeOp("add", std::move(v), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
    if (n->parents[1]->requires_grad) n->parents[1]->AccumGrad(n->grad);
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  TURBO_CHECK(a->value.same_shape(b->value));
  Matrix v = a->value;
  v.Add(b->value, -1.0f);
  return MakeOp("sub", std::move(v), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
    if (n->parents[1]->requires_grad) {
      Matrix g = n->grad;
      g.Scale(-1.0f);
      n->parents[1]->AccumGrad(g);
    }
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Matrix v = la::ZipT(a->value, b->value,
                      [](float x, float y) { return x * y; });
  return MakeOp("mul", std::move(v), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) {
      n->parents[0]->AccumGrad(
          la::ZipT(n->grad, n->parents[1]->value,
                   [](float g, float y) { return g * y; }));
    }
    if (n->parents[1]->requires_grad) {
      n->parents[1]->AccumGrad(
          la::ZipT(n->grad, n->parents[0]->value,
                   [](float g, float x) { return g * x; }));
    }
  });
}

Tensor ScalarMul(const Tensor& a, float s) {
  Matrix v = a->value;
  v.Scale(s);
  return MakeOp("smul", std::move(v), {a}, [s](Node* n) {
    Matrix g = n->grad;
    g.Scale(s);
    n->parents[0]->AccumGrad(g);
  });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  Matrix v = la::AddRowBroadcast(x->value, bias->value);
  return MakeOp("add_rowbc", std::move(v), {x, bias}, [](Node* n) {
    if (n->parents[0]->requires_grad) n->parents[0]->AccumGrad(n->grad);
    if (n->parents[1]->requires_grad) {
      Matrix gb(1, n->grad.cols());
      for (size_t r = 0; r < n->grad.rows(); ++r) {
        for (size_t c = 0; c < n->grad.cols(); ++c) {
          gb(0, c) += n->grad(r, c);
        }
      }
      n->parents[1]->AccumGrad(gb);
    }
  });
}

Tensor MulColBroadcast(const Tensor& x, const Tensor& gate) {
  Matrix v = la::MulColBroadcast(x->value, gate->value);
  return MakeOp("mul_colbc", std::move(v), {x, gate}, [](Node* n) {
    const Matrix& gx = n->parents[0]->value;
    const Matrix& gg = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      n->parents[0]->AccumGrad(la::MulColBroadcast(n->grad, gg));
    }
    if (n->parents[1]->requires_grad) {
      Matrix ggate(gx.rows(), 1);
      for (size_t r = 0; r < gx.rows(); ++r) {
        float s = 0.0f;
        for (size_t c = 0; c < gx.cols(); ++c) s += n->grad(r, c) * gx(r, c);
        ggate(r, 0) = s;
      }
      n->parents[1]->AccumGrad(ggate);
    }
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix v = la::MatMul(a->value, b->value);
  return MakeOp("matmul", std::move(v), {a, b}, [](Node* n) {
    if (n->parents[0]->requires_grad) {
      n->parents[0]->AccumGrad(
          la::MatMulTransB(n->grad, n->parents[1]->value));
    }
    if (n->parents[1]->requires_grad) {
      n->parents[1]->AccumGrad(
          la::MatMulTransA(n->parents[0]->value, n->grad));
    }
  });
}

Tensor SpMM(const la::SparseMatrix& a, const Tensor& x) {
  Matrix v = a.Multiply(x->value);
  // The sparse matrix is captured by value; it is cheap to copy only if the
  // caller keeps it alive — copy the CSR arrays to be safe (shared graphs
  // reuse one SparseMatrix across many ops, so capture by pointer would be
  // a lifetime hazard in benches).
  la::SparseMatrix acopy = a;
  return MakeOp("spmm", std::move(v), {x}, [acopy](Node* n) {
    n->parents[0]->AccumGrad(acopy.MultiplyTransposed(n->grad));
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  return ConcatColsN({a, b});
}

Tensor ConcatColsN(const std::vector<Tensor>& parts) {
  TURBO_CHECK(!parts.empty());
  Matrix v = parts[0]->value;
  for (size_t i = 1; i < parts.size(); ++i) {
    v = la::ConcatCols(v, parts[i]->value);
  }
  std::vector<size_t> widths;
  widths.reserve(parts.size());
  for (const auto& p : parts) widths.push_back(p->value.cols());
  return MakeOp("concat", std::move(v), parts, [widths](Node* n) {
    size_t off = 0;
    for (size_t i = 0; i < n->parents.size(); ++i) {
      if (n->parents[i]->requires_grad) {
        Matrix g(n->grad.rows(), widths[i]);
        for (size_t r = 0; r < g.rows(); ++r) {
          for (size_t c = 0; c < widths[i]; ++c) {
            g(r, c) = n->grad(r, off + c);
          }
        }
        n->parents[i]->AccumGrad(g);
      }
      off += widths[i];
    }
  });
}

Tensor SliceCols(const Tensor& a, size_t start, size_t len) {
  TURBO_CHECK_LE(start + len, a->value.cols());
  Matrix v(a->value.rows(), len);
  for (size_t r = 0; r < v.rows(); ++r) {
    for (size_t c = 0; c < len; ++c) v(r, c) = a->value(r, start + c);
  }
  return MakeOp("slice", std::move(v), {a}, [start, len](Node* n) {
    Matrix g(n->parents[0]->value.rows(), n->parents[0]->value.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      for (size_t c = 0; c < len; ++c) g(r, start + c) = n->grad(r, c);
    }
    n->parents[0]->AccumGrad(g);
  });
}

// The pointwise nonlinearities run their forward maps and backward zips
// through the MapT/ZipT templates (stateless lambdas instantiated per
// op), so the per-element work inlines instead of dispatching through a
// std::function on every entry — these are the hottest elementwise ops
// on both the training and the tape-free serving path (the latter uses
// the same functors via la::kernels::*, keeping the two forwards
// numerically identical).
Tensor Relu(const Tensor& a) {
  return MakeOp("relu", la::MapT(a->value, la::kernels::Relu), {a},
                [](Node* n) {
                  n->parents[0]->AccumGrad(
                      la::ZipT(n->grad, n->value, [](float g, float y) {
                        return y > 0.0f ? g : 0.0f;
                      }));
                });
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  Matrix v = la::MapT(a->value,
                      [slope](float x) { return x > 0.0f ? x : slope * x; });
  return MakeOp("lrelu", std::move(v), {a}, [slope](Node* n) {
    n->parents[0]->AccumGrad(
        la::ZipT(n->grad, n->parents[0]->value, [slope](float g, float x) {
          return g * (x > 0.0f ? 1.0f : slope);
        }));
  });
}

Tensor Tanh(const Tensor& a) {
  return MakeOp("tanh", la::MapT(a->value, la::kernels::Tanh), {a},
                [](Node* n) {
                  n->parents[0]->AccumGrad(
                      la::ZipT(n->grad, n->value, [](float g, float y) {
                        return g * (1.0f - y * y);
                      }));
                });
}

Tensor Sigmoid(const Tensor& a) {
  return MakeOp("sigmoid", la::MapT(a->value, la::kernels::Sigmoid), {a},
                [](Node* n) {
                  n->parents[0]->AccumGrad(
                      la::ZipT(n->grad, n->value, [](float g, float y) {
                        return g * y * (1.0f - y);
                      }));
                });
}

Tensor SoftmaxRows(const Tensor& a) {
  Matrix v = la::SoftmaxRows(a->value);
  return MakeOp("softmax_rows", std::move(v), {a}, [](Node* n) {
    // dx = y * (g - rowdot(g, y))
    const Matrix& y = n->value;
    Matrix dx(y.rows(), y.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
      float dot = 0.0f;
      for (size_t c = 0; c < y.cols(); ++c) dot += n->grad(r, c) * y(r, c);
      for (size_t c = 0; c < y.cols(); ++c) {
        dx(r, c) = y(r, c) * (n->grad(r, c) - dot);
      }
    }
    n->parents[0]->AccumGrad(dx);
  });
}

Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng) {
  TURBO_CHECK_GE(p, 0.0f);
  TURBO_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  TURBO_CHECK(rng != nullptr);
  Matrix mask(a->value.rows(), a->value.cols());
  const float scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->NextBool(p) ? 0.0f : scale;
  }
  Matrix v = la::ZipT(a->value, mask, [](float x, float m) { return x * m; });
  return MakeOp("dropout", std::move(v), {a}, [mask](Node* n) {
    n->parents[0]->AccumGrad(
        la::ZipT(n->grad, mask, [](float g, float m) { return g * m; }));
  });
}

Tensor RowSums(const Tensor& a) {
  Matrix v = la::RowSums(a->value);
  return MakeOp("rowsums", std::move(v), {a}, [](Node* n) {
    Matrix g(n->parents[0]->value.rows(), n->parents[0]->value.cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      for (size_t c = 0; c < g.cols(); ++c) g(r, c) = n->grad(r, 0);
    }
    n->parents[0]->AccumGrad(g);
  });
}

Tensor Sum(const Tensor& a) {
  Matrix v(1, 1, static_cast<float>(a->value.Sum()));
  return MakeOp("sum", std::move(v), {a}, [](Node* n) {
    Matrix g(n->parents[0]->value.rows(), n->parents[0]->value.cols(),
             n->grad(0, 0));
    n->parents[0]->AccumGrad(g);
  });
}

Tensor Mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a->value.size());
  Matrix v(1, 1, static_cast<float>(a->value.Sum()) * inv);
  return MakeOp("mean", std::move(v), {a}, [inv](Node* n) {
    Matrix g(n->parents[0]->value.rows(), n->parents[0]->value.cols(),
             n->grad(0, 0) * inv);
    n->parents[0]->AccumGrad(g);
  });
}

Tensor BceWithLogits(const Tensor& logits, const la::Matrix& targets,
                     const la::Matrix& sample_weight) {
  TURBO_CHECK_EQ(logits->value.cols(), 1u);
  TURBO_CHECK(logits->value.same_shape(targets));
  TURBO_CHECK(logits->value.same_shape(sample_weight));
  double wsum = 0.0;
  for (size_t i = 0; i < sample_weight.size(); ++i) {
    TURBO_CHECK_GE(sample_weight.data()[i], 0.0f);
    wsum += sample_weight.data()[i];
  }
  TURBO_CHECK_GT(wsum, 0.0);
  const float inv_wsum = static_cast<float>(1.0 / wsum);

  double loss = 0.0;
  const size_t n = logits->value.rows();
  for (size_t i = 0; i < n; ++i) {
    float z = logits->value(i, 0);
    float y = targets(i, 0);
    float w = sample_weight(i, 0);
    // max(z,0) - z*y + log(1+exp(-|z|)): stable for any z sign.
    float l = std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::abs(z)));
    loss += static_cast<double>(w) * l;
  }
  Matrix v(1, 1, static_cast<float>(loss * inv_wsum));
  Matrix t = targets;
  Matrix w = sample_weight;
  return MakeOp("bce_logits", std::move(v), {logits},
                [t, w, inv_wsum](Node* node) {
                  Node* lp = node->parents[0].get();
                  Matrix g(lp->value.rows(), 1);
                  const float go = node->grad(0, 0);
                  for (size_t i = 0; i < g.rows(); ++i) {
                    float z = lp->value(i, 0);
                    float s = z >= 0.0f
                                  ? 1.0f / (1.0f + std::exp(-z))
                                  : std::exp(z) / (1.0f + std::exp(z));
                    g(i, 0) = go * w(i, 0) * (s - t(i, 0)) * inv_wsum;
                  }
                  lp->AccumGrad(g);
                });
}

Tensor MseLoss(const Tensor& pred, const la::Matrix& target) {
  TURBO_CHECK(pred->value.same_shape(target));
  const float inv = 1.0f / static_cast<float>(pred->value.size());
  double loss = 0.0;
  for (size_t i = 0; i < pred->value.size(); ++i) {
    double d = pred->value.data()[i] - target.data()[i];
    loss += d * d;
  }
  Matrix v(1, 1, static_cast<float>(loss * inv));
  Matrix t = target;
  return MakeOp("mse", std::move(v), {pred}, [t, inv](Node* node) {
    Node* p = node->parents[0].get();
    Matrix g(p->value.rows(), p->value.cols());
    const float go = node->grad(0, 0);
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] = go * 2.0f * inv * (p->value.data()[i] - t.data()[i]);
    }
    p->AccumGrad(g);
  });
}

Tensor L2Penalty(const std::vector<Tensor>& params, float lambda) {
  TURBO_CHECK(!params.empty());
  double s = 0.0;
  for (const auto& p : params) s += p->value.SquaredNorm();
  Matrix v(1, 1, static_cast<float>(0.5 * lambda * s));
  return MakeOp("l2", std::move(v), params, [lambda](Node* node) {
    const float go = node->grad(0, 0);
    for (auto& p : node->parents) {
      if (!p->requires_grad) continue;
      Matrix g = p->value;
      g.Scale(go * lambda);
      p->AccumGrad(g);
    }
  });
}

}  // namespace turbo::ag
