// Differentiable operators on Tensors.
//
// Shapes follow the dense-matrix conventions of la::Matrix. All backward
// implementations are checked against numerical gradients in
// tests/autograd/gradcheck_test.cc.
#pragma once

#include <vector>

#include "autograd/tensor.h"
#include "la/sparse.h"
#include "util/rng.h"

namespace turbo::ag {

// ---- arithmetic ----
Tensor Add(const Tensor& a, const Tensor& b);        // same shape
Tensor Sub(const Tensor& a, const Tensor& b);        // same shape
Tensor Mul(const Tensor& a, const Tensor& b);        // elementwise
Tensor ScalarMul(const Tensor& a, float s);
/// x + bias where bias is [1, n], broadcast over rows.
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);
/// x * gate where gate is [m, 1], broadcast over columns (per-row gate).
Tensor MulColBroadcast(const Tensor& x, const Tensor& gate);

// ---- linear algebra ----
Tensor MatMul(const Tensor& a, const Tensor& b);
/// y = A * x with a constant sparse adjacency A (graph aggregation).
Tensor SpMM(const la::SparseMatrix& a, const Tensor& x);

// ---- shape ----
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Concatenate many tensors with equal row counts along columns.
Tensor ConcatColsN(const std::vector<Tensor>& parts);
Tensor SliceCols(const Tensor& a, size_t start, size_t len);

// ---- nonlinearity ----
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float slope = 0.2f);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor SoftmaxRows(const Tensor& a);
/// Inverted dropout; identity when `training` is false.
Tensor Dropout(const Tensor& a, float p, bool training, Rng* rng);

// ---- reductions ----
Tensor RowSums(const Tensor& a);  // [m,n] -> [m,1]
Tensor Sum(const Tensor& a);      // [m,n] -> [1,1]
Tensor Mean(const Tensor& a);     // [m,n] -> [1,1]

// ---- losses ----
/// Numerically stable binary cross-entropy on logits.
/// logits: [n,1]; targets: [n,1] in {0,1}; sample_weight: [n,1] >= 0
/// (use 0 to mask a row out, class weights to rebalance). Returns [1,1]:
///   sum_i w_i * BCE(z_i, y_i) / sum_i w_i.
Tensor BceWithLogits(const Tensor& logits, const la::Matrix& targets,
                     const la::Matrix& sample_weight);

/// Mean squared error against a constant target, for tests/regression.
Tensor MseLoss(const Tensor& pred, const la::Matrix& target);

/// L2 penalty 0.5 * lambda * sum ||p||^2 over the given parameters.
Tensor L2Penalty(const std::vector<Tensor>& params, float lambda);

}  // namespace turbo::ag
