#include "autograd/tensor.h"

#include <unordered_set>

namespace turbo::ag {

void Node::AccumGrad(const la::Matrix& g) {
  TURBO_CHECK_EQ(g.rows(), value.rows());
  TURBO_CHECK_EQ(g.cols(), value.cols());
  if (grad.empty()) {
    grad = g;
  } else {
    grad.Add(g);
  }
}

const la::Matrix& Node::GradOrZero() {
  if (!grad.empty()) return grad;
  if (zero_cache_.rows() != value.rows() ||
      zero_cache_.cols() != value.cols()) {
    zero_cache_ = la::Matrix(value.rows(), value.cols(), 0.0f);
  }
  return zero_cache_;
}

Tensor Constant(la::Matrix value, std::string name) {
  return std::make_shared<Node>(std::move(name), std::move(value), false);
}

Tensor Param(la::Matrix value, std::string name) {
  return std::make_shared<Node>(std::move(name), std::move(value), true);
}

Tensor MakeOp(std::string name, la::Matrix value,
              std::vector<Tensor> parents,
              std::function<void(Node*)> backward) {
  bool rg = false;
  for (const auto& p : parents) rg = rg || p->requires_grad;
  auto node = std::make_shared<Node>(std::move(name), std::move(value), rg);
  node->parents = std::move(parents);
  if (rg) node->backward_fn = std::move(backward);
  return node;
}

namespace {

void TopoSort(Node* n, std::unordered_set<Node*>* seen,
              std::vector<Node*>* order) {
  // Iterative DFS; graphs can be thousands of nodes deep in principle.
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (seen->insert(n).second) stack.push_back({n, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && seen->insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      order->push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& root) {
  TURBO_CHECK_MSG(root->rows() == 1 && root->cols() == 1,
                  "Backward root must be scalar, got " << root->rows() << "x"
                                                       << root->cols());
  TURBO_CHECK(root->requires_grad);
  std::unordered_set<Node*> seen;
  std::vector<Node*> order;  // post-order: parents before children
  TopoSort(root.get(), &seen, &order);
  root->AccumGrad(la::Matrix(1, 1, 1.0f));
  // Children (later in forward) must propagate before their parents are
  // read, i.e. reverse post-order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->has_grad()) n->backward_fn(n);
  }
}

size_t GraphSize(const Tensor& root) {
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack = {root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (const auto& p : n->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  return seen.size();
}

}  // namespace turbo::ag
