// First-order optimizers over autograd parameters.
#pragma once

#include <vector>

#include "autograd/tensor.h"

namespace turbo::ag {

/// Base: owns the parameter list, applies updates from accumulated grads.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's accumulated gradient, then
  /// leaves the gradients untouched (call ZeroGrad separately or use
  /// StepAndZero).
  virtual void Step() = 0;

  void ZeroGrad();
  void StepAndZero() {
    Step();
    ZeroGrad();
  }

  const std::vector<Tensor>& params() const { return params_; }

  /// Global gradient-norm clipping; returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

 protected:
  std::vector<Tensor> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void Step() override;

  float lr;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<la::Matrix> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

  float lr;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<la::Matrix> m_, v_;
};

}  // namespace turbo::ag
