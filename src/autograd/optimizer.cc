#include "autograd/optimizer.h"

#include <cmath>

namespace turbo::ag {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    TURBO_CHECK(p != nullptr);
    TURBO_CHECK_MSG(p->requires_grad,
                    "optimizer param " << p->op_name << " has no grad");
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p->ClearGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (const auto& p : params_) {
    if (p->has_grad()) total += p->grad.SquaredNorm();
  }
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0) {
    const float scale = static_cast<float>(max_norm / total);
    for (auto& p : params_) {
      if (p->has_grad()) p->grad.Scale(scale);
    }
  }
  return total;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p->has_grad()) continue;
    la::Matrix g = p->grad;
    if (weight_decay_ != 0.0f) g.Add(p->value, weight_decay_);
    if (momentum_ != 0.0f) {
      velocity_[i].Scale(momentum_);
      velocity_[i].Add(g);
      p->value.Add(velocity_[i], -lr);
    } else {
      p->value.Add(g, -lr);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p->has_grad()) continue;
    la::Matrix g = p->grad;
    if (weight_decay_ != 0.0f) g.Add(p->value, weight_decay_);
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = p->value.data();
    const float* gd = g.data();
    for (size_t k = 0; k < g.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * gd[k];
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * gd[k] * gd[k];
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      w[k] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace turbo::ag
