#include "autograd/gradcheck.h"

#include <cmath>

#include "util/string_util.h"

namespace turbo::ag {

GradCheckResult CheckGradients(const std::vector<Tensor>& params,
                               const std::function<Tensor()>& loss_fn,
                               double eps, double atol, double rtol) {
  // Analytic pass.
  for (const auto& p : params) p->ClearGrad();
  Tensor loss = loss_fn();
  Backward(loss);
  std::vector<la::Matrix> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) {
    analytic.push_back(p->has_grad()
                           ? p->grad
                           : la::Matrix(p->value.rows(), p->value.cols()));
  }

  GradCheckResult res;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    auto& p = params[pi];
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      double lp = loss_fn()->value(0, 0);
      p->value.data()[i] = orig - static_cast<float>(eps);
      double lm = loss_fn()->value(0, 0);
      p->value.data()[i] = orig;
      double numeric = (lp - lm) / (2.0 * eps);
      double a = analytic[pi].data()[i];
      double abs_err = std::abs(a - numeric);
      double rel_err = abs_err / std::max(1e-8, std::abs(numeric));
      res.max_abs_err = std::max(res.max_abs_err, abs_err);
      if (abs_err > atol && rel_err > rtol) {
        res.max_rel_err = std::max(res.max_rel_err, rel_err);
        if (res.ok) {
          res.detail = StrFormat(
              "param %zu ('%s') entry %zu: analytic=%.6f numeric=%.6f",
              pi, p->op_name.c_str(), i, a, numeric);
        }
        res.ok = false;
      }
    }
  }
  return res;
}

}  // namespace turbo::ag
