// Numerical gradient verification used by the autograd test suite and by
// any new fused operator's tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autograd/tensor.h"

namespace turbo::ag {

struct GradCheckResult {
  bool ok = true;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string detail;  // first offending entry, if any
};

/// Compares analytic gradients of `loss_fn` (a scalar-valued function of
/// the given leaf parameters, rebuilt on every call) against central
/// finite differences. `loss_fn` must be deterministic.
GradCheckResult CheckGradients(
    const std::vector<Tensor>& params,
    const std::function<Tensor()>& loss_fn, double eps = 1e-3,
    double atol = 2e-2, double rtol = 5e-2);

}  // namespace turbo::ag
