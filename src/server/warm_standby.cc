#include "server/warm_standby.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "storage/wal.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace turbo::server {

namespace fs = std::filesystem;

WarmStandby::WarmStandby(WarmStandbyConfig config)
    : config_(std::move(config)) {
  TURBO_CHECK_MSG(!config_.replica_dir.empty(),
                  "WarmStandby needs a replica directory");
  config_.server.wal_dir.clear();
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  const int shard = config_.shard_index;
  applied_seq_g_ = metrics_->GetGauge(
      obs::ShardMetricName("bn_replica", shard, "applied_seq"));
  applied_records_g_ = metrics_->GetGauge(
      obs::ShardMetricName("bn_replica", shard, "applied_records"));
  records_total_ = metrics_->GetCounter(
      obs::ShardMetricName("bn_replica", shard, "records_applied_total"));
  bootstraps_ = metrics_->GetCounter(
      obs::ShardMetricName("bn_replica", shard, "bootstraps_total"));
  catchup_ms_ = metrics_->GetHistogram(
      obs::ShardMetricName("bn_replica", shard, "catchup_ms"));
}

uint64_t WarmStandby::records_applied_total() const {
  return records_total_->value();
}

Status WarmStandby::CatchUp() {
  TURBO_CHECK_MSG(!promoted_, "CatchUp after Promote");
  Stopwatch sw;
  if (server_ == nullptr) {
    TURBO_RETURN_IF_ERROR(Bootstrap());
    if (server_ == nullptr) return Status::OK();  // still waiting
  }
  const Status s = ApplyShipped();
  applied_seq_g_->Set(static_cast<double>(applied_seq_));
  applied_records_g_->Set(static_cast<double>(applied_records_));
  catchup_ms_->Observe(sw.ElapsedMillis());
  return s;
}

Status WarmStandby::Rebootstrap() {
  TURBO_CHECK_MSG(!promoted_, "Rebootstrap after Promote");
  server_.reset();
  applied_seq_ = 0;
  applied_records_ = 0;
  return CatchUp();
}

Status WarmStandby::Bootstrap() {
  const std::string& dir = config_.replica_dir;
  const bool have_ckpt = fs::exists(dir + "/checkpoint.bin");
  const bool have_wal = !storage::ListWalSegments(dir).empty();
  if (!have_ckpt && !have_wal) return Status::OK();  // nothing shipped
  auto server = std::make_unique<BnServer>(config_.server);
  TURBO_RETURN_IF_ERROR(server->Recover(dir));
  // With an empty wal_dir, Recover applied the shipped history without
  // truncating torn tails or opening a writer — exactly the standby
  // posture — and left the resume cursor at the last applied record.
  if (server->wal_resume_seq() == 0) {
    return Status::FailedPrecondition(
        "replica checkpoint was written without a WAL — nothing can be "
        "shipped after it");
  }
  applied_seq_ = server->wal_resume_seq();
  applied_records_ = server->wal_resume_records();
  records_total_->Increment(server->wal_resume_records());
  server_ = std::move(server);
  bootstraps_->Increment();
  return Status::OK();
}

Status WarmStandby::ApplyShipped() {
  const std::string& dir = config_.replica_dir;
  std::vector<uint64_t> seqs = storage::ListWalSegments(dir);
  std::erase_if(seqs, [&](uint64_t s) { return s < applied_seq_; });
  if (seqs.empty()) return Status::OK();
  if (seqs.front() != applied_seq_) {
    // The segment we were consuming vanished without a successor we
    // already reached — records between it and seqs.front() are gone
    // (checkpoint rotation outran this standby, or the ship lost
    // files). Rebootstrap() recovers from the shipped checkpoint.
    return Status::Internal(StrFormat(
        "replication gap: expected segment %llu, replica starts at %llu",
        static_cast<unsigned long long>(applied_seq_),
        static_cast<unsigned long long>(seqs.front())));
  }
  for (size_t i = 0; i < seqs.size(); ++i) {
    if (i > 0 && seqs[i] != seqs[i - 1] + 1) {
      return Status::Internal(StrFormat(
          "replication gap between segments %llu and %llu",
          static_cast<unsigned long long>(seqs[i - 1]),
          static_cast<unsigned long long>(seqs[i])));
    }
    auto segment_or =
        storage::ReadWalSegment(storage::WalSegmentPath(dir, seqs[i]));
    if (!segment_or.ok()) return segment_or.status();
    const storage::WalSegment& segment = segment_or.value();
    const size_t already =
        seqs[i] == applied_seq_ ? applied_records_ : 0;
    if (segment.records.size() < already) {
      return Status::Internal(StrFormat(
          "replica segment %llu shrank below the applied prefix "
          "(%zu < %zu records)",
          static_cast<unsigned long long>(seqs[i]),
          segment.records.size(), already));
    }
    if (segment.torn && i + 1 < seqs.size()) {
      // A successor exists, so the primary sealed this segment — its
      // shipped copy ending mid-record is corruption, not a ship race.
      return Status::Internal(StrFormat(
          "replica segment %llu has a torn tail but is not the last",
          static_cast<unsigned long long>(seqs[i])));
    }
    for (size_t r = already; r < segment.records.size(); ++r) {
      server_->ApplyReplicated(segment.records[r]);
    }
    records_total_->Increment(segment.records.size() - already);
    applied_seq_ = seqs[i];
    applied_records_ = segment.records.size();
    if (segment.torn) {
      // Mid-ship torn tail: wait for the next ship to complete the
      // record. Never truncate — the primary may still be writing the
      // source bytes.
      break;
    }
  }
  return Status::OK();
}

Result<BnServer*> WarmStandby::Promote() {
  TURBO_CHECK_MSG(!promoted_, "Promote is one-shot");
  if (server_ == nullptr) {
    return Status::FailedPrecondition(
        "nothing was shipped — cannot promote an empty standby");
  }
  // Apply whatever already arrived, then seal: the primary is declared
  // dead, so a torn tail is final and its bytes are ours to drop.
  TURBO_RETURN_IF_ERROR(ApplyShipped());
  const std::string& dir = config_.replica_dir;
  const std::vector<uint64_t> seqs = storage::ListWalSegments(dir);
  if (!seqs.empty()) {
    const std::string last = storage::WalSegmentPath(dir, seqs.back());
    auto segment_or = storage::ReadWalSegment(last);
    if (!segment_or.ok()) return segment_or.status();
    if (segment_or.value().torn) {
      TURBO_RETURN_IF_ERROR(storage::TruncateWalSegment(
          last, segment_or.value().valid_bytes));
    }
  }
  TURBO_RETURN_IF_ERROR(server_->AdoptWalDir(dir));
  promoted_ = true;
  return server_.get();
}

}  // namespace turbo::server
