// Latency percentile tracking for the serving benchmarks (Section V
// reports p50/p99/p999 before and after the caching optimization).
#pragma once

#include <string>
#include <vector>

namespace turbo::server {

class LatencyTracker {
 public:
  void Record(double millis);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Max() const;
  /// q in [0, 1], e.g. 0.5 / 0.99 / 0.999. Nearest-rank on the sorted
  /// samples.
  double Percentile(double q) const;

  std::string Summary(const std::string& label) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace turbo::server
