#include "server/prediction_server.h"

#include <algorithm>
#include <chrono>

#include "gnn/trainer.h"
#include "util/time_util.h"

namespace turbo::server {

PredictionServer::PredictionServer(PredictionConfig config, BnServer* bn,
                                   features::FeatureStore* features,
                                   core::Hag* model,
                                   const ml::StandardScaler* scaler)
    : config_(config),
      bn_(bn),
      features_(features),
      model_(model),
      scaler_(scaler),
      cache_(std::max<size_t>(1, config.cache_capacity)) {
  TURBO_CHECK(bn_ != nullptr);
  TURBO_CHECK(features_ != nullptr);
  TURBO_CHECK(model_ != nullptr);
  TURBO_CHECK(scaler_ != nullptr);
  if (config_.quantized_inference) {
    // Int8 weights exist only on the tape-free path; the autograd
    // forward always reads float parameters.
    TURBO_CHECK_MSG(config_.use_inference_path,
                    "quantized_inference requires use_inference_path");
    model_->SetInferenceMode(gnn::InferenceMode::kInt8);
  }
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  requests_ = metrics_->GetCounter("predict_requests_total");
  blocked_ = metrics_->GetCounter("predict_blocked_total");
  cache_hits_ = metrics_->GetCounter("predict_cache_hits_total");
  cache_misses_ = metrics_->GetCounter("predict_cache_misses_total");
  deadline_shed_ = metrics_->GetCounter("prediction_deadline_shed_total");
  queue_rejected_ =
      metrics_->GetCounter("prediction_queue_rejected_total");
  queue_depth_g_ = metrics_->GetGauge("prediction_queue_depth");
  sample_ms_ = metrics_->GetHistogram("predict_sample_ms");
  feature_ms_ = metrics_->GetHistogram("predict_feature_ms");
  inference_ms_ = metrics_->GetHistogram("predict_inference_ms");
  total_ms_ = metrics_->GetHistogram("predict_total_ms");
  subgraph_nodes_ = metrics_->GetHistogram(
      "predict_subgraph_nodes", obs::Histogram::DefaultSizeBuckets());
  batch_size_ = metrics_->GetHistogram("predict_batch_size",
                                       obs::Histogram::DefaultSizeBuckets());
}

PredictionServer::~PredictionServer() { StopBatching(); }

PredictionResponse PredictionServer::Handle(UserId uid) {
  return HandleBatch({uid}).front();
}

std::vector<PredictionResponse> PredictionServer::HandleBatch(
    const std::vector<UserId>& uids) {
  std::vector<PredictionResponse> out(uids.size());
  if (uids.empty()) return out;
  const size_t n = uids.size();
  const SimTime as_of = bn_->now();
  // The fetch-add result is the only race-free source of ids: a separate
  // value() read can observe another thread's concurrent increment.
  const uint64_t last_id = requests_->Increment(n);
  const uint64_t first_id = last_id - n + 1;
  batch_size_->Observe(static_cast<double>(n));
  obs::StageTimer trace(metrics_, "predict", first_id);
  for (size_t i = 0; i < n; ++i) {
    out[i].request_id = first_id + i;
    out[i].batch_size = static_cast<int>(n);
  }

  // 0) Snapshot-versioned cache probe. Keys carry the version, so a
  // fresh snapshot can never serve a stale hit; the Clear on version
  // change just reclaims dead entries eagerly.
  uint64_t version = bn_->snapshot_version();
  std::vector<size_t> miss;  // positions in `uids` needing compute
  miss.reserve(n);
  if (config_.cache_capacity > 0) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (version != cache_version_) {
      cache_.Clear();
      cache_version_ = version;
    }
    for (size_t i = 0; i < n; ++i) {
      auto hit = cache_.Get(CacheKey(config_.shard_tag, uids[i], version));
      if (hit.has_value()) {
        out[i].fraud_probability = hit->probability;
        out[i].subgraph_nodes = hit->subgraph_nodes;
        out[i].snapshot_version = version;
        out[i].cache_hit = true;
        cache_hits_->Increment();
      } else {
        miss.push_back(i);
        cache_misses_->Increment();
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) miss.push_back(i);
  }

  double sample_total = 0.0, feature_total = 0.0, inference_total = 0.0;
  if (!miss.empty()) {
    std::vector<UserId> targets;
    targets.reserve(miss.size());
    for (size_t idx : miss) targets.push_back(uids[idx]);

    // 1) BN server: one merged computation subgraph from one pinned
    // snapshot (target rows come first, in `targets` order).
    bn::Subgraph sg;
    {
      auto span = trace.StartSpan("sample");
      storage::SimClock sample_clock;
      sg = bn_->SampleSubgraph(targets);
      // Modeled cost of shipping the subgraph out of the graph store: one
      // query per node's adjacency rows.
      sample_clock.ChargeQuery(storage::MediumCost::InMemoryCache(),
                               static_cast<int64_t>(sg.NumEdges()));
      span.AddModeledMillis(sample_clock.ElapsedMillis());
      sample_total = span.Stop();
    }
    version = sg.snapshot_version;
    subgraph_nodes_->Observe(static_cast<double>(sg.nodes.size()));

    // 2) Feature management: raw features for every sampled node, scaled
    // with the training scaler.
    la::Matrix scaled;
    {
      auto span = trace.StartSpan("feature");
      storage::SimClock feature_clock;
      la::Matrix raw;
      for (size_t i = 0; i < sg.nodes.size(); ++i) {
        auto row =
            features_->GetFeatures(sg.nodes[i], as_of, &feature_clock);
        TURBO_CHECK_MSG(!row.empty(), "no profile row for uid "
                                          << sg.nodes[i]);
        if (raw.empty()) raw = la::Matrix(sg.nodes.size(), row.size());
        TURBO_CHECK_EQ(row.size(), raw.cols());
        std::copy(row.begin(), row.end(), raw.row(i));
      }
      scaled = scaler_->Transform(raw);
      span.AddModeledMillis(feature_clock.ElapsedMillis());
      feature_total = span.Stop();
    }

    // 3) Prediction server: one merged model forward for the batch.
    {
      auto span = trace.StartSpan("inference");
      gnn::GraphBatch batch;
      {
        // MakeGraphBatch gathers feature rows by the ids in sg.nodes; the
        // scaled matrix here is already local-row aligned, so remap the
        // node list to the identity and restore the global ids afterwards.
        bn::Subgraph local = sg;
        for (size_t i = 0; i < local.nodes.size(); ++i) {
          local.nodes[i] = static_cast<UserId>(i);
        }
        batch = gnn::MakeGraphBatch(local, scaled);
        batch.global_ids = sg.nodes;
      }
      const std::vector<double> probs =
          config_.use_inference_path
              ? gnn::GnnTrainer::PredictTargetsInference(*model_, batch)
              : gnn::GnnTrainer::PredictTargets(model_, batch);
      // One probability per distinct target: a batch naming the same uid
      // twice (e.g. a retry racing its original) collapses to one target
      // row in the sampler, so map each request position back through
      // sg.local rather than assuming probs lines up with `miss`.
      TURBO_CHECK_EQ(probs.size(), sg.num_targets);
      for (size_t j = 0; j < miss.size(); ++j) {
        const int row = sg.local.at(uids[miss[j]]);
        out[miss[j]].fraud_probability = probs[row];
        out[miss[j]].subgraph_nodes = static_cast<int>(sg.nodes.size());
        out[miss[j]].snapshot_version = version;
      }
      inference_total = span.Stop();
    }

    if (config_.cache_capacity > 0) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      for (size_t idx : miss) {
        cache_.Put(CacheKey(config_.shard_tag, uids[idx], version),
                   CachedPrediction{out[idx].fraud_probability,
                                    out[idx].subgraph_nodes});
      }
    }
  }

  const double total = trace.Finish();
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].sampling_ms = sample_total * inv_n;
    out[i].feature_ms = feature_total * inv_n;
    out[i].inference_ms = inference_total * inv_n;
    out[i].total_ms = total * inv_n;
    out[i].blocked = out[i].fraud_probability >= config_.threshold;
    if (out[i].blocked) blocked_->Increment();
  }
  return out;
}

void PredictionServer::StartBatching(BatchingConfig config) {
  TURBO_CHECK_GT(config.max_batch_size, 0);
  TURBO_CHECK_GT(config.workers, 0);
  TURBO_CHECK_GE(config.max_wait_ms, 0.0);
  StopBatching();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    batching_ = config;
    batching_running_ = true;
  }
  batch_workers_.reserve(config.workers);
  for (int i = 0; i < config.workers; ++i) {
    batch_workers_.emplace_back([this] { BatchWorkerLoop(); });
  }
}

void PredictionServer::StopBatching() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!batching_running_ && batch_workers_.empty()) return;
    batching_running_ = false;
  }
  queue_cv_.notify_all();
  for (auto& w : batch_workers_) w.join();
  batch_workers_.clear();
}

PredictionResponse PredictionServer::ShedResponse() {
  PredictionResponse r;
  r.shed = true;
  return r;
}

std::future<PredictionResponse> PredictionServer::SubmitAsync(UserId uid) {
  return SubmitWithDeadline(uid, Deadline::max());
}

std::future<PredictionResponse> PredictionServer::SubmitWithDeadline(
    UserId uid, Deadline deadline) {
  // The promise rides in a shared_ptr because DoneCallback must be
  // copyable; the callback fires exactly once.
  auto p = std::make_shared<std::promise<PredictionResponse>>();
  std::future<PredictionResponse> fut = p->get_future();
  SubmitCallback(uid, deadline,
                 [p](const PredictionResponse& r) { p->set_value(r); });
  return fut;
}

bool PredictionServer::SubmitCallback(UserId uid, Deadline deadline,
                                      DoneCallback done) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (batching_running_) {
      if (batching_.max_queue > 0 &&
          queue_.size() >= batching_.max_queue) {
        // Admission rejection: queued past the cap the request would
        // only wait to miss its deadline while delaying everyone else.
        lock.unlock();
        queue_rejected_->Increment();
        done(ShedResponse());
        return false;
      }
      queue_.push_back(PendingRequest{uid, deadline, std::move(done)});
      queue_depth_g_->Set(static_cast<double>(queue_.size()));
      lock.unlock();
      queue_cv_.notify_one();
      return true;
    }
  }
  // Queue not running: serve synchronously so callers never hang — but
  // still honor an already-expired deadline.
  if (std::chrono::steady_clock::now() >= deadline) {
    deadline_shed_->Increment();
    done(ShedResponse());
    return true;
  }
  done(Handle(uid));
  return true;
}

void PredictionServer::BatchWorkerLoop() {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !batching_running_ || !queue_.empty();
      });
      // Stopped: drain whatever is queued, then exit.
      if (queue_.empty()) return;
      const size_t want = static_cast<size_t>(batching_.max_batch_size);
      if (batching_running_ && queue_.size() < want &&
          batching_.max_wait_ms > 0.0) {
        // Coalescing window: give concurrent submitters a moment to fill
        // the batch before running a partial one.
        queue_cv_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(batching_.max_wait_ms),
            [this, want] {
              return !batching_running_ || queue_.size() >= want;
            });
      }
      const size_t take = std::min(want, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_g_->Set(static_cast<double>(queue_.size()));
    }
    if (batch.empty()) continue;
    // Deadline check happens here — after the queue wait, before any
    // sampling/feature/inference cost. Expired requests complete with a
    // shed response; the survivors run the unchanged HandleBatch path,
    // so admission control cannot alter a served prediction.
    const auto now = std::chrono::steady_clock::now();
    std::vector<PendingRequest> live;
    live.reserve(batch.size());
    for (auto& r : batch) {
      if (now >= r.deadline) {
        deadline_shed_->Increment();
        r.done(ShedResponse());
      } else {
        live.push_back(std::move(r));
      }
    }
    if (live.empty()) continue;
    std::vector<UserId> uids;
    uids.reserve(live.size());
    for (const auto& r : live) uids.push_back(r.uid);
    std::vector<PredictionResponse> resps = HandleBatch(uids);
    for (size_t i = 0; i < live.size(); ++i) {
      live[i].done(resps[i]);
    }
  }
}

}  // namespace turbo::server
