#include "server/prediction_server.h"

#include "gnn/trainer.h"
#include "util/time_util.h"

namespace turbo::server {

PredictionServer::PredictionServer(PredictionConfig config, BnServer* bn,
                                   features::FeatureStore* features,
                                   core::Hag* model,
                                   const ml::StandardScaler* scaler)
    : config_(config),
      bn_(bn),
      features_(features),
      model_(model),
      scaler_(scaler) {
  TURBO_CHECK(bn_ != nullptr);
  TURBO_CHECK(features_ != nullptr);
  TURBO_CHECK(model_ != nullptr);
  TURBO_CHECK(scaler_ != nullptr);
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  requests_ = metrics_->GetCounter("predict_requests_total");
  blocked_ = metrics_->GetCounter("predict_blocked_total");
  sample_ms_ = metrics_->GetHistogram("predict_sample_ms");
  feature_ms_ = metrics_->GetHistogram("predict_feature_ms");
  inference_ms_ = metrics_->GetHistogram("predict_inference_ms");
  total_ms_ = metrics_->GetHistogram("predict_total_ms");
  subgraph_nodes_ = metrics_->GetHistogram(
      "predict_subgraph_nodes", obs::Histogram::DefaultSizeBuckets());
}

PredictionResponse PredictionServer::Handle(UserId uid) {
  PredictionResponse resp;
  const SimTime as_of = bn_->now();
  requests_->Increment();
  resp.request_id = requests_->value();
  obs::StageTimer trace(metrics_, "predict", resp.request_id);

  // 1) BN server: computation subgraph.
  bn::Subgraph sg;
  {
    auto span = trace.StartSpan("sample");
    storage::SimClock sample_clock;
    sg = bn_->SampleSubgraph(uid);
    // Modeled cost of shipping the subgraph out of the graph store: one
    // query per node's adjacency rows.
    sample_clock.ChargeQuery(storage::MediumCost::InMemoryCache(),
                             static_cast<int64_t>(sg.NumEdges()));
    span.AddModeledMillis(sample_clock.ElapsedMillis());
    resp.sampling_ms = span.Stop();
  }
  resp.subgraph_nodes = static_cast<int>(sg.nodes.size());
  subgraph_nodes_->Observe(static_cast<double>(sg.nodes.size()));

  // 2) Feature management: raw features for every sampled node, scaled
  // with the training scaler.
  la::Matrix scaled;
  {
    auto span = trace.StartSpan("feature");
    storage::SimClock feature_clock;
    la::Matrix raw;
    for (size_t i = 0; i < sg.nodes.size(); ++i) {
      auto row =
          features_->GetFeatures(sg.nodes[i], as_of, &feature_clock);
      TURBO_CHECK_MSG(!row.empty(), "no profile row for uid "
                                        << sg.nodes[i]);
      if (raw.empty()) raw = la::Matrix(sg.nodes.size(), row.size());
      TURBO_CHECK_EQ(row.size(), raw.cols());
      std::copy(row.begin(), row.end(), raw.row(i));
    }
    scaled = scaler_->Transform(raw);
    span.AddModeledMillis(feature_clock.ElapsedMillis());
    resp.feature_ms = span.Stop();
  }

  // 3) Prediction server: HAG forward pass.
  {
    auto span = trace.StartSpan("inference");
    // Features are already local-row aligned; build the batch directly.
    gnn::GraphBatch batch;
    {
      // MakeGraphBatch gathers feature rows by the ids in sg.nodes; the
      // scaled matrix here is already local-row aligned, so remap the
      // node list to the identity and restore the global ids afterwards.
      bn::Subgraph local = sg;
      for (size_t i = 0; i < local.nodes.size(); ++i) {
        local.nodes[i] = static_cast<UserId>(i);
      }
      batch = gnn::MakeGraphBatch(local, scaled);
      batch.global_ids = sg.nodes;
    }
    auto probs = gnn::GnnTrainer::PredictTargets(model_, batch);
    resp.fraud_probability = probs[0];
    resp.blocked = resp.fraud_probability >= config_.threshold;
    resp.inference_ms = span.Stop();
  }

  if (resp.blocked) blocked_->Increment();
  resp.total_ms = trace.Finish();
  return resp;
}

}  // namespace turbo::server
