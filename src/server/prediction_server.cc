#include "server/prediction_server.h"

#include "gnn/trainer.h"
#include "util/time_util.h"

namespace turbo::server {

PredictionServer::PredictionServer(PredictionConfig config, BnServer* bn,
                                   features::FeatureStore* features,
                                   core::Hag* model,
                                   const ml::StandardScaler* scaler)
    : config_(config),
      bn_(bn),
      features_(features),
      model_(model),
      scaler_(scaler) {
  TURBO_CHECK(bn_ != nullptr);
  TURBO_CHECK(features_ != nullptr);
  TURBO_CHECK(model_ != nullptr);
  TURBO_CHECK(scaler_ != nullptr);
}

PredictionResponse PredictionServer::Handle(UserId uid) {
  PredictionResponse resp;
  const SimTime as_of = bn_->now();

  // 1) BN server: computation subgraph.
  Stopwatch sw;
  storage::SimClock sample_clock;
  auto sg = bn_->SampleSubgraph(uid);
  // Modeled cost of shipping the subgraph out of the graph store: one
  // query per node's adjacency rows.
  sample_clock.ChargeQuery(storage::MediumCost::InMemoryCache(),
                           static_cast<int64_t>(sg.NumEdges()));
  resp.subgraph_nodes = static_cast<int>(sg.nodes.size());
  resp.sampling_ms = sw.ElapsedMillis() + sample_clock.ElapsedMillis();

  // 2) Feature management: raw features for every sampled node, scaled
  // with the training scaler.
  sw.Reset();
  storage::SimClock feature_clock;
  la::Matrix raw;
  for (size_t i = 0; i < sg.nodes.size(); ++i) {
    auto row = features_->GetFeatures(sg.nodes[i], as_of, &feature_clock);
    TURBO_CHECK_MSG(!row.empty(), "no profile row for uid "
                                      << sg.nodes[i]);
    if (raw.empty()) raw = la::Matrix(sg.nodes.size(), row.size());
    TURBO_CHECK_EQ(row.size(), raw.cols());
    std::copy(row.begin(), row.end(), raw.row(i));
  }
  la::Matrix scaled = scaler_->Transform(raw);
  resp.feature_ms = sw.ElapsedMillis() + feature_clock.ElapsedMillis();

  // 3) Prediction server: HAG forward pass.
  sw.Reset();
  // Features are already local-row aligned; build the batch directly.
  gnn::GraphBatch batch;
  {
    // MakeGraphBatch gathers feature rows by the ids in sg.nodes; the
    // scaled matrix here is already local-row aligned, so remap the node
    // list to the identity and restore the global ids afterwards.
    bn::Subgraph local = sg;
    for (size_t i = 0; i < local.nodes.size(); ++i) {
      local.nodes[i] = static_cast<UserId>(i);
    }
    batch = gnn::MakeGraphBatch(local, scaled);
    batch.global_ids = sg.nodes;
  }
  auto probs = gnn::GnnTrainer::PredictTargets(model_, batch);
  resp.fraud_probability = probs[0];
  resp.blocked = resp.fraud_probability >= config_.threshold;
  resp.inference_ms = sw.ElapsedMillis();

  resp.total_ms = resp.sampling_ms + resp.feature_ms + resp.inference_ms;
  sampling_.Record(resp.sampling_ms);
  feature_.Record(resp.feature_ms);
  inference_.Record(resp.inference_ms);
  total_.Record(resp.total_ms);
  return resp;
}

}  // namespace turbo::server
