// Routing layer of the BN cluster (DESIGN.md §14): decides, per
// behavior log, which shard(s) must ingest it, and which shard serves
// a user's sampling/feature reads.
//
// A log is delivered to the shard owning its *user* (that shard holds
// the user's complete raw-log history, so feature reads and per-user
// queries are exact) and, when different, forwarded to the shard owning
// its *value* (that shard sees every user sharing the value, and is the
// only shard whose window jobs build the value's co-occurrence edges —
// see bn/partition.h). Non-edge-building types never build edges, so
// they ship to the user owner only.
#pragma once

#include "bn/partition.h"
#include "storage/behavior_log.h"

namespace turbo::server {

/// Shards one log routes to. `value_shard == user_shard` when no
/// forward copy is needed (same owner, or a non-edge type).
struct ShardRoute {
  int user_shard = 0;
  int value_shard = 0;

  bool forwarded() const { return value_shard != user_shard; }
};

class ShardRouter {
 public:
  /// `topology.shard_index` is ignored — the router speaks for the
  /// whole cluster, the per-shard index only matters inside a shard's
  /// own window-job filter.
  explicit ShardRouter(bn::ShardTopology topology);

  int num_shards() const { return topology_.shard_count; }

  /// Shard holding `uid`'s logs and adjacency rows (serving side).
  int OwnerOfUser(UserId uid) const;

  /// Shard building edges for (type, value).
  int OwnerOfValue(BehaviorType type, ValueId value) const;

  /// Ingest routing for one log (see file comment).
  ShardRoute Route(const BehaviorLog& log) const;

  /// The topology as shard `index` must run it (for BnConfig::topology,
  /// and thus the shard's checkpoint fingerprint).
  bn::ShardTopology TopologyForShard(int index) const;

 private:
  bn::ShardTopology topology_;
};

}  // namespace turbo::server
