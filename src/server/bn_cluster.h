// Multi-shard BN cluster (DESIGN.md §14): N single-writer BnServer
// shards behind a ShardRouter, presenting the same ingest / advance /
// checkpoint / sample surface as one server.
//
// Partitioning (bn/partition.h): users hash to a home shard that holds
// their complete raw-log history and serves their sampling and feature
// reads; behavior *values* hash to an owner shard that is the only
// place the value's co-occurrence bucket becomes edges. A log whose
// value owner differs from its user owner is ingested at both — the
// value owner therefore sees every user sharing the value, and each
// shard's window-job key filter (BnConfig::topology) guarantees every
// cross-shard edge is built exactly once cluster-wide. Per-(type,u,v)
// weights summed across shards equal the single-server weights bit for
// bit (each shard accumulates a disjoint subset of the same exact
// float-term sums; see storage::EdgeInfo).
//
// Epoch barrier: AdvanceTo moves every shard to the same target time —
// optionally in parallel, the shards share no mutable state — and only
// counts the cluster epoch once all shards arrive. Each shard runs its
// due window jobs in the same global epoch order a single server
// would, so the barrier preserves the single-server job schedule
// shard-locally, which is all the bit-identity argument needs.
//
// Durability: with wal_root set, shard i logs to
// `<wal_root>/shard-<i>`; Checkpoint()/Recover() fan out per shard.
// Each shard's checkpoint carries its own topology fingerprint, so
// state from a different layout (count or seeds) is rejected instead
// of silently building a skewed graph. Warm standbys attach per shard
// directory (server::WarmStandby over storage::ShipWalDir).
//
// Concurrency contract: identical to BnServer, lifted to the cluster —
// Ingest/AdvanceTo/Checkpoint/Recover are cluster-writer operations;
// SampleSubgraph and per-shard snapshot reads are lock-free and may
// run from any thread concurrently with the writer. OfferIngest is
// lock-free from any producer thread.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "server/bn_server.h"
#include "server/prediction_server.h"
#include "server/shard_handle.h"
#include "server/shard_router.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace turbo::server {

struct BnClusterConfig {
  /// Per-shard server template. `bn.topology` and `wal_dir` are
  /// overwritten per shard (the topology's seeds are kept); everything
  /// else applies to every shard as-is. The template's `metrics`
  /// pointer is ignored — each shard gets a private registry so
  /// per-shard gauges do not fight over one name.
  BnServerConfig shard;
  int num_shards = 1;
  /// Durability root; empty disables the WAL cluster-wide. Shard i
  /// writes to `<wal_root>/shard-<i>`.
  std::string wal_root;
  /// Threads driving the AdvanceTo barrier; 1 advances the shards
  /// serially on the calling thread. Purely a throughput knob — the
  /// shards are state-disjoint and each is deterministic.
  int advance_threads = 1;
  /// Registry receiving the cluster's bn_cluster_* metrics (routing
  /// counters, epoch, per-shard lag gauges). Not owned; null = private.
  obs::MetricsRegistry* metrics = nullptr;
};

class BnCluster {
 public:
  /// Local mode: constructs `num_shards` in-process BnServers and
  /// routes to them directly.
  explicit BnCluster(BnClusterConfig config);

  /// Handle mode (DESIGN.md §15): routes to caller-provided shard
  /// handles — typically net::RemoteShardClient per endpoint — instead
  /// of in-process servers. `config.shard.bn.topology` still defines the
  /// routing layout and must match what each remote shard was built
  /// with; `config.num_shards`/`wal_root` are ignored (the handle count
  /// is the shard count, durability lives with each shard). Local-only
  /// accessors (shard(), EdgeWeight(), ...) CHECK-fail in this mode.
  BnCluster(BnClusterConfig config,
            std::vector<std::unique_ptr<ShardHandle>> handles);

  /// Writer-side ingestion: routes to the user-owner shard and, when
  /// the value owner differs, forwards a copy there (both appends go
  /// through the owning shard's WAL when durability is on).
  void Ingest(const BehaviorLog& log);
  void IngestBatch(const BehaviorLogList& logs);

  /// Admission-controlled front door (requires
  /// shard.ingest_queue_capacity > 0). Lock-free, any producer thread.
  /// Returns true only when every routed copy was admitted; under
  /// overload a forwarded copy can be shed independently of the home
  /// copy — the same "drop instead of stall" contract as one server,
  /// applied per shard.
  bool OfferIngest(const BehaviorLog& log);
  /// Writer-side drain of every shard's ring; returns events applied.
  size_t DrainIngest(size_t max_events_per_shard = SIZE_MAX);
  size_t ingest_queue_depth() const;

  /// Cluster epoch barrier: advances every shard to `now`, then counts
  /// the epoch. The cluster clock reads `now` only after all shards
  /// published their state for it.
  void AdvanceTo(SimTime now);

  /// Epochs completed (AdvanceTo calls that moved the clock).
  uint64_t epoch() const { return epoch_; }
  SimTime now() const { return handles_.front()->now(); }

  /// Fan-out checkpoint/recover over `<wal_root>/shard-<i>` (requires
  /// wal_root). Recover must run on a freshly constructed cluster.
  Status Checkpoint();
  Status Recover();

  /// Serving reads, routed to the user-owner shard's pinned snapshot.
  bn::Subgraph SampleSubgraph(UserId uid) const;
  uint64_t snapshot_version_for(UserId uid) const;

  int num_shards() const { return static_cast<int>(handles_.size()); }
  const ShardRouter& router() const { return router_; }
  /// True when the shards are in-process BnServers (local-mode
  /// constructor); the accessors below require it.
  bool local() const { return !shards_.empty(); }
  BnServer& shard(int i) { return *CheckLocal()[i]; }
  const BnServer& shard(int i) const { return *CheckLocal()[i]; }
  BnServer& ShardForUser(UserId uid) {
    return *CheckLocal()[router_.OwnerOfUser(uid)];
  }
  const BnServer& ShardForUser(UserId uid) const {
    return *CheckLocal()[router_.OwnerOfUser(uid)];
  }
  /// The routed handle for `uid`'s home shard (works in both modes).
  ShardHandle& HandleForUser(UserId uid) const {
    return *handles_[router_.OwnerOfUser(uid)];
  }

  /// Durability directory of shard `i` under `root`.
  static std::string ShardDir(const std::string& root, int i);

  /// Total weight of edge (edge_type, u, v) across shards — bit-equal
  /// to the weight a single server would hold (exact partial sums, see
  /// file comment). 0 when absent everywhere.
  double EdgeWeight(int edge_type, UserId u, UserId v) const;
  /// Latest update stamp of the edge across shards (0 when absent).
  SimTime EdgeLastUpdate(int edge_type, UserId u, UserId v) const;

  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  /// Shared tail of both constructors: metric handles, per-shard
  /// gauges, the advance pool.
  void InitCommon();
  const std::vector<std::unique_ptr<BnServer>>& CheckLocal() const {
    TURBO_CHECK_MSG(!shards_.empty(),
                    "local-shard accessor on a handle-mode BnCluster");
    return shards_;
  }

  BnClusterConfig config_;
  ShardRouter router_;
  /// Local mode only; empty in handle mode.
  std::vector<std::unique_ptr<BnServer>> shards_;
  /// Every operation routes through these (LocalShardHandle wrappers in
  /// local mode).
  std::vector<std::unique_ptr<ShardHandle>> handles_;
  std::unique_ptr<util::ThreadPool> advance_pool_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* ingest_events_ = nullptr;
  obs::Counter* forwarded_ = nullptr;
  obs::Counter* offer_rejected_ = nullptr;
  obs::Gauge* epoch_g_ = nullptr;
  /// Per-shard serving gauges, refreshed at each barrier
  /// (obs::ShardMetricName).
  std::vector<obs::Gauge*> shard_version_g_;
  std::vector<obs::Gauge*> shard_edges_g_;
  uint64_t epoch_ = 0;
};

/// Serving-side router: hands each audit request to the PredictionServer
/// of the uid's owner shard, whose LRU is keyed by (shard, snapshot
/// version, uid) — PredictionConfig::shard_tag keeps keys from
/// different shards disjoint even though every shard numbers its
/// snapshot versions independently.
class ClusterPredictionRouter {
 public:
  /// `shards[i]` must serve BnCluster shard i (same order); borrowed,
  /// not owned.
  ClusterPredictionRouter(const ShardRouter* router,
                          std::vector<PredictionServer*> shards);

  PredictionResponse Handle(UserId uid);
  /// Batch form: requests group by owner shard, each group runs as one
  /// merged HandleBatch against that shard's pinned snapshot; responses
  /// return in `uids` order.
  std::vector<PredictionResponse> HandleBatch(
      const std::vector<UserId>& uids);

 private:
  const ShardRouter* router_;
  std::vector<PredictionServer*> shards_;
};

}  // namespace turbo::server
