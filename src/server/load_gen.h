// Open-loop load generation for the serving stack (ROADMAP item 3: the
// paper's §V latency story pushed to saturation).
//
// Closed-loop benches (bench_serving_throughput) keep a fixed number of
// requests in flight, so when the server slows down the offered load
// slows down with it — queueing delay is invisible and overload is
// unreachable. This harness is open-loop: arrivals follow a Poisson
// process at a configured rate whether or not the server keeps up, the
// way independent users behave.
//
// Coordinated-omission handling: every request's latency is measured
// from its INTENDED arrival time on the pre-generated schedule, not
// from the moment the generator thread actually got around to
// submitting it. If the generator falls behind (it shares cores with
// the server under test), the lateness lands in the recorded latency
// instead of silently thinning the offered load — the standard fix for
// coordinated omission in open-loop measurement.
//
// The generator drives both serving planes concurrently:
//  * predictions: PredictionServer::SubmitCallback with deadline =
//    intended arrival + slo_ms. The completion callback stamps the
//    finish time on the worker thread and records the queue-delay-
//    inclusive latency into the `load_e2e_latency_ms` histogram of the
//    given registry. Past-deadline work is shed by the server.
//  * ingest: BnServer::OfferIngest into the bounded MPSC ring; a drain
//    thread owned by the harness plays the BN writer, applying queued
//    logs and recording offer-to-apply latency (`load_ingest_apply_ms`).
//    A full ring rejects — backpressure, not an unbounded queue.
//
// Goodput = completions whose end-to-end latency met the SLO, per
// second — the number the overload acceptance criterion is written
// against (shed + rejected work absorbs the excess; goodput must not
// collapse).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "server/bn_server.h"
#include "server/prediction_server.h"

namespace turbo::server {

struct LoadGenConfig {
  /// Mean prediction arrival rate (requests/s). Must be > 0.
  double prediction_rate = 100.0;
  /// Mean ingest arrival rate (logs/s); 0 disables the ingest plane.
  double ingest_rate = 0.0;
  /// Length of the arrival schedule (seconds of wall time).
  double duration_s = 3.0;
  /// Per-request latency SLO; also the deadline handed to the server
  /// (intended arrival + slo_ms).
  double slo_ms = 50.0;
  /// Poisson (exponential inter-arrival) when true; evenly spaced when
  /// false. Schedules are deterministic given (seed, rate, duration).
  bool poisson = true;
  uint64_t seed = 1;
  /// Batching config for the server's coalescing queue (started and
  /// stopped by Run).
  BatchingConfig batching;
  /// Max logs the ingest drain thread applies per DrainIngest call.
  size_t ingest_drain_batch = 256;
};

struct LoadGenResult {
  // Prediction plane.
  size_t offered = 0;      // scheduled arrivals
  size_t served = 0;       // completions that ran the pipeline
  size_t shed = 0;         // deadline sheds (server-side)
  size_t rejected = 0;     // queue-cap admission rejections
  size_t in_deadline = 0;  // served AND e2e latency <= slo_ms
  double goodput_rps = 0.0;   // in_deadline / wall duration
  double goodput_frac = 0.0;  // in_deadline / offered
  // Queue-delay-inclusive latency from intended arrival (ms), over
  // served (non-shed) requests.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  // Ingest plane.
  size_t ingest_offered = 0;
  size_t ingest_accepted = 0;
  size_t ingest_rejected = 0;  // ring-full backpressure drops
  size_t ingest_applied = 0;
  double ingest_p99_ms = 0.0;  // offer-to-apply, same CO-safe clock
  // Wall time from first scheduled arrival to last completion.
  double wall_s = 0.0;
};

class OpenLoopLoadGen {
 public:
  /// `registry` receives the load_* histograms (pass the same registry
  /// as the servers' for one combined dump). The percentile fields of
  /// LoadGenResult read the registry's whole load_e2e_latency_ms
  /// histogram, so use a fresh registry per Run when per-run numbers
  /// matter. With ingest_rate > 0 the BnServer must have
  /// ingest_queue_capacity > 0, and nothing else may act as the BN
  /// writer while Run executes (the drain thread is the writer).
  OpenLoopLoadGen(LoadGenConfig config, PredictionServer* prediction,
                  BnServer* bn, obs::MetricsRegistry* registry);

  /// Replays one open-loop schedule: prediction targets cycle
  /// `targets`; ingest traffic cycles `ingest_pool` (timestamps are
  /// re-stamped to the BN server's current clock). Starts the server's
  /// coalescing queue, runs the schedule, waits for every in-flight
  /// request to complete, and stops the queue. Blocking; call from one
  /// thread at a time.
  LoadGenResult Run(const std::vector<UserId>& targets,
                    const BehaviorLogList& ingest_pool);

 private:
  LoadGenConfig config_;
  PredictionServer* prediction_;
  BnServer* bn_;
  obs::MetricsRegistry* registry_;
};

}  // namespace turbo::server
