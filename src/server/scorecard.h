// Rule-based scorecard — the paper's "original risk management system"
// (block-listing + scorecards, Sections I and VI-E), which Turbo sits
// behind in production. Implemented as a weighted rule score over the raw
// profile/transaction features with a block threshold.
//
// The online A/B bench uses this as the baseline group's only defence and
// as the front filter of the test group.
#pragma once

#include <vector>

#include "datagen/scenario.h"
#include "la/matrix.h"

namespace turbo::server {

struct ScorecardConfig {
  /// Applications scoring above this are rejected by the legacy system.
  double block_threshold = 3.0;
};

/// Legacy rule score for one applicant's raw (unscaled) profile feature
/// row; higher = riskier. Rules mirror classic credit-scorecard cuts:
/// thin credit file, fresh phone number, low verification confidence,
/// expensive item relative to income, and similar.
double ScorecardScore(const float* profile_row);

class Scorecard {
 public:
  explicit Scorecard(ScorecardConfig config = {}) : config_(config) {}

  /// True if the legacy system blocks this application.
  bool Blocks(const la::Matrix& profile_features, UserId uid) const;

  double Score(const la::Matrix& profile_features, UserId uid) const;

 private:
  ScorecardConfig config_;
};

}  // namespace turbo::server
