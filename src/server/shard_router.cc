#include "server/shard_router.h"

#include "util/check.h"

namespace turbo::server {

ShardRouter::ShardRouter(bn::ShardTopology topology)
    : topology_(topology) {
  TURBO_CHECK_GT(topology_.shard_count, 0);
  topology_.shard_index = 0;
}

int ShardRouter::OwnerOfUser(UserId uid) const {
  return bn::OwnerOfUser(topology_, uid);
}

int ShardRouter::OwnerOfValue(BehaviorType type, ValueId value) const {
  return bn::OwnerOfValue(topology_, type, value);
}

ShardRoute ShardRouter::Route(const BehaviorLog& log) const {
  ShardRoute route;
  route.user_shard = OwnerOfUser(log.uid);
  route.value_shard = EdgeTypeIndex(log.type) >= 0
                          ? OwnerOfValue(log.type, log.value)
                          : route.user_shard;
  return route;
}

bn::ShardTopology ShardRouter::TopologyForShard(int index) const {
  TURBO_CHECK_GE(index, 0);
  TURBO_CHECK_LT(index, topology_.shard_count);
  bn::ShardTopology t = topology_;
  t.shard_index = index;
  return t;
}

}  // namespace turbo::server
