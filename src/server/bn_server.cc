#include "server/bn_server.h"

namespace turbo::server {

BnServer::BnServer(BnServerConfig config)
    : config_(std::move(config)),  // logs_ reads config_.log_cost next
      builder_(config_.bn, &edges_),
      last_job_end_(config_.bn.windows.size(), 0) {
  TURBO_CHECK_GT(config_.num_users, 0);
  TURBO_CHECK_GT(config_.snapshot_refresh, 0);
}

void BnServer::Ingest(const BehaviorLog& log) {
  TURBO_CHECK_LT(log.uid, static_cast<UserId>(config_.num_users));
  logs_.Append(log);
}

void BnServer::IngestBatch(const BehaviorLogList& logs) {
  for (const auto& l : logs) Ingest(l);
}

void BnServer::AdvanceTo(SimTime now) {
  TURBO_CHECK_GE(now, now_);
  now_ = now;
  // Run every completed epoch of every window since its last run; jobs
  // for shorter windows naturally fire more often.
  for (size_t w = 0; w < config_.bn.windows.size(); ++w) {
    const SimTime window = config_.bn.windows[w];
    SimTime next_end = last_job_end_[w] + window;
    while (next_end <= now_) {
      builder_.RunWindowJob(logs_, window, next_end);
      last_job_end_[w] = next_end;
      next_end += window;
      ++jobs_run_;
    }
  }
  // Daily TTL sweep.
  while (last_expiry_ + kDay <= now_) {
    last_expiry_ += kDay;
    edges_expired_ += builder_.ExpireOld(last_expiry_);
  }
  if (last_snapshot_ < 0 ||
      now_ - last_snapshot_ >= config_.snapshot_refresh) {
    RefreshSnapshot();
  }
}

void BnServer::RefreshSnapshot() {
  snapshot_ = bn::BehaviorNetwork::FromEdgeStore(edges_, config_.num_users)
                  .Normalized();
  last_snapshot_ = now_;
}

const bn::BehaviorNetwork& BnServer::snapshot() const {
  TURBO_CHECK_MSG(snapshot_.has_value(),
                  "BnServer::AdvanceTo must run before sampling");
  return *snapshot_;
}

bn::Subgraph BnServer::SampleSubgraph(UserId uid) {
  return SampleSubgraph(std::vector<UserId>{uid});
}

bn::Subgraph BnServer::SampleSubgraph(const std::vector<UserId>& uids) {
  bn::SubgraphSampler sampler(&snapshot(), config_.sampler,
                              /*seed=*/static_cast<uint64_t>(now_) + 1);
  return sampler.Sample(uids);
}

}  // namespace turbo::server
