#include "server/bn_server.h"

namespace turbo::server {

BnServer::BnServer(BnServerConfig config)
    : config_(std::move(config)),  // logs_ reads config_.log_cost next
      builder_(config_.bn, &edges_),
      last_job_end_(config_.bn.windows.size(), 0) {
  TURBO_CHECK_GT(config_.num_users, 0);
  TURBO_CHECK_GT(config_.snapshot_refresh, 0);
}

void BnServer::Ingest(const BehaviorLog& log) {
  TURBO_CHECK_LT(log.uid, static_cast<UserId>(config_.num_users));
  logs_.Append(log);
}

void BnServer::IngestBatch(const BehaviorLogList& logs) {
  for (const auto& l : logs) Ingest(l);
}

void BnServer::AdvanceTo(SimTime now) {
  TURBO_CHECK_GE(now, now_);
  now_ = now;
  // Run every completed epoch of every window since its last run; jobs
  // for shorter windows naturally fire more often.
  for (size_t w = 0; w < config_.bn.windows.size(); ++w) {
    const SimTime window = config_.bn.windows[w];
    SimTime next_end = last_job_end_[w] + window;
    while (next_end <= now_) {
      builder_.RunWindowJob(logs_, window, next_end);
      last_job_end_[w] = next_end;
      next_end += window;
      ++jobs_run_;
    }
  }
  // Daily TTL sweep.
  while (last_expiry_ + kDay <= now_) {
    last_expiry_ += kDay;
    edges_expired_ += builder_.ExpireOld(last_expiry_);
  }
  if (last_snapshot_ < 0 ||
      now_ - last_snapshot_ >= config_.snapshot_refresh) {
    RefreshSnapshot();
  }
}

void BnServer::RefreshSnapshot() {
  // Build off to the side, then publish with one atomic pointer swap.
  // Readers that loaded the previous snapshot keep serving from it; its
  // memory is reclaimed when the last of them drops the shared_ptr.
  bn::SnapshotOptions options;
  options.normalize = true;
  options.num_threads = config_.snapshot_build_threads;
  auto next = bn::BnSnapshot::Build(edges_, config_.num_users, options,
                                    ++next_version_);
  snapshot_.store(std::move(next), std::memory_order_release);
  last_snapshot_ = now_;
}

std::shared_ptr<const bn::BnSnapshot> BnServer::snapshot() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  TURBO_CHECK_MSG(snap != nullptr,
                  "BnServer::AdvanceTo must run before sampling");
  return snap;
}

bn::GraphView BnServer::view() const { return bn::GraphView(snapshot()); }

uint64_t BnServer::snapshot_version() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  return snap ? snap->version() : 0;
}

bn::Subgraph BnServer::SampleSubgraph(UserId uid) const {
  return SampleSubgraph(std::vector<UserId>{uid});
}

bn::Subgraph BnServer::SampleSubgraph(
    const std::vector<UserId>& uids) const {
  bn::GraphView v = view();
  const uint64_t seq =
      sample_seq_.fetch_add(1, std::memory_order_relaxed);
  // Seed mixes the snapshot version with a per-request counter so that
  // uniform sampling stays decorrelated across concurrent requests.
  const uint64_t seed = (v.version() << 20) ^ (seq + 1);
  bn::SubgraphSampler sampler(std::move(v), config_.sampler, seed);
  return sampler.Sample(uids);
}

}  // namespace turbo::server
