#include "server/bn_server.h"

#include <algorithm>
#include <filesystem>

#include "storage/checkpoint_io.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace turbo::server {

namespace {

constexpr char kCheckpointFile[] = "checkpoint.bin";
/// Version of the checkpoint *section contents* (the container format
/// has its own version in checkpoint_io).
constexpr uint32_t kStateVersion = 1;

std::string CheckpointPath(const std::string& dir) {
  return dir + "/" + kCheckpointFile;
}

}  // namespace

BnServer::BnServer(BnServerConfig config)
    : config_(std::move(config)),  // logs_ reads config_.log_cost next
      builder_(config_.bn, &edges_),
      last_job_end_(config_.bn.windows.size(), 0) {
  TURBO_CHECK_GT(config_.num_users, 0);
  TURBO_CHECK_GT(config_.snapshot_refresh, 0);
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  ingest_events_ = metrics_->GetCounter("bn_ingest_events_total");
  window_jobs_ = metrics_->GetCounter("bn_window_jobs_total");
  window_edge_updates_ =
      metrics_->GetCounter("bn_window_edge_updates_total");
  ttl_expired_edges_ = metrics_->GetCounter("bn_ttl_expired_edges_total");
  snapshot_builds_ = metrics_->GetCounter("bn_snapshot_builds_total");
  samples_ = metrics_->GetCounter("bn_samples_total");
  window_job_ms_ = metrics_->GetHistogram("bn_window_job_ms");
  snapshot_build_ms_ = metrics_->GetHistogram("bn_snapshot_build_ms");
  sample_ms_ = metrics_->GetHistogram("bn_sample_ms");
  sample_nodes_ = metrics_->GetHistogram(
      "bn_sample_subgraph_nodes", obs::Histogram::DefaultSizeBuckets());
  snapshot_version_g_ = metrics_->GetGauge("bn_snapshot_version");
  snapshot_edges_g_ = metrics_->GetGauge("bn_snapshot_edges");
  snapshot_bytes_g_ = metrics_->GetGauge("bn_snapshot_memory_bytes");
  snapshot_lag_s_ = metrics_->GetGauge("bn_snapshot_lag_s");
  ingest_lag_s_ = metrics_->GetGauge("bn_ingest_lag_s");
  sample_pinned_version_ =
      metrics_->GetGauge("bn_sample_pinned_snapshot_version");
  wal_records_ = metrics_->GetCounter("bn_wal_records_total");
  checkpoints_ = metrics_->GetCounter("bn_checkpoints_total");
  wal_replayed_records_ =
      metrics_->GetCounter("bn_wal_replayed_records_total");
  wal_bytes_g_ = metrics_->GetGauge("bn_wal_bytes");
  checkpoint_bytes_g_ = metrics_->GetGauge("bn_checkpoint_bytes");
  recovery_s_ = metrics_->GetGauge("bn_recovery_s");
  checkpoint_ms_ = metrics_->GetHistogram("bn_checkpoint_ms");
  if (config_.window_job_threads != 1) {
    job_pool_ =
        std::make_unique<util::ThreadPool>(config_.window_job_threads);
  }
  builder_.SetThreadPool(job_pool_.get());
  builder_.SetMetrics(metrics_);
}

void BnServer::EnsureWalOpen() {
  // A failed rotation leaves the writer closed with durable state in the
  // dir; the fresh-start check below would then misreport the cause.
  TURBO_CHECK_MSG(wal_error_.empty(),
                  "WAL is broken after a failed segment rotation ("
                      << wal_error_ << "); restart and Recover()");
  recovered_or_started_ = true;
  if (config_.wal_dir.empty() || wal_replaying_ || wal_writer_.is_open()) {
    return;
  }
  std::filesystem::create_directories(config_.wal_dir);
  // A fresh start must not write next to an earlier incarnation's state:
  // new records interleaved with old segments would be unreplayable.
  TURBO_CHECK_MSG(
      storage::ListWalSegments(config_.wal_dir).empty() &&
          !std::filesystem::exists(CheckpointPath(config_.wal_dir)),
      "wal_dir '" << config_.wal_dir
                  << "' contains existing WAL/checkpoint state; call "
                     "Recover() before the first Ingest/AdvanceTo");
  const Status s = OpenWalSegment(1);
  TURBO_CHECK_MSG(s.ok(), "cannot open WAL: " << s.ToString());
}

Status BnServer::OpenWalSegment(uint64_t seq) {
  TURBO_CHECK(!config_.wal_dir.empty());
  Status s = wal_writer_.Close();
  if (s.ok()) s = wal_writer_.Open(config_.wal_dir, seq, config_.wal);
  if (!s.ok()) {
    wal_error_ = s.ToString();
    return s;
  }
  wal_bytes_g_->Set(static_cast<double>(wal_writer_.bytes_written()));
  return Status::OK();
}

void BnServer::WalAppend(const storage::WalRecord& record) {
  if (!wal_writer_.is_open() || wal_replaying_) return;
  const Status s = wal_writer_.Append(record);
  TURBO_CHECK_MSG(s.ok(), "WAL append failed: " << s.ToString());
  wal_records_->Increment();
  wal_bytes_g_->Set(static_cast<double>(wal_writer_.bytes_written()));
}

void BnServer::Ingest(const BehaviorLog& log) {
  TURBO_CHECK_LT(log.uid, static_cast<UserId>(config_.num_users));
  TURBO_CHECK_MSG(log.time >= 0, "negative timestamp "
                                     << log.time << " for uid " << log.uid
                                     << "; logs must use t >= 0");
  EnsureWalOpen();
  // Log-ahead: the record is in the WAL (at least buffered; durable per
  // the fsync policy) before the in-memory apply, so replay can only see
  // a prefix of applied mutations, never a mutation the WAL missed.
  WalAppend(storage::WalRecord::Ingest(log));
  logs_.Append(log);
  ingest_events_->Increment();
}

void BnServer::IngestBatch(const BehaviorLogList& logs) {
  for (const auto& l : logs) Ingest(l);
}

void BnServer::AdvanceTo(SimTime now) {
  TURBO_CHECK_GE(now, now_.load(std::memory_order_relaxed));
  EnsureWalOpen();
  WalAppend(storage::WalRecord::Advance(now));
  if (wal_writer_.is_open() && !wal_replaying_) {
    // A clock advance is the consistency point replay resumes from, so
    // force the group-commit buffer out (fsync per policy) even when the
    // record thresholds have not tripped yet.
    const Status s = wal_writer_.Flush();
    TURBO_CHECK_MSG(s.ok(), "WAL flush failed: " << s.ToString());
  }
  now_.store(now, std::memory_order_relaxed);
  // Run every completed epoch of every window since its last run, in
  // global epoch-time order with ties to the smaller window: shorter
  // windows naturally fire more often, and a catch-up after a long gap
  // replays history hour-by-hour so base-window buckets are cached right
  // before the larger windows that merge them (keeping the bucket cache
  // bounded by the largest window rather than the gap length).
  const size_t num_windows = config_.bn.windows.size();
  for (;;) {
    int best = -1;
    SimTime best_end = 0;
    for (size_t w = 0; w < num_windows; ++w) {
      const SimTime next = last_job_end_[w] + config_.bn.windows[w];
      if (next > now) continue;
      if (best < 0 || next < best_end) {
        best = static_cast<int>(w);
        best_end = next;
      }
    }
    if (best < 0) break;
    Stopwatch job_sw;
    const size_t updates =
        builder_.RunWindowJob(logs_, config_.bn.windows[best], best_end);
    window_job_ms_->Observe(job_sw.ElapsedMillis());
    window_jobs_->Increment();
    window_edge_updates_->Increment(updates);
    last_job_end_[best] = best_end;
    ++jobs_run_;
    builder_.EvictCachedBuckets(
        *std::min_element(last_job_end_.begin(), last_job_end_.end()));
  }
  // How far the slowest window's job frontier trails the server clock.
  ingest_lag_s_->Set(static_cast<double>(
      now - *std::min_element(last_job_end_.begin(), last_job_end_.end())));
  // Daily TTL sweep.
  while (last_expiry_ + kDay <= now) {
    last_expiry_ += kDay;
    const size_t expired = builder_.ExpireOld(last_expiry_);
    edges_expired_ += expired;
    ttl_expired_edges_->Increment(expired);
  }
  if (last_snapshot_ < 0 ||
      now - last_snapshot_ >= config_.snapshot_refresh) {
    RefreshSnapshot();
  }
  // Published-version staleness relative to the server clock; the paper's
  // refresh jobs run asynchronously to the request path, so this is how
  // far behind the serving graph can be.
  snapshot_lag_s_->Set(static_cast<double>(now - last_snapshot_));
}

void BnServer::RefreshSnapshot() {
  // Build off to the side, then publish with one atomic pointer swap.
  // Readers that loaded the previous snapshot keep serving from it; its
  // memory is reclaimed when the last of them drops the shared_ptr.
  bn::SnapshotOptions options;
  options.normalize = true;
  options.num_threads = config_.snapshot_build_threads;
  Stopwatch build_sw;
  auto next = bn::BnSnapshot::Build(edges_, config_.num_users, options,
                                    ++next_version_);
  snapshot_build_ms_->Observe(build_sw.ElapsedMillis());
  snapshot_builds_->Increment();
  snapshot_version_g_->Set(static_cast<double>(next->version()));
  snapshot_edges_g_->Set(static_cast<double>(next->TotalEdges()));
  snapshot_bytes_g_->Set(static_cast<double>(next->MemoryBytes()));
  snapshot_.store(std::move(next), std::memory_order_release);
  last_snapshot_ = now_.load(std::memory_order_relaxed);
}

Status BnServer::Checkpoint(const std::string& dir) {
  const bool wal_on = !config_.wal_dir.empty();
  if (wal_on) {
    TURBO_CHECK_MSG(dir == config_.wal_dir,
                    "checkpoint dir '" << dir << "' must be wal_dir '"
                                       << config_.wal_dir
                                       << "' for WAL rotation");
    EnsureWalOpen();
  } else {
    recovered_or_started_ = true;
    std::filesystem::create_directories(dir);
  }
  Stopwatch sw;
  // The first segment whose records are NOT reflected in this
  // checkpoint; replay resumes here. 0 = checkpoint taken without a WAL.
  const uint64_t next_seq = wal_on ? wal_writer_.seq() + 1 : 0;

  storage::CheckpointWriter writer;
  {
    storage::BinaryWriter meta;
    meta.U32(kStateVersion);
    meta.I64(config_.num_users);
    meta.U64(config_.bn.windows.size());
    for (SimTime w : config_.bn.windows) meta.I64(w);
    meta.I64(config_.bn.edge_ttl);
    meta.U8(config_.bn.inverse_weighting ? 1 : 0);
    meta.I64(config_.bn.max_bucket_users);
    meta.U64(config_.bn.bucket_sample_seed);
    meta.I64(config_.snapshot_refresh);
    writer.AddSection("meta", meta);
  }
  {
    storage::BinaryWriter server;
    server.I64(now_.load(std::memory_order_relaxed));
    server.U64(next_seq);
    server.U64(last_job_end_.size());
    for (SimTime t : last_job_end_) server.I64(t);
    server.I64(last_expiry_);
    server.I64(last_snapshot_);
    server.U64(next_version_);
    server.U64(jobs_run_);
    server.U64(edges_expired_);
    writer.AddSection("server", server);
  }
  {
    storage::BinaryWriter edges;
    edges_.Serialize(&edges);
    writer.AddSection("edges", edges);
  }
  {
    storage::BinaryWriter logs;
    logs_.Serialize(&logs);
    writer.AddSection("logs", logs);
  }
  {
    storage::BinaryWriter buckets;
    builder_.SerializeCache(&buckets);
    writer.AddSection("buckets", buckets);
  }
  {
    storage::BinaryWriter snap;
    auto published = snapshot_.load(std::memory_order_acquire);
    snap.U8(published != nullptr ? 1 : 0);
    if (published != nullptr) published->Serialize(&snap);
    writer.AddSection("snapshot", snap);
  }
  TURBO_RETURN_IF_ERROR(writer.WriteFile(CheckpointPath(dir)));
  if (wal_on) {
    // The checkpoint is durable: rotate to a fresh segment and drop the
    // ones it covers.
    TURBO_RETURN_IF_ERROR(OpenWalSegment(next_seq));
    for (uint64_t seq : storage::ListWalSegments(dir)) {
      if (seq < next_seq) {
        std::filesystem::remove(storage::WalSegmentPath(dir, seq));
      }
    }
  }
  checkpoints_->Increment();
  checkpoint_bytes_g_->Set(static_cast<double>(writer.TotalBytes()));
  checkpoint_ms_->Observe(sw.ElapsedMillis());
  return Status::OK();
}

Status BnServer::Recover(const std::string& dir) {
  TURBO_CHECK_MSG(
      !recovered_or_started_ && logs_.size() == 0 && jobs_run_ == 0 &&
          now_.load(std::memory_order_relaxed) == 0,
      "Recover() must run on a freshly constructed server, before any "
      "Ingest/AdvanceTo");
  recovered_or_started_ = true;
  Stopwatch sw;
  // Segments < start_seq are covered by the checkpoint; 1 when starting
  // from WAL only. UINT64_MAX (checkpoint written with the WAL disabled)
  // replays nothing.
  uint64_t start_seq = 1;
  if (std::filesystem::exists(CheckpointPath(dir))) {
    auto reader_or = storage::CheckpointReader::Open(CheckpointPath(dir));
    if (!reader_or.ok()) return reader_or.status();
    const storage::CheckpointReader& reader = reader_or.value();
    for (const char* name :
         {"meta", "server", "edges", "logs", "buckets", "snapshot"}) {
      if (!reader.Has(name)) {
        return Status::InvalidArgument(
            StrFormat("checkpoint missing section '%s'", name));
      }
    }
    {
      storage::BinaryReader meta(reader.Find("meta"));
      const uint32_t state_version = meta.U32();
      if (state_version != kStateVersion) {
        return Status::InvalidArgument(StrFormat(
            "unsupported checkpoint state version %u", state_version));
      }
      // Everything that shapes the deterministic engine's output must
      // match the running config, or "recovered" state would silently
      // diverge from what this server will compute going forward.
      bool match = meta.I64() == config_.num_users;
      match = match && meta.U64() == config_.bn.windows.size();
      if (match) {
        for (SimTime w : config_.bn.windows) match = match && meta.I64() == w;
      }
      match = match && meta.I64() == config_.bn.edge_ttl;
      match = match && meta.U8() == (config_.bn.inverse_weighting ? 1 : 0);
      match = match && meta.I64() == config_.bn.max_bucket_users;
      match = match && meta.U64() == config_.bn.bucket_sample_seed;
      match = match && meta.I64() == config_.snapshot_refresh;
      if (!match || !meta.ok()) {
        return Status::FailedPrecondition(
            "checkpoint was written under a different BN config "
            "(users/windows/ttl/weighting/seed/refresh must match)");
      }
    }
    {
      storage::BinaryReader server(reader.Find("server"));
      const SimTime saved_now = server.I64();
      start_seq = server.U64();
      if (start_seq == 0) start_seq = UINT64_MAX;
      const uint64_t num_frontiers = server.U64();
      if (num_frontiers != last_job_end_.size()) {
        return Status::InvalidArgument("checkpoint frontier count mismatch");
      }
      for (SimTime& t : last_job_end_) t = server.I64();
      last_expiry_ = server.I64();
      last_snapshot_ = server.I64();
      next_version_ = server.U64();
      jobs_run_ = server.U64();
      edges_expired_ = server.U64();
      if (!server.ok() || server.remaining() != 0) {
        return Status::InvalidArgument("corrupt checkpoint server section");
      }
      now_.store(saved_now, std::memory_order_relaxed);
    }
    {
      storage::BinaryReader edges(reader.Find("edges"));
      TURBO_RETURN_IF_ERROR(edges_.Deserialize(
          &edges, static_cast<UserId>(config_.num_users)));
    }
    {
      storage::BinaryReader logs(reader.Find("logs"));
      TURBO_RETURN_IF_ERROR(logs_.Deserialize(&logs));
    }
    {
      storage::BinaryReader buckets(reader.Find("buckets"));
      TURBO_RETURN_IF_ERROR(builder_.DeserializeCache(&buckets));
    }
    {
      storage::BinaryReader snap(reader.Find("snapshot"));
      if (snap.U8() != 0) {
        auto snapshot_or = bn::BnSnapshot::Deserialize(&snap);
        if (!snapshot_or.ok()) return snapshot_or.status();
        auto restored = snapshot_or.take();
        // The meta section pins num_users, so a mismatched node count in
        // a CRC-valid snapshot can only be corruption.
        if (restored->num_nodes() != config_.num_users) {
          return Status::InvalidArgument(StrFormat(
              "checkpoint snapshot has %d nodes but the server is "
              "configured for %d users",
              restored->num_nodes(), config_.num_users));
        }
        snapshot_version_g_->Set(static_cast<double>(restored->version()));
        snapshot_edges_g_->Set(static_cast<double>(restored->TotalEdges()));
        snapshot_bytes_g_->Set(
            static_cast<double>(restored->MemoryBytes()));
        snapshot_.store(std::move(restored), std::memory_order_release);
      }
    }
  }

  // Replay the WAL tail through the normal ingest/advance paths — the
  // engine is deterministic, so re-execution reproduces the writer's
  // state bit for bit.
  uint64_t last_seq = 0;
  std::vector<uint64_t> seqs = storage::ListWalSegments(dir);
  std::erase_if(seqs, [&](uint64_t s) { return s < start_seq; });
  // The tail must begin exactly at start_seq — a later first segment
  // means records between the checkpoint and it are gone (an empty list
  // is fine: a crash between checkpoint publish and rotation leaves no
  // uncovered segment).
  if (!seqs.empty() && seqs[0] != start_seq) {
    return Status::Internal(StrFormat(
        "WAL replay must start at segment %llu but the first surviving "
        "segment is %llu",
        static_cast<unsigned long long>(start_seq),
        static_cast<unsigned long long>(seqs[0])));
  }
  wal_replaying_ = true;
  for (size_t i = 0; i < seqs.size(); ++i) {
    if (i > 0 && seqs[i] != seqs[i - 1] + 1) {
      wal_replaying_ = false;
      return Status::Internal(StrFormat(
          "missing WAL segment between %llu and %llu",
          static_cast<unsigned long long>(seqs[i - 1]),
          static_cast<unsigned long long>(seqs[i])));
    }
    auto segment_or =
        storage::ReadWalSegment(storage::WalSegmentPath(dir, seqs[i]));
    if (!segment_or.ok()) {
      wal_replaying_ = false;
      return segment_or.status();
    }
    const storage::WalSegment& segment = segment_or.value();
    if (segment.torn && i + 1 < seqs.size()) {
      wal_replaying_ = false;
      return Status::Internal(StrFormat(
          "WAL segment %llu has a torn tail but is not the last segment",
          static_cast<unsigned long long>(seqs[i])));
    }
    if (segment.torn && !config_.wal_dir.empty()) {
      // Drop the torn tail on disk as well: once a post-recovery segment
      // opens after this one it is no longer the last, and a torn
      // non-final segment would (rightly) fail the next Recover. The
      // torn bytes carry no replayable record, so truncation loses
      // nothing.
      const Status ts = storage::TruncateWalSegment(
          storage::WalSegmentPath(dir, seqs[i]), segment.valid_bytes);
      if (!ts.ok()) {
        wal_replaying_ = false;
        return ts;
      }
    }
    for (const storage::WalRecord& record : segment.records) {
      switch (record.kind) {
        case storage::WalRecord::Kind::kIngest:
          Ingest(record.log);
          break;
        case storage::WalRecord::Kind::kAdvance:
          AdvanceTo(record.advance_to);
          break;
      }
    }
    wal_replayed_records_->Increment(segment.records.size());
    last_seq = seqs[i];
  }
  wal_replaying_ = false;

  if (!config_.wal_dir.empty()) {
    TURBO_CHECK_MSG(config_.wal_dir == dir,
                    "Recover dir must be wal_dir when the WAL is enabled");
    // Never append to a (possibly torn) old segment: start a fresh one.
    uint64_t next = last_seq + 1;
    if (start_seq != UINT64_MAX && start_seq != 1) {
      next = std::max(next, start_seq);
    }
    TURBO_RETURN_IF_ERROR(OpenWalSegment(next));
  }
  recovery_s_->Set(sw.ElapsedSeconds());
  return Status::OK();
}

std::shared_ptr<const bn::BnSnapshot> BnServer::snapshot() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  TURBO_CHECK_MSG(snap != nullptr,
                  "BnServer::AdvanceTo must run before sampling");
  return snap;
}

bn::GraphView BnServer::view() const { return bn::GraphView(snapshot()); }

uint64_t BnServer::snapshot_version() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  return snap ? snap->version() : 0;
}

bn::Subgraph BnServer::SampleSubgraph(UserId uid) const {
  return SampleSubgraph(std::vector<UserId>{uid});
}

bn::Subgraph BnServer::SampleSubgraph(
    const std::vector<UserId>& uids) const {
  Stopwatch sample_sw;
  bn::GraphView v = view();
  const uint64_t seq =
      sample_seq_.fetch_add(1, std::memory_order_relaxed);
  // Seed mixes the snapshot version with a per-request counter through a
  // full-avalanche finalizer so uniform sampling stays decorrelated across
  // concurrent requests. (A plain shift-xor combine collides whenever
  // version bits land on sequence bits — see tests/util/rng_test.cc.)
  const uint64_t seed = MixSeeds(v.version(), seq);
  sample_pinned_version_->Set(static_cast<double>(v.version()));
  bn::SubgraphSampler sampler(std::move(v), config_.sampler, seed);
  bn::Subgraph sg = sampler.Sample(uids);
  sample_ms_->Observe(sample_sw.ElapsedMillis());
  sample_nodes_->Observe(static_cast<double>(sg.nodes.size()));
  samples_->Increment();
  return sg;
}

}  // namespace turbo::server
