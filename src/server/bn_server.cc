#include "server/bn_server.h"

#include <algorithm>

#include "util/rng.h"
#include "util/time_util.h"

namespace turbo::server {

BnServer::BnServer(BnServerConfig config)
    : config_(std::move(config)),  // logs_ reads config_.log_cost next
      builder_(config_.bn, &edges_),
      last_job_end_(config_.bn.windows.size(), 0) {
  TURBO_CHECK_GT(config_.num_users, 0);
  TURBO_CHECK_GT(config_.snapshot_refresh, 0);
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  ingest_events_ = metrics_->GetCounter("bn_ingest_events_total");
  window_jobs_ = metrics_->GetCounter("bn_window_jobs_total");
  window_edge_updates_ =
      metrics_->GetCounter("bn_window_edge_updates_total");
  ttl_expired_edges_ = metrics_->GetCounter("bn_ttl_expired_edges_total");
  snapshot_builds_ = metrics_->GetCounter("bn_snapshot_builds_total");
  samples_ = metrics_->GetCounter("bn_samples_total");
  window_job_ms_ = metrics_->GetHistogram("bn_window_job_ms");
  snapshot_build_ms_ = metrics_->GetHistogram("bn_snapshot_build_ms");
  sample_ms_ = metrics_->GetHistogram("bn_sample_ms");
  sample_nodes_ = metrics_->GetHistogram(
      "bn_sample_subgraph_nodes", obs::Histogram::DefaultSizeBuckets());
  snapshot_version_g_ = metrics_->GetGauge("bn_snapshot_version");
  snapshot_edges_g_ = metrics_->GetGauge("bn_snapshot_edges");
  snapshot_bytes_g_ = metrics_->GetGauge("bn_snapshot_memory_bytes");
  snapshot_lag_s_ = metrics_->GetGauge("bn_snapshot_lag_s");
  ingest_lag_s_ = metrics_->GetGauge("bn_ingest_lag_s");
  sample_pinned_version_ =
      metrics_->GetGauge("bn_sample_pinned_snapshot_version");
  if (config_.window_job_threads != 1) {
    job_pool_ =
        std::make_unique<util::ThreadPool>(config_.window_job_threads);
  }
  builder_.SetThreadPool(job_pool_.get());
  builder_.SetMetrics(metrics_);
}

void BnServer::Ingest(const BehaviorLog& log) {
  TURBO_CHECK_LT(log.uid, static_cast<UserId>(config_.num_users));
  TURBO_CHECK_MSG(log.time >= 0, "negative timestamp "
                                     << log.time << " for uid " << log.uid
                                     << "; logs must use t >= 0");
  logs_.Append(log);
  ingest_events_->Increment();
}

void BnServer::IngestBatch(const BehaviorLogList& logs) {
  for (const auto& l : logs) Ingest(l);
}

void BnServer::AdvanceTo(SimTime now) {
  TURBO_CHECK_GE(now, now_.load(std::memory_order_relaxed));
  now_.store(now, std::memory_order_relaxed);
  // Run every completed epoch of every window since its last run, in
  // global epoch-time order with ties to the smaller window: shorter
  // windows naturally fire more often, and a catch-up after a long gap
  // replays history hour-by-hour so base-window buckets are cached right
  // before the larger windows that merge them (keeping the bucket cache
  // bounded by the largest window rather than the gap length).
  const size_t num_windows = config_.bn.windows.size();
  for (;;) {
    int best = -1;
    SimTime best_end = 0;
    for (size_t w = 0; w < num_windows; ++w) {
      const SimTime next = last_job_end_[w] + config_.bn.windows[w];
      if (next > now) continue;
      if (best < 0 || next < best_end) {
        best = static_cast<int>(w);
        best_end = next;
      }
    }
    if (best < 0) break;
    Stopwatch job_sw;
    const size_t updates =
        builder_.RunWindowJob(logs_, config_.bn.windows[best], best_end);
    window_job_ms_->Observe(job_sw.ElapsedMillis());
    window_jobs_->Increment();
    window_edge_updates_->Increment(updates);
    last_job_end_[best] = best_end;
    ++jobs_run_;
    builder_.EvictCachedBuckets(
        *std::min_element(last_job_end_.begin(), last_job_end_.end()));
  }
  // How far the slowest window's job frontier trails the server clock.
  ingest_lag_s_->Set(static_cast<double>(
      now - *std::min_element(last_job_end_.begin(), last_job_end_.end())));
  // Daily TTL sweep.
  while (last_expiry_ + kDay <= now) {
    last_expiry_ += kDay;
    const size_t expired = builder_.ExpireOld(last_expiry_);
    edges_expired_ += expired;
    ttl_expired_edges_->Increment(expired);
  }
  if (last_snapshot_ < 0 ||
      now - last_snapshot_ >= config_.snapshot_refresh) {
    RefreshSnapshot();
  }
  // Published-version staleness relative to the server clock; the paper's
  // refresh jobs run asynchronously to the request path, so this is how
  // far behind the serving graph can be.
  snapshot_lag_s_->Set(static_cast<double>(now - last_snapshot_));
}

void BnServer::RefreshSnapshot() {
  // Build off to the side, then publish with one atomic pointer swap.
  // Readers that loaded the previous snapshot keep serving from it; its
  // memory is reclaimed when the last of them drops the shared_ptr.
  bn::SnapshotOptions options;
  options.normalize = true;
  options.num_threads = config_.snapshot_build_threads;
  Stopwatch build_sw;
  auto next = bn::BnSnapshot::Build(edges_, config_.num_users, options,
                                    ++next_version_);
  snapshot_build_ms_->Observe(build_sw.ElapsedMillis());
  snapshot_builds_->Increment();
  snapshot_version_g_->Set(static_cast<double>(next->version()));
  snapshot_edges_g_->Set(static_cast<double>(next->TotalEdges()));
  snapshot_bytes_g_->Set(static_cast<double>(next->MemoryBytes()));
  snapshot_.store(std::move(next), std::memory_order_release);
  last_snapshot_ = now_.load(std::memory_order_relaxed);
}

std::shared_ptr<const bn::BnSnapshot> BnServer::snapshot() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  TURBO_CHECK_MSG(snap != nullptr,
                  "BnServer::AdvanceTo must run before sampling");
  return snap;
}

bn::GraphView BnServer::view() const { return bn::GraphView(snapshot()); }

uint64_t BnServer::snapshot_version() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  return snap ? snap->version() : 0;
}

bn::Subgraph BnServer::SampleSubgraph(UserId uid) const {
  return SampleSubgraph(std::vector<UserId>{uid});
}

bn::Subgraph BnServer::SampleSubgraph(
    const std::vector<UserId>& uids) const {
  Stopwatch sample_sw;
  bn::GraphView v = view();
  const uint64_t seq =
      sample_seq_.fetch_add(1, std::memory_order_relaxed);
  // Seed mixes the snapshot version with a per-request counter through a
  // full-avalanche finalizer so uniform sampling stays decorrelated across
  // concurrent requests. (A plain shift-xor combine collides whenever
  // version bits land on sequence bits — see tests/util/rng_test.cc.)
  const uint64_t seed = MixSeeds(v.version(), seq);
  sample_pinned_version_->Set(static_cast<double>(v.version()));
  bn::SubgraphSampler sampler(std::move(v), config_.sampler, seed);
  bn::Subgraph sg = sampler.Sample(uids);
  sample_ms_->Observe(sample_sw.ElapsedMillis());
  sample_nodes_->Observe(static_cast<double>(sg.nodes.size()));
  samples_->Increment();
  return sg;
}

}  // namespace turbo::server
