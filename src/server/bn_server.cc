#include "server/bn_server.h"

#include <algorithm>
#include <filesystem>

#include "storage/checkpoint_io.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace turbo::server {

namespace {

constexpr char kCheckpointFile[] = "checkpoint.bin";
/// Version of the checkpoint *section contents* (the container format
/// has its own version in checkpoint_io). Version 2 added the "churn"
/// section and the row-group snapshot payload; version 3 added the
/// shard topology (count, index, partition seeds) to the meta
/// fingerprint so state taken under one cluster layout cannot be
/// recovered — or standby-replayed — under another.
constexpr uint32_t kStateVersion = 3;

std::string CheckpointPath(const std::string& dir) {
  return dir + "/" + kCheckpointFile;
}

}  // namespace

BnServer::BnServer(BnServerConfig config)
    : config_(std::move(config)),  // logs_ reads config_.log_cost next
      builder_(config_.bn, &edges_),
      last_job_end_(config_.bn.windows.size(), 0) {
  TURBO_CHECK_GT(config_.num_users, 0);
  TURBO_CHECK_GT(config_.snapshot_refresh, 0);
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  ingest_events_ = metrics_->GetCounter("bn_ingest_events_total");
  window_jobs_ = metrics_->GetCounter("bn_window_jobs_total");
  window_edge_updates_ =
      metrics_->GetCounter("bn_window_edge_updates_total");
  ttl_expired_edges_ = metrics_->GetCounter("bn_ttl_expired_edges_total");
  snapshot_builds_ = metrics_->GetCounter("bn_snapshot_builds_total");
  samples_ = metrics_->GetCounter("bn_samples_total");
  window_job_ms_ = metrics_->GetHistogram("bn_window_job_ms");
  snapshot_build_ms_ = metrics_->GetHistogram("bn_snapshot_build_ms");
  sample_ms_ = metrics_->GetHistogram("bn_sample_ms");
  sample_nodes_ = metrics_->GetHistogram(
      "bn_sample_subgraph_nodes", obs::Histogram::DefaultSizeBuckets());
  snapshot_version_g_ = metrics_->GetGauge("bn_snapshot_version");
  snapshot_edges_g_ = metrics_->GetGauge("bn_snapshot_edges");
  snapshot_bytes_g_ = metrics_->GetGauge("bn_snapshot_memory_bytes");
  snapshot_lag_s_ = metrics_->GetGauge("bn_snapshot_lag_s");
  ingest_lag_s_ = metrics_->GetGauge("bn_ingest_lag_s");
  sample_pinned_version_ =
      metrics_->GetGauge("bn_sample_pinned_snapshot_version");
  wal_records_ = metrics_->GetCounter("bn_wal_records_total");
  checkpoints_ = metrics_->GetCounter("bn_checkpoints_total");
  wal_replayed_records_ =
      metrics_->GetCounter("bn_wal_replayed_records_total");
  wal_bytes_g_ = metrics_->GetGauge("bn_wal_bytes");
  checkpoint_bytes_g_ = metrics_->GetGauge("bn_checkpoint_bytes");
  recovery_s_ = metrics_->GetGauge("bn_recovery_s");
  checkpoint_ms_ = metrics_->GetHistogram("bn_checkpoint_ms");
  snapshot_incrementals_ =
      metrics_->GetCounter("bn_snapshot_incremental_total");
  snapshot_full_rebuilds_ =
      metrics_->GetCounter("bn_snapshot_full_rebuilds_total");
  snapshot_incremental_ms_ =
      metrics_->GetHistogram("bn_snapshot_incremental_ms");
  snapshot_touched_nodes_g_ = metrics_->GetGauge("bn_snapshot_touched_nodes");
  checkpoints_delta_ = metrics_->GetCounter("bn_checkpoints_delta_total");
  checkpoint_delta_bytes_g_ =
      metrics_->GetGauge("bn_checkpoint_delta_bytes");
  checkpoint_chain_len_g_ = metrics_->GetGauge("bn_checkpoint_chain_len");
  ingest_rejected_ = metrics_->GetCounter("bn_ingest_rejected_total");
  ingest_queued_ = metrics_->GetCounter("bn_ingest_queued_total");
  ingest_queue_depth_g_ = metrics_->GetGauge("bn_ingest_queue_depth");
  if (config_.ingest_queue_capacity > 0) {
    ingest_ring_ = std::make_unique<util::MpscRing<BehaviorLog>>(
        config_.ingest_queue_capacity);
  }
  if (config_.window_job_threads != 1) {
    job_pool_ =
        std::make_unique<util::ThreadPool>(config_.window_job_threads);
  }
  builder_.SetThreadPool(job_pool_.get());
  builder_.SetMetrics(metrics_);
}

void BnServer::EnsureWalOpen() {
  // A failed rotation leaves the writer closed with durable state in the
  // dir; the fresh-start check below would then misreport the cause.
  TURBO_CHECK_MSG(wal_error_.empty(),
                  "WAL is broken after a failed segment rotation ("
                      << wal_error_ << "); restart and Recover()");
  recovered_or_started_ = true;
  if (config_.wal_dir.empty() || wal_replaying_ || wal_writer_.is_open()) {
    return;
  }
  std::filesystem::create_directories(config_.wal_dir);
  // A fresh start must not write next to an earlier incarnation's state:
  // new records interleaved with old segments would be unreplayable.
  TURBO_CHECK_MSG(
      storage::ListWalSegments(config_.wal_dir).empty() &&
          storage::ListCheckpointDeltas(config_.wal_dir).empty() &&
          !std::filesystem::exists(CheckpointPath(config_.wal_dir)),
      "wal_dir '" << config_.wal_dir
                  << "' contains existing WAL/checkpoint state; call "
                     "Recover() before the first Ingest/AdvanceTo");
  const Status s = OpenWalSegment(1);
  TURBO_CHECK_MSG(s.ok(), "cannot open WAL: " << s.ToString());
}

Status BnServer::OpenWalSegment(uint64_t seq) {
  TURBO_CHECK(!config_.wal_dir.empty());
  Status s = wal_writer_.Close();
  if (s.ok()) s = wal_writer_.Open(config_.wal_dir, seq, config_.wal);
  if (!s.ok()) {
    wal_error_ = s.ToString();
    return s;
  }
  wal_bytes_g_->Set(static_cast<double>(wal_writer_.bytes_written()));
  return Status::OK();
}

void BnServer::WalAppend(const storage::WalRecord& record) {
  if (!wal_writer_.is_open() || wal_replaying_) return;
  const Status s = wal_writer_.Append(record);
  TURBO_CHECK_MSG(s.ok(), "WAL append failed: " << s.ToString());
  wal_records_->Increment();
  wal_bytes_g_->Set(static_cast<double>(wal_writer_.bytes_written()));
}

void BnServer::Ingest(const BehaviorLog& log) {
  TURBO_CHECK_LT(log.uid, static_cast<UserId>(config_.num_users));
  TURBO_CHECK_MSG(log.time >= 0, "negative timestamp "
                                     << log.time << " for uid " << log.uid
                                     << "; logs must use t >= 0");
  EnsureWalOpen();
  // Log-ahead: the record is in the WAL (at least buffered; durable per
  // the fsync policy) before the in-memory apply, so replay can only see
  // a prefix of applied mutations, never a mutation the WAL missed.
  WalAppend(storage::WalRecord::Ingest(log));
  logs_.Append(log);
  // Once a delta-eligible base checkpoint exists, the next delta's
  // logs_delta section is exactly the logs appended since the last
  // checkpoint. WAL replay runs through here too, which is correct:
  // every replayed ingest postdates the recovered checkpoint chain.
  if (have_ckpt_base_) pending_log_tail_.push_back(log);
  ingest_events_->Increment();
}

void BnServer::IngestBatch(const BehaviorLogList& logs) {
  for (const auto& l : logs) Ingest(l);
}

bool BnServer::OfferIngest(const BehaviorLog& log) {
  TURBO_CHECK_MSG(ingest_ring_ != nullptr,
                  "OfferIngest requires ingest_queue_capacity > 0");
  if (!ingest_ring_->TryPush(log)) {
    ingest_rejected_->Increment();
    return false;
  }
  ingest_queued_->Increment();
  ingest_queue_depth_g_->Set(
      static_cast<double>(ingest_ring_->size_approx()));
  return true;
}

size_t BnServer::DrainIngest(size_t max_events) {
  TURBO_CHECK_MSG(ingest_ring_ != nullptr,
                  "DrainIngest requires ingest_queue_capacity > 0");
  size_t applied = 0;
  BehaviorLog log;
  while (applied < max_events && ingest_ring_->TryPop(&log)) {
    Ingest(log);
    ++applied;
  }
  if (applied > 0) {
    ingest_queue_depth_g_->Set(
        static_cast<double>(ingest_ring_->size_approx()));
  }
  return applied;
}

size_t BnServer::ingest_queue_depth() const {
  return ingest_ring_ != nullptr ? ingest_ring_->size_approx() : 0;
}

void BnServer::AdvanceTo(SimTime now) {
  TURBO_CHECK_GE(now, now_.load(std::memory_order_relaxed));
  EnsureWalOpen();
  WalAppend(storage::WalRecord::Advance(now));
  if (wal_writer_.is_open() && !wal_replaying_) {
    // A clock advance is the consistency point replay resumes from, so
    // force the group-commit buffer out (fsync per policy) even when the
    // record thresholds have not tripped yet.
    const Status s = wal_writer_.Flush();
    TURBO_CHECK_MSG(s.ok(), "WAL flush failed: " << s.ToString());
  }
  now_.store(now, std::memory_order_relaxed);
  // Run every completed epoch of every window since its last run, in
  // global epoch-time order with ties to the smaller window: shorter
  // windows naturally fire more often, and a catch-up after a long gap
  // replays history hour-by-hour so base-window buckets are cached right
  // before the larger windows that merge them (keeping the bucket cache
  // bounded by the largest window rather than the gap length).
  const size_t num_windows = config_.bn.windows.size();
  for (;;) {
    int best = -1;
    SimTime best_end = 0;
    for (size_t w = 0; w < num_windows; ++w) {
      const SimTime next = last_job_end_[w] + config_.bn.windows[w];
      if (next > now) continue;
      if (best < 0 || next < best_end) {
        best = static_cast<int>(w);
        best_end = next;
      }
    }
    if (best < 0) break;
    Stopwatch job_sw;
    const size_t updates =
        builder_.RunWindowJob(logs_, config_.bn.windows[best], best_end);
    window_job_ms_->Observe(job_sw.ElapsedMillis());
    window_jobs_->Increment();
    window_edge_updates_->Increment(updates);
    last_job_end_[best] = best_end;
    ++jobs_run_;
    builder_.EvictCachedBuckets(
        *std::min_element(last_job_end_.begin(), last_job_end_.end()));
  }
  // How far the slowest window's job frontier trails the server clock.
  ingest_lag_s_->Set(static_cast<double>(
      now - *std::min_element(last_job_end_.begin(), last_job_end_.end())));
  // Daily TTL sweep.
  while (last_expiry_ + kDay <= now) {
    last_expiry_ += kDay;
    const size_t expired = builder_.ExpireOld(last_expiry_);
    edges_expired_ += expired;
    ttl_expired_edges_->Increment(expired);
  }
  // Fold the jobs' and sweep's churn into the publish/checkpoint scopes
  // before the refresh below consumes the publish-scoped set.
  AccumulateChurn();
  if (last_snapshot_ < 0 ||
      now - last_snapshot_ >= config_.snapshot_refresh) {
    RefreshSnapshot();
  }
  // Published-version staleness relative to the server clock; the paper's
  // refresh jobs run asynchronously to the request path, so this is how
  // far behind the serving graph can be.
  snapshot_lag_s_->Set(static_cast<double>(now - last_snapshot_));
}

void BnServer::AccumulateChurn() {
  storage::EdgeChurn churn = builder_.TakeChurn();
  if (churn.Empty()) return;
  snapshot_churn_.MergeFrom(churn);
  if (have_ckpt_base_) checkpoint_churn_.MergeFrom(churn);
}

void BnServer::RefreshSnapshot() {
  // Build off to the side, then publish with one atomic pointer swap.
  // Readers that loaded the previous snapshot keep serving from it; its
  // memory is reclaimed when the last of them drops the shared_ptr.
  bn::SnapshotOptions options;
  options.normalize = true;
  options.num_threads = config_.snapshot_build_threads;
  auto prev = snapshot_.load(std::memory_order_acquire);
  // Patch the previous snapshot when the churn is small; both paths
  // produce bit-identical snapshots, so this is purely a latency choice.
  const size_t total_rows =
      static_cast<size_t>(config_.num_users) * kNumEdgeTypes;
  const bool incremental =
      config_.incremental_snapshots && prev != nullptr &&
      static_cast<double>(snapshot_churn_.TotalTouched()) <=
          config_.snapshot_full_rebuild_fraction *
              static_cast<double>(total_rows);
  Stopwatch build_sw;
  std::shared_ptr<const bn::BnSnapshot> next;
  if (incremental) {
    bn::BnSnapshot::ApplyStats stats;
    next = bn::BnSnapshot::ApplyDeltas(prev, edges_, snapshot_churn_,
                                       options, ++next_version_, &stats);
    snapshot_incremental_ms_->Observe(build_sw.ElapsedMillis());
    snapshot_touched_nodes_g_->Set(
        static_cast<double>(stats.touched_rows));
    snapshot_incrementals_->Increment();
  } else {
    next = bn::BnSnapshot::Build(edges_, config_.num_users, options,
                                 ++next_version_);
    snapshot_build_ms_->Observe(build_sw.ElapsedMillis());
    snapshot_full_rebuilds_->Increment();
  }
  snapshot_builds_->Increment();
  snapshot_churn_.Clear();
  snapshot_version_g_->Set(static_cast<double>(next->version()));
  snapshot_edges_g_->Set(static_cast<double>(next->TotalEdges()));
  snapshot_bytes_g_->Set(static_cast<double>(next->MemoryBytes()));
  snapshot_.store(std::move(next), std::memory_order_release);
  last_snapshot_ = now_.load(std::memory_order_relaxed);
}

void BnServer::BuildMetaSection(storage::BinaryWriter* meta) const {
  meta->U32(kStateVersion);
  meta->I64(config_.num_users);
  meta->U64(config_.bn.windows.size());
  for (SimTime w : config_.bn.windows) meta->I64(w);
  meta->I64(config_.bn.edge_ttl);
  meta->U8(config_.bn.inverse_weighting ? 1 : 0);
  meta->I64(config_.bn.max_bucket_users);
  meta->U64(config_.bn.bucket_sample_seed);
  meta->I64(config_.snapshot_refresh);
  const bn::ShardTopology& topo = config_.bn.topology;
  meta->U32(static_cast<uint32_t>(topo.shard_count));
  meta->U32(static_cast<uint32_t>(topo.shard_index));
  meta->U64(topo.user_seed);
  meta->U64(topo.value_seed);
}

void BnServer::BuildServerSection(storage::BinaryWriter* server,
                                  uint64_t next_seq) const {
  server->I64(now_.load(std::memory_order_relaxed));
  server->U64(next_seq);
  server->U64(last_job_end_.size());
  for (SimTime t : last_job_end_) server->I64(t);
  server->I64(last_expiry_);
  server->I64(last_snapshot_);
  server->U64(next_version_);
  server->U64(jobs_run_);
  server->U64(edges_expired_);
}

void BnServer::ResetChainTrackers(uint64_t covered_seq) {
  last_ckpt_seq_ = covered_seq;
  last_ckpt_snapshot_ = snapshot_.load(std::memory_order_acquire);
  last_ckpt_cache_max_epoch_ = builder_.MaxCachedEpoch();
  checkpoint_churn_.Clear();
  pending_log_tail_.clear();
}

Status BnServer::Checkpoint(const std::string& dir) {
  const bool wal_on = !config_.wal_dir.empty();
  if (wal_on) {
    TURBO_CHECK_MSG(dir == config_.wal_dir,
                    "checkpoint dir '" << dir << "' must be wal_dir '"
                                       << config_.wal_dir
                                       << "' for WAL rotation");
    EnsureWalOpen();
  } else {
    recovered_or_started_ = true;
    std::filesystem::create_directories(dir);
  }
  Stopwatch sw;
  // The first segment whose records are NOT reflected in this
  // checkpoint; replay resumes here. 0 = checkpoint taken without a WAL.
  // Doubles as the file's covered_seq (rotation makes it strictly
  // increase checkpoint over checkpoint, so delta file names and chain
  // links never collide).
  const uint64_t next_seq = wal_on ? wal_writer_.seq() + 1 : 0;
  auto published = snapshot_.load(std::memory_order_acquire);

  // Try a delta first when a base exists and the chain is not exhausted:
  // it is O(churn) to assemble, and the size heuristic below falls back
  // to a full checkpoint when churn grew too close to the full state.
  bool wrote_delta = false;
  if (wal_on && config_.delta_checkpoints && have_ckpt_base_ &&
      delta_chain_len_ < config_.max_delta_chain) {
    storage::CheckpointWriter writer;
    writer.SetChain(storage::CheckpointKind::kDelta, next_seq,
                    last_ckpt_seq_);
    {
      storage::BinaryWriter meta;
      BuildMetaSection(&meta);
      writer.AddSection("meta", meta);
    }
    {
      storage::BinaryWriter server;
      BuildServerSection(&server, next_seq);
      writer.AddSection("server", server);
    }
    {
      // Current rows of every node churned since the last checkpoint;
      // apply = clear-then-insert over the parent state.
      storage::BinaryWriter edges;
      edges_.SerializeTouched(checkpoint_churn_, &edges);
      writer.AddSection("edges_delta", edges);
    }
    {
      // Raw logs appended since the last checkpoint, replayed through
      // LogStore::Append on recovery (appends are order-deterministic).
      storage::BinaryWriter logs;
      logs.U64(pending_log_tail_.size());
      for (const BehaviorLog& log : pending_log_tail_) {
        logs.U32(log.uid);
        logs.U8(static_cast<uint8_t>(log.type));
        logs.U64(log.value);
        logs.I64(log.time);
      }
      writer.AddSection("logs_delta", logs);
    }
    {
      // Cache epochs created since the last checkpoint. Epochs evicted
      // since then need no record: recovery re-evicts with the recovered
      // job frontiers, which derive the same bound the writer used.
      storage::BinaryWriter buckets;
      builder_.SerializeCacheSince(last_ckpt_cache_max_epoch_, &buckets);
      writer.AddSection("buckets_delta", buckets);
    }
    {
      // Published-snapshot delta: unchanged (mode 0), first-ever
      // snapshot (mode 1, full payload), or a row-group diff against
      // the snapshot the last checkpoint persisted (mode 2).
      storage::BinaryWriter snap;
      if (published == last_ckpt_snapshot_) {
        snap.U8(0);
      } else if (last_ckpt_snapshot_ == nullptr) {
        snap.U8(1);
        published->Serialize(&snap);
      } else {
        snap.U8(2);
        published->SerializeDiff(*last_ckpt_snapshot_, &snap);
      }
      writer.AddSection("snapshot_delta", snap);
    }
    {
      storage::BinaryWriter churn;
      snapshot_churn_.Serialize(&churn);
      writer.AddSection("churn", churn);
    }
    const size_t delta_bytes = writer.TotalBytes();
    if (static_cast<double>(delta_bytes) <=
        config_.delta_checkpoint_max_fraction *
            static_cast<double>(last_full_ckpt_bytes_)) {
      TURBO_RETURN_IF_ERROR(
          writer.WriteFile(storage::CheckpointDeltaPath(dir, next_seq)));
      ++delta_chain_len_;
      checkpoints_delta_->Increment();
      checkpoint_delta_bytes_g_->Set(static_cast<double>(delta_bytes));
      checkpoint_bytes_g_->Set(static_cast<double>(delta_bytes));
      wrote_delta = true;
    }
  }

  if (!wrote_delta) {
    storage::CheckpointWriter writer;
    writer.SetChain(storage::CheckpointKind::kFull, next_seq, 0);
    {
      storage::BinaryWriter meta;
      BuildMetaSection(&meta);
      writer.AddSection("meta", meta);
    }
    {
      storage::BinaryWriter server;
      BuildServerSection(&server, next_seq);
      writer.AddSection("server", server);
    }
    {
      storage::BinaryWriter edges;
      edges_.Serialize(&edges);
      writer.AddSection("edges", edges);
    }
    {
      storage::BinaryWriter logs;
      logs_.Serialize(&logs);
      writer.AddSection("logs", logs);
    }
    {
      storage::BinaryWriter buckets;
      builder_.SerializeCache(&buckets);
      writer.AddSection("buckets", buckets);
    }
    {
      storage::BinaryWriter snap;
      snap.U8(published != nullptr ? 1 : 0);
      if (published != nullptr) published->Serialize(&snap);
      writer.AddSection("snapshot", snap);
    }
    {
      storage::BinaryWriter churn;
      snapshot_churn_.Serialize(&churn);
      writer.AddSection("churn", churn);
    }
    TURBO_RETURN_IF_ERROR(writer.WriteFile(CheckpointPath(dir)));
    // The new base supersedes every delta (including stale ones left by
    // a crash between an earlier full checkpoint and this cleanup).
    for (uint64_t seq : storage::ListCheckpointDeltas(dir)) {
      std::filesystem::remove(storage::CheckpointDeltaPath(dir, seq));
    }
    delta_chain_len_ = 0;
    last_full_ckpt_bytes_ = writer.TotalBytes();
    have_ckpt_base_ = wal_on && config_.delta_checkpoints;
    checkpoint_bytes_g_->Set(static_cast<double>(writer.TotalBytes()));
  }
  ResetChainTrackers(next_seq);
  checkpoint_chain_len_g_->Set(static_cast<double>(delta_chain_len_));

  if (wal_on) {
    // The checkpoint is durable: rotate to a fresh segment and drop the
    // ones it covers.
    TURBO_RETURN_IF_ERROR(OpenWalSegment(next_seq));
    for (uint64_t seq : storage::ListWalSegments(dir)) {
      if (seq < next_seq) {
        std::filesystem::remove(storage::WalSegmentPath(dir, seq));
      }
    }
  }
  checkpoints_->Increment();
  checkpoint_ms_->Observe(sw.ElapsedMillis());
  return Status::OK();
}

Status BnServer::CheckMeta(const storage::CheckpointReader& reader) const {
  storage::BinaryReader meta(reader.Find("meta"));
  const uint32_t state_version = meta.U32();
  if (state_version != kStateVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported checkpoint state version %u", state_version));
  }
  // Everything that shapes the deterministic engine's output must
  // match the running config, or "recovered" state would silently
  // diverge from what this server will compute going forward.
  bool match = meta.I64() == config_.num_users;
  match = match && meta.U64() == config_.bn.windows.size();
  if (match) {
    for (SimTime w : config_.bn.windows) match = match && meta.I64() == w;
  }
  match = match && meta.I64() == config_.bn.edge_ttl;
  match = match && meta.U8() == (config_.bn.inverse_weighting ? 1 : 0);
  match = match && meta.I64() == config_.bn.max_bucket_users;
  match = match && meta.U64() == config_.bn.bucket_sample_seed;
  match = match && meta.I64() == config_.snapshot_refresh;
  const bn::ShardTopology& topo = config_.bn.topology;
  match =
      match && meta.U32() == static_cast<uint32_t>(topo.shard_count);
  match =
      match && meta.U32() == static_cast<uint32_t>(topo.shard_index);
  match = match && meta.U64() == topo.user_seed;
  match = match && meta.U64() == topo.value_seed;
  if (!match || !meta.ok()) {
    return Status::FailedPrecondition(
        "checkpoint was written under a different BN config "
        "(users/windows/ttl/weighting/seed/refresh and the shard "
        "topology must match)");
  }
  return Status::OK();
}

Status BnServer::DecodeServerSection(std::string_view payload,
                                     uint64_t* start_seq) {
  storage::BinaryReader server(payload);
  const SimTime saved_now = server.I64();
  *start_seq = server.U64();
  if (*start_seq == 0) *start_seq = UINT64_MAX;
  const uint64_t num_frontiers = server.U64();
  if (num_frontiers != last_job_end_.size()) {
    return Status::InvalidArgument("checkpoint frontier count mismatch");
  }
  for (SimTime& t : last_job_end_) t = server.I64();
  last_expiry_ = server.I64();
  last_snapshot_ = server.I64();
  next_version_ = server.U64();
  jobs_run_ = server.U64();
  edges_expired_ = server.U64();
  if (!server.ok() || server.remaining() != 0) {
    return Status::InvalidArgument("corrupt checkpoint server section");
  }
  now_.store(saved_now, std::memory_order_relaxed);
  return Status::OK();
}

Status BnServer::ApplyCheckpointDelta(
    const storage::CheckpointReader& reader, uint64_t* start_seq) {
  for (const char* name : {"meta", "server", "edges_delta", "logs_delta",
                           "buckets_delta", "snapshot_delta", "churn"}) {
    if (!reader.Has(name)) {
      return Status::InvalidArgument(
          StrFormat("delta checkpoint missing section '%s'", name));
    }
  }
  TURBO_RETURN_IF_ERROR(CheckMeta(reader));
  TURBO_RETURN_IF_ERROR(
      DecodeServerSection(reader.Find("server"), start_seq));
  {
    storage::BinaryReader edges(reader.Find("edges_delta"));
    TURBO_RETURN_IF_ERROR(edges_.ApplyDeltaSection(
        &edges, static_cast<UserId>(config_.num_users)));
  }
  {
    // Appended directly, not through Ingest: replayed logs must not hit
    // the WAL or the since-last-checkpoint tail — they are already
    // durable in the chain being applied.
    storage::BinaryReader logs(reader.Find("logs_delta"));
    const uint64_t count = logs.U64();
    constexpr size_t kLogBytes = sizeof(uint32_t) + sizeof(uint8_t) +
                                 sizeof(uint64_t) + sizeof(int64_t);
    if (!logs.ok() || count > logs.remaining() / kLogBytes) {
      return Status::InvalidArgument("corrupt logs_delta section");
    }
    for (uint64_t i = 0; i < count; ++i) {
      BehaviorLog log;
      log.uid = logs.U32();
      log.type = static_cast<BehaviorType>(logs.U8());
      log.value = logs.U64();
      log.time = logs.I64();
      if (!logs.ok() ||
          log.uid >= static_cast<UserId>(config_.num_users) ||
          log.time < 0) {
        return Status::InvalidArgument("corrupt logs_delta record");
      }
      logs_.Append(log);
    }
    if (logs.remaining() != 0) {
      return Status::InvalidArgument("trailing bytes in logs_delta");
    }
  }
  {
    storage::BinaryReader buckets(reader.Find("buckets_delta"));
    TURBO_RETURN_IF_ERROR(builder_.DeserializeCacheDelta(&buckets));
    // The delta carries only epochs cached since its parent; epochs the
    // writer *evicted* in that span leave no record. Re-evicting with
    // the just-decoded frontiers reproduces the writer's bound exactly
    // (it evicts with min(last_job_end_) after every job too).
    if (!last_job_end_.empty()) {
      builder_.EvictCachedBuckets(
          *std::min_element(last_job_end_.begin(), last_job_end_.end()));
    }
  }
  {
    storage::BinaryReader snap(reader.Find("snapshot_delta"));
    const uint8_t mode = snap.U8();
    if (!snap.ok() || mode > 2) {
      return Status::InvalidArgument("corrupt snapshot_delta section");
    }
    if (mode != 0) {
      auto base = snapshot_.load(std::memory_order_acquire);
      if (mode == 2 && base == nullptr) {
        return Status::InvalidArgument(
            "snapshot_delta diff with no base snapshot in the chain");
      }
      auto snapshot_or = mode == 1
                             ? bn::BnSnapshot::Deserialize(&snap)
                             : bn::BnSnapshot::DeserializePatched(base, &snap);
      if (!snapshot_or.ok()) return snapshot_or.status();
      auto restored = snapshot_or.take();
      if (restored->num_nodes() != config_.num_users) {
        return Status::InvalidArgument(StrFormat(
            "delta checkpoint snapshot has %d nodes but the server is "
            "configured for %d users",
            restored->num_nodes(), config_.num_users));
      }
      snapshot_version_g_->Set(static_cast<double>(restored->version()));
      snapshot_edges_g_->Set(static_cast<double>(restored->TotalEdges()));
      snapshot_bytes_g_->Set(static_cast<double>(restored->MemoryBytes()));
      snapshot_.store(std::move(restored), std::memory_order_release);
    }
  }
  {
    // Full replacement, not a merge: the section is the writer's entire
    // since-last-publish set at checkpoint time.
    storage::BinaryReader churn(reader.Find("churn"));
    TURBO_RETURN_IF_ERROR(snapshot_churn_.Deserialize(
        &churn, static_cast<UserId>(config_.num_users)));
  }
  return Status::OK();
}

Status BnServer::Recover(const std::string& dir) {
  TURBO_CHECK_MSG(
      !recovered_or_started_ && logs_.size() == 0 && jobs_run_ == 0 &&
          now_.load(std::memory_order_relaxed) == 0,
      "Recover() must run on a freshly constructed server, before any "
      "Ingest/AdvanceTo");
  recovered_or_started_ = true;
  Stopwatch sw;
  // Segments < start_seq are covered by the checkpoint; 1 when starting
  // from WAL only. UINT64_MAX (checkpoint written with the WAL disabled)
  // replays nothing.
  uint64_t start_seq = 1;
  bool checkpoint_loaded = false;
  uint64_t chain_tail_seq = 0;  // covered_seq of the last applied link
  int chain_links = 0;
  if (std::filesystem::exists(CheckpointPath(dir))) {
    auto reader_or = storage::CheckpointReader::Open(CheckpointPath(dir));
    if (!reader_or.ok()) return reader_or.status();
    const storage::CheckpointReader& reader = reader_or.value();
    if (reader.kind() != storage::CheckpointKind::kFull) {
      return Status::InvalidArgument(
          "checkpoint.bin is not a full checkpoint");
    }
    for (const char* name : {"meta", "server", "edges", "logs", "buckets",
                             "snapshot", "churn"}) {
      if (!reader.Has(name)) {
        return Status::InvalidArgument(
            StrFormat("checkpoint missing section '%s'", name));
      }
    }
    TURBO_RETURN_IF_ERROR(CheckMeta(reader));
    TURBO_RETURN_IF_ERROR(
        DecodeServerSection(reader.Find("server"), &start_seq));
    {
      storage::BinaryReader edges(reader.Find("edges"));
      TURBO_RETURN_IF_ERROR(edges_.Deserialize(
          &edges, static_cast<UserId>(config_.num_users)));
    }
    {
      storage::BinaryReader logs(reader.Find("logs"));
      TURBO_RETURN_IF_ERROR(logs_.Deserialize(&logs));
    }
    {
      storage::BinaryReader buckets(reader.Find("buckets"));
      TURBO_RETURN_IF_ERROR(builder_.DeserializeCache(&buckets));
    }
    {
      storage::BinaryReader snap(reader.Find("snapshot"));
      if (snap.U8() != 0) {
        auto snapshot_or = bn::BnSnapshot::Deserialize(&snap);
        if (!snapshot_or.ok()) return snapshot_or.status();
        auto restored = snapshot_or.take();
        // The meta section pins num_users, so a mismatched node count in
        // a CRC-valid snapshot can only be corruption.
        if (restored->num_nodes() != config_.num_users) {
          return Status::InvalidArgument(StrFormat(
              "checkpoint snapshot has %d nodes but the server is "
              "configured for %d users",
              restored->num_nodes(), config_.num_users));
        }
        snapshot_version_g_->Set(static_cast<double>(restored->version()));
        snapshot_edges_g_->Set(static_cast<double>(restored->TotalEdges()));
        snapshot_bytes_g_->Set(
            static_cast<double>(restored->MemoryBytes()));
        snapshot_.store(std::move(restored), std::memory_order_release);
      }
    }
    {
      storage::BinaryReader churn(reader.Find("churn"));
      TURBO_RETURN_IF_ERROR(snapshot_churn_.Deserialize(
          &churn, static_cast<UserId>(config_.num_users)));
    }
    checkpoint_loaded = true;
    chain_tail_seq = reader.covered_seq();
  }

  // Apply the delta chain in covered_seq order. Deltas at or below the
  // base's covered_seq are stale leftovers of a crash between a newer
  // full checkpoint's publish and its delta cleanup — skipped here,
  // deleted at the next full checkpoint.
  const std::vector<uint64_t> delta_seqs =
      storage::ListCheckpointDeltas(dir);
  if (!checkpoint_loaded && !delta_seqs.empty()) {
    return Status::Internal(
        "delta checkpoints present without a base checkpoint.bin");
  }
  for (uint64_t seq : delta_seqs) {
    if (seq <= chain_tail_seq) continue;
    auto delta_or = storage::CheckpointReader::Open(
        storage::CheckpointDeltaPath(dir, seq));
    if (!delta_or.ok()) return delta_or.status();
    const storage::CheckpointReader& delta = delta_or.value();
    if (delta.kind() != storage::CheckpointKind::kDelta ||
        delta.covered_seq() != seq) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint-delta-%08llu.bin has an inconsistent chain header",
          static_cast<unsigned long long>(seq)));
    }
    if (delta.parent_seq() != chain_tail_seq) {
      return Status::Internal(StrFormat(
          "broken delta chain: delta %llu expects parent %llu but the "
          "chain tail is %llu",
          static_cast<unsigned long long>(seq),
          static_cast<unsigned long long>(delta.parent_seq()),
          static_cast<unsigned long long>(chain_tail_seq)));
    }
    TURBO_RETURN_IF_ERROR(ApplyCheckpointDelta(delta, &start_seq));
    chain_tail_seq = seq;
    ++chain_links;
  }

  // Capture the chain trackers *before* WAL replay: replayed ingests and
  // advances then re-accumulate the since-last-checkpoint state (log
  // tail, churn) through the normal paths, exactly as the writer did.
  if (checkpoint_loaded && !config_.wal_dir.empty() &&
      config_.delta_checkpoints) {
    have_ckpt_base_ = true;
    delta_chain_len_ = chain_links;
    std::error_code ec;
    const auto base_bytes =
        std::filesystem::file_size(CheckpointPath(dir), ec);
    last_full_ckpt_bytes_ = ec ? 0 : static_cast<size_t>(base_bytes);
    ResetChainTrackers(chain_tail_seq);
    checkpoint_chain_len_g_->Set(static_cast<double>(delta_chain_len_));
  }

  // Replay the WAL tail through the normal ingest/advance paths — the
  // engine is deterministic, so re-execution reproduces the writer's
  // state bit for bit.
  uint64_t last_seq = 0;
  std::vector<uint64_t> seqs = storage::ListWalSegments(dir);
  std::erase_if(seqs, [&](uint64_t s) { return s < start_seq; });
  // The tail must begin exactly at start_seq — a later first segment
  // means records between the checkpoint and it are gone (an empty list
  // is fine: a crash between checkpoint publish and rotation leaves no
  // uncovered segment).
  if (!seqs.empty() && seqs[0] != start_seq) {
    return Status::Internal(StrFormat(
        "WAL replay must start at segment %llu but the first surviving "
        "segment is %llu",
        static_cast<unsigned long long>(start_seq),
        static_cast<unsigned long long>(seqs[0])));
  }
  wal_replaying_ = true;
  for (size_t i = 0; i < seqs.size(); ++i) {
    if (i > 0 && seqs[i] != seqs[i - 1] + 1) {
      wal_replaying_ = false;
      return Status::Internal(StrFormat(
          "missing WAL segment between %llu and %llu",
          static_cast<unsigned long long>(seqs[i - 1]),
          static_cast<unsigned long long>(seqs[i])));
    }
    auto segment_or =
        storage::ReadWalSegment(storage::WalSegmentPath(dir, seqs[i]));
    if (!segment_or.ok()) {
      wal_replaying_ = false;
      return segment_or.status();
    }
    const storage::WalSegment& segment = segment_or.value();
    if (segment.torn && i + 1 < seqs.size()) {
      wal_replaying_ = false;
      return Status::Internal(StrFormat(
          "WAL segment %llu has a torn tail but is not the last segment",
          static_cast<unsigned long long>(seqs[i])));
    }
    if (segment.torn && !config_.wal_dir.empty()) {
      // Drop the torn tail on disk as well: once a post-recovery segment
      // opens after this one it is no longer the last, and a torn
      // non-final segment would (rightly) fail the next Recover. The
      // torn bytes carry no replayable record, so truncation loses
      // nothing.
      const Status ts = storage::TruncateWalSegment(
          storage::WalSegmentPath(dir, seqs[i]), segment.valid_bytes);
      if (!ts.ok()) {
        wal_replaying_ = false;
        return ts;
      }
    }
    for (const storage::WalRecord& record : segment.records) {
      switch (record.kind) {
        case storage::WalRecord::Kind::kIngest:
          Ingest(record.log);
          break;
        case storage::WalRecord::Kind::kAdvance:
          AdvanceTo(record.advance_to);
          break;
      }
    }
    wal_replayed_records_->Increment(segment.records.size());
    last_seq = seqs[i];
    wal_resume_seq_ = seqs[i];
    wal_resume_records_ = segment.records.size();
  }
  wal_replaying_ = false;
  if (seqs.empty() && start_seq != UINT64_MAX) {
    // Nothing to replay, but a WAL-backed checkpoint names where future
    // records will land — a crash between checkpoint publish and
    // rotation leaves no uncovered segment yet.
    wal_resume_seq_ = start_seq;
    wal_resume_records_ = 0;
  }

  if (!config_.wal_dir.empty()) {
    TURBO_CHECK_MSG(config_.wal_dir == dir,
                    "Recover dir must be wal_dir when the WAL is enabled");
    // Never append to a (possibly torn) old segment: start a fresh one.
    uint64_t next = last_seq + 1;
    if (start_seq != UINT64_MAX && start_seq != 1) {
      next = std::max(next, start_seq);
    }
    TURBO_RETURN_IF_ERROR(OpenWalSegment(next));
  }
  recovery_s_->Set(sw.ElapsedSeconds());
  return Status::OK();
}

void BnServer::ApplyReplicated(const storage::WalRecord& record) {
  TURBO_CHECK_MSG(config_.wal_dir.empty(),
                  "ApplyReplicated requires a WAL-less standby server — "
                  "the record is already durable in the shipped WAL");
  recovered_or_started_ = true;
  wal_replaying_ = true;
  switch (record.kind) {
    case storage::WalRecord::Kind::kIngest:
      Ingest(record.log);
      break;
    case storage::WalRecord::Kind::kAdvance:
      AdvanceTo(record.advance_to);
      break;
  }
  wal_replaying_ = false;
  wal_replayed_records_->Increment();
}

Status BnServer::AdoptWalDir(const std::string& dir) {
  TURBO_CHECK_MSG(config_.wal_dir.empty(),
                  "AdoptWalDir requires a WAL-less standby server");
  TURBO_CHECK_MSG(!dir.empty(), "AdoptWalDir needs a directory");
  std::filesystem::create_directories(dir);
  // Open strictly after everything already in the directory, and after
  // the checkpoint/delta covered ranges: a gap below the first
  // surviving segment would fail the next Recover, and so would a new
  // segment numbered inside the shipped history.
  uint64_t next = 1;
  const std::vector<uint64_t> seqs = storage::ListWalSegments(dir);
  if (!seqs.empty()) next = seqs.back() + 1;
  const std::vector<uint64_t> deltas = storage::ListCheckpointDeltas(dir);
  if (!deltas.empty()) next = std::max(next, deltas.back());
  if (std::filesystem::exists(CheckpointPath(dir))) {
    auto reader_or = storage::CheckpointReader::Open(CheckpointPath(dir));
    if (!reader_or.ok()) return reader_or.status();
    next = std::max(next, reader_or.value().covered_seq());
  }
  config_.wal_dir = dir;
  recovered_or_started_ = true;
  const Status s = OpenWalSegment(next);
  if (!s.ok()) config_.wal_dir.clear();
  return s;
}

std::shared_ptr<const bn::BnSnapshot> BnServer::snapshot() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  TURBO_CHECK_MSG(snap != nullptr,
                  "BnServer::AdvanceTo must run before sampling");
  return snap;
}

bn::GraphView BnServer::view() const { return bn::GraphView(snapshot()); }

uint64_t BnServer::snapshot_version() const {
  auto snap = snapshot_.load(std::memory_order_acquire);
  return snap ? snap->version() : 0;
}

bn::Subgraph BnServer::SampleSubgraph(UserId uid) const {
  return SampleSubgraph(std::vector<UserId>{uid});
}

bn::Subgraph BnServer::SampleSubgraph(
    const std::vector<UserId>& uids) const {
  Stopwatch sample_sw;
  bn::GraphView v = view();
  const uint64_t seq =
      sample_seq_.fetch_add(1, std::memory_order_relaxed);
  // Seed mixes the snapshot version with a per-request counter through a
  // full-avalanche finalizer so uniform sampling stays decorrelated across
  // concurrent requests. (A plain shift-xor combine collides whenever
  // version bits land on sequence bits — see tests/util/rng_test.cc.)
  const uint64_t seed = MixSeeds(v.version(), seq);
  sample_pinned_version_->Set(static_cast<double>(v.version()));
  bn::SubgraphSampler sampler(std::move(v), config_.sampler, seed);
  bn::Subgraph sg = sampler.Sample(uids);
  sample_ms_->Observe(sample_sw.ElapsedMillis());
  sample_nodes_->Observe(static_cast<double>(sg.nodes.size()));
  samples_->Increment();
  return sg;
}

}  // namespace turbo::server
