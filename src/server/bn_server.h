// BN server (Figure 2): receives behavior logs in real time, runs the
// periodic window jobs of Algorithm 1 (shorter windows more frequently —
// Section V), enforces the edge TTL, and serves computation-subgraph
// sampling requests from a periodically refreshed, degree-normalized
// snapshot.
//
// Concurrency contract: ingestion, AdvanceTo (window jobs, TTL expiry,
// snapshot builds), Checkpoint, and Recover are single-writer
// operations; SampleSubgraph and view() are lock-free readers that may
// run from any number of threads concurrently with the writer. The
// writer builds the next snapshot off to the side and publishes it with
// an atomic shared_ptr swap (RCU style); readers keep the version they
// loaded alive via the shared_ptr held by their GraphView, so a snapshot
// is reclaimed only after the last in-flight sampler drops it — this
// holds across Checkpoint and Recover too: views pinned before either
// keep serving their pre-recovery snapshot.
//
// Durability (DESIGN.md "Durability & recovery" and "Incremental
// snapshots & delta checkpoints"): with wal_dir set, every Ingest and
// AdvanceTo is appended to a write-ahead log before it mutates memory,
// and Checkpoint() persists the complete mutable state (edges with exact
// weight bits, raw logs, cached 1h buckets, window frontiers, clock,
// snapshot, churn) into checksummed "turbo-bn v2" files, rotating the
// WAL. After a full base checkpoint, later checkpoints may be *deltas*
// carrying only the state touched since the previous one (size
// heuristic + chain cap decide). Recover() loads the base, applies the
// delta chain, and replays the WAL tail through the deterministic
// window-job engine, so the recovered server is bit-identical to one
// that never crashed.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "bn/builder.h"
#include "bn/sampler.h"
#include "bn/snapshot.h"
#include "obs/metrics.h"
#include "storage/log_store.h"
#include "storage/wal.h"
#include "util/mpsc_ring.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace turbo::server {

struct BnServerConfig {
  bn::BnConfig bn;
  bn::SamplerConfig sampler;
  int num_users = 0;  // node-id space
  /// Cost model of the raw-log store ("local database"): reads through
  /// it charge a SimClock like a networked RDBMS, which is what the
  /// Section V cache study measures.
  storage::MediumCost log_cost = storage::MediumCost::NetworkedSql();
  /// Snapshot refresh cadence; sampling between refreshes serves the
  /// last snapshot (the paper's jobs are likewise asynchronous to the
  /// request path).
  SimTime snapshot_refresh = kHour;
  /// Threads for the snapshot build passes; 0 = hardware concurrency.
  int snapshot_build_threads = 0;
  /// Publish refreshes via BnSnapshot::ApplyDeltas over the accumulated
  /// churn set (bit-identical to a full build, cost proportional to
  /// churn). The first publish, and any whose churn trips the fraction
  /// below, still runs a full build.
  bool incremental_snapshots = true;
  /// Incremental publish falls back to a full rebuild when the churned
  /// (type, node) rows exceed this fraction of all rows (num_users *
  /// kNumEdgeTypes) — past that point rebuilding wholesale is cheaper
  /// than patching group by group.
  double snapshot_full_rebuild_fraction = 0.25;
  /// After a full base checkpoint, write later checkpoints as deltas
  /// (state touched since the previous link) when the WAL is enabled.
  /// Every delta still leaves recovery bit-identical; this only trades
  /// write amplification against chain length.
  bool delta_checkpoints = true;
  /// A delta is only written while its file stays below this fraction of
  /// the last full checkpoint's bytes; otherwise the checkpoint is
  /// written full (and the chain resets).
  double delta_checkpoint_max_fraction = 0.5;
  /// Hard cap on consecutive deltas: the next checkpoint after this many
  /// links is full, bounding recovery's chain-apply work.
  int max_delta_chain = 16;
  /// Workers for the sharded window jobs (bn.window_job_shards shards
  /// are spread over this pool): 0 = hardware concurrency, 1 = run the
  /// shards serially on the AdvanceTo thread (no pool). The engine is
  /// deterministic, so this is purely a throughput knob.
  int window_job_threads = 0;
  /// Registry receiving the server's bn_* metrics (see DESIGN.md
  /// "Observability"). Not owned; null = a private per-server registry,
  /// which keeps test/bench instances isolated from each other.
  obs::MetricsRegistry* metrics = nullptr;
  /// Capacity of the bounded lock-free MPSC ring in front of Ingest;
  /// 0 disables the ring (OfferIngest / DrainIngest must not be
  /// called). The cap is exact: the ring admits at most this many
  /// queued events even though its physical slot array is a power of
  /// two (see util::MpscRing). With the ring enabled, any number of
  /// producer threads OfferIngest concurrently; a full ring rejects
  /// the log (backpressure, counted in bn_ingest_rejected_total)
  /// instead of blocking the producer or growing without bound.
  size_t ingest_queue_capacity = 0;
  /// Durability directory for the ingest WAL and checkpoints; empty
  /// disables the WAL (state is lost on crash). When the directory holds
  /// state from a previous incarnation, Recover() must be called before
  /// the first Ingest/AdvanceTo — starting fresh over existing segments
  /// would make them unreplayable.
  std::string wal_dir;
  /// Group-commit batching and fsync policy of the WAL.
  storage::WalOptions wal;
};

class BnServer {
 public:
  explicit BnServer(BnServerConfig config);

  /// Real-time log ingestion (writer side). Timestamps must be
  /// non-negative — negative times would otherwise be collapsed into one
  /// epoch by the window jobs' floor arithmetic, so they are rejected
  /// loudly here.
  void Ingest(const BehaviorLog& log);
  void IngestBatch(const BehaviorLogList& logs);

  /// Admission-controlled ingestion front door (requires
  /// config.ingest_queue_capacity > 0). Producer side: lock-free,
  /// callable from any number of threads concurrently with the writer
  /// and with samplers. Returns false — and counts the rejection in
  /// bn_ingest_rejected_total — when the ring is full; the log is
  /// dropped, which is the overload contract: producers shed instead of
  /// stalling the ingest path.
  bool OfferIngest(const BehaviorLog& log);
  /// Writer-side drain: pops up to `max_events` queued logs and applies
  /// them through Ingest (WAL, churn tracking, counters — identical to
  /// a direct call). Same single-writer contract as Ingest/AdvanceTo.
  /// Returns the number of logs applied.
  size_t DrainIngest(size_t max_events = SIZE_MAX);
  /// Instantaneous depth of the ingest ring (racy approximation).
  size_t ingest_queue_depth() const;

  /// Advances the server clock, executing every window job whose epoch
  /// boundary was crossed (the 1-hour job runs hourly, the 1-day job
  /// daily, ...), TTL expiry (daily), and snapshot refreshes. Due jobs
  /// run in global epoch-time order with ties going to the smaller
  /// window, so a catch-up after a long idle gap replays history
  /// hour-by-hour — base-window buckets are cached just before the
  /// larger windows that merge them, keeping the cache bounded by the
  /// largest window (see DESIGN.md "Ingestion & window jobs").
  void AdvanceTo(SimTime now);

  /// Persists the server's complete mutable state ("turbo-bn v2": magic
  /// + chain header + per-section CRC32s), published atomically (temp
  /// file + fsync + rename). The first checkpoint (and any that trips
  /// the delta size/chain heuristics) writes a full
  /// `<dir>/checkpoint.bin`; later ones may write a
  /// `<dir>/checkpoint-delta-<seq>.bin` carrying only the state touched
  /// since the previous checkpoint — O(churn) bytes, not O(graph). With
  /// the WAL enabled, `dir` must be wal_dir; the log is rotated to a
  /// fresh segment and segments covered by the checkpoint are deleted.
  /// Writer-side operation: safe concurrently with samplers, not with
  /// Ingest/AdvanceTo.
  Status Checkpoint(const std::string& dir);

  /// Restores state from `dir`: loads `checkpoint.bin` if present (its
  /// config fingerprint must match this server's config), applies the
  /// delta-checkpoint chain in sequence order (each link's parent must
  /// match — a broken chain fails loudly), then replays the WAL tail —
  /// ingests and clock advances re-execute through the deterministic
  /// window-job engine, so the recovered server is bit-identical
  /// (edges, weights, frontiers, snapshot version) to the writer at its
  /// last durable point. A torn final record (crash mid-append)
  /// truncates the replay cleanly and the torn tail is also truncated
  /// off the segment file, so a later restart — by then the torn
  /// segment is no longer the last one — still recovers; a torn
  /// non-final segment is corruption and fails. Must be called on a
  /// freshly constructed server, before any Ingest/AdvanceTo.
  Status Recover(const std::string& dir);

  /// Warm-standby replay: applies one shipped WAL record through the
  /// normal ingest/advance paths without logging it again — the record
  /// already lives in the primary's (shipped) WAL. Requires a WAL-less
  /// server (wal_dir empty); the deterministic engine makes the
  /// standby's state bit-identical to the primary's at the same record
  /// count. Writer-side operation (see server::WarmStandby).
  void ApplyReplicated(const storage::WalRecord& record);

  /// Failover promote: turns a WAL-less standby into a durable primary
  /// rooted at `dir` (the shipped replica directory). Opens a fresh WAL
  /// segment after everything present in `dir` — existing segments,
  /// delta chain, and the checkpoint's covered range — so a later
  /// Recover of the directory replays the shipped history plus
  /// everything written after the promote. The next Checkpoint() writes
  /// a full base (the shipped chain's incremental trackers died with
  /// the old primary).
  Status AdoptWalDir(const std::string& dir);

  /// Replay position after a successful Recover(): the segment new
  /// records continue in, and how many records of it were applied.
  /// (0, 0) when nothing WAL-backed was recovered. WarmStandby uses
  /// this to continue replay exactly where bootstrap stopped.
  uint64_t wal_resume_seq() const { return wal_resume_seq_; }
  size_t wal_resume_records() const { return wal_resume_records_; }

  /// Samples the computation subgraph for `uid` from the last published
  /// snapshot. Lock-free; callable from any thread concurrently with
  /// AdvanceTo. Requires at least one AdvanceTo() call.
  bn::Subgraph SampleSubgraph(UserId uid) const;
  bn::Subgraph SampleSubgraph(const std::vector<UserId>& uids) const;

  /// The last published snapshot as a read view (lock-free). The view
  /// pins its snapshot version for as long as the caller holds it.
  bn::GraphView view() const;
  std::shared_ptr<const bn::BnSnapshot> snapshot() const;
  /// Version id of the last published snapshot (0 = none yet).
  uint64_t snapshot_version() const;

  /// Server clock; readable from any thread concurrently with AdvanceTo
  /// (serving threads use it as the feature as_of).
  SimTime now() const { return now_.load(std::memory_order_relaxed); }
  const storage::LogStore& logs() const { return logs_; }
  const storage::EdgeStore& edges() const { return edges_; }
  size_t jobs_run() const { return jobs_run_; }
  size_t edges_expired() const { return edges_expired_; }

  /// The registry this server reports into (config.metrics or the
  /// private default). RenderText/RenderJson are safe to call from any
  /// thread concurrently with ingestion and sampling.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  void RefreshSnapshot();
  /// Opens the WAL writer on segment `seq` (wal_dir must be set).
  Status OpenWalSegment(uint64_t seq);
  /// Appends one record to the WAL unless disabled or replaying.
  void WalAppend(const storage::WalRecord& record);
  /// Lazily opens the first WAL segment before the first mutation.
  void EnsureWalOpen();
  /// Moves the builder's accumulated churn into the publish- and
  /// checkpoint-scoped churn sets (called after every mutation batch).
  void AccumulateChurn();
  /// Shared meta/server section encoders (full and delta checkpoints
  /// carry identical copies of both).
  void BuildMetaSection(storage::BinaryWriter* w) const;
  void BuildServerSection(storage::BinaryWriter* w,
                          uint64_t next_seq) const;
  /// Validates a checkpoint's meta section against this config.
  Status CheckMeta(const storage::CheckpointReader& reader) const;
  /// Decodes a server section into the live members; returns the replay
  /// start sequence through `start_seq`.
  Status DecodeServerSection(std::string_view payload,
                             uint64_t* start_seq);
  /// Applies one delta-checkpoint link over the current state.
  Status ApplyCheckpointDelta(const storage::CheckpointReader& reader,
                              uint64_t* start_seq);
  /// Resets the delta-chain trackers to "parent = the checkpoint whose
  /// state the server currently holds".
  void ResetChainTrackers(uint64_t covered_seq);

  BnServerConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Metric handles resolved once in the constructor; all writes after
  // that are lock-free (see obs/metrics.h).
  obs::Counter* ingest_events_ = nullptr;
  obs::Counter* window_jobs_ = nullptr;
  obs::Counter* window_edge_updates_ = nullptr;
  obs::Counter* ttl_expired_edges_ = nullptr;
  obs::Counter* snapshot_builds_ = nullptr;
  obs::Counter* samples_ = nullptr;
  obs::Histogram* window_job_ms_ = nullptr;
  obs::Histogram* snapshot_build_ms_ = nullptr;
  obs::Histogram* sample_ms_ = nullptr;
  obs::Histogram* sample_nodes_ = nullptr;
  obs::Gauge* snapshot_version_g_ = nullptr;
  obs::Gauge* snapshot_edges_g_ = nullptr;
  obs::Gauge* snapshot_bytes_g_ = nullptr;
  obs::Gauge* snapshot_lag_s_ = nullptr;
  obs::Gauge* ingest_lag_s_ = nullptr;
  obs::Gauge* sample_pinned_version_ = nullptr;
  obs::Counter* wal_records_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* wal_replayed_records_ = nullptr;
  obs::Gauge* wal_bytes_g_ = nullptr;
  obs::Gauge* checkpoint_bytes_g_ = nullptr;
  obs::Gauge* recovery_s_ = nullptr;
  obs::Histogram* checkpoint_ms_ = nullptr;
  obs::Counter* snapshot_incrementals_ = nullptr;
  obs::Counter* snapshot_full_rebuilds_ = nullptr;
  obs::Histogram* snapshot_incremental_ms_ = nullptr;
  obs::Gauge* snapshot_touched_nodes_g_ = nullptr;
  obs::Counter* checkpoints_delta_ = nullptr;
  obs::Gauge* checkpoint_delta_bytes_g_ = nullptr;
  obs::Gauge* checkpoint_chain_len_g_ = nullptr;
  obs::Counter* ingest_rejected_ = nullptr;
  obs::Counter* ingest_queued_ = nullptr;
  obs::Gauge* ingest_queue_depth_g_ = nullptr;
  /// Bounded admission ring in front of Ingest (null when
  /// config.ingest_queue_capacity == 0). Producers push lock-free;
  /// only the writer thread drains.
  std::unique_ptr<util::MpscRing<BehaviorLog>> ingest_ring_;
  /// Worker pool the window-job shards run on (null = serial shards).
  std::unique_ptr<util::ThreadPool> job_pool_;
  storage::LogStore logs_{config_.log_cost};
  storage::EdgeStore edges_;
  bn::BnBuilder builder_;
  // Written only by the AdvanceTo thread, read concurrently by serving
  // threads through now().
  std::atomic<SimTime> now_{0};
  std::vector<SimTime> last_job_end_;  // per window
  SimTime last_expiry_ = 0;
  SimTime last_snapshot_ = -1;
  // Published snapshot; written by RefreshSnapshot, read lock-free by
  // samplers. The version counter below is written only by the writer
  // thread before the corresponding publish.
  std::atomic<std::shared_ptr<const bn::BnSnapshot>> snapshot_{nullptr};
  uint64_t next_version_ = 0;
  // Per-request seed disambiguator so concurrent uniform samplers on one
  // snapshot do not share an RNG stream.
  mutable std::atomic<uint64_t> sample_seq_{0};
  size_t jobs_run_ = 0;
  size_t edges_expired_ = 0;
  /// Current WAL segment (closed when the WAL is disabled).
  storage::WalWriter wal_writer_;
  /// True while Recover() re-applies WAL records; suppresses re-logging.
  bool wal_replaying_ = false;
  /// Non-empty once a WAL segment rotation failed: the writer is closed
  /// while durable state exists, so later writes must fail-stop with
  /// this cause rather than the misleading fresh-start contract check.
  std::string wal_error_;
  /// True once Recover() or the first mutation ran; guards the
  /// "Recover before first write" contract.
  bool recovered_or_started_ = false;
  /// Replay position captured by Recover() (see wal_resume_seq()).
  uint64_t wal_resume_seq_ = 0;
  size_t wal_resume_records_ = 0;

  // --- Incremental publish + delta checkpoint state -------------------
  /// Nodes whose adjacency changed since the last snapshot publish; the
  /// next RefreshSnapshot consumes (and clears) it. Persisted in every
  /// checkpoint's "churn" section so a recovered server's first
  /// incremental publish still covers churn accrued between the last
  /// publish and the checkpoint.
  storage::EdgeChurn snapshot_churn_;
  /// Nodes whose adjacency changed since the last checkpoint (only
  /// tracked once a delta-eligible base exists); drives the edges_delta
  /// section. Cleared at every checkpoint.
  storage::EdgeChurn checkpoint_churn_;
  /// Logs ingested since the last checkpoint (same tracking scope);
  /// drives the logs_delta section.
  BehaviorLogList pending_log_tail_;
  /// True once a full base checkpoint exists this incarnation and delta
  /// checkpoints are enabled — the precondition for both the delta write
  /// path and the since-last-checkpoint tracking above.
  bool have_ckpt_base_ = false;
  /// covered_seq of the last checkpoint written or recovered (the next
  /// delta's parent link).
  uint64_t last_ckpt_seq_ = 0;
  /// Consecutive deltas since the last full checkpoint.
  int delta_chain_len_ = 0;
  /// Size of the last full checkpoint file — the denominator of the
  /// delta-vs-full size heuristic.
  size_t last_full_ckpt_bytes_ = 0;
  /// Snapshot published at the last checkpoint: the SerializeDiff base
  /// for the next snapshot_delta section. Diffing against this pointer
  /// (not a rebuilt snapshot) is what keeps the diff O(churn).
  std::shared_ptr<const bn::BnSnapshot> last_ckpt_snapshot_;
  /// Builder cache frontier at the last checkpoint: the next
  /// buckets_delta carries epochs strictly after it.
  SimTime last_ckpt_cache_max_epoch_ = 0;
};

}  // namespace turbo::server
