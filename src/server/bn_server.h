// BN server (Figure 2): receives behavior logs in real time, runs the
// periodic window jobs of Algorithm 1 (shorter windows more frequently —
// Section V), enforces the edge TTL, and serves computation-subgraph
// sampling requests from a periodically refreshed, degree-normalized
// snapshot.
#pragma once

#include <optional>

#include "bn/builder.h"
#include "bn/network.h"
#include "bn/sampler.h"
#include "storage/log_store.h"

namespace turbo::server {

struct BnServerConfig {
  bn::BnConfig bn;
  bn::SamplerConfig sampler;
  int num_users = 0;  // node-id space
  /// Cost model of the raw-log store ("local database"): reads through
  /// it charge a SimClock like a networked RDBMS, which is what the
  /// Section V cache study measures.
  storage::MediumCost log_cost = storage::MediumCost::NetworkedSql();
  /// Snapshot refresh cadence; sampling between refreshes serves the
  /// last snapshot (the paper's jobs are likewise asynchronous to the
  /// request path).
  SimTime snapshot_refresh = kHour;
};

class BnServer {
 public:
  explicit BnServer(BnServerConfig config);

  /// Real-time log ingestion.
  void Ingest(const BehaviorLog& log);
  void IngestBatch(const BehaviorLogList& logs);

  /// Advances the server clock, executing every window job whose epoch
  /// boundary was crossed (the 1-hour job runs hourly, the 1-day job
  /// daily, ...), TTL expiry (daily), and snapshot refreshes.
  void AdvanceTo(SimTime now);

  /// Samples the computation subgraph for `uid` from the current
  /// snapshot. Requires at least one AdvanceTo() call.
  bn::Subgraph SampleSubgraph(UserId uid);
  bn::Subgraph SampleSubgraph(const std::vector<UserId>& uids);

  SimTime now() const { return now_; }
  const storage::LogStore& logs() const { return logs_; }
  const storage::EdgeStore& edges() const { return edges_; }
  const bn::BehaviorNetwork& snapshot() const;
  size_t jobs_run() const { return jobs_run_; }
  size_t edges_expired() const { return edges_expired_; }

 private:
  void RefreshSnapshot();

  BnServerConfig config_;
  storage::LogStore logs_{config_.log_cost};
  storage::EdgeStore edges_;
  bn::BnBuilder builder_;
  SimTime now_ = 0;
  std::vector<SimTime> last_job_end_;  // per window
  SimTime last_expiry_ = 0;
  SimTime last_snapshot_ = -1;
  std::optional<bn::BehaviorNetwork> snapshot_;
  size_t jobs_run_ = 0;
  size_t edges_expired_ = 0;
};

}  // namespace turbo::server
