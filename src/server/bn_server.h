// BN server (Figure 2): receives behavior logs in real time, runs the
// periodic window jobs of Algorithm 1 (shorter windows more frequently —
// Section V), enforces the edge TTL, and serves computation-subgraph
// sampling requests from a periodically refreshed, degree-normalized
// snapshot.
//
// Concurrency contract: ingestion, AdvanceTo (window jobs, TTL expiry,
// snapshot builds) are single-writer operations; SampleSubgraph and
// view() are lock-free readers that may run from any number of threads
// concurrently with the writer. The writer builds the next snapshot off
// to the side and publishes it with an atomic shared_ptr swap (RCU
// style); readers keep the version they loaded alive via the shared_ptr
// held by their GraphView, so a snapshot is reclaimed only after the last
// in-flight sampler drops it.
#pragma once

#include <atomic>
#include <memory>

#include "bn/builder.h"
#include "bn/sampler.h"
#include "bn/snapshot.h"
#include "obs/metrics.h"
#include "storage/log_store.h"
#include "util/thread_pool.h"

namespace turbo::server {

struct BnServerConfig {
  bn::BnConfig bn;
  bn::SamplerConfig sampler;
  int num_users = 0;  // node-id space
  /// Cost model of the raw-log store ("local database"): reads through
  /// it charge a SimClock like a networked RDBMS, which is what the
  /// Section V cache study measures.
  storage::MediumCost log_cost = storage::MediumCost::NetworkedSql();
  /// Snapshot refresh cadence; sampling between refreshes serves the
  /// last snapshot (the paper's jobs are likewise asynchronous to the
  /// request path).
  SimTime snapshot_refresh = kHour;
  /// Threads for the snapshot build passes; 0 = hardware concurrency.
  int snapshot_build_threads = 0;
  /// Workers for the sharded window jobs (bn.window_job_shards shards
  /// are spread over this pool): 0 = hardware concurrency, 1 = run the
  /// shards serially on the AdvanceTo thread (no pool). The engine is
  /// deterministic, so this is purely a throughput knob.
  int window_job_threads = 0;
  /// Registry receiving the server's bn_* metrics (see DESIGN.md
  /// "Observability"). Not owned; null = a private per-server registry,
  /// which keeps test/bench instances isolated from each other.
  obs::MetricsRegistry* metrics = nullptr;
};

class BnServer {
 public:
  explicit BnServer(BnServerConfig config);

  /// Real-time log ingestion (writer side). Timestamps must be
  /// non-negative — negative times would otherwise be collapsed into one
  /// epoch by the window jobs' floor arithmetic, so they are rejected
  /// loudly here.
  void Ingest(const BehaviorLog& log);
  void IngestBatch(const BehaviorLogList& logs);

  /// Advances the server clock, executing every window job whose epoch
  /// boundary was crossed (the 1-hour job runs hourly, the 1-day job
  /// daily, ...), TTL expiry (daily), and snapshot refreshes. Due jobs
  /// run in global epoch-time order with ties going to the smaller
  /// window, so a catch-up after a long idle gap replays history
  /// hour-by-hour — base-window buckets are cached just before the
  /// larger windows that merge them, keeping the cache bounded by the
  /// largest window (see DESIGN.md "Ingestion & window jobs").
  void AdvanceTo(SimTime now);

  /// Samples the computation subgraph for `uid` from the last published
  /// snapshot. Lock-free; callable from any thread concurrently with
  /// AdvanceTo. Requires at least one AdvanceTo() call.
  bn::Subgraph SampleSubgraph(UserId uid) const;
  bn::Subgraph SampleSubgraph(const std::vector<UserId>& uids) const;

  /// The last published snapshot as a read view (lock-free). The view
  /// pins its snapshot version for as long as the caller holds it.
  bn::GraphView view() const;
  std::shared_ptr<const bn::BnSnapshot> snapshot() const;
  /// Version id of the last published snapshot (0 = none yet).
  uint64_t snapshot_version() const;

  /// Server clock; readable from any thread concurrently with AdvanceTo
  /// (serving threads use it as the feature as_of).
  SimTime now() const { return now_.load(std::memory_order_relaxed); }
  const storage::LogStore& logs() const { return logs_; }
  const storage::EdgeStore& edges() const { return edges_; }
  size_t jobs_run() const { return jobs_run_; }
  size_t edges_expired() const { return edges_expired_; }

  /// The registry this server reports into (config.metrics or the
  /// private default). RenderText/RenderJson are safe to call from any
  /// thread concurrently with ingestion and sampling.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  void RefreshSnapshot();

  BnServerConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Metric handles resolved once in the constructor; all writes after
  // that are lock-free (see obs/metrics.h).
  obs::Counter* ingest_events_ = nullptr;
  obs::Counter* window_jobs_ = nullptr;
  obs::Counter* window_edge_updates_ = nullptr;
  obs::Counter* ttl_expired_edges_ = nullptr;
  obs::Counter* snapshot_builds_ = nullptr;
  obs::Counter* samples_ = nullptr;
  obs::Histogram* window_job_ms_ = nullptr;
  obs::Histogram* snapshot_build_ms_ = nullptr;
  obs::Histogram* sample_ms_ = nullptr;
  obs::Histogram* sample_nodes_ = nullptr;
  obs::Gauge* snapshot_version_g_ = nullptr;
  obs::Gauge* snapshot_edges_g_ = nullptr;
  obs::Gauge* snapshot_bytes_g_ = nullptr;
  obs::Gauge* snapshot_lag_s_ = nullptr;
  obs::Gauge* ingest_lag_s_ = nullptr;
  obs::Gauge* sample_pinned_version_ = nullptr;
  /// Worker pool the window-job shards run on (null = serial shards).
  std::unique_ptr<util::ThreadPool> job_pool_;
  storage::LogStore logs_{config_.log_cost};
  storage::EdgeStore edges_;
  bn::BnBuilder builder_;
  // Written only by the AdvanceTo thread, read concurrently by serving
  // threads through now().
  std::atomic<SimTime> now_{0};
  std::vector<SimTime> last_job_end_;  // per window
  SimTime last_expiry_ = 0;
  SimTime last_snapshot_ = -1;
  // Published snapshot; written by RefreshSnapshot, read lock-free by
  // samplers. The version counter below is written only by the writer
  // thread before the corresponding publish.
  std::atomic<std::shared_ptr<const bn::BnSnapshot>> snapshot_{nullptr};
  uint64_t next_version_ = 0;
  // Per-request seed disambiguator so concurrent uniform samplers on one
  // snapshot do not share an RNG stream.
  mutable std::atomic<uint64_t> sample_seq_{0};
  size_t jobs_run_ = 0;
  size_t edges_expired_ = 0;
};

}  // namespace turbo::server
