// Warm standby for one BN shard (DESIGN.md §14 "Replication &
// failover"): continuously replays a shipped copy of the primary's
// durability directory (storage::ShipWalDir) so failover is a promote,
// not a cold rebuild.
//
// State machine:
//   waiting    — the replica directory has no shipped state yet.
//   replaying  — Bootstrap ran Recover() over the shipped checkpoint +
//                delta chain + WAL prefix; each CatchUp() applies the
//                records shipped since, through the same deterministic
//                engine (BnServer::ApplyReplicated), so the standby is
//                bit-identical to the primary at its applied record
//                count. Lock-free reads (sampling, snapshots) are
//                served the whole time.
//   promoted   — Promote() sealed the replica (a torn tail left by the
//                dead primary is truncated to its valid prefix — the
//                standby owns those bytes now), adopted the replica
//                directory as the live WAL, and handed out the server.
//                New writes are durable; the next Checkpoint() writes a
//                full base.
//
// Replay edge cases (tests/storage/wal_ship_test.cc,
// tests/server/warm_standby_test.cc):
//  * Torn final segment mid-ship: the valid prefix is applied and the
//    standby *waits* — the next ship completes the record. Nothing is
//    truncated while the primary may still be writing.
//  * Re-shipped duplicate segment: per-segment applied-record counts
//    make reapplication a no-op.
//  * Sequence gap: records are lost (or the standby fell behind a
//    checkpoint rotation) — CatchUp fails loudly; Rebootstrap() starts
//    over from the shipped checkpoint.
//
// Threading: CatchUp/Promote/Rebootstrap are one-writer operations and
// must not run concurrently with the shipper writing replica_dir.
// Reads through server() are lock-free as on any BnServer.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "server/bn_server.h"

namespace turbo::server {

struct WarmStandbyConfig {
  /// The primary's config (the checkpoint fingerprint must match).
  /// `wal_dir` is ignored — the standby itself never writes a WAL
  /// until promoted.
  BnServerConfig server;
  /// Directory the shipper mirrors the primary's wal_dir into.
  std::string replica_dir;
  /// Shard index used in this standby's metric names
  /// (bn_replica_shard<i>_*).
  int shard_index = 0;
  /// Registry for replication lag/progress metrics. Not owned; null =
  /// a private registry.
  obs::MetricsRegistry* metrics = nullptr;
};

class WarmStandby {
 public:
  explicit WarmStandby(WarmStandbyConfig config);

  /// Bootstraps from the shipped checkpoint/WAL when state first
  /// appears, then applies every record shipped since the last call.
  /// OK while waiting or when nothing new arrived. Fails on a sequence
  /// gap, a torn non-final segment, or a shrunken segment — after
  /// which Rebootstrap() is the way back.
  Status CatchUp();

  /// Drops all replayed state and bootstraps afresh from the currently
  /// shipped files (the recovery path for a standby that fell behind a
  /// checkpoint rotation).
  Status Rebootstrap();

  /// Seals the replica (truncating a torn tail left by the dead
  /// primary), adopts replica_dir as the live WAL, and returns the
  /// now-primary server. The WarmStandby keeps ownership; CatchUp and
  /// Rebootstrap refuse to run after this.
  Result<BnServer*> Promote();

  bool bootstrapped() const { return server_ != nullptr; }
  bool promoted() const { return promoted_; }
  /// Segment currently being consumed and records applied from it.
  uint64_t applied_seq() const { return applied_seq_; }
  size_t applied_records() const { return applied_records_; }
  /// Total records applied since construction (bootstrap + catch-up).
  uint64_t records_applied_total() const;

  /// The replaying (or promoted) server; null while waiting. Reads are
  /// lock-free; do not mutate through this before Promote().
  BnServer* server() { return server_.get(); }
  const BnServer* server() const { return server_.get(); }

  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  Status Bootstrap();
  Status ApplyShipped();

  WarmStandbyConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* applied_seq_g_ = nullptr;
  obs::Gauge* applied_records_g_ = nullptr;
  obs::Counter* records_total_ = nullptr;
  obs::Counter* bootstraps_ = nullptr;
  obs::Histogram* catchup_ms_ = nullptr;

  std::unique_ptr<BnServer> server_;
  /// Replay cursor: segment being consumed / records applied from it.
  uint64_t applied_seq_ = 0;
  size_t applied_records_ = 0;
  bool promoted_ = false;
};

}  // namespace turbo::server
