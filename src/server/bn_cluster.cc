#include "server/bn_cluster.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace turbo::server {

// --- LocalShardHandle -------------------------------------------------

void LocalShardHandle::Ingest(const BehaviorLog& log) {
  server_->Ingest(log);
}
bool LocalShardHandle::OfferIngest(const BehaviorLog& log) {
  return server_->OfferIngest(log);
}
size_t LocalShardHandle::DrainIngest(size_t max_events) {
  return server_->DrainIngest(max_events);
}
size_t LocalShardHandle::ingest_queue_depth() {
  return server_->ingest_queue_depth();
}
void LocalShardHandle::AdvanceTo(SimTime now) { server_->AdvanceTo(now); }
Status LocalShardHandle::Checkpoint() {
  TURBO_CHECK_MSG(!dir_.empty(),
                  "LocalShardHandle::Checkpoint requires a shard dir");
  return server_->Checkpoint(dir_);
}
Status LocalShardHandle::Recover() {
  TURBO_CHECK_MSG(!dir_.empty(),
                  "LocalShardHandle::Recover requires a shard dir");
  return server_->Recover(dir_);
}
bn::Subgraph LocalShardHandle::SampleSubgraph(UserId uid) {
  return server_->SampleSubgraph(uid);
}
uint64_t LocalShardHandle::snapshot_version() {
  return server_->snapshot_version();
}
SimTime LocalShardHandle::now() { return server_->now(); }
uint64_t LocalShardHandle::TotalEdges() {
  return server_->edges().TotalEdges();
}

// --- BnCluster --------------------------------------------------------

BnCluster::BnCluster(BnClusterConfig config)
    : config_(std::move(config)),
      router_([&] {
        bn::ShardTopology t = config_.shard.bn.topology;
        t.shard_count = config_.num_shards;
        return ShardRouter(t);
      }()) {
  TURBO_CHECK_GT(config_.num_shards, 0);
  shards_.reserve(config_.num_shards);
  handles_.reserve(config_.num_shards);
  for (int i = 0; i < config_.num_shards; ++i) {
    BnServerConfig shard = config_.shard;
    shard.bn.topology = router_.TopologyForShard(i);
    shard.metrics = nullptr;  // private registry per shard
    shard.wal_dir = config_.wal_root.empty()
                        ? std::string()
                        : ShardDir(config_.wal_root, i);
    const std::string dir = shard.wal_dir;
    shards_.push_back(std::make_unique<BnServer>(std::move(shard)));
    handles_.push_back(
        std::make_unique<LocalShardHandle>(shards_.back().get(), dir));
  }
  InitCommon();
}

BnCluster::BnCluster(BnClusterConfig config,
                     std::vector<std::unique_ptr<ShardHandle>> handles)
    : config_(std::move(config)),
      router_([&] {
        bn::ShardTopology t = config_.shard.bn.topology;
        t.shard_count = static_cast<int>(handles.size());
        return ShardRouter(t);
      }()),
      handles_(std::move(handles)) {
  TURBO_CHECK_MSG(!handles_.empty(),
                  "handle-mode BnCluster needs at least one shard");
  config_.num_shards = static_cast<int>(handles_.size());
  InitCommon();
}

void BnCluster::InitCommon() {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  ingest_events_ = metrics_->GetCounter("bn_cluster_ingest_events_total");
  forwarded_ = metrics_->GetCounter("bn_cluster_forwarded_total");
  offer_rejected_ = metrics_->GetCounter("bn_cluster_offer_rejected_total");
  epoch_g_ = metrics_->GetGauge("bn_cluster_epoch");
  const int n = num_shards();
  for (int i = 0; i < n; ++i) {
    shard_version_g_.push_back(metrics_->GetGauge(
        obs::ShardMetricName("bn_cluster", i, "snapshot_version")));
    shard_edges_g_.push_back(metrics_->GetGauge(
        obs::ShardMetricName("bn_cluster", i, "edges")));
  }
  if (config_.advance_threads > 1 && n > 1) {
    advance_pool_ = std::make_unique<util::ThreadPool>(
        std::min(config_.advance_threads, n));
  }
}

std::string BnCluster::ShardDir(const std::string& root, int i) {
  return StrFormat("%s/shard-%04d", root.c_str(), i);
}

void BnCluster::Ingest(const BehaviorLog& log) {
  const ShardRoute route = router_.Route(log);
  handles_[route.user_shard]->Ingest(log);
  ingest_events_->Increment();
  if (route.forwarded()) {
    handles_[route.value_shard]->Ingest(log);
    forwarded_->Increment();
  }
}

void BnCluster::IngestBatch(const BehaviorLogList& logs) {
  for (const BehaviorLog& log : logs) Ingest(log);
}

bool BnCluster::OfferIngest(const BehaviorLog& log) {
  const ShardRoute route = router_.Route(log);
  bool admitted = handles_[route.user_shard]->OfferIngest(log);
  if (route.forwarded()) {
    // Independent admission per shard: a shed forward loses that
    // value's edges for this log (overload semantics), never the home
    // copy's feature history.
    admitted = handles_[route.value_shard]->OfferIngest(log) && admitted;
  }
  if (!admitted) offer_rejected_->Increment();
  return admitted;
}

size_t BnCluster::DrainIngest(size_t max_events_per_shard) {
  size_t applied = 0;
  for (auto& handle : handles_) {
    applied += handle->DrainIngest(max_events_per_shard);
  }
  return applied;
}

size_t BnCluster::ingest_queue_depth() const {
  size_t depth = 0;
  for (const auto& handle : handles_) depth += handle->ingest_queue_depth();
  return depth;
}

void BnCluster::AdvanceTo(SimTime now) {
  if (advance_pool_ != nullptr) {
    advance_pool_->ParallelFor(handles_.size(), 1,
                               [&](size_t begin, size_t end) {
                                 for (size_t i = begin; i < end; ++i) {
                                   handles_[i]->AdvanceTo(now);
                                 }
                               });
  } else {
    for (auto& handle : handles_) handle->AdvanceTo(now);
  }
  // All shards arrived: the epoch is complete and the per-shard gauges
  // describe one consistent cluster time.
  ++epoch_;
  epoch_g_->Set(static_cast<double>(epoch_));
  for (size_t i = 0; i < handles_.size(); ++i) {
    shard_version_g_[i]->Set(
        static_cast<double>(handles_[i]->snapshot_version()));
    shard_edges_g_[i]->Set(
        static_cast<double>(handles_[i]->TotalEdges()));
  }
}

Status BnCluster::Checkpoint() {
  if (local()) {
    TURBO_CHECK_MSG(!config_.wal_root.empty(),
                    "BnCluster::Checkpoint requires wal_root");
  }
  for (auto& handle : handles_) {
    TURBO_RETURN_IF_ERROR(handle->Checkpoint());
  }
  return Status::OK();
}

Status BnCluster::Recover() {
  if (local()) {
    TURBO_CHECK_MSG(!config_.wal_root.empty(),
                    "BnCluster::Recover requires wal_root");
  }
  for (auto& handle : handles_) {
    TURBO_RETURN_IF_ERROR(handle->Recover());
  }
  return Status::OK();
}

bn::Subgraph BnCluster::SampleSubgraph(UserId uid) const {
  return HandleForUser(uid).SampleSubgraph(uid);
}

uint64_t BnCluster::snapshot_version_for(UserId uid) const {
  return HandleForUser(uid).snapshot_version();
}

double BnCluster::EdgeWeight(int edge_type, UserId u, UserId v) const {
  // Exact double accumulation, shard-index order: each shard holds a
  // disjoint subset of the edge's (exactly representable) term sums.
  double w = 0.0;
  for (const auto& shard : CheckLocal()) {
    const auto& row = shard->edges().Neighbors(edge_type, u);
    auto it = row.find(v);
    if (it != row.end()) w += it->second.weight;
  }
  return w;
}

SimTime BnCluster::EdgeLastUpdate(int edge_type, UserId u,
                                  UserId v) const {
  SimTime latest = 0;
  for (const auto& shard : CheckLocal()) {
    const auto& row = shard->edges().Neighbors(edge_type, u);
    auto it = row.find(v);
    if (it != row.end()) latest = std::max(latest, it->second.last_update);
  }
  return latest;
}

ClusterPredictionRouter::ClusterPredictionRouter(
    const ShardRouter* router, std::vector<PredictionServer*> shards)
    : router_(router), shards_(std::move(shards)) {
  TURBO_CHECK_EQ(static_cast<int>(shards_.size()),
                 router_->num_shards());
}

PredictionResponse ClusterPredictionRouter::Handle(UserId uid) {
  return shards_[router_->OwnerOfUser(uid)]->Handle(uid);
}

std::vector<PredictionResponse> ClusterPredictionRouter::HandleBatch(
    const std::vector<UserId>& uids) {
  // Group by owner shard, preserving arrival order within a group, then
  // scatter each group's merged-batch responses back to request slots.
  std::vector<std::vector<UserId>> group_uids(shards_.size());
  std::vector<std::vector<size_t>> group_slots(shards_.size());
  for (size_t i = 0; i < uids.size(); ++i) {
    const int owner = router_->OwnerOfUser(uids[i]);
    group_uids[owner].push_back(uids[i]);
    group_slots[owner].push_back(i);
  }
  std::vector<PredictionResponse> responses(uids.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (group_uids[s].empty()) continue;
    std::vector<PredictionResponse> batch =
        shards_[s]->HandleBatch(group_uids[s]);
    for (size_t i = 0; i < batch.size(); ++i) {
      responses[group_slots[s][i]] = std::move(batch[i]);
    }
  }
  return responses;
}

}  // namespace turbo::server
