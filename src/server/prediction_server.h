// Real-time prediction server (Figure 2): orchestrates one audit request —
// subgraph sampling from the BN server, feature retrieval from the
// feature management module, and HAG inference — and reports the
// per-module latency split of Fig. 8a.
//
// Latency accounting: compute stages (sampling, batch assembly, model
// forward) are measured in real wall-clock time; storage accesses
// additionally charge their modeled cost to a SimClock so the cached vs
// uncached comparison of Section V is reproducible without real network
// round-trips (see DESIGN.md §2).
#pragma once

#include <memory>

#include "core/hag.h"
#include "features/feature_store.h"
#include "ml/scaler.h"
#include "server/bn_server.h"
#include "server/latency.h"

namespace turbo::server {

struct PredictionConfig {
  /// Online blocking threshold (Section VI-E uses 0.85).
  double threshold = 0.85;
};

struct PredictionResponse {
  double fraud_probability = 0.0;
  bool blocked = false;
  int subgraph_nodes = 0;
  // Per-module latency (milliseconds): wall-clock compute plus modeled
  // storage cost.
  double sampling_ms = 0.0;
  double feature_ms = 0.0;
  double inference_ms = 0.0;
  double total_ms = 0.0;
};

class PredictionServer {
 public:
  /// `model` must already be trained; `scaler` must be the one fitted on
  /// the training features; `features` serves raw (unscaled) rows.
  PredictionServer(PredictionConfig config, BnServer* bn,
                   features::FeatureStore* features, core::Hag* model,
                   const ml::StandardScaler* scaler);

  /// Handles one audit request for `uid` at server time.
  PredictionResponse Handle(UserId uid);

  const LatencyTracker& sampling_latency() const { return sampling_; }
  const LatencyTracker& feature_latency() const { return feature_; }
  const LatencyTracker& inference_latency() const { return inference_; }
  const LatencyTracker& total_latency() const { return total_; }

 private:
  PredictionConfig config_;
  BnServer* bn_;
  features::FeatureStore* features_;
  core::Hag* model_;
  const ml::StandardScaler* scaler_;
  LatencyTracker sampling_, feature_, inference_, total_;
};

}  // namespace turbo::server
