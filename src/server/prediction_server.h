// Real-time prediction server (Figure 2): orchestrates audit requests —
// subgraph sampling from the BN server, feature retrieval from the
// feature management module, and HAG inference — and reports the
// per-module latency split of Fig. 8a.
//
// Serving paths:
//  * Handle(uid): one request, unchanged drop-in behavior.
//  * HandleBatch(uids): micro-batching — one merged subgraph sampled
//    against a single pinned snapshot, one merged model forward, cost
//    amortized over the batch. Callable from any number of threads
//    concurrently (the BN read path is lock-free; the feature store and
//    the result cache serialize internally).
//  * StartBatching + SubmitAsync(uid): an optional coalescing queue that
//    gathers concurrent single requests into batches (up to
//    max_batch_size, waiting at most max_wait_ms) and executes them on a
//    private worker pool.
//  * SubmitWithDeadline / SubmitCallback: the admission-controlled form
//    of the queue. Each request carries a deadline; a worker popping a
//    batch sheds every request whose deadline already passed — before
//    sampling, features, or inference spend anything on it — and
//    completes it with a `shed` response (prediction_deadline_shed_total
//    counts these). BatchingConfig::max_queue bounds the queue itself:
//    past the cap, submissions are rejected at admission
//    (prediction_queue_rejected_total) rather than queued to miss their
//    deadline anyway. In-deadline requests take exactly the same
//    HandleBatch path as deadline-free ones, so admission control never
//    changes a served prediction (bit-identical; see
//    tests/server/admission_control_test.cc).
//
// With `use_inference_path` the model forward runs tape-free
// (GnnModel::EmbedInference — no autograd Node/closure allocation),
// which is prediction-identical to the autograd forward (see
// tests/core/inference_equivalence_test). With `cache_capacity` > 0,
// predictions are memoized in an LRU keyed by (uid, snapshot version):
// entries are naturally unreachable once a new snapshot is published and
// the whole cache is dropped on version change.
//
// Latency accounting: compute stages (sampling, batch assembly, model
// forward) are measured in real wall-clock time; storage accesses
// additionally charge their modeled cost to a SimClock so the cached vs
// uncached comparison of Section V is reproducible without real network
// round-trips (see DESIGN.md §2). Every batch runs under an
// obs::StageTimer whose spans land in `predict_<stage>_ms` histograms of
// the server's MetricsRegistry — the per-stage breakdown the paper plots
// in Fig. 8a. Batched requests report each stage's cost divided evenly
// over the batch, so per-request numbers stay comparable across batch
// sizes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/hag.h"
#include "features/feature_store.h"
#include "ml/scaler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/bn_server.h"
#include "storage/lru_cache.h"
#include "util/rng.h"

namespace turbo::server {

struct PredictionConfig {
  /// Online blocking threshold (Section VI-E uses 0.85).
  double threshold = 0.85;
  /// Run the tape-free forward (GnnModel::EmbedInference) instead of the
  /// autograd forward. Equivalent predictions (float-tolerance, see
  /// tests/core/inference_equivalence_test); skips all tape allocation
  /// and runs the runtime-dispatched SIMD kernels. Off by default so
  /// existing callers keep byte-for-byte behavior.
  bool use_inference_path = false;
  /// Serve from int8 row-quantized weights (la/quant.h). Requires
  /// use_inference_path; the model's weights are quantized once at
  /// server construction. Predictions change within the AUC-equivalence
  /// gate of tests/core/quantized_inference_test (|dAUC| <= 0.002).
  bool quantized_inference = false;
  /// Capacity (entries) of the snapshot-versioned prediction cache;
  /// 0 disables it. Keys are (shard_tag, snapshot version, uid), so a
  /// published snapshot implicitly invalidates every cached prediction.
  size_t cache_capacity = 0;
  /// Identity of the BN shard this server fronts in a BnCluster (0 for
  /// a standalone server). Mixed into every cache key: each shard
  /// numbers its snapshot versions independently, so the tag keeps
  /// shard key streams decorrelated (within one server keys are
  /// exactly injective either way; see CacheKey).
  uint32_t shard_tag = 0;
  /// Registry receiving the server's predict_* metrics. Not owned;
  /// null = a private per-server registry (isolates test/bench
  /// instances). Pass the BN server's registry to get one combined
  /// serving-path dump.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Coalescing-queue configuration for StartBatching().
struct BatchingConfig {
  /// Largest batch a worker executes in one HandleBatch call.
  int max_batch_size = 16;
  /// Worker threads draining the queue.
  int workers = 2;
  /// How long a worker waits for the queue to fill past one request
  /// before running a partial batch.
  double max_wait_ms = 1.0;
  /// Hard cap on queued requests; 0 = unbounded (the pre-admission-
  /// control behavior). Beyond the cap a submission is rejected
  /// immediately with a shed response — under sustained overload the
  /// queue would only grow until every entry misses its deadline, so
  /// bounding it is what keeps goodput from collapsing.
  size_t max_queue = 0;
};

struct PredictionResponse {
  double fraud_probability = 0.0;
  bool blocked = false;
  int subgraph_nodes = 0;
  /// Id of the request within this server (1-based, monotonic).
  uint64_t request_id = 0;
  /// Version of the BN snapshot this prediction was served against.
  uint64_t snapshot_version = 0;
  /// Size of the HandleBatch call that served this request (1 for
  /// Handle()).
  int batch_size = 1;
  /// True when the prediction came out of the snapshot-versioned cache
  /// (no sampling / features / forward ran for this uid).
  bool cache_hit = false;
  /// True when admission control dropped the request — its deadline
  /// passed while queued, or the queue cap rejected it outright. No
  /// sampling/features/inference ran; fraud_probability is 0, blocked
  /// is false, and request_id stays 0 (shed work never enters the
  /// serving pipeline).
  bool shed = false;
  // Per-module latency (milliseconds): wall-clock compute plus modeled
  // storage cost; for batched requests, the batch stage cost divided
  // evenly over its requests.
  double sampling_ms = 0.0;
  double feature_ms = 0.0;
  double inference_ms = 0.0;
  double total_ms = 0.0;
};

class PredictionServer {
 public:
  /// Deadlines are absolute steady-clock points (a relative budget is
  /// `steady_clock::now() + budget`); Deadline::max() means "no
  /// deadline".
  using Deadline = std::chrono::steady_clock::time_point;
  /// Completion callback for SubmitCallback. Invoked exactly once, on a
  /// batch worker thread for executed/deadline-shed requests or on the
  /// submitting thread for queue-cap rejections and the synchronous
  /// fallback. Must not call back into StartBatching/StopBatching.
  using DoneCallback = std::function<void(const PredictionResponse&)>;

  /// `model` must already be trained; `scaler` must be the one fitted on
  /// the training features; `features` serves raw (unscaled) rows.
  PredictionServer(PredictionConfig config, BnServer* bn,
                   features::FeatureStore* features, core::Hag* model,
                   const ml::StandardScaler* scaler);
  ~PredictionServer();

  /// Handles one audit request for `uid` at server time.
  PredictionResponse Handle(UserId uid);

  /// Handles a micro-batch: one merged subgraph over all `uids` from a
  /// single pinned snapshot, one merged forward. Responses are in
  /// `uids` order. Thread-safe; concurrent calls batch independently.
  std::vector<PredictionResponse> HandleBatch(
      const std::vector<UserId>& uids);

  /// Starts the coalescing queue (idempotent; restarts with new config
  /// if already running).
  void StartBatching(BatchingConfig config);
  /// Drains the queue and joins the workers (no-op when not running).
  void StopBatching();
  /// Enqueues one request for batched execution. Falls back to a
  /// synchronous Handle() when the queue is not running.
  std::future<PredictionResponse> SubmitAsync(UserId uid);
  /// Like SubmitAsync, but the request is dropped (shed response) if
  /// `deadline` passes before a worker gets to it, or immediately if
  /// the queue is at BatchingConfig::max_queue.
  std::future<PredictionResponse> SubmitWithDeadline(UserId uid,
                                                     Deadline deadline);
  /// Callback form of SubmitWithDeadline — the open-loop load generator
  /// uses this to stamp completion times on the worker thread, without
  /// a future hand-off adding scheduler noise to the measurement.
  /// Returns false when the queue cap rejected the request at admission
  /// (the callback has already run with a shed response by then).
  bool SubmitCallback(UserId uid, Deadline deadline, DoneCallback done);

  /// Per-stage latency histograms (Fig. 8a breakdown), backed by the
  /// metrics registry.
  const obs::Histogram& sampling_latency() const { return *sample_ms_; }
  const obs::Histogram& feature_latency() const { return *feature_ms_; }
  const obs::Histogram& inference_latency() const {
    return *inference_ms_;
  }
  const obs::Histogram& total_latency() const { return *total_ms_; }

  /// The registry this server reports into (config.metrics or the
  /// private default).
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// (shard_tag, snapshot version, uid) -> cache key. UserId is
  /// 32-bit, so version and uid pack losslessly into one word; the
  /// shard tag is folded in through a bijective mix (MixSeeds is
  /// injective for a fixed tag), so keys never collide within a shard
  /// and are decorrelated across shards. Exposed for the keying test.
  static uint64_t CacheKey(uint32_t shard_tag, UserId uid,
                           uint64_t version) {
    const uint64_t packed =
        (version << 32) | static_cast<uint64_t>(uid);
    return shard_tag == 0 ? packed : MixSeeds(shard_tag, packed);
  }

 private:
  struct CachedPrediction {
    double probability = 0.0;
    int subgraph_nodes = 0;
  };
  struct PendingRequest {
    UserId uid = 0;
    Deadline deadline = Deadline::max();
    DoneCallback done;
  };

  /// Response for a request admission control dropped.
  static PredictionResponse ShedResponse();

  void BatchWorkerLoop();

  PredictionConfig config_;
  BnServer* bn_;
  features::FeatureStore* features_;
  core::Hag* model_;
  const ml::StandardScaler* scaler_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* blocked_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* deadline_shed_ = nullptr;
  obs::Counter* queue_rejected_ = nullptr;
  obs::Gauge* queue_depth_g_ = nullptr;
  obs::Histogram* sample_ms_ = nullptr;
  obs::Histogram* feature_ms_ = nullptr;
  obs::Histogram* inference_ms_ = nullptr;
  obs::Histogram* total_ms_ = nullptr;
  obs::Histogram* subgraph_nodes_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;

  // Snapshot-versioned prediction cache (LruCache is not thread-safe;
  // all access goes through cache_mu_). cache_version_ tracks the last
  // snapshot version seen so a publish drops the now-stale entries in
  // one Clear instead of waiting for LRU churn.
  std::mutex cache_mu_;
  storage::LruCache<uint64_t, CachedPrediction> cache_;
  uint64_t cache_version_ = 0;

  // Coalescing queue state.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  std::vector<std::thread> batch_workers_;
  BatchingConfig batching_;
  bool batching_running_ = false;
};

}  // namespace turbo::server
