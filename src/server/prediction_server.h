// Real-time prediction server (Figure 2): orchestrates one audit request —
// subgraph sampling from the BN server, feature retrieval from the
// feature management module, and HAG inference — and reports the
// per-module latency split of Fig. 8a.
//
// Latency accounting: compute stages (sampling, batch assembly, model
// forward) are measured in real wall-clock time; storage accesses
// additionally charge their modeled cost to a SimClock so the cached vs
// uncached comparison of Section V is reproducible without real network
// round-trips (see DESIGN.md §2). Every request runs under an
// obs::StageTimer whose spans land in `predict_<stage>_ms` histograms of
// the server's MetricsRegistry — the per-stage breakdown the paper plots
// in Fig. 8a.
#pragma once

#include <memory>

#include "core/hag.h"
#include "features/feature_store.h"
#include "ml/scaler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/bn_server.h"

namespace turbo::server {

struct PredictionConfig {
  /// Online blocking threshold (Section VI-E uses 0.85).
  double threshold = 0.85;
  /// Registry receiving the server's predict_* metrics. Not owned;
  /// null = a private per-server registry (isolates test/bench
  /// instances). Pass the BN server's registry to get one combined
  /// serving-path dump.
  obs::MetricsRegistry* metrics = nullptr;
};

struct PredictionResponse {
  double fraud_probability = 0.0;
  bool blocked = false;
  int subgraph_nodes = 0;
  /// Id of the request within this server (1-based, monotonic).
  uint64_t request_id = 0;
  // Per-module latency (milliseconds): wall-clock compute plus modeled
  // storage cost.
  double sampling_ms = 0.0;
  double feature_ms = 0.0;
  double inference_ms = 0.0;
  double total_ms = 0.0;
};

class PredictionServer {
 public:
  /// `model` must already be trained; `scaler` must be the one fitted on
  /// the training features; `features` serves raw (unscaled) rows.
  PredictionServer(PredictionConfig config, BnServer* bn,
                   features::FeatureStore* features, core::Hag* model,
                   const ml::StandardScaler* scaler);

  /// Handles one audit request for `uid` at server time.
  PredictionResponse Handle(UserId uid);

  /// Per-stage latency histograms (Fig. 8a breakdown), backed by the
  /// metrics registry.
  const obs::Histogram& sampling_latency() const { return *sample_ms_; }
  const obs::Histogram& feature_latency() const { return *feature_ms_; }
  const obs::Histogram& inference_latency() const {
    return *inference_ms_;
  }
  const obs::Histogram& total_latency() const { return *total_ms_; }

  /// The registry this server reports into (config.metrics or the
  /// private default).
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  PredictionConfig config_;
  BnServer* bn_;
  features::FeatureStore* features_;
  core::Hag* model_;
  const ml::StandardScaler* scaler_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* blocked_ = nullptr;
  obs::Histogram* sample_ms_ = nullptr;
  obs::Histogram* feature_ms_ = nullptr;
  obs::Histogram* inference_ms_ = nullptr;
  obs::Histogram* total_ms_ = nullptr;
  obs::Histogram* subgraph_nodes_ = nullptr;
};

}  // namespace turbo::server
