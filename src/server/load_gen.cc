#include "server/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <thread>

#include "util/rng.h"

namespace turbo::server {

namespace {

using Clock = std::chrono::steady_clock;

double ToMillis(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

struct Arrival {
  double t_s = 0.0;
  bool prediction = true;
};

/// Pre-generated arrival times: the open-loop schedule exists before
/// the run starts, so lateness in dispatching an arrival can never thin
/// the offered load (the coordinated-omission fix).
void AppendArrivals(double rate, double duration_s, bool poisson,
                    uint64_t seed, bool prediction,
                    std::vector<Arrival>* out) {
  if (rate <= 0.0) return;
  Rng rng(Mix64(seed));
  double t = 0.0;
  for (;;) {
    if (poisson) {
      t += -std::log(1.0 - rng.NextDouble()) / rate;
    } else {
      t += 1.0 / rate;
    }
    if (t >= duration_s) return;
    out->push_back(Arrival{t, prediction});
  }
}

}  // namespace

OpenLoopLoadGen::OpenLoopLoadGen(LoadGenConfig config,
                                 PredictionServer* prediction,
                                 BnServer* bn,
                                 obs::MetricsRegistry* registry)
    : config_(config),
      prediction_(prediction),
      bn_(bn),
      registry_(registry) {
  TURBO_CHECK(prediction_ != nullptr);
  TURBO_CHECK(registry_ != nullptr);
  TURBO_CHECK_GT(config_.prediction_rate, 0.0);
  TURBO_CHECK_GT(config_.duration_s, 0.0);
  TURBO_CHECK_GT(config_.slo_ms, 0.0);
  if (config_.ingest_rate > 0.0) TURBO_CHECK(bn_ != nullptr);
}

LoadGenResult OpenLoopLoadGen::Run(const std::vector<UserId>& targets,
                                   const BehaviorLogList& ingest_pool) {
  TURBO_CHECK_GT(targets.size(), 0u);
  const bool ingest = config_.ingest_rate > 0.0 && !ingest_pool.empty();

  std::vector<Arrival> schedule;
  AppendArrivals(config_.prediction_rate, config_.duration_s,
                 config_.poisson, config_.seed, /*prediction=*/true,
                 &schedule);
  AppendArrivals(ingest ? config_.ingest_rate : 0.0, config_.duration_s,
                 config_.poisson, config_.seed + 1, /*prediction=*/false,
                 &schedule);
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.t_s < b.t_s;
                   });

  obs::Histogram* e2e_ms = registry_->GetHistogram("load_e2e_latency_ms");
  obs::Histogram* ingest_ms =
      registry_->GetHistogram("load_ingest_apply_ms");
  const uint64_t e2e_base = e2e_ms->count();

  LoadGenResult r;
  std::atomic<size_t> served{0};
  std::atomic<size_t> shed_any{0};  // deadline sheds + admission rejects
  std::atomic<size_t> in_deadline{0};

  // Intended offer times of ring entries, FIFO (one producer, one
  // consumer; the ring preserves single-producer order).
  std::mutex ingest_mu;
  std::deque<Clock::time_point> ingest_intended;
  std::atomic<size_t> ingest_applied{0};
  std::atomic<bool> drain_stop{false};
  std::thread drain;
  if (ingest) {
    drain = std::thread([&] {
      for (;;) {
        const size_t n = bn_->DrainIngest(config_.ingest_drain_batch);
        if (n > 0) {
          const auto now = Clock::now();
          std::lock_guard<std::mutex> lock(ingest_mu);
          for (size_t i = 0; i < n; ++i) {
            ingest_ms->Observe(ToMillis(now - ingest_intended.front()));
            ingest_intended.pop_front();
          }
          ingest_applied.fetch_add(n, std::memory_order_relaxed);
        } else if (drain_stop.load(std::memory_order_acquire) &&
                   bn_->ingest_queue_depth() == 0) {
          return;
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }

  prediction_->StartBatching(config_.batching);
  // A small lead keeps the first arrivals from being born late.
  const auto start = Clock::now() + std::chrono::milliseconds(5);
  const auto slo = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(config_.slo_ms));
  const SimTime ingest_stamp = bn_ != nullptr ? bn_->now() : 0;
  size_t next_target = 0;
  size_t next_log = 0;

  for (const Arrival& a : schedule) {
    const auto intended =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(a.t_s));
    // No-op once the generator is behind schedule: the arrival fires
    // immediately and its lateness is charged to the measured latency
    // (measured from `intended`), never dropped from the offered load.
    std::this_thread::sleep_until(intended);
    if (a.prediction) {
      const UserId uid = targets[next_target++ % targets.size()];
      ++r.offered;
      const bool admitted = prediction_->SubmitCallback(
          uid, intended + slo,
          [&, intended](const PredictionResponse& resp) {
            if (resp.shed) {
              shed_any.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            const double ms = ToMillis(Clock::now() - intended);
            e2e_ms->Observe(ms);
            served.fetch_add(1, std::memory_order_relaxed);
            if (ms <= config_.slo_ms) {
              in_deadline.fetch_add(1, std::memory_order_relaxed);
            }
          });
      if (!admitted) ++r.rejected;
    } else {
      BehaviorLog log = ingest_pool[next_log++ % ingest_pool.size()];
      log.time = ingest_stamp;
      ++r.ingest_offered;
      {
        // Publish the intended time before the offer so the drain
        // thread can never pop an entry whose timestamp is missing;
        // a rejected offer takes its timestamp back (we are the only
        // pusher, so it is still at the back).
        std::lock_guard<std::mutex> lock(ingest_mu);
        ingest_intended.push_back(intended);
      }
      if (bn_->OfferIngest(log)) {
        ++r.ingest_accepted;
      } else {
        std::lock_guard<std::mutex> lock(ingest_mu);
        ingest_intended.pop_back();
      }
    }
  }

  // StopBatching drains the queue through the workers, so every
  // submitted request's callback has fired when it returns.
  prediction_->StopBatching();
  if (ingest) {
    drain_stop.store(true, std::memory_order_release);
    drain.join();
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  r.served = served.load();
  r.shed = shed_any.load() - r.rejected;
  r.in_deadline = in_deadline.load();
  r.goodput_rps = r.in_deadline / std::max(r.wall_s, 1e-9);
  r.goodput_frac =
      r.offered > 0
          ? static_cast<double>(r.in_deadline) / r.offered
          : 0.0;
  TURBO_CHECK_EQ(r.served + r.shed + r.rejected, r.offered);
  TURBO_CHECK_EQ(e2e_ms->count() - e2e_base, r.served);
  r.p50_ms = e2e_ms->Percentile(0.50);
  r.p99_ms = e2e_ms->Percentile(0.99);
  r.p999_ms = e2e_ms->Percentile(0.999);
  r.max_ms = e2e_ms->Max();
  r.mean_ms = e2e_ms->Mean();
  r.ingest_rejected = r.ingest_offered - r.ingest_accepted;
  r.ingest_applied = ingest_applied.load();
  r.ingest_p99_ms = ingest_ms->Percentile(0.99);
  return r;
}

}  // namespace turbo::server
