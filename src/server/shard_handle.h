// The cluster's view of one BN shard (DESIGN.md §15): the exact
// operation set BnCluster needs to route, whether the shard is a
// BnServer in this process (LocalShardHandle) or a socket endpoint
// fronted by net::RemoteShardClient. The handle carries the cluster
// contracts, not the transport: Ingest/AdvanceTo/Checkpoint/Recover are
// cluster-writer operations and are serialized by the caller (locally)
// or by the shard's service (remotely); SampleSubgraph and the gauges
// may be called concurrently with the writer.
//
// Durability is shard-local: Checkpoint()/Recover() act on the
// directory the shard itself is rooted in — a remote shard checkpoints
// its *own* disk, the bytes never cross the wire (only the WAL ship
// does that, see net/wal_stream.h).
#pragma once

#include "bn/sampler.h"
#include "storage/behavior_log.h"
#include "util/status.h"

namespace turbo::server {

class BnServer;

class ShardHandle {
 public:
  virtual ~ShardHandle() = default;

  virtual void Ingest(const BehaviorLog& log) = 0;
  virtual bool OfferIngest(const BehaviorLog& log) = 0;
  virtual size_t DrainIngest(size_t max_events) = 0;
  virtual size_t ingest_queue_depth() = 0;
  virtual void AdvanceTo(SimTime now) = 0;
  virtual Status Checkpoint() = 0;
  virtual Status Recover() = 0;
  virtual bn::Subgraph SampleSubgraph(UserId uid) = 0;
  virtual uint64_t snapshot_version() = 0;
  virtual SimTime now() = 0;
  /// Total edges currently held (the cluster's per-shard gauge).
  virtual uint64_t TotalEdges() = 0;
};

/// In-process shard: forwards to a borrowed BnServer. `dir` is the
/// shard's durability directory (empty = WAL-less, Checkpoint/Recover
/// CHECK). Defined out of line in bn_cluster.cc to keep this header
/// free of the BnServer dependency cycle.
class LocalShardHandle final : public ShardHandle {
 public:
  LocalShardHandle(BnServer* server, std::string dir)
      : server_(server), dir_(std::move(dir)) {}

  void Ingest(const BehaviorLog& log) override;
  bool OfferIngest(const BehaviorLog& log) override;
  size_t DrainIngest(size_t max_events) override;
  size_t ingest_queue_depth() override;
  void AdvanceTo(SimTime now) override;
  Status Checkpoint() override;
  Status Recover() override;
  bn::Subgraph SampleSubgraph(UserId uid) override;
  uint64_t snapshot_version() override;
  SimTime now() override;
  uint64_t TotalEdges() override;

  BnServer* server() { return server_; }

 private:
  BnServer* server_;
  std::string dir_;
};

}  // namespace turbo::server
