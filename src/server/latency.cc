#include "server/latency.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace turbo::server {

void LatencyTracker::Record(double millis) {
  TURBO_CHECK_GE(millis, 0.0);
  samples_.push_back(millis);
  sorted_ = false;
}

double LatencyTracker::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / samples_.size();
}

double LatencyTracker::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyTracker::Percentile(double q) const {
  TURBO_CHECK_GE(q, 0.0);
  TURBO_CHECK_LE(q, 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const size_t rank = std::min(
      samples_.size() - 1,
      static_cast<size_t>(std::ceil(q * samples_.size())) == 0
          ? 0
          : static_cast<size_t>(std::ceil(q * samples_.size())) - 1);
  return samples_[rank];
}

std::string LatencyTracker::Summary(const std::string& label) const {
  return StrFormat(
      "%-24s n=%zu mean=%.2fms p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms",
      label.c_str(), count(), Mean(), Percentile(0.5), Percentile(0.99),
      Percentile(0.999), Max());
}

}  // namespace turbo::server
