#include "server/scorecard.h"

#include "util/check.h"

namespace turbo::server {

double ScorecardScore(const float* f) {
  // Feature indices follow datagen::Dataset::feature_names.
  double score = 0.0;
  if (f[4] < 580) score += 2.0;          // credit_score
  else if (f[4] < 620) score += 1.0;
  if (f[5] < 2.0) score += 1.0;          // credit_history_len
  if (f[10] < 0.8) score += 1.5;         // prior_ontime_ratio
  if (f[11] < 0.85) score += 1.0;        // id_verification_score
  if (f[13] < 6.0) score += 1.5;         // phone_age_months
  if (f[14] > 0.5) score += 1.0;         // phone_carrier_risk
  if (f[8] < 30.0) score += 0.5;         // account_age_days
  if (f[22] > 0.15) score += 1.0;        // price_to_income
  if (f[18] > 0.5) score += 0.5;         // night_application
  if (f[25] < 0.7) score += 0.5;         // profile_completeness
  return score;
}

bool Scorecard::Blocks(const la::Matrix& profile_features,
                       UserId uid) const {
  return Score(profile_features, uid) > config_.block_threshold;
}

double Scorecard::Score(const la::Matrix& profile_features,
                        UserId uid) const {
  TURBO_CHECK_LT(uid, profile_features.rows());
  TURBO_CHECK_GE(profile_features.cols(),
                 static_cast<size_t>(datagen::kNumProfileFeatures));
  return ScorecardScore(profile_features.row(uid));
}

}  // namespace turbo::server
