#include "metrics/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace turbo::metrics {

double Confusion::Precision() const {
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

double Confusion::Recall() const {
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double Confusion::FBeta(double beta) const {
  const double p = Precision();
  const double r = Recall();
  const double b2 = beta * beta;
  const double denom = b2 * p + r;
  return denom == 0.0 ? 0.0 : (1.0 + b2) * p * r / denom;
}

double Confusion::Accuracy() const {
  const int64_t total = tp + fp + tn + fn;
  return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

Confusion Confuse(const std::vector<double>& scores,
                  const std::vector<int>& labels, double threshold) {
  TURBO_CHECK_EQ(scores.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    const bool pos = labels[i] != 0;
    if (pred && pos) ++c.tp;
    else if (pred && !pos) ++c.fp;
    else if (!pred && pos) ++c.fn;
    else ++c.tn;
  }
  return c;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  TURBO_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  // Average ranks over tie groups, then Mann–Whitney U.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                           2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  int64_t n_pos = 0;
  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] != 0) {
      ++n_pos;
      rank_sum_pos += rank[k];
    }
  }
  const int64_t n_neg = static_cast<int64_t>(n) - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

Report Evaluate(const std::vector<double>& scores,
                const std::vector<int>& labels, double threshold) {
  Confusion c = Confuse(scores, labels, threshold);
  return Report{c.Precision() * 100.0, c.Recall() * 100.0, c.F1() * 100.0,
                c.F2() * 100.0, RocAuc(scores, labels) * 100.0};
}

MeanVar Aggregate(const std::vector<double>& values) {
  TURBO_CHECK(!values.empty());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return {mean, var};
}

}  // namespace turbo::metrics
