// Binary-classification metrics used across all experiments: precision,
// recall, F1, F2 (recall weighted twice — Table III), and ROC-AUC.
#pragma once

#include <string>
#include <vector>

namespace turbo::metrics {

struct Confusion {
  int64_t tp = 0, fp = 0, tn = 0, fn = 0;

  double Precision() const;
  double Recall() const;
  double FBeta(double beta) const;
  double F1() const { return FBeta(1.0); }
  double F2() const { return FBeta(2.0); }
  double Accuracy() const;
};

/// Thresholded confusion matrix (score >= threshold -> positive).
Confusion Confuse(const std::vector<double>& scores,
                  const std::vector<int>& labels, double threshold = 0.5);

/// Area under the ROC curve via the Mann–Whitney U statistic; ties get a
/// half count. Returns 0.5 when either class is empty.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

/// All Table III columns at once (percentages).
struct Report {
  double precision_pct;
  double recall_pct;
  double f1_pct;
  double f2_pct;
  double auc_pct;
};
Report Evaluate(const std::vector<double>& scores,
                const std::vector<int>& labels, double threshold = 0.5);

/// Mean and (population) variance of repeated-run values.
struct MeanVar {
  double mean;
  double variance;
};
MeanVar Aggregate(const std::vector<double>& values);

}  // namespace turbo::metrics
