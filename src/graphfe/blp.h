// BLP baseline — "Behavior Language Processing" (Min et al., 2018):
// builds an offline user–attribute bipartite graph, extracts handcrafted
// graph features (degrees, two-hop sizes, clustering coefficient,
// quadrangle counts) per user, and feeds them together with the original
// features to a gradient-boosted classifier (LightGBM in the paper, our
// Gbdt here).
#pragma once

#include "graphfe/bipartite.h"
#include "ml/gbdt.h"

namespace turbo::graphfe {

inline constexpr int kNumBlpFeatures = 10;

/// Graph-feature extraction on the bipartite graph: one row per user.
/// Columns: shared-value count, total distinct values, two-hop user
/// count, max co-users through one value, deterministic-type shared
/// count, probabilistic-type shared count, mean value fan-out, user-
/// projection clustering coefficient, quadrangle count, isolation flag.
la::Matrix BlpGraphFeatures(const BipartiteGraph& graph);

struct BlpConfig {
  ml::GbdtConfig gbdt;
  /// Append the original feature vector (the paper's BLP combines its
  /// graph features with the application features).
  bool include_original_features = true;
};

/// Works on per-uid matrices: `x_all` and the graph features are both
/// indexed by uid; train/predict address rows through uid lists.
class Blp {
 public:
  Blp(BlpConfig cfg, const BipartiteGraph& graph)
      : cfg_(cfg), graph_features_(BlpGraphFeatures(graph)),
        booster_(cfg.gbdt) {}

  void Fit(const la::Matrix& x_all, const std::vector<UserId>& train_uids,
           const std::vector<int>& y_train);
  std::vector<double> Predict(const la::Matrix& x_all,
                              const std::vector<UserId>& uids) const;
  std::string name() const { return "BLP"; }

  const la::Matrix& graph_features() const { return graph_features_; }

 private:
  la::Matrix Rows(const la::Matrix& x_all,
                  const std::vector<UserId>& uids) const;

  BlpConfig cfg_;
  la::Matrix graph_features_;
  ml::Gbdt booster_;
};

}  // namespace turbo::graphfe
