// User–value bipartite graph shared by the BLP and DeepTrax baselines.
//
// Both baselines (Min et al. 2018; Bruss et al. 2019) pose the raw
// activity as a bipartite graph between account nodes and attribute/
// transaction nodes, ignoring BN's time-window machinery — that contrast
// is exactly what Table III measures.
#pragma once

#include <unordered_map>
#include <vector>

#include "storage/behavior_log.h"

namespace turbo::graphfe {

class BipartiteGraph {
 public:
  /// Builds from logs, keeping only values observed by >= 2 distinct
  /// users (singleton values carry no relational signal) but counting all
  /// values toward per-user totals.
  static BipartiteGraph FromLogs(const BehaviorLogList& logs,
                                 int num_users);

  int num_users() const { return num_users_; }
  size_t num_values() const { return value_users_.size(); }

  /// Shared values adjacent to a user (indices into the value table).
  const std::vector<uint32_t>& UserValues(UserId u) const {
    return user_values_[u];
  }
  /// Users adjacent to a value node.
  const std::vector<UserId>& ValueUsers(uint32_t value_idx) const {
    return value_users_[value_idx];
  }
  BehaviorType ValueType(uint32_t value_idx) const {
    return value_types_[value_idx];
  }
  /// Total distinct values a user touched (including singletons).
  int TotalDistinctValues(UserId u) const { return total_values_[u]; }

 private:
  int num_users_ = 0;
  std::vector<std::vector<uint32_t>> user_values_;
  std::vector<std::vector<UserId>> value_users_;
  std::vector<BehaviorType> value_types_;
  std::vector<int> total_values_;
};

}  // namespace turbo::graphfe
