#include "graphfe/deepwalk.h"

#include <cmath>

namespace turbo::graphfe {

namespace {

inline float SigmoidStable(float z) {
  return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                   : std::exp(z) / (1.0f + std::exp(z));
}

/// One skip-gram-with-negative-sampling update on (center, context).
void SgnsUpdate(la::Matrix* emb, la::Matrix* ctx, UserId center,
                UserId context, const std::vector<UserId>& unigram,
                int negatives, float lr, Rng* rng) {
  const size_t d = emb->cols();
  float* wc = emb->row(center);
  std::vector<float> grad_center(d, 0.0f);
  auto update_pair = [&](UserId target, float label) {
    float* wt = ctx->row(target);
    float dot = 0.0f;
    for (size_t k = 0; k < d; ++k) dot += wc[k] * wt[k];
    const float g = lr * (label - SigmoidStable(dot));
    for (size_t k = 0; k < d; ++k) {
      grad_center[k] += g * wt[k];
      wt[k] += g * wc[k];
    }
  };
  update_pair(context, 1.0f);
  for (int neg = 0; neg < negatives; ++neg) {
    UserId sample = unigram[rng->NextUint(unigram.size())];
    if (sample == context) continue;
    update_pair(sample, 0.0f);
  }
  for (size_t k = 0; k < d; ++k) wc[k] += grad_center[k];
}

}  // namespace

la::Matrix DeepWalkEmbeddings(const BipartiteGraph& graph,
                              const DeepWalkConfig& config) {
  TURBO_CHECK_GT(config.embedding_dim, 0);
  const int n = graph.num_users();
  Rng rng(config.seed);
  la::Matrix emb =
      la::Matrix::Randn(n, config.embedding_dim, &rng,
                        0.5f / std::sqrt(static_cast<float>(
                                   config.embedding_dim)));
  la::Matrix ctx(n, config.embedding_dim);  // output vectors, zero-init

  // Unigram table for negative sampling: connected users, frequency by
  // shared-value degree.
  std::vector<UserId> unigram;
  for (int u = 0; u < n; ++u) {
    const size_t deg = graph.UserValues(static_cast<UserId>(u)).size();
    for (size_t k = 0; k < std::min<size_t>(deg, 16); ++k) {
      unigram.push_back(static_cast<UserId>(u));
    }
  }
  if (unigram.empty()) return emb;

  std::vector<UserId> walk;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (int start = 0; start < n; ++start) {
      if (graph.UserValues(static_cast<UserId>(start)).empty()) continue;
      for (int w = 0; w < config.walks_per_user; ++w) {
        // user -> value -> user random walk, recording user positions.
        walk.clear();
        UserId cur = static_cast<UserId>(start);
        walk.push_back(cur);
        for (int step = 1; step < config.walk_length; ++step) {
          const auto& values = graph.UserValues(cur);
          if (values.empty()) break;
          const uint32_t v = values[rng.NextUint(values.size())];
          const auto& users = graph.ValueUsers(v);
          cur = users[rng.NextUint(users.size())];
          walk.push_back(cur);
        }
        // Skip-gram pairs within the window.
        for (size_t i = 0; i < walk.size(); ++i) {
          const size_t lo = i >= static_cast<size_t>(config.window)
                                ? i - config.window
                                : 0;
          const size_t hi =
              std::min(walk.size() - 1, i + config.window);
          for (size_t j = lo; j <= hi; ++j) {
            if (i == j || walk[i] == walk[j]) continue;
            SgnsUpdate(&emb, &ctx, walk[i], walk[j], unigram,
                       config.negatives, config.lr, &rng);
          }
        }
      }
    }
  }
  return emb;
}

la::Matrix DeepTrax::Rows(const la::Matrix& x_all,
                          const std::vector<UserId>& uids) const {
  const size_t d_emb = embeddings_.cols();
  const size_t extra =
      cfg_.include_original_features ? x_all.cols() : 0;
  la::Matrix out(uids.size(), d_emb + extra);
  for (size_t i = 0; i < uids.size(); ++i) {
    TURBO_CHECK_LT(uids[i], embeddings_.rows());
    const float* e = embeddings_.row(uids[i]);
    std::copy(e, e + d_emb, out.row(i));
    if (extra) {
      const float* xf = x_all.row(uids[i]);
      std::copy(xf, xf + extra, out.row(i) + d_emb);
    }
  }
  return out;
}

void DeepTrax::Fit(const la::Matrix& x_all,
                   const std::vector<UserId>& train_uids,
                   const std::vector<int>& y_train) {
  TURBO_CHECK_EQ(train_uids.size(), y_train.size());
  booster_.Fit(Rows(x_all, train_uids), y_train);
}

std::vector<double> DeepTrax::Predict(
    const la::Matrix& x_all, const std::vector<UserId>& uids) const {
  return booster_.PredictProba(Rows(x_all, uids));
}

}  // namespace turbo::graphfe
