// DeepTrax (DTX) baseline — Bruss et al., 2019: embeds accounts by
// running simplified two-hop DeepWalk (Perozzi et al., 2014) on the
// user–attribute bipartite graph: truncated random walks alternate
// user -> value -> user hops, and skip-gram with negative sampling learns
// user embeddings from walk co-occurrence.
//
// Table III evaluates two classifier variants on top:
//   DTX1: GBDT on the embedding alone.
//   DTX2: GBDT on [embedding ; original features].
#pragma once

#include <cstdint>

#include "graphfe/bipartite.h"
#include "ml/gbdt.h"
#include "util/rng.h"

namespace turbo::graphfe {

struct DeepWalkConfig {
  int embedding_dim = 32;
  int walks_per_user = 6;
  int walk_length = 6;     // user hops per walk ("two-hop" pairs dominate)
  int window = 2;          // user-position context window within a walk
  int negatives = 4;
  int epochs = 2;
  float lr = 0.05f;
  uint64_t seed = 23;
};

/// Learns user embeddings; rows indexed by uid. Users that never appear
/// in a walk (isolated) keep their random-init rows.
la::Matrix DeepWalkEmbeddings(const BipartiteGraph& graph,
                              const DeepWalkConfig& config);

struct DeepTraxConfig {
  DeepWalkConfig walk;
  ml::GbdtConfig gbdt;
  /// false -> DTX1 (embedding only), true -> DTX2 (plus original
  /// features).
  bool include_original_features = false;
};

class DeepTrax {
 public:
  DeepTrax(DeepTraxConfig cfg, const BipartiteGraph& graph)
      : cfg_(cfg),
        embeddings_(DeepWalkEmbeddings(graph, cfg.walk)),
        booster_(cfg.gbdt) {}

  void Fit(const la::Matrix& x_all, const std::vector<UserId>& train_uids,
           const std::vector<int>& y_train);
  std::vector<double> Predict(const la::Matrix& x_all,
                              const std::vector<UserId>& uids) const;
  std::string name() const {
    return cfg_.include_original_features ? "DTX2" : "DTX1";
  }

  const la::Matrix& embeddings() const { return embeddings_; }

 private:
  la::Matrix Rows(const la::Matrix& x_all,
                  const std::vector<UserId>& uids) const;

  DeepTraxConfig cfg_;
  la::Matrix embeddings_;
  ml::Gbdt booster_;
};

}  // namespace turbo::graphfe
