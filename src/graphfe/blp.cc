#include "graphfe/blp.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace turbo::graphfe {

BipartiteGraph BipartiteGraph::FromLogs(const BehaviorLogList& logs,
                                        int num_users) {
  TURBO_CHECK_GT(num_users, 0);
  struct Key {
    BehaviorType type;
    ValueId value;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.value * 0x9e3779b97f4a7c15ULL +
                                   static_cast<uint64_t>(k.type));
    }
  };
  std::unordered_map<Key, std::set<UserId>, KeyHash> users_of;
  std::vector<std::unordered_set<ValueId>> totals(num_users);
  for (const auto& l : logs) {
    TURBO_CHECK_LT(l.uid, static_cast<UserId>(num_users));
    users_of[Key{l.type, l.value}].insert(l.uid);
    totals[l.uid].insert(l.value);
  }

  BipartiteGraph g;
  g.num_users_ = num_users;
  g.user_values_.resize(num_users);
  g.total_values_.resize(num_users);
  for (int u = 0; u < num_users; ++u) {
    g.total_values_[u] = static_cast<int>(totals[u].size());
  }
  for (const auto& [key, users] : users_of) {
    if (users.size() < 2) continue;
    const uint32_t idx = static_cast<uint32_t>(g.value_users_.size());
    g.value_users_.emplace_back(users.begin(), users.end());
    g.value_types_.push_back(key.type);
    for (UserId u : users) g.user_values_[u].push_back(idx);
  }
  return g;
}

namespace {

bool IsDeterministicType(BehaviorType t) {
  // Section VI-C: Device Id, IMEI, IMSI convey near-certain relations.
  return t == BehaviorType::kDeviceId || t == BehaviorType::kImei ||
         t == BehaviorType::kImsi;
}

}  // namespace

la::Matrix BlpGraphFeatures(const BipartiteGraph& graph) {
  const int n = graph.num_users();
  la::Matrix f(n, kNumBlpFeatures);
  std::unordered_map<UserId, int> co_users;  // neighbor -> shared values
  for (int u = 0; u < n; ++u) {
    const auto& values = graph.UserValues(static_cast<UserId>(u));
    co_users.clear();
    int deterministic = 0, probabilistic = 0;
    size_t fanout_sum = 0, max_co = 0;
    for (uint32_t v : values) {
      const auto& users = graph.ValueUsers(v);
      fanout_sum += users.size();
      max_co = std::max(max_co, users.size() - 1);
      if (IsDeterministicType(graph.ValueType(v))) {
        ++deterministic;
      } else {
        ++probabilistic;
      }
      for (UserId other : users) {
        if (other != static_cast<UserId>(u)) ++co_users[other];
      }
    }
    // Quadrangles: user-value-user'-value' 4-cycles == pairs of shared
    // values with the same co-user: sum over co-users of C(shared, 2).
    double quads = 0.0;
    for (const auto& [other, shared] : co_users) {
      quads += shared * (shared - 1) / 2.0;
    }
    // Clustering coefficient of the user projection around u: fraction of
    // co-user pairs that also share a value with each other. Exact
    // computation is O(deg^2 * deg_v); cap the neighborhood for
    // tractability on hub users.
    double clustering = 0.0;
    {
      std::vector<UserId> nbrs;
      nbrs.reserve(co_users.size());
      for (const auto& [other, cnt] : co_users) nbrs.push_back(other);
      std::sort(nbrs.begin(), nbrs.end());
      if (nbrs.size() > 30) nbrs.resize(30);
      int linked = 0, pairs = 0;
      for (size_t a = 0; a < nbrs.size(); ++a) {
        for (size_t b = a + 1; b < nbrs.size(); ++b) {
          ++pairs;
          // Are nbrs[a] and nbrs[b] connected (share any value)?
          const auto& va = graph.UserValues(nbrs[a]);
          bool hit = false;
          for (uint32_t v : va) {
            const auto& users = graph.ValueUsers(v);
            if (std::binary_search(users.begin(), users.end(), nbrs[b])) {
              hit = true;
              break;
            }
          }
          linked += hit;
        }
      }
      clustering = pairs > 0 ? static_cast<double>(linked) / pairs : 0.0;
    }

    f(u, 0) = static_cast<float>(values.size());
    f(u, 1) = static_cast<float>(
        graph.TotalDistinctValues(static_cast<UserId>(u)));
    f(u, 2) = static_cast<float>(co_users.size());
    f(u, 3) = static_cast<float>(max_co);
    f(u, 4) = static_cast<float>(deterministic);
    f(u, 5) = static_cast<float>(probabilistic);
    f(u, 6) = values.empty()
                  ? 0.0f
                  : static_cast<float>(fanout_sum) / values.size();
    f(u, 7) = static_cast<float>(clustering);
    f(u, 8) = static_cast<float>(quads);
    f(u, 9) = values.empty() ? 1.0f : 0.0f;
  }
  return f;
}

la::Matrix Blp::Rows(const la::Matrix& x_all,
                     const std::vector<UserId>& uids) const {
  const size_t extra =
      cfg_.include_original_features ? x_all.cols() : 0;
  la::Matrix out(uids.size(), kNumBlpFeatures + extra);
  for (size_t i = 0; i < uids.size(); ++i) {
    TURBO_CHECK_LT(uids[i], graph_features_.rows());
    const float* gf = graph_features_.row(uids[i]);
    std::copy(gf, gf + kNumBlpFeatures, out.row(i));
    if (extra) {
      TURBO_CHECK_LT(uids[i], x_all.rows());
      const float* xf = x_all.row(uids[i]);
      std::copy(xf, xf + extra, out.row(i) + kNumBlpFeatures);
    }
  }
  return out;
}

void Blp::Fit(const la::Matrix& x_all, const std::vector<UserId>& train_uids,
              const std::vector<int>& y_train) {
  TURBO_CHECK_EQ(train_uids.size(), y_train.size());
  booster_.Fit(Rows(x_all, train_uids), y_train);
}

std::vector<double> Blp::Predict(const la::Matrix& x_all,
                                 const std::vector<UserId>& uids) const {
  return booster_.PredictProba(Rows(x_all, uids));
}

}  // namespace turbo::graphfe
