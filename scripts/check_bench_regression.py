#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a freshly measured BENCH_snapshot.json against the committed
baseline and fails (exit 1) when sampling throughput regressed more than
the allowed fraction. Thread-for-thread comparison on samples_per_second;
the worst ratio across thread counts decides.

CI machines differ from the machine that recorded the baseline, so the
default tolerance is deliberately loose (20%, the ISSUE 2 contract) and
can be widened with --tolerance or BENCH_TOLERANCE for noisy runners.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance=0.2]
"""
import argparse
import json
import os
import sys


def load_sampling(path):
    with open(path) as f:
        data = json.load(f)
    runs = data.get("sampling", [])
    if not runs:
        sys.exit(f"error: no 'sampling' runs in {path}")
    return {run["threads"]: run["samples_per_second"] for run in runs}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.2")),
        help="allowed fractional regression (default 0.2 = 20%%)",
    )
    args = parser.parse_args()

    baseline = load_sampling(args.baseline)
    fresh = load_sampling(args.fresh)

    failed = False
    for threads in sorted(baseline):
        if threads not in fresh:
            print(f"threads={threads}: missing from fresh run — FAIL")
            failed = True
            continue
        base = baseline[threads]
        now = fresh[threads]
        ratio = now / base if base > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"threads={threads}: baseline={base:.0f}/s fresh={now:.0f}/s "
            f"ratio={ratio:.2f} [{status}]"
        )

    if failed:
        print(
            f"\nFAIL: sampling throughput regressed more than "
            f"{args.tolerance:.0%} vs {args.baseline}"
        )
        return 1
    print(f"\nPASS: throughput within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
