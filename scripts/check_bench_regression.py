#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares a freshly measured bench JSON against the committed baseline
and fails (exit 1) on a regression beyond the allowed fraction. The
bench type is auto-detected from the JSON shape:

  - "bench": "snapshot_concurrency"  -> sampling[].samples_per_second
    per thread count (higher is better)
  - "bench": "window_jobs"           -> runs[].updates_per_second per
    engine (higher is better)
  - "bench": "recovery"              -> recovery_speedup and
    wal_replay_records_per_s (higher is better)
  - "bench": "incremental"           -> publish_speedup and
    checkpoint_shrink (higher is better)
  - "bench": "serving_throughput"    -> runs[].requests_per_second per
    (mode, threads, batch) cell (higher is better)
  - "bench": "cluster"               -> runs[].events_per_second per
    (shards, threads) ingest cell and catchup_speedup, the standby
    catch-up + promote vs cold-WAL-rebuild ratio (higher is better)
  - "bench": "open_loop"             -> per gated sub-saturation rate:
    goodput_frac (in-deadline completions / offered) and p99_headroom
    (SLO/p99, clamped by the bench), plus the overload goodput ratio
    (all higher is better)
  - "bench": "net"                   -> flat loopback-transport cells:
    RPC round-trips/s, large-echo MB/s, WAL-ship MB/s, re-ship no-op
    rounds/s (higher is better)
  - google-benchmark output ("benchmarks" list) -> real_time per
    benchmark name (lower is better)

Every emitted summary line carries a `[hw=N fp=XXXXXXXX]` machine tag:
the fresh run's recorded hardware_threads plus a fingerprint of the
machine the gate ran on, so mismatched verdicts across CI runs are
attributable from the logs alone.

Every bench JSON records the core count it ran on (hardware_threads for
our benches, context.num_cpus for google-benchmark). Throughput numbers
from different core counts are not comparable — the committed baselines
were recorded on a single-core box — so when baseline and fresh
disagree on core count the gate prints a warning and SKIPS itself
(exit 0) instead of producing a meaningless verdict.

When both runs were recorded on a SINGLE core, multi-thread cells
(threads=N / .../tN/... with N > 1) measure scheduler round-robin, not
parallel scale-up — the curve is flat by construction and a real
regression in one cell drowns in noise from the others. Those labels
are therefore dropped from the gate, each with an explicit
"SKIPPED (single-core)" line, and the fresh JSON is annotated with
"parallel_gates_skipped" so the artifact records which cells were never
gated. If the drop leaves NOTHING to gate the script fails (exit 1)
instead of passing vacuously — a misdetected runner must not
green-light a regression.

CI machines are also noisy even at matching core counts, so the default
tolerance is deliberately loose (20%, the ISSUE 2 contract) and can be
widened with --tolerance or BENCH_TOLERANCE.

Independently of the baseline comparison, the FRESH run is held to
within-run SIMD floors when it carries the cells for them (see
check_simd_floors): dispatched GEMM >= 3x forced-scalar and dispatched
SpMM >= 2x forced-scalar in the micro-kernel JSON, and the serving
inference cell no slower than the forced-scalar serving cell.
These floors compare cells from the same run on the same machine, so
they bind even when the core-count skip disables the baseline gate.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance=0.2]
"""
import argparse
import hashlib
import json
import os
import platform
import re
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def runner_fingerprint():
    """Short stable identity of the machine THIS gate is running on.

    Emitted on every summary line so that when two CI runs disagree, the
    logs themselves say whether they came from the same class of runner
    (the committed baselines were recorded on a known box; a verdict
    from a different one is suspect even at matching core counts).
    """
    ident = "|".join(
        (
            platform.machine(),
            platform.system(),
            platform.processor() or "unknown-cpu",
            str(os.cpu_count()),
        )
    )
    return hashlib.sha1(ident.encode()).hexdigest()[:8]


def machine_tag(fresh_hw):
    """`[hw=N fp=XXXXXXXX]` suffix for every emitted summary line."""
    hw = "?" if fresh_hw is None else fresh_hw
    return f"[hw={hw} fp={runner_fingerprint()}]"


def hardware_threads(data):
    """Core count the bench ran on, or None if the JSON predates it."""
    if "hardware_threads" in data:
        return data["hardware_threads"]
    context = data.get("context", {})
    return context.get("num_cpus")


def parallel_thread_count(label):
    """Thread count a metric label is keyed by, or None if unthreaded.

    Recognizes the two threaded label shapes this gate produces:
    "threads=N" (snapshot_concurrency) and ".../tN/..." cells
    (serving_throughput).
    """
    m = re.fullmatch(r"threads=(\d+)", label)
    if m is None:
        m = re.search(r"/t(\d+)/", label)
    return int(m.group(1)) if m else None


def drop_parallel_labels(metrics):
    """Splits metrics into (kept, skipped-label list) for a 1-core box."""
    skipped = sorted(
        label for label in metrics
        if (parallel_thread_count(label) or 1) > 1
    )
    kept = {k: v for k, v in metrics.items() if k not in skipped}
    return kept, skipped


def annotate_skipped(path, skipped):
    """Records the ungated labels in the bench JSON itself."""
    data = load(path)
    data["parallel_gates_skipped"] = skipped
    with open(path, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


def check_simd_floors(data, path, tolerance):
    """Self-contained SIMD floors on the FRESH run, if it carries them.

    These run before the core-count skip: they compare cells within one
    JSON, so they are valid on any hardware. Two shapes are recognized:

      - micro-kernel google-benchmark JSON with a "turbo_best_isa"
        context: dispatched GEMM must be >= 3x the forced-scalar GEMM at
        n=256 and dispatched SpMM >= 2x forced-scalar SpMM (the SIMD
        acceptance bars). Skipped when the host's best ISA is scalar —
        there is nothing to vectorize with.
      - serving JSON with an "inference[scalar]" cell and a non-scalar
        "kernel_isa": the dispatched inference cell must not fall more
        than `tolerance` below the forced-scalar cell (serving is
        sampling/feature-bound, so the gate is no-slower-than-scalar,
        not a speedup floor). The int8 cell is deliberately ungated on
        speed — quantization trades per-element compute for a 4x weight
        memory shrink and is admitted by an AUC gate, not a throughput
        one.

    Returns a list of failure strings (empty = pass/skip).
    """
    failures = []
    if "benchmarks" in data:
        isa = data.get("context", {}).get("turbo_best_isa", "scalar")
        if isa == "scalar":
            print("NOTE: best ISA is scalar — SIMD floor gates skipped.")
            return failures
        times = {
            b["name"]: b["real_time"]
            for b in data["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"
        }
        floors = [
            ("BM_MatMulDispatch/256", "BM_MatMulScalar/256", 3.0),
            ("BM_SpMMDispatch", "BM_SpMMScalar", 2.0),
        ]
        for simd, scalar, floor in floors:
            if simd not in times or scalar not in times:
                continue  # filtered run; nothing to gate
            speedup = times[scalar] / times[simd]
            status = "ok" if speedup >= floor else "BELOW FLOOR"
            print(
                f"SIMD floor [{isa}] {simd} vs {scalar}: "
                f"{speedup:.2f}x (floor {floor:.1f}x) [{status}]"
            )
            if speedup < floor:
                failures.append(
                    f"{simd}: {speedup:.2f}x < required {floor:.1f}x "
                    f"over {scalar}"
                )
    elif data.get("bench") == "serving_throughput":
        if data.get("kernel_isa", "scalar") == "scalar":
            return failures
        rps = {
            f"{r['mode']}/t{r['threads']}/b{r['batch']}":
                r["requests_per_second"]
            for r in data.get("runs", [])
        }
        scalar_cell = "inference[scalar]/t1/b8"
        if scalar_cell not in rps:
            return failures
        for cell in ("inference/t1/b8",):
            if cell not in rps:
                continue
            ratio = rps[cell] / max(rps[scalar_cell], 1e-9)
            status = "ok" if ratio >= 1.0 - tolerance else "BELOW FLOOR"
            print(
                f"serving SIMD gate {cell} vs {scalar_cell}: "
                f"{ratio:.2f}x [{status}]"
            )
            if ratio < 1.0 - tolerance:
                failures.append(
                    f"{cell}: {ratio:.2f}x of the forced-scalar cell "
                    f"(must be >= {1.0 - tolerance:.2f}x)"
                )
    return failures


def extract_metrics(data, path):
    """Returns ({label: value}, higher_is_better) for one bench JSON."""
    bench = data.get("bench")
    if bench == "snapshot_concurrency" or "sampling" in data:
        runs = data.get("sampling", [])
        if not runs:
            sys.exit(f"error: no 'sampling' runs in {path}")
        return (
            {f"threads={r['threads']}": r["samples_per_second"] for r in runs},
            True,
        )
    if bench == "window_jobs":
        # Must dispatch on the bench name before the generic "runs"
        # fallback below: window-job runs are keyed by engine, not by
        # (mode, threads, batch).
        runs = data.get("runs", [])
        if not runs:
            sys.exit(f"error: no 'runs' in {path}")
        return (
            {r["engine"]: r["updates_per_second"] for r in runs},
            True,
        )
    if bench == "recovery":
        # Flat metrics, no runs list: gate the ratio of recovery to the
        # cold rebuild (machine-speed independent) and the replay rate.
        for key in ("recovery_speedup", "wal_replay_records_per_s"):
            if key not in data:
                sys.exit(f"error: missing '{key}' in {path}")
        return (
            {
                "recovery_speedup": data["recovery_speedup"],
                "wal_replay_records_per_s":
                    data["wal_replay_records_per_s"],
            },
            True,
        )
    if bench == "incremental":
        # Flat machine-speed-independent ratios: incremental publish vs
        # full rebuild, and delta checkpoint size vs full checkpoint.
        for key in ("publish_speedup", "checkpoint_shrink"):
            if key not in data:
                sys.exit(f"error: missing '{key}' in {path}")
        return (
            {
                "publish_speedup": data["publish_speedup"],
                "checkpoint_shrink": data["checkpoint_shrink"],
            },
            True,
        )
    if bench == "open_loop":
        # Dispatch before the generic "runs" fallback: open-loop runs
        # are keyed by (rate multiple, workers), and only the gated
        # sub-saturation cells carry a stable SLO contract (the
        # overload cell is summarized by overload_goodput_ratio, which
        # is the no-congestion-collapse check). Labels embed /tN/ so
        # the single-core skip below drops multi-worker cells.
        runs = data.get("runs", [])
        if not runs:
            sys.exit(f"error: no 'runs' in {path}")
        metrics = {}
        for r in runs:
            if not r.get("gate"):
                continue
            key = f"rate={r['rate_x']}x/t{r['workers']}/"
            metrics[key + "goodput_frac"] = r["goodput_frac"]
            metrics[key + "p99_headroom"] = r["p99_headroom"]
        if "overload_goodput_ratio" not in data:
            sys.exit(f"error: missing 'overload_goodput_ratio' in {path}")
        metrics["overload_goodput_ratio"] = data["overload_goodput_ratio"]
        return (metrics, True)
    if bench == "cluster":
        # Ingest scale-out cells are threaded (/tN/ labels, so the
        # single-core skip below drops the multi-shard cells); the
        # standby catch-up ratio vs a cold WAL rebuild is machine-speed
        # independent and gates on any runner.
        runs = data.get("runs", [])
        if not runs:
            sys.exit(f"error: no 'runs' in {path}")
        metrics = {
            f"ingest/shards={r['shards']}/t{r['threads']}/":
                r["events_per_second"]
            for r in runs
        }
        if "catchup_speedup" not in data:
            sys.exit(f"error: missing 'catchup_speedup' in {path}")
        metrics["catchup_speedup"] = data["catchup_speedup"]
        return (metrics, True)
    if bench == "net":
        # Flat loopback-transport cells: per-call RPC overhead, codec
        # streaming floor, and end-to-end WAL-ship throughput. All are
        # single-connection (one handler thread), so they gate on any
        # runner at a matching core count.
        keys = (
            "rpc_small_roundtrips_per_s",
            "rpc_large_mb_per_s",
            "wal_ship_mb_per_s",
            "reship_noop_rounds_per_s",
        )
        for key in keys:
            if key not in data:
                sys.exit(f"error: missing '{key}' in {path}")
        return ({key: data[key] for key in keys}, True)
    if bench == "serving_throughput" or "runs" in data:
        runs = data.get("runs", [])
        if not runs:
            sys.exit(f"error: no 'runs' in {path}")
        return (
            {
                f"{r['mode']}/t{r['threads']}/b{r['batch']}":
                    r["requests_per_second"]
                for r in runs
            },
            True,
        )
    if "benchmarks" in data:  # google-benchmark --benchmark_out JSON
        rows = [b for b in data["benchmarks"]
                if b.get("run_type", "iteration") == "iteration"]
        if not rows:
            sys.exit(f"error: no benchmark iterations in {path}")
        return ({b["name"]: b["real_time"] for b in rows}, False)
    sys.exit(f"error: unrecognized bench JSON shape in {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.2")),
        help="allowed fractional regression (default 0.2 = 20%%)",
    )
    args = parser.parse_args()

    baseline_data = load(args.baseline)
    fresh_data = load(args.fresh)
    tag = machine_tag(hardware_threads(fresh_data))

    # Within-run SIMD floors bind regardless of core count, so they run
    # before (and independently of) the baseline comparison below.
    simd_failures = check_simd_floors(fresh_data, args.fresh,
                                      args.tolerance)
    if simd_failures:
        for failure in simd_failures:
            print(f"SIMD FLOOR FAIL: {failure} {tag}")
        return 1

    base_hw = hardware_threads(baseline_data)
    fresh_hw = hardware_threads(fresh_data)
    if base_hw is not None and fresh_hw is not None and base_hw != fresh_hw:
        print(
            f"WARNING: baseline was recorded on {base_hw} hardware "
            f"thread(s) but this run has {fresh_hw}; throughput is not "
            f"comparable across core counts — skipping the gate. {tag}"
        )
        return 0

    baseline, higher_is_better = extract_metrics(
        baseline_data, args.baseline)
    fresh, _ = extract_metrics(fresh_data, args.fresh)

    if base_hw == 1 and fresh_hw == 1:
        baseline, skipped = drop_parallel_labels(baseline)
        fresh, _ = drop_parallel_labels(fresh)
        if skipped:
            banner = "!" * 72
            print(banner)
            print(
                f"!! WARNING: 1-core runner — {len(skipped)} "
                f"parallel-path cell(s) are NOT gated. {tag}"
            )
            print(
                "!! Multi-thread cells measure scheduler round-robin on "
                "this box, not scale-up;"
            )
            print(
                "!! a regression in any cell below would go UNDETECTED "
                "until a multi-core run:"
            )
            for label in skipped:
                print(f"!!   {label}: SKIPPED (single-core) {tag}")
            print(banner)
            annotate_skipped(args.fresh, skipped)
        if not baseline:
            # Passing here would let a misdetected runner green-light
            # any regression: nothing was compared at all. Benches that
            # can run single-core must carry at least one unthreaded or
            # machine-independent (ratio) metric for exactly this case.
            print(
                f"FAIL: every gated cell was skipped as single-core — "
                f"the gate compared nothing. Add an unthreaded or "
                f"machine-independent metric, or run on a multi-core "
                f"runner. {tag}"
            )
            return 1

    failed = False
    for label in sorted(baseline):
        if label not in fresh:
            print(f"{label}: missing from fresh run — FAIL {tag}")
            failed = True
            continue
        base = baseline[label]
        now = fresh[label]
        if higher_is_better:
            ratio = now / base if base > 0 else float("inf")
        else:
            ratio = base / now if now > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"{label}: baseline={base:.2f} fresh={now:.2f} "
            f"ratio={ratio:.2f} [{status}] {tag}"
        )

    if failed:
        print(
            f"\nFAIL: performance regressed more than "
            f"{args.tolerance:.0%} vs {args.baseline} {tag}"
        )
        return 1
    print(
        f"\nPASS: performance within {args.tolerance:.0%} of baseline "
        f"{tag}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
