file(REMOVE_RECURSE
  "libturbo_util.a"
)
