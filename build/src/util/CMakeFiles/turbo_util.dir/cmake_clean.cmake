file(REMOVE_RECURSE
  "CMakeFiles/turbo_util.dir/rng.cc.o"
  "CMakeFiles/turbo_util.dir/rng.cc.o.d"
  "CMakeFiles/turbo_util.dir/status.cc.o"
  "CMakeFiles/turbo_util.dir/status.cc.o.d"
  "CMakeFiles/turbo_util.dir/string_util.cc.o"
  "CMakeFiles/turbo_util.dir/string_util.cc.o.d"
  "CMakeFiles/turbo_util.dir/table_printer.cc.o"
  "CMakeFiles/turbo_util.dir/table_printer.cc.o.d"
  "CMakeFiles/turbo_util.dir/time_util.cc.o"
  "CMakeFiles/turbo_util.dir/time_util.cc.o.d"
  "libturbo_util.a"
  "libturbo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
