# Empty compiler generated dependencies file for turbo_util.
# This may be replaced when dependencies are built.
