# Empty dependencies file for turbo_metrics.
# This may be replaced when dependencies are built.
