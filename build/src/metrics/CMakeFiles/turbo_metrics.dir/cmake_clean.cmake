file(REMOVE_RECURSE
  "CMakeFiles/turbo_metrics.dir/metrics.cc.o"
  "CMakeFiles/turbo_metrics.dir/metrics.cc.o.d"
  "libturbo_metrics.a"
  "libturbo_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
