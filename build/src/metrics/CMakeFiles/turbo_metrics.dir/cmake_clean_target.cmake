file(REMOVE_RECURSE
  "libturbo_metrics.a"
)
