file(REMOVE_RECURSE
  "libturbo_autograd.a"
)
