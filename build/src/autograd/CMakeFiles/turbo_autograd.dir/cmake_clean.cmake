file(REMOVE_RECURSE
  "CMakeFiles/turbo_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/turbo_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/turbo_autograd.dir/ops.cc.o"
  "CMakeFiles/turbo_autograd.dir/ops.cc.o.d"
  "CMakeFiles/turbo_autograd.dir/optimizer.cc.o"
  "CMakeFiles/turbo_autograd.dir/optimizer.cc.o.d"
  "CMakeFiles/turbo_autograd.dir/tensor.cc.o"
  "CMakeFiles/turbo_autograd.dir/tensor.cc.o.d"
  "libturbo_autograd.a"
  "libturbo_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
