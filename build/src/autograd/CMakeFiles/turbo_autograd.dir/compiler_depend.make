# Empty compiler generated dependencies file for turbo_autograd.
# This may be replaced when dependencies are built.
