file(REMOVE_RECURSE
  "CMakeFiles/turbo_gnn.dir/gat.cc.o"
  "CMakeFiles/turbo_gnn.dir/gat.cc.o.d"
  "CMakeFiles/turbo_gnn.dir/gat_ops.cc.o"
  "CMakeFiles/turbo_gnn.dir/gat_ops.cc.o.d"
  "CMakeFiles/turbo_gnn.dir/gcn.cc.o"
  "CMakeFiles/turbo_gnn.dir/gcn.cc.o.d"
  "CMakeFiles/turbo_gnn.dir/graph_batch.cc.o"
  "CMakeFiles/turbo_gnn.dir/graph_batch.cc.o.d"
  "CMakeFiles/turbo_gnn.dir/sage.cc.o"
  "CMakeFiles/turbo_gnn.dir/sage.cc.o.d"
  "CMakeFiles/turbo_gnn.dir/trainer.cc.o"
  "CMakeFiles/turbo_gnn.dir/trainer.cc.o.d"
  "libturbo_gnn.a"
  "libturbo_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
