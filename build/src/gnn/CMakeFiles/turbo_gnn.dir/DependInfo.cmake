
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/gat.cc" "src/gnn/CMakeFiles/turbo_gnn.dir/gat.cc.o" "gcc" "src/gnn/CMakeFiles/turbo_gnn.dir/gat.cc.o.d"
  "/root/repo/src/gnn/gat_ops.cc" "src/gnn/CMakeFiles/turbo_gnn.dir/gat_ops.cc.o" "gcc" "src/gnn/CMakeFiles/turbo_gnn.dir/gat_ops.cc.o.d"
  "/root/repo/src/gnn/gcn.cc" "src/gnn/CMakeFiles/turbo_gnn.dir/gcn.cc.o" "gcc" "src/gnn/CMakeFiles/turbo_gnn.dir/gcn.cc.o.d"
  "/root/repo/src/gnn/graph_batch.cc" "src/gnn/CMakeFiles/turbo_gnn.dir/graph_batch.cc.o" "gcc" "src/gnn/CMakeFiles/turbo_gnn.dir/graph_batch.cc.o.d"
  "/root/repo/src/gnn/sage.cc" "src/gnn/CMakeFiles/turbo_gnn.dir/sage.cc.o" "gcc" "src/gnn/CMakeFiles/turbo_gnn.dir/sage.cc.o.d"
  "/root/repo/src/gnn/trainer.cc" "src/gnn/CMakeFiles/turbo_gnn.dir/trainer.cc.o" "gcc" "src/gnn/CMakeFiles/turbo_gnn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/turbo_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/turbo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/turbo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/turbo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
