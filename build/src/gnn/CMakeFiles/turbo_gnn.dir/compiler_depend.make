# Empty compiler generated dependencies file for turbo_gnn.
# This may be replaced when dependencies are built.
