file(REMOVE_RECURSE
  "libturbo_gnn.a"
)
