file(REMOVE_RECURSE
  "CMakeFiles/turbo_ml.dir/gbdt.cc.o"
  "CMakeFiles/turbo_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/turbo_ml.dir/linear.cc.o"
  "CMakeFiles/turbo_ml.dir/linear.cc.o.d"
  "CMakeFiles/turbo_ml.dir/mlp.cc.o"
  "CMakeFiles/turbo_ml.dir/mlp.cc.o.d"
  "CMakeFiles/turbo_ml.dir/scaler.cc.o"
  "CMakeFiles/turbo_ml.dir/scaler.cc.o.d"
  "libturbo_ml.a"
  "libturbo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
