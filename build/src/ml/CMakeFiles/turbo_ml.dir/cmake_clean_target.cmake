file(REMOVE_RECURSE
  "libturbo_ml.a"
)
