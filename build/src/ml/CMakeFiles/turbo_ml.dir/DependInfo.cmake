
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/turbo_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/turbo_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/turbo_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/turbo_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/turbo_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/turbo_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/turbo_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/turbo_ml.dir/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/turbo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
