# Empty compiler generated dependencies file for turbo_ml.
# This may be replaced when dependencies are built.
