file(REMOVE_RECURSE
  "CMakeFiles/turbo_server.dir/bn_server.cc.o"
  "CMakeFiles/turbo_server.dir/bn_server.cc.o.d"
  "CMakeFiles/turbo_server.dir/latency.cc.o"
  "CMakeFiles/turbo_server.dir/latency.cc.o.d"
  "CMakeFiles/turbo_server.dir/prediction_server.cc.o"
  "CMakeFiles/turbo_server.dir/prediction_server.cc.o.d"
  "CMakeFiles/turbo_server.dir/scorecard.cc.o"
  "CMakeFiles/turbo_server.dir/scorecard.cc.o.d"
  "libturbo_server.a"
  "libturbo_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
