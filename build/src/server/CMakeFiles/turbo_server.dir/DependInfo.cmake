
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/bn_server.cc" "src/server/CMakeFiles/turbo_server.dir/bn_server.cc.o" "gcc" "src/server/CMakeFiles/turbo_server.dir/bn_server.cc.o.d"
  "/root/repo/src/server/latency.cc" "src/server/CMakeFiles/turbo_server.dir/latency.cc.o" "gcc" "src/server/CMakeFiles/turbo_server.dir/latency.cc.o.d"
  "/root/repo/src/server/prediction_server.cc" "src/server/CMakeFiles/turbo_server.dir/prediction_server.cc.o" "gcc" "src/server/CMakeFiles/turbo_server.dir/prediction_server.cc.o.d"
  "/root/repo/src/server/scorecard.cc" "src/server/CMakeFiles/turbo_server.dir/scorecard.cc.o" "gcc" "src/server/CMakeFiles/turbo_server.dir/scorecard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/turbo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/turbo_features.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/turbo_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/turbo_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/turbo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/turbo_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/turbo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/turbo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
