file(REMOVE_RECURSE
  "libturbo_server.a"
)
