# Empty compiler generated dependencies file for turbo_server.
# This may be replaced when dependencies are built.
