file(REMOVE_RECURSE
  "CMakeFiles/turbo_core.dir/hag.cc.o"
  "CMakeFiles/turbo_core.dir/hag.cc.o.d"
  "CMakeFiles/turbo_core.dir/influence.cc.o"
  "CMakeFiles/turbo_core.dir/influence.cc.o.d"
  "CMakeFiles/turbo_core.dir/model_store.cc.o"
  "CMakeFiles/turbo_core.dir/model_store.cc.o.d"
  "CMakeFiles/turbo_core.dir/turbo.cc.o"
  "CMakeFiles/turbo_core.dir/turbo.cc.o.d"
  "libturbo_core.a"
  "libturbo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
