# Empty compiler generated dependencies file for turbo_core.
# This may be replaced when dependencies are built.
