file(REMOVE_RECURSE
  "libturbo_core.a"
)
