file(REMOVE_RECURSE
  "libturbo_bn.a"
)
