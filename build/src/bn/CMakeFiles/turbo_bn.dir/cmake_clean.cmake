file(REMOVE_RECURSE
  "CMakeFiles/turbo_bn.dir/builder.cc.o"
  "CMakeFiles/turbo_bn.dir/builder.cc.o.d"
  "CMakeFiles/turbo_bn.dir/network.cc.o"
  "CMakeFiles/turbo_bn.dir/network.cc.o.d"
  "CMakeFiles/turbo_bn.dir/sampler.cc.o"
  "CMakeFiles/turbo_bn.dir/sampler.cc.o.d"
  "libturbo_bn.a"
  "libturbo_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
