# Empty compiler generated dependencies file for turbo_bn.
# This may be replaced when dependencies are built.
