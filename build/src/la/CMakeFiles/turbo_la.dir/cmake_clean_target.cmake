file(REMOVE_RECURSE
  "libturbo_la.a"
)
