file(REMOVE_RECURSE
  "CMakeFiles/turbo_la.dir/matrix.cc.o"
  "CMakeFiles/turbo_la.dir/matrix.cc.o.d"
  "CMakeFiles/turbo_la.dir/sparse.cc.o"
  "CMakeFiles/turbo_la.dir/sparse.cc.o.d"
  "libturbo_la.a"
  "libturbo_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
