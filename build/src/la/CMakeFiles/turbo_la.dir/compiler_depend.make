# Empty compiler generated dependencies file for turbo_la.
# This may be replaced when dependencies are built.
