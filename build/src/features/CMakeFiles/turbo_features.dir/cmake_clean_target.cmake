file(REMOVE_RECURSE
  "libturbo_features.a"
)
