# Empty compiler generated dependencies file for turbo_features.
# This may be replaced when dependencies are built.
