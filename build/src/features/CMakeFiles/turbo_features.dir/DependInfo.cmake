
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/feature_store.cc" "src/features/CMakeFiles/turbo_features.dir/feature_store.cc.o" "gcc" "src/features/CMakeFiles/turbo_features.dir/feature_store.cc.o.d"
  "/root/repo/src/features/stat_features.cc" "src/features/CMakeFiles/turbo_features.dir/stat_features.cc.o" "gcc" "src/features/CMakeFiles/turbo_features.dir/stat_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/turbo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/turbo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/turbo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
