file(REMOVE_RECURSE
  "CMakeFiles/turbo_features.dir/feature_store.cc.o"
  "CMakeFiles/turbo_features.dir/feature_store.cc.o.d"
  "CMakeFiles/turbo_features.dir/stat_features.cc.o"
  "CMakeFiles/turbo_features.dir/stat_features.cc.o.d"
  "libturbo_features.a"
  "libturbo_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
