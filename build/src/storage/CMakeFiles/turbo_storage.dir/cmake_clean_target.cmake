file(REMOVE_RECURSE
  "libturbo_storage.a"
)
