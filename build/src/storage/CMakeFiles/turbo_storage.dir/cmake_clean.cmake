file(REMOVE_RECURSE
  "CMakeFiles/turbo_storage.dir/edge_store.cc.o"
  "CMakeFiles/turbo_storage.dir/edge_store.cc.o.d"
  "CMakeFiles/turbo_storage.dir/log_io.cc.o"
  "CMakeFiles/turbo_storage.dir/log_io.cc.o.d"
  "CMakeFiles/turbo_storage.dir/log_store.cc.o"
  "CMakeFiles/turbo_storage.dir/log_store.cc.o.d"
  "CMakeFiles/turbo_storage.dir/sim_clock.cc.o"
  "CMakeFiles/turbo_storage.dir/sim_clock.cc.o.d"
  "libturbo_storage.a"
  "libturbo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
