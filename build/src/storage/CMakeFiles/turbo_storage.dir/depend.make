# Empty dependencies file for turbo_storage.
# This may be replaced when dependencies are built.
