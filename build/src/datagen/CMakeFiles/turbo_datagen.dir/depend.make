# Empty dependencies file for turbo_datagen.
# This may be replaced when dependencies are built.
