file(REMOVE_RECURSE
  "libturbo_datagen.a"
)
