file(REMOVE_RECURSE
  "CMakeFiles/turbo_datagen.dir/scenario.cc.o"
  "CMakeFiles/turbo_datagen.dir/scenario.cc.o.d"
  "libturbo_datagen.a"
  "libturbo_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
