# CMake generated Testfile for 
# Source directory: /root/repo/src/graphfe
# Build directory: /root/repo/build/src/graphfe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
