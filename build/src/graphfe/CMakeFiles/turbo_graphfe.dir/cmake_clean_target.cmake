file(REMOVE_RECURSE
  "libturbo_graphfe.a"
)
