# Empty compiler generated dependencies file for turbo_graphfe.
# This may be replaced when dependencies are built.
