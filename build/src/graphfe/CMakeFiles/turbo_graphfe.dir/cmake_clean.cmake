file(REMOVE_RECURSE
  "CMakeFiles/turbo_graphfe.dir/blp.cc.o"
  "CMakeFiles/turbo_graphfe.dir/blp.cc.o.d"
  "CMakeFiles/turbo_graphfe.dir/deepwalk.cc.o"
  "CMakeFiles/turbo_graphfe.dir/deepwalk.cc.o.d"
  "libturbo_graphfe.a"
  "libturbo_graphfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_graphfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
