file(REMOVE_RECURSE
  "libturbo_analysis.a"
)
