file(REMOVE_RECURSE
  "CMakeFiles/turbo_analysis.dir/empirical.cc.o"
  "CMakeFiles/turbo_analysis.dir/empirical.cc.o.d"
  "libturbo_analysis.a"
  "libturbo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
