# Empty compiler generated dependencies file for turbo_analysis.
# This may be replaced when dependencies are built.
