
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/gbdt_test.cc" "tests/ml/CMakeFiles/ml_test.dir/gbdt_test.cc.o" "gcc" "tests/ml/CMakeFiles/ml_test.dir/gbdt_test.cc.o.d"
  "/root/repo/tests/ml/linear_test.cc" "tests/ml/CMakeFiles/ml_test.dir/linear_test.cc.o" "gcc" "tests/ml/CMakeFiles/ml_test.dir/linear_test.cc.o.d"
  "/root/repo/tests/ml/mlp_test.cc" "tests/ml/CMakeFiles/ml_test.dir/mlp_test.cc.o" "gcc" "tests/ml/CMakeFiles/ml_test.dir/mlp_test.cc.o.d"
  "/root/repo/tests/ml/scaler_test.cc" "tests/ml/CMakeFiles/ml_test.dir/scaler_test.cc.o" "gcc" "tests/ml/CMakeFiles/ml_test.dir/scaler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/turbo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/turbo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
