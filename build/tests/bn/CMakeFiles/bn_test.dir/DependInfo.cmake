
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bn/builder_property_test.cc" "tests/bn/CMakeFiles/bn_test.dir/builder_property_test.cc.o" "gcc" "tests/bn/CMakeFiles/bn_test.dir/builder_property_test.cc.o.d"
  "/root/repo/tests/bn/builder_test.cc" "tests/bn/CMakeFiles/bn_test.dir/builder_test.cc.o" "gcc" "tests/bn/CMakeFiles/bn_test.dir/builder_test.cc.o.d"
  "/root/repo/tests/bn/network_test.cc" "tests/bn/CMakeFiles/bn_test.dir/network_test.cc.o" "gcc" "tests/bn/CMakeFiles/bn_test.dir/network_test.cc.o.d"
  "/root/repo/tests/bn/sampler_test.cc" "tests/bn/CMakeFiles/bn_test.dir/sampler_test.cc.o" "gcc" "tests/bn/CMakeFiles/bn_test.dir/sampler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bn/CMakeFiles/turbo_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/turbo_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/turbo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
