file(REMOVE_RECURSE
  "CMakeFiles/graphfe_test.dir/blp_test.cc.o"
  "CMakeFiles/graphfe_test.dir/blp_test.cc.o.d"
  "CMakeFiles/graphfe_test.dir/deepwalk_test.cc.o"
  "CMakeFiles/graphfe_test.dir/deepwalk_test.cc.o.d"
  "graphfe_test"
  "graphfe_test.pdb"
  "graphfe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphfe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
