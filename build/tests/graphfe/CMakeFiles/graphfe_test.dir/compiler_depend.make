# Empty compiler generated dependencies file for graphfe_test.
# This may be replaced when dependencies are built.
