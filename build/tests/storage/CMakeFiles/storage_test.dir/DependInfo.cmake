
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/edge_store_test.cc" "tests/storage/CMakeFiles/storage_test.dir/edge_store_test.cc.o" "gcc" "tests/storage/CMakeFiles/storage_test.dir/edge_store_test.cc.o.d"
  "/root/repo/tests/storage/kv_lru_test.cc" "tests/storage/CMakeFiles/storage_test.dir/kv_lru_test.cc.o" "gcc" "tests/storage/CMakeFiles/storage_test.dir/kv_lru_test.cc.o.d"
  "/root/repo/tests/storage/log_io_test.cc" "tests/storage/CMakeFiles/storage_test.dir/log_io_test.cc.o" "gcc" "tests/storage/CMakeFiles/storage_test.dir/log_io_test.cc.o.d"
  "/root/repo/tests/storage/log_store_test.cc" "tests/storage/CMakeFiles/storage_test.dir/log_store_test.cc.o" "gcc" "tests/storage/CMakeFiles/storage_test.dir/log_store_test.cc.o.d"
  "/root/repo/tests/storage/sim_clock_test.cc" "tests/storage/CMakeFiles/storage_test.dir/sim_clock_test.cc.o" "gcc" "tests/storage/CMakeFiles/storage_test.dir/sim_clock_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/turbo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
