# CMake generated Testfile for 
# Source directory: /root/repo/tests/autograd
# Build directory: /root/repo/build/tests/autograd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/autograd/autograd_test[1]_include.cmake")
