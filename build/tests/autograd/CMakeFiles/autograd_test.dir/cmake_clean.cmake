file(REMOVE_RECURSE
  "CMakeFiles/autograd_test.dir/gradcheck_test.cc.o"
  "CMakeFiles/autograd_test.dir/gradcheck_test.cc.o.d"
  "CMakeFiles/autograd_test.dir/ops_property_test.cc.o"
  "CMakeFiles/autograd_test.dir/ops_property_test.cc.o.d"
  "CMakeFiles/autograd_test.dir/optimizer_test.cc.o"
  "CMakeFiles/autograd_test.dir/optimizer_test.cc.o.d"
  "CMakeFiles/autograd_test.dir/tensor_test.cc.o"
  "CMakeFiles/autograd_test.dir/tensor_test.cc.o.d"
  "autograd_test"
  "autograd_test.pdb"
  "autograd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
