
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd/gradcheck_test.cc" "tests/autograd/CMakeFiles/autograd_test.dir/gradcheck_test.cc.o" "gcc" "tests/autograd/CMakeFiles/autograd_test.dir/gradcheck_test.cc.o.d"
  "/root/repo/tests/autograd/ops_property_test.cc" "tests/autograd/CMakeFiles/autograd_test.dir/ops_property_test.cc.o" "gcc" "tests/autograd/CMakeFiles/autograd_test.dir/ops_property_test.cc.o.d"
  "/root/repo/tests/autograd/optimizer_test.cc" "tests/autograd/CMakeFiles/autograd_test.dir/optimizer_test.cc.o" "gcc" "tests/autograd/CMakeFiles/autograd_test.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/autograd/tensor_test.cc" "tests/autograd/CMakeFiles/autograd_test.dir/tensor_test.cc.o" "gcc" "tests/autograd/CMakeFiles/autograd_test.dir/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
