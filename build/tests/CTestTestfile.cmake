# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("la")
subdirs("autograd")
subdirs("storage")
subdirs("datagen")
subdirs("bn")
subdirs("metrics")
subdirs("ml")
subdirs("features")
subdirs("gnn")
subdirs("core")
subdirs("graphfe")
subdirs("analysis")
subdirs("server")
