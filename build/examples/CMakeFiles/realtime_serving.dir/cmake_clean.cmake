file(REMOVE_RECURSE
  "CMakeFiles/realtime_serving.dir/realtime_serving.cpp.o"
  "CMakeFiles/realtime_serving.dir/realtime_serving.cpp.o.d"
  "realtime_serving"
  "realtime_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
