# Empty compiler generated dependencies file for realtime_serving.
# This may be replaced when dependencies are built.
