# Empty compiler generated dependencies file for fraud_ring_study.
# This may be replaced when dependencies are built.
