file(REMOVE_RECURSE
  "CMakeFiles/fraud_ring_study.dir/fraud_ring_study.cpp.o"
  "CMakeFiles/fraud_ring_study.dir/fraud_ring_study.cpp.o.d"
  "fraud_ring_study"
  "fraud_ring_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_ring_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
