# Empty dependencies file for custom_logs.
# This may be replaced when dependencies are built.
