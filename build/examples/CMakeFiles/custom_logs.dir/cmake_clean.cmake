file(REMOVE_RECURSE
  "CMakeFiles/custom_logs.dir/custom_logs.cpp.o"
  "CMakeFiles/custom_logs.dir/custom_logs.cpp.o.d"
  "custom_logs"
  "custom_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
