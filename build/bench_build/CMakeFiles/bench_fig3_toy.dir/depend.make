# Empty dependencies file for bench_fig3_toy.
# This may be replaced when dependencies are built.
