
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_toy.cc" "bench_build/CMakeFiles/bench_fig3_toy.dir/bench_fig3_toy.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig3_toy.dir/bench_fig3_toy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/turbo_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graphfe/CMakeFiles/turbo_graphfe.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/turbo_server.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turbo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/turbo_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/turbo_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/turbo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/turbo_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/turbo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/turbo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/turbo_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/turbo_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/turbo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/turbo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turbo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
