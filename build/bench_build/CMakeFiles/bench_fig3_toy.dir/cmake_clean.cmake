file(REMOVE_RECURSE
  "../bench/bench_fig3_toy"
  "../bench/bench_fig3_toy.pdb"
  "CMakeFiles/bench_fig3_toy.dir/bench_fig3_toy.cc.o"
  "CMakeFiles/bench_fig3_toy.dir/bench_fig3_toy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
