file(REMOVE_RECURSE
  "../bench/bench_fig4_empirical"
  "../bench/bench_fig4_empirical.pdb"
  "CMakeFiles/bench_fig4_empirical.dir/bench_fig4_empirical.cc.o"
  "CMakeFiles/bench_fig4_empirical.dir/bench_fig4_empirical.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
