# Empty dependencies file for bench_fig4_empirical.
# This may be replaced when dependencies are built.
