file(REMOVE_RECURSE
  "../bench/bench_fig9_influence"
  "../bench/bench_fig9_influence.pdb"
  "CMakeFiles/bench_fig9_influence.dir/bench_fig9_influence.cc.o"
  "CMakeFiles/bench_fig9_influence.dir/bench_fig9_influence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
