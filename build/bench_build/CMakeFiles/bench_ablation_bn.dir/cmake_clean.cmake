file(REMOVE_RECURSE
  "../bench/bench_ablation_bn"
  "../bench/bench_ablation_bn.pdb"
  "CMakeFiles/bench_ablation_bn.dir/bench_ablation_bn.cc.o"
  "CMakeFiles/bench_ablation_bn.dir/bench_ablation_bn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
