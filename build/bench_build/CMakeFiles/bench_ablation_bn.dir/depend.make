# Empty dependencies file for bench_ablation_bn.
# This may be replaced when dependencies are built.
