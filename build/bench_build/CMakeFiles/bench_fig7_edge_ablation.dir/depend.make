# Empty dependencies file for bench_fig7_edge_ablation.
# This may be replaced when dependencies are built.
