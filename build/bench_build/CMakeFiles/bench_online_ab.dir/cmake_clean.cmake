file(REMOVE_RECURSE
  "../bench/bench_online_ab"
  "../bench/bench_online_ab.pdb"
  "CMakeFiles/bench_online_ab.dir/bench_online_ab.cc.o"
  "CMakeFiles/bench_online_ab.dir/bench_online_ab.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
