# Empty dependencies file for bench_online_ab.
# This may be replaced when dependencies are built.
