file(REMOVE_RECURSE
  "../bench/bench_table4_d2"
  "../bench/bench_table4_d2.pdb"
  "CMakeFiles/bench_table4_d2.dir/bench_table4_d2.cc.o"
  "CMakeFiles/bench_table4_d2.dir/bench_table4_d2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_d2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
