# Empty compiler generated dependencies file for turbo_bench_common.
# This may be replaced when dependencies are built.
