file(REMOVE_RECURSE
  "libturbo_bench_common.a"
)
