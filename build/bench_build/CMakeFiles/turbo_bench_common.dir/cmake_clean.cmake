file(REMOVE_RECURSE
  "CMakeFiles/turbo_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/turbo_bench_common.dir/bench_common.cc.o.d"
  "libturbo_bench_common.a"
  "libturbo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
