file(REMOVE_RECURSE
  "../bench/bench_section5_cache"
  "../bench/bench_section5_cache.pdb"
  "CMakeFiles/bench_section5_cache.dir/bench_section5_cache.cc.o"
  "CMakeFiles/bench_section5_cache.dir/bench_section5_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section5_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
