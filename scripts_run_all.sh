#!/usr/bin/env bash
# Final recording run: tier-1 verify (configure + build + full ctest, the
# ROADMAP commands) followed by every bench, teeing to the repository-root
# logs referenced by EXPERIMENTS.md. Fails fast on the first error.
#
#   BUILD_DIR=out ./scripts_run_all.sh     # build somewhere else
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
REPO_ROOT="$(cd "$(dirname "$0")" && pwd)"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" 2>&1 \
  | tee "$REPO_ROOT/test_output.txt"

for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] || continue
  "$b"
done 2>&1 | tee "$REPO_ROOT/bench_output.txt"
