#!/bin/sh
# Final recording run: full test suite + every bench, teeing to the
# repository-root logs referenced by EXPERIMENTS.md.
set -x
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
