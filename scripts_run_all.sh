#!/usr/bin/env bash
# Final recording run: tier-1 verify (configure + build + full ctest, the
# ROADMAP commands) followed by every bench, teeing to the repository-root
# logs referenced by EXPERIMENTS.md. Fails fast on the first error.
#
#   BUILD_DIR=out ./scripts_run_all.sh     # build somewhere else
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
REPO_ROOT="$(cd "$(dirname "$0")" && pwd)"

# Release is required: the bench binaries hard-fail from non-Release
# build dirs (see benchx::RequireReleaseBuild), so a recording run from
# an unoptimized build aborts instead of committing garbage baselines.
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" 2>&1 \
  | tee "$REPO_ROOT/test_output.txt"

for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] || continue
  case "$(basename "$b")" in
    bench_net)
      # Loopback RPC round-trip + streaming WAL-ship throughput; writes
      # straight to the committed baseline path like bench_open_loop.
      "$b" --out="$REPO_ROOT/BENCH_net.json"
      ;;
    bench_open_loop)
      # Writes the open-loop rate sweep straight to the committed
      # baseline path (the other benches write relative to the cwd);
      # the bench self-gates via its exit code, so a sub-saturation SLO
      # violation or overload goodput collapse aborts the recording run.
      "$b" --out="$REPO_ROOT/BENCH_load.json"
      ;;
    *)
      "$b"
      ;;
  esac
done 2>&1 | tee "$REPO_ROOT/bench_output.txt"
