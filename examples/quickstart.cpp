// Quickstart: the full Turbo pipeline in ~60 lines.
//
//   1. Generate a Jimi-Store-like behavior-log workload (stands in for
//      your own logs — see examples/custom_logs.cpp for bringing your
//      own).
//   2. Build the Behavior Network (Algorithm 1) and assemble features.
//   3. Train HAG and score the held-out applications.
//   4. Inductively score one new application from its sampled
//      computation subgraph, exactly like the online path.
//
// Run:  ./build/examples/quickstart [num_users]
#include <cstdio>
#include <cstdlib>

#include "core/turbo.h"

using namespace turbo;

int main(int argc, char** argv) {
  const int num_users = argc > 1 ? std::atoi(argv[1]) : 2000;

  // 1. Workload.
  auto dataset =
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(num_users));
  std::printf("scenario: %zu users, %d fraudsters, %zu behavior logs\n",
              dataset.users.size(), dataset.NumFraud(),
              dataset.logs.size());

  // 2. BN + features (hierarchical windows, inverse weights, 80/20 split).
  core::PipelineConfig pipeline;
  auto data = core::PrepareData(std::move(dataset), pipeline);
  std::printf("BN: %zu edges over %d edge types\n",
              data->network.TotalEdges(), kNumEdgeTypes);

  // 3. Train HAG.
  core::HagConfig hag_cfg;
  hag_cfg.hidden = {32, 16};
  hag_cfg.attention_dim = 16;
  hag_cfg.mlp_hidden = 16;
  core::Hag hag(hag_cfg);
  gnn::TrainConfig train_cfg;
  train_cfg.epochs = 40;
  train_cfg.lr = 2e-3f;
  auto scores =
      core::TrainAndScoreGnn(&hag, *data, bn::SamplerConfig{}, train_cfg);
  auto report =
      metrics::Evaluate(scores, data->LabelsFor(data->test_uids));
  std::printf(
      "test split: precision %.2f%%  recall %.2f%%  F1 %.2f%%  AUC %.2f%%\n",
      report.precision_pct, report.recall_pct, report.f1_pct,
      report.auc_pct);

  // 4. Inductive single-user scoring (the serving path).
  const UserId suspect = data->test_uids[0];
  auto batch = core::MakeBatch(*data, {suspect}, bn::SamplerConfig{});
  const double p = gnn::GnnTrainer::PredictTargets(&hag, batch)[0];
  std::printf(
      "user %u: fraud probability %.3f (label %d), computation subgraph "
      "%zu nodes\n",
      suspect, p, data->labels[suspect], batch.num_nodes());
  return 0;
}
