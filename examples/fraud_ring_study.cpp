// Fraud-ring case study (paper Figures 5, 6 and 9):
//   * locates a fraud ring in a synthetic scenario,
//   * exports its BN neighborhood as Graphviz DOT (clique visualization),
//   * trains HAG and prints the influence-distribution heat map of the
//     ring's computation subgraph — fraud nodes should influence each
//     other more than the surrounding normal nodes.
//
// Run:  ./build/examples/fraud_ring_study [out.dot]
#include <cstdio>
#include <fstream>

#include "core/influence.h"
#include "util/string_util.h"
#include "core/turbo.h"

using namespace turbo;

namespace {

const char* TypeColor(int edge_type) {
  // Mirrors the paper's Fig. 6 legend where applicable.
  static const char* kColors[] = {"orange", "green",  "red",   "brown",
                                  "gray",   "purple", "gray4", "blue"};
  return kColors[edge_type % 8];
}

void WriteDot(const char* path, const bn::Subgraph& sg,
              const std::vector<int>& labels) {
  std::ofstream out(path);
  out << "graph bn_ring {\n  overlap=false;\n";
  for (size_t i = 0; i < sg.nodes.size(); ++i) {
    out << "  n" << sg.nodes[i] << " [style=filled, fillcolor="
        << (labels[sg.nodes[i]] ? "tomato" : "palegreen") << "];\n";
  }
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (const auto& e : sg.edges[t]) {
      if (e.row < e.col) {
        out << "  n" << sg.nodes[e.row] << " -- n" << sg.nodes[e.col]
            << " [color=" << TypeColor(t) << ", penwidth="
            << std::min(4.0f, 0.5f + 8.0f * e.value) << "];\n";
      }
    }
  }
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const char* dot_path = argc > 1 ? argv[1] : "fraud_ring.dot";

  auto dataset =
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(2000));
  // Pick the largest ring.
  std::unordered_map<int, std::vector<UserId>> rings;
  for (const auto& u : dataset.users) {
    if (u.ring_id >= 0) rings[u.ring_id].push_back(u.uid);
  }
  std::vector<UserId> ring;
  for (const auto& [id, members] : rings) {
    if (members.size() > ring.size()) ring = members;
  }
  std::printf("largest fraud ring: %zu members\n", ring.size());

  auto data = core::PrepareData(std::move(dataset), core::PipelineConfig{});

  // Visualization subgraph around the ring (Fig. 5/6).
  bn::SamplerConfig viz_cfg;
  viz_cfg.num_hops = 1;
  viz_cfg.fanout = 8;
  bn::SubgraphSampler viz_sampler(data->network,viz_cfg);
  auto viz = viz_sampler.Sample(ring);
  WriteDot(dot_path, viz, data->labels);
  std::printf("wrote %s (%zu nodes, %zu edges) — render with neato\n",
              dot_path, viz.nodes.size(), viz.NumEdges());

  // Train HAG, then influence analysis (Definition 1 / Fig. 9).
  core::HagConfig hcfg;
  hcfg.hidden = {24, 12};
  hcfg.attention_dim = 12;
  hcfg.mlp_hidden = 12;
  hcfg.dropout = 0.0f;
  core::Hag hag(hcfg);
  gnn::TrainConfig tcfg;
  tcfg.epochs = 40;
  tcfg.lr = 2e-3f;
  core::TrainAndScoreGnn(&hag, *data, bn::SamplerConfig{}, tcfg);

  bn::SamplerConfig case_cfg;
  case_cfg.num_hops = 2;
  case_cfg.fanout = 4;
  bn::SubgraphSampler case_sampler(data->network,case_cfg);
  auto sg = case_sampler.Sample(ring);
  auto batch = gnn::MakeGraphBatch(sg, data->features);

  std::vector<int> targets;
  const size_t show = std::min<size_t>(batch.num_nodes(), 12);
  for (size_t i = 0; i < show; ++i) targets.push_back(static_cast<int>(i));
  auto dist = core::InfluenceDistribution(&hag, batch, targets);

  std::printf("\nInfluence distribution heat map (rows/cols = nodes; F = "
              "fraud)\n        ");
  for (size_t j = 0; j < show; ++j) {
    std::printf("%5s%c", StrFormat("n%zu", j).c_str(),
                data->labels[batch.global_ids[j]] ? 'F' : ' ');
  }
  std::printf("\n");
  double fraud_block = 0.0, cross_block = 0.0;
  int nf = 0, nc = 0;
  for (size_t i = 0; i < show; ++i) {
    std::printf("%5s%c  ", StrFormat("n%zu", i).c_str(),
                data->labels[batch.global_ids[i]] ? 'F' : ' ');
    for (size_t j = 0; j < show; ++j) {
      std::printf("%5.3f ", dist(i, j));
      const bool fi = data->labels[batch.global_ids[i]];
      const bool fj = data->labels[batch.global_ids[j]];
      if (i != j) {
        if (fi && fj) {
          fraud_block += dist(i, j);
          ++nf;
        } else if (fi != fj) {
          cross_block += dist(i, j);
          ++nc;
        }
      }
    }
    std::printf("\n");
  }
  if (nf && nc) {
    std::printf(
        "\nmean fraud->fraud influence %.4f vs fraud<->normal %.4f "
        "(paper: values inside the fraud block are larger)\n",
        fraud_block / nf, cross_block / nc);
  }
  return 0;
}
