// Bringing your own behavior logs: builds a BN from hand-written
// [uid, type, value, timestamp] records — the Figure 3 toy example from
// the paper — and prints the resulting edge weights, demonstrating the
// inverse weight assignment and hierarchical time window rules.
//
// Run:  ./build/examples/custom_logs
#include <cstdio>

#include "bn/builder.h"
#include "bn/snapshot.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main() {
  // Five users sharing the same IP value (42). Users 0–3 within one hour;
  // user 4 appears an hour later (same 2-hour epoch).
  BehaviorLogList logs = {
      {0, BehaviorType::kIpv4, 42, 30 * kMinute},
      {1, BehaviorType::kIpv4, 42, 32 * kMinute},
      {2, BehaviorType::kIpv4, 42, 40 * kMinute},
      {3, BehaviorType::kIpv4, 42, 55 * kMinute},
      {4, BehaviorType::kIpv4, 42, 85 * kMinute},
  };

  bn::BnConfig cfg;
  cfg.windows = {kHour, 2 * kHour};  // the figure's two windows
  storage::EdgeStore edges;
  bn::BnBuilder builder(cfg, &edges);
  builder.BuildFromLogs(logs);

  std::printf("Figure 3 toy example — BN edge weights\n");
  std::printf("(inner 1-hour clique gets 1/4 + 1/5; user 4 only 1/5)\n\n");
  TablePrinter table({"edge", "weight", "explanation"});
  const int ip = EdgeTypeIndex(BehaviorType::kIpv4);
  for (UserId u = 0; u < 5; ++u) {
    for (UserId v = u + 1; v < 5; ++v) {
      const float w = edges.Weight(ip, u, v);
      if (w == 0.0f) continue;
      table.AddRow({StrFormat("u%u - u%u", u, v), StrFormat("%.3f", w),
                    (v == 4 || u == 4) ? "2h window only (1/5)"
                                       : "1h (1/4) + 2h (1/5)"});
    }
  }
  table.Print();

  // Snapshot build fuses the symmetric degree normalization.
  bn::GraphView norm(bn::BnSnapshot::Build(edges, 5));
  std::printf("\nAfter symmetric degree normalization:\n");
  for (const auto& e : norm.Neighbors(ip, 0)) {
    std::printf("  u0 - u%u : %.4f\n", e.id, e.weight);
  }
  return 0;
}
