// Real-time serving walkthrough (paper Figure 2): trains Turbo offline,
// then stands up the BN server + feature management + prediction server
// and streams audit requests through them in application-time order,
// printing per-module latency and blocking decisions.
//
// Run:  ./build/examples/realtime_serving [num_users]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/model_store.h"
#include "core/turbo.h"
#include "server/prediction_server.h"

using namespace turbo;

int main(int argc, char** argv) {
  const int num_users = argc > 1 ? std::atoi(argv[1]) : 1500;

  // ---- offline phase: dataset, BN, HAG training ----
  auto dataset =
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(num_users));
  core::PipelineConfig pipeline;
  pipeline.bn.windows = {kHour, 6 * kHour, kDay};
  auto data = core::PrepareData(std::move(dataset), pipeline);

  core::HagConfig hcfg;
  hcfg.hidden = {32, 16};
  hcfg.attention_dim = 16;
  hcfg.mlp_hidden = 16;
  core::Hag hag(hcfg);
  gnn::TrainConfig tcfg;
  tcfg.epochs = 40;
  tcfg.lr = 2e-3f;
  core::TrainAndScoreGnn(&hag, *data, bn::SamplerConfig{}, tcfg);

  // Model management (Figure 2): the daily retrain publishes a version;
  // the serving side loads the latest.
  core::ModelRegistry registry("/tmp");
  auto version = registry.Publish(hag, "turbo_hag", "daily retrain");
  core::Hag serving_model(hcfg);
  serving_model.Init(static_cast<int>(data->features.cols()));
  TURBO_CHECK(registry.Load("turbo_hag", &serving_model).ok());
  std::printf("offline training done; published model v%d and loaded it "
              "for serving\n", version.value());

  // ---- online phase: Figure 2 component wiring ----
  server::BnServerConfig bcfg;
  bcfg.bn = pipeline.bn;
  bcfg.num_users = num_users;
  server::BnServer bn_server(bcfg);
  bn_server.IngestBatch(data->dataset.logs);

  features::FeatureStore feature_store(features::FeatureStoreConfig{},
                                       &bn_server.logs());
  for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
    const float* row = data->dataset.profile_features.row(u);
    feature_store.PutProfile(
        u, std::vector<float>(
               row, row + data->dataset.profile_features.cols()));
  }

  server::PredictionConfig pcfg;
  pcfg.threshold = 0.85;  // the deployed threshold (Section VI-E)
  server::PredictionServer prediction(pcfg, &bn_server, &feature_store,
                                      &serving_model, &data->scaler);

  // ---- streaming replay of the test users' audits ----
  std::vector<UserId> order = data->test_uids;
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return data->dataset.users[a].application_time <
           data->dataset.users[b].application_time;
  });
  int blocked = 0, blocked_fraud = 0, total_fraud = 0;
  for (UserId u : order) {
    bn_server.AdvanceTo(data->dataset.users[u].application_time + kDay);
    auto resp = prediction.Handle(u);
    blocked += resp.blocked;
    total_fraud += data->labels[u];
    blocked_fraud += resp.blocked && data->labels[u];
  }
  std::printf("replayed %zu audits: blocked %d (%d of %d fraudsters)\n",
              order.size(), blocked, blocked_fraud, total_fraud);
  std::printf("window jobs executed: %zu, edges expired by TTL: %zu\n",
              bn_server.jobs_run(), bn_server.edges_expired());
  std::printf("feature cache hit rate: %.1f%%\n\n",
              100.0 * feature_store.cache_hit_rate());
  std::printf("%s\n", prediction.sampling_latency()
                          .Summary("BN server (sampling)").c_str());
  std::printf("%s\n", prediction.feature_latency()
                          .Summary("feature management").c_str());
  std::printf("%s\n", prediction.inference_latency()
                          .Summary("prediction (HAG)").c_str());
  std::printf("%s\n",
              prediction.total_latency().Summary("total").c_str());
  return 0;
}
