#include "graphfe/blp.h"

#include <gtest/gtest.h>

#include "datagen/scenario.h"
#include "metrics/metrics.h"

namespace turbo::graphfe {
namespace {

BehaviorLog L(UserId u, BehaviorType t, ValueId v, SimTime time = 0) {
  return BehaviorLog{u, t, v, time};
}

TEST(BipartiteTest, KeepsOnlySharedValues) {
  BehaviorLogList logs = {
      L(0, BehaviorType::kDeviceId, 1), L(1, BehaviorType::kDeviceId, 1),
      L(2, BehaviorType::kDeviceId, 2),  // singleton value
  };
  auto g = BipartiteGraph::FromLogs(logs, 3);
  EXPECT_EQ(g.num_values(), 1u);
  EXPECT_EQ(g.UserValues(0).size(), 1u);
  EXPECT_EQ(g.UserValues(2).size(), 0u);
  EXPECT_EQ(g.TotalDistinctValues(2), 1);  // singleton still counted
}

TEST(BipartiteTest, DuplicateLogsDeduplicated) {
  BehaviorLogList logs = {
      L(0, BehaviorType::kIpv4, 9), L(0, BehaviorType::kIpv4, 9),
      L(1, BehaviorType::kIpv4, 9),
  };
  auto g = BipartiteGraph::FromLogs(logs, 2);
  ASSERT_EQ(g.num_values(), 1u);
  EXPECT_EQ(g.ValueUsers(0).size(), 2u);
}

TEST(BipartiteTest, SameValueDifferentTypesAreDistinctNodes) {
  BehaviorLogList logs = {
      L(0, BehaviorType::kIpv4, 5), L(1, BehaviorType::kIpv4, 5),
      L(0, BehaviorType::kImei, 5), L(1, BehaviorType::kImei, 5),
  };
  auto g = BipartiteGraph::FromLogs(logs, 2);
  EXPECT_EQ(g.num_values(), 2u);
}

TEST(BlpFeaturesTest, CountsMatchHandExample) {
  // Users 0,1 share device 1 (deterministic); users 0,1,2 share IP 7
  // (probabilistic). User 3 is isolated.
  BehaviorLogList logs = {
      L(0, BehaviorType::kDeviceId, 1), L(1, BehaviorType::kDeviceId, 1),
      L(0, BehaviorType::kIpv4, 7),     L(1, BehaviorType::kIpv4, 7),
      L(2, BehaviorType::kIpv4, 7),     L(3, BehaviorType::kGps100, 99),
  };
  auto g = BipartiteGraph::FromLogs(logs, 4);
  auto f = BlpGraphFeatures(g);
  ASSERT_EQ(f.rows(), 4u);
  ASSERT_EQ(f.cols(), static_cast<size_t>(kNumBlpFeatures));
  // User 0: 2 shared values, 2 co-users (1 via both, 2 via IP).
  EXPECT_FLOAT_EQ(f(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(f(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(f(0, 3), 2.0f);  // max co-users via IP 7
  EXPECT_FLOAT_EQ(f(0, 4), 1.0f);  // deterministic shares
  EXPECT_FLOAT_EQ(f(0, 5), 1.0f);  // probabilistic shares
  // User 0's quadrangles: co-user 1 shares 2 values -> C(2,2)=1.
  EXPECT_FLOAT_EQ(f(0, 8), 1.0f);
  // User 3 isolated.
  EXPECT_FLOAT_EQ(f(3, 0), 0.0f);
  EXPECT_FLOAT_EQ(f(3, 9), 1.0f);
}

TEST(BlpFeaturesTest, ClusteringCoefficientOnTriangle) {
  // 0,1 share A; 1,2 share B; 0,2 share C: projection triangle, so each
  // user's neighborhood clustering = 1.
  BehaviorLogList logs = {
      L(0, BehaviorType::kIpv4, 1), L(1, BehaviorType::kIpv4, 1),
      L(1, BehaviorType::kIpv4, 2), L(2, BehaviorType::kIpv4, 2),
      L(0, BehaviorType::kIpv4, 3), L(2, BehaviorType::kIpv4, 3),
  };
  auto g = BipartiteGraph::FromLogs(logs, 3);
  auto f = BlpGraphFeatures(g);
  for (int u = 0; u < 3; ++u) EXPECT_FLOAT_EQ(f(u, 7), 1.0f);
}

TEST(BlpTest, DetectsRingSharingOnScenario) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1500));
  auto g = BipartiteGraph::FromLogs(ds.logs, 1500);
  BlpConfig cfg;
  cfg.gbdt.num_trees = 60;
  Blp blp(cfg, g);
  // Split by uid.
  std::vector<UserId> train, test;
  for (UserId u = 0; u < 1500; ++u) {
    (u % 5 == 0 ? test : train).push_back(u);
  }
  auto labels = ds.Labels();
  std::vector<int> y_train;
  for (UserId u : train) y_train.push_back(labels[u]);
  blp.Fit(ds.profile_features, train, y_train);
  auto scores = blp.Predict(ds.profile_features, test);
  std::vector<int> y_test;
  for (UserId u : test) y_test.push_back(labels[u]);
  EXPECT_GT(metrics::RocAuc(scores, y_test), 0.75);
}

TEST(BlpTest, GraphFeaturesSeparateFraud) {
  // Fraud rings share devices; the two-hop count alone should already
  // rank fraudsters above average.
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1200));
  auto g = BipartiteGraph::FromLogs(ds.logs, 1200);
  auto f = BlpGraphFeatures(g);
  auto labels = ds.Labels();
  std::vector<double> det_share(1200);
  for (int u = 0; u < 1200; ++u) det_share[u] = f(u, 4);
  EXPECT_GT(metrics::RocAuc(det_share, labels), 0.8);
}

}  // namespace
}  // namespace turbo::graphfe
