#include "graphfe/deepwalk.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/scenario.h"
#include "metrics/metrics.h"

namespace turbo::graphfe {
namespace {

BehaviorLog L(UserId u, ValueId v) {
  return BehaviorLog{u, BehaviorType::kIpv4, v, 0};
}

// Two groups of users, each sharing a within-group pool of values.
BipartiteGraph TwoGroups(int per_group, int values_per_group) {
  BehaviorLogList logs;
  Rng rng(1);
  for (int g = 0; g < 2; ++g) {
    for (int u = 0; u < per_group; ++u) {
      const UserId uid = static_cast<UserId>(g * per_group + u);
      for (int k = 0; k < 3; ++k) {
        const ValueId v = 1 + g * values_per_group +
                          rng.NextUint(values_per_group);
        logs.push_back(L(uid, v));
      }
    }
  }
  return BipartiteGraph::FromLogs(logs, 2 * per_group);
}

double CosineSim(const la::Matrix& e, int a, int b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t c = 0; c < e.cols(); ++c) {
    dot += e(a, c) * e(b, c);
    na += e(a, c) * e(a, c);
    nb += e(b, c) * e(b, c);
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

TEST(DeepWalkTest, EmbeddingShape) {
  auto g = TwoGroups(10, 4);
  DeepWalkConfig cfg;
  cfg.embedding_dim = 16;
  auto e = DeepWalkEmbeddings(g, cfg);
  EXPECT_EQ(e.rows(), 20u);
  EXPECT_EQ(e.cols(), 16u);
}

TEST(DeepWalkTest, WithinGroupSimilarityExceedsAcross) {
  auto g = TwoGroups(12, 4);
  DeepWalkConfig cfg;
  cfg.epochs = 4;
  auto e = DeepWalkEmbeddings(g, cfg);
  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (int a = 0; a < 24; ++a) {
    for (int b = a + 1; b < 24; ++b) {
      const bool same = (a < 12) == (b < 12);
      if (same) {
        within += CosineSim(e, a, b);
        ++nw;
      } else {
        across += CosineSim(e, a, b);
        ++na;
      }
    }
  }
  EXPECT_GT(within / nw, across / na + 0.2);
}

TEST(DeepWalkTest, DeterministicForSameSeed) {
  auto g = TwoGroups(8, 3);
  DeepWalkConfig cfg;
  auto a = DeepWalkEmbeddings(g, cfg);
  auto b = DeepWalkEmbeddings(g, cfg);
  EXPECT_TRUE(la::AllClose(a, b, 0.0f, 0.0f));
}

TEST(DeepWalkTest, IsolatedUsersKeepInitEmbeddings) {
  BehaviorLogList logs = {L(0, 1), L(1, 1)};  // user 2 isolated
  auto g = BipartiteGraph::FromLogs(logs, 3);
  DeepWalkConfig cfg;
  auto e = DeepWalkEmbeddings(g, cfg);
  // Row 2 remains small random init (norm bounded), and finite.
  for (size_t c = 0; c < e.cols(); ++c) {
    EXPECT_FALSE(std::isnan(e(2, c)));
  }
}

TEST(DeepTraxTest, Dtx2BeatsDtx1OnScenario) {
  // DTX2 (embedding + original features) should dominate DTX1 (embedding
  // only) — the paper's Table III shows exactly this gap.
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1200));
  auto g = BipartiteGraph::FromLogs(ds.logs, 1200);
  std::vector<UserId> train, test;
  for (UserId u = 0; u < 1200; ++u) (u % 5 == 0 ? test : train).push_back(u);
  auto labels = ds.Labels();
  std::vector<int> y_train, y_test;
  for (UserId u : train) y_train.push_back(labels[u]);
  for (UserId u : test) y_test.push_back(labels[u]);

  DeepTraxConfig c1;
  c1.gbdt.num_trees = 60;
  DeepTrax dtx1(c1, g);
  dtx1.Fit(ds.profile_features, train, y_train);
  const double auc1 =
      metrics::RocAuc(dtx1.Predict(ds.profile_features, test), y_test);

  DeepTraxConfig c2 = c1;
  c2.include_original_features = true;
  DeepTrax dtx2(c2, g);
  dtx2.Fit(ds.profile_features, train, y_train);
  const double auc2 =
      metrics::RocAuc(dtx2.Predict(ds.profile_features, test), y_test);

  EXPECT_EQ(dtx1.name(), "DTX1");
  EXPECT_EQ(dtx2.name(), "DTX2");
  // At this reduced scale the graph signal alone can saturate; DTX2 must
  // never be worse than DTX1 and must be strong in absolute terms.
  EXPECT_GE(auc2, auc1 - 1e-9);
  EXPECT_GT(auc2, 0.85);
}

}  // namespace
}  // namespace turbo::graphfe
