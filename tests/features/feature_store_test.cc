#include "features/feature_store.h"

#include <gtest/gtest.h>

namespace turbo::features {
namespace {

using storage::LogStore;
using storage::SimClock;

class FeatureStoreTest : public ::testing::Test {
 protected:
  FeatureStoreTest() {
    for (int i = 0; i < 10; ++i) {
      logs_.Append({1, BehaviorType::kDeviceId, 100,
                    20 * kDay + i * kHour});
    }
  }
  LogStore logs_{storage::MediumCost::NetworkedSql()};
};

TEST_F(FeatureStoreTest, ReturnsProfilePlusStats) {
  FeatureStore store(FeatureStoreConfig{}, &logs_);
  store.PutProfile(1, {1.0f, 2.0f, 3.0f});
  auto f = store.GetFeatures(1, 21 * kDay);
  ASSERT_EQ(f.size(), 3u + kNumStatFeatures);
  EXPECT_FLOAT_EQ(f[0], 1.0f);
  EXPECT_FLOAT_EQ(f[2], 3.0f);
  EXPECT_GT(f[3 + 2], 0.0f);  // log_count_60d
  EXPECT_EQ(store.dim(), 3u + kNumStatFeatures);
}

TEST_F(FeatureStoreTest, UnknownUserReturnsEmpty) {
  FeatureStore store(FeatureStoreConfig{}, &logs_);
  store.PutProfile(1, {1.0f});
  EXPECT_TRUE(store.GetFeatures(99, 21 * kDay).empty());
}

TEST_F(FeatureStoreTest, CacheHitIsCheaper) {
  FeatureStore store(FeatureStoreConfig{}, &logs_);
  store.PutProfile(1, {1.0f});
  SimClock cold, warm;
  store.GetFeatures(1, 21 * kDay, &cold);
  store.GetFeatures(1, 21 * kDay, &warm);
  EXPECT_GT(cold.ElapsedMicros(), warm.ElapsedMicros());
  EXPECT_GT(store.cache_hit_rate(), 0.0);
}

TEST_F(FeatureStoreTest, CachedValueMatchesComputed) {
  FeatureStore store(FeatureStoreConfig{}, &logs_);
  store.PutProfile(1, {5.0f});
  auto a = store.GetFeatures(1, 21 * kDay);
  auto b = store.GetFeatures(1, 21 * kDay);
  EXPECT_EQ(a, b);
}

TEST_F(FeatureStoreTest, NoCacheModeAlwaysRecomputes) {
  FeatureStoreConfig cfg;
  cfg.use_cache = false;
  FeatureStore store(cfg, &logs_);
  store.PutProfile(1, {1.0f});
  SimClock c1, c2;
  store.GetFeatures(1, 21 * kDay, &c1);
  store.GetFeatures(1, 21 * kDay, &c2);
  EXPECT_DOUBLE_EQ(c1.ElapsedMicros(), c2.ElapsedMicros());
}

TEST_F(FeatureStoreTest, DifferentAsOfHoursAreSeparateCacheKeys) {
  FeatureStore store(FeatureStoreConfig{}, &logs_);
  store.PutProfile(1, {1.0f});
  auto f1 = store.GetFeatures(1, 20 * kDay + 5 * kHour);
  auto f2 = store.GetFeatures(1, 25 * kDay);
  // More logs have accumulated by the later as_of.
  EXPECT_LT(f1[1 + 2], f2[1 + 2]);
}

TEST_F(FeatureStoreTest, ProfileDimMismatchAborts) {
  FeatureStore store(FeatureStoreConfig{}, &logs_);
  store.PutProfile(1, {1.0f, 2.0f});
  EXPECT_DEATH(store.PutProfile(2, {1.0f}), "CHECK failed");
}

}  // namespace
}  // namespace turbo::features
