#include "features/stat_features.h"

#include <gtest/gtest.h>

namespace turbo::features {
namespace {

using storage::LogStore;

// A "session": device + ip + cell + wifi logs at one time.
void AddSession(LogStore* store, UserId uid, SimTime t, ValueId device,
                ValueId ip, ValueId cell, ValueId wifi) {
  store->Append({uid, BehaviorType::kDeviceId, device, t});
  store->Append({uid, BehaviorType::kIpv4, ip, t});
  store->Append({uid, BehaviorType::kGps100, cell, t});
  store->Append({uid, BehaviorType::kWifiMac, wifi, t});
}

TEST(StatFeaturesTest, NamesMatchCount) {
  EXPECT_EQ(StatFeatureNames().size(),
            static_cast<size_t>(kNumStatFeatures));
}

TEST(StatFeaturesTest, EmptyUserAllZero) {
  LogStore store;
  auto f = ComputeStatFeatures(store, 42, 100 * kDay);
  for (float v : f) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(StatFeaturesTest, CountsSessionsInWindows) {
  LogStore store;
  const SimTime as_of = 100 * kDay;
  AddSession(&store, 1, as_of - 2 * kHour, 10, 20, 30, 40);   // in 1d
  AddSession(&store, 1, as_of - 3 * kDay, 10, 21, 30, 40);    // in 7d
  AddSession(&store, 1, as_of - 20 * kDay, 10, 22, 31, 40);   // in 60d
  AddSession(&store, 1, as_of - 90 * kDay, 10, 23, 32, 40);   // outside
  auto f = ComputeStatFeatures(store, 1, as_of);
  EXPECT_FLOAT_EQ(f[0], 1.0f);  // log_count_1d
  EXPECT_FLOAT_EQ(f[1], 2.0f);  // log_count_7d
  EXPECT_FLOAT_EQ(f[2], 3.0f);  // log_count_60d
}

TEST(StatFeaturesTest, DistinctCountersAreSetBased) {
  LogStore store;
  const SimTime as_of = 50 * kDay;
  AddSession(&store, 1, as_of - kHour, 10, 20, 30, 40);
  AddSession(&store, 1, as_of - 2 * kHour, 11, 20, 31, 40);
  AddSession(&store, 1, as_of - 3 * kHour, 10, 21, 30, 41);
  auto f = ComputeStatFeatures(store, 1, as_of);
  EXPECT_FLOAT_EQ(f[3], 2.0f);  // devices {10, 11}
  EXPECT_FLOAT_EQ(f[4], 2.0f);  // ips {20, 21}
  EXPECT_FLOAT_EQ(f[5], 2.0f);  // cells {30, 31}
  EXPECT_FLOAT_EQ(f[6], 2.0f);  // wifi {40, 41}
}

TEST(StatFeaturesTest, NightFraction) {
  LogStore store;
  const SimTime day_start = 10 * kDay;
  // Two sessions at 23:00 (night), two at noon.
  AddSession(&store, 1, day_start + 23 * kHour, 1, 2, 3, 4);
  AddSession(&store, 1, day_start + kDay + 23 * kHour, 1, 2, 3, 4);
  AddSession(&store, 1, day_start + 12 * kHour, 1, 2, 3, 4);
  AddSession(&store, 1, day_start + kDay + 12 * kHour, 1, 2, 3, 4);
  auto f = ComputeStatFeatures(store, 1, day_start + 3 * kDay);
  EXPECT_FLOAT_EQ(f[7], 0.5f);
}

TEST(StatFeaturesTest, BurstRatioHighForBurstyUser) {
  LogStore store;
  const SimTime as_of = 30 * kDay;
  // 8 sessions within +-1 day of as_of, 2 spread out.
  for (int i = 0; i < 8; ++i) {
    AddSession(&store, 1, as_of - kDay + i * kHour, 1, 2, 3, 4);
  }
  AddSession(&store, 1, as_of - 20 * kDay, 1, 2, 3, 4);
  AddSession(&store, 1, as_of - 10 * kDay, 1, 2, 3, 4);
  auto f = ComputeStatFeatures(store, 1, as_of);
  EXPECT_FLOAT_EQ(f[9], 0.8f);
  EXPECT_NEAR(f[8], 20.0f, 1.5f);  // activity span ~20 days
}

TEST(StatFeaturesTest, DeviceSwitchesCounted) {
  LogStore store;
  const SimTime as_of = 30 * kDay;
  // Device pattern A, B, A -> 2 switches.
  AddSession(&store, 1, as_of - 3 * kHour, 100, 2, 3, 4);
  AddSession(&store, 1, as_of - 2 * kHour, 200, 2, 3, 4);
  AddSession(&store, 1, as_of - 1 * kHour, 100, 2, 3, 4);
  auto f = ComputeStatFeatures(store, 1, as_of);
  EXPECT_FLOAT_EQ(f[12], 2.0f);
}

TEST(StatFeaturesTest, ChargesClockForLogScan) {
  LogStore store(storage::MediumCost{100.0, 10.0});
  const SimTime as_of = 30 * kDay;
  AddSession(&store, 1, as_of - kHour, 1, 2, 3, 4);
  storage::SimClock clock;
  ComputeStatFeatures(store, 1, as_of, &clock);
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 100.0 + 4 * 10.0);
}

TEST(StatFeaturesTest, BatchMatrixMatchesSingle) {
  LogStore store;
  AddSession(&store, 0, 5 * kDay, 1, 2, 3, 4);
  AddSession(&store, 1, 6 * kDay, 5, 6, 7, 8);
  la::Matrix m = ComputeStatFeatureMatrix(store, {0, 1},
                                          {7 * kDay, 7 * kDay});
  auto f0 = ComputeStatFeatures(store, 0, 7 * kDay);
  for (int c = 0; c < kNumStatFeatures; ++c) {
    EXPECT_FLOAT_EQ(m(0, c), f0[c]);
  }
}

}  // namespace
}  // namespace turbo::features
