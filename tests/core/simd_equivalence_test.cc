// SIMD-tier equivalence at model level: EmbedInference and
// LogitsInference under every supported SIMD tier must stay within 4 ULP
// (with a cancellation abs-floor) of the forced-scalar inference path,
// for HAG under every SAO x CFO ablation combo and for all three
// baselines. This is the end-to-end companion of the kernel-level sweep
// in tests/la/dispatch_test.cc: kernels that individually stay within a
// few ULP could still compound through layers, so the bound here is on
// the full forward.
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hag.h"
#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "gnn/sage.h"
#include "gnn/trainer.h"
#include "la/cpu_features.h"
#include "tests/core/test_graphs.h"
#include "tests/la/ulp_test_util.h"

namespace turbo::core {
namespace {

using la::testing::ExpectUlpClose;

constexpr int64_t kMaxUlps = 4;

std::vector<la::KernelIsa> SimdIsas() {
  std::vector<la::KernelIsa> isas;
  for (la::KernelIsa isa : {la::KernelIsa::kAvx2, la::KernelIsa::kAvx512,
                            la::KernelIsa::kNeon}) {
    if (la::IsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

std::vector<int> AlternatingLabels(size_t n) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 2);
  return labels;
}

/// Cancellation floor scaled to the magnitude of the reference output:
/// a layer stack accumulates over O(hidden * layers) terms, so elements
/// whose true value is tiny relative to the activations cannot hold a
/// relative ULP bound.
float ModelFloor(const la::Matrix& ref) {
  return 64.0f * std::numeric_limits<float>::epsilon() * ref.MaxAbs();
}

/// Trains briefly under the scalar tier (training never dispatches, but
/// pinning makes the intent explicit), then sweeps every supported SIMD
/// tier against the forced-scalar inference forward.
void ExpectSimdMatchesScalar(gnn::GnnModel* model,
                             const gnn::GraphBatch& batch) {
  la::Matrix emb_ref, logits_ref;
  {
    la::ScopedKernelIsa scalar(la::KernelIsa::kScalar);
    model->Init(static_cast<int>(batch.features.cols()));
    gnn::TrainConfig tcfg;
    tcfg.epochs = 8;
    gnn::GnnTrainer trainer(tcfg);
    trainer.Fit(model, batch, AlternatingLabels(batch.num_targets));
    emb_ref = model->EmbedInference(batch);
    logits_ref = model->LogitsInference(batch);
  }
  for (la::KernelIsa isa : SimdIsas()) {
    la::ScopedKernelIsa forced(isa);
    SCOPED_TRACE(la::IsaName(isa));
    ExpectUlpClose(emb_ref, model->EmbedInference(batch), kMaxUlps,
                   ModelFloor(emb_ref), "EmbedInference");
    ExpectUlpClose(logits_ref, model->LogitsInference(batch), kMaxUlps,
                   ModelFloor(logits_ref), "LogitsInference");
  }
}

TEST(SimdEquivalenceTest, HagAllAblationFlagCombos) {
  const gnn::GraphBatch batch = testing::MakePath(12, 41);
  for (bool use_sao : {true, false}) {
    for (bool use_cfo : {true, false}) {
      HagConfig cfg;
      cfg.hidden = {8, 4};
      cfg.attention_dim = 4;
      cfg.mlp_hidden = 4;
      cfg.use_sao = use_sao;
      cfg.use_cfo = use_cfo;
      Hag model(cfg);
      SCOPED_TRACE(model.name());
      ExpectSimdMatchesScalar(&model, batch);
    }
  }
}

TEST(SimdEquivalenceTest, HagTypeSpecificChains) {
  const gnn::GraphBatch batch = testing::MakePath(12, 42);
  HagConfig cfg;
  cfg.hidden = {8, 4};
  cfg.attention_dim = 4;
  cfg.mlp_hidden = 4;
  cfg.share_type_weights = false;
  Hag model(cfg);
  ExpectSimdMatchesScalar(&model, batch);
}

TEST(SimdEquivalenceTest, Gcn) {
  const gnn::GraphBatch batch = testing::MakeClique(10, 43);
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  gnn::Gcn model(cfg);
  ExpectSimdMatchesScalar(&model, batch);
}

TEST(SimdEquivalenceTest, GraphSage) {
  const gnn::GraphBatch batch = testing::MakeClique(10, 44);
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  gnn::GraphSage model(cfg);
  ExpectSimdMatchesScalar(&model, batch);
}

TEST(SimdEquivalenceTest, Gat) {
  const gnn::GraphBatch batch = testing::MakePath(12, 45);
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  cfg.attention_dim = 4;
  cfg.gat_heads = 2;
  gnn::Gat model(cfg);
  ExpectSimdMatchesScalar(&model, batch);
}

}  // namespace
}  // namespace turbo::core
