// Empirical verification of Theorem 1: on a homogeneous clique, one round
// of GCN aggregation (with self-loops and uniform normalization) maps
// every node to the same embedding, while SAO's self-aware gate keeps
// clique members separable.
#include <cmath>

#include <gtest/gtest.h>

#include "core/hag.h"
#include "gnn/gcn.h"
#include "gnn/sage.h"
#include "tests/core/test_graphs.h"

namespace turbo::core {
namespace {

using testing::MakeClique;

/// Mean pairwise L2 distance between embedding rows.
double MeanPairwiseDistance(const la::Matrix& h) {
  double total = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < h.rows(); ++i) {
    for (size_t j = i + 1; j < h.rows(); ++j) {
      double d = 0.0;
      for (size_t c = 0; c < h.cols(); ++c) {
        const double diff = h(i, c) - h(j, c);
        d += diff * diff;
      }
      total += std::sqrt(d);
      ++pairs;
    }
  }
  return pairs ? total / pairs : 0.0;
}

gnn::GnnConfig NoDropoutConfig() {
  gnn::GnnConfig cfg;
  cfg.hidden = {16, 8};
  cfg.attention_dim = 8;
  cfg.mlp_hidden = 8;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(OversmoothingTest, GcnCollapsesCliqueToOnePoint) {
  auto batch = MakeClique(8, 1);
  gnn::Gcn model(NoDropoutConfig());
  model.Init(6);
  auto h = model.Embed(batch, /*training=*/false, nullptr);
  // In a clique with self-loops, every node's normalized neighborhood is
  // identical, so the first aggregation already collapses all rows.
  EXPECT_LT(MeanPairwiseDistance(h->value), 1e-5);
}

TEST(OversmoothingTest, InputFeaturesWereDistinct) {
  auto batch = MakeClique(8, 1);
  EXPECT_GT(MeanPairwiseDistance(batch.features), 1.0);
}

TEST(OversmoothingTest, SaoKeepsCliqueMembersSeparable) {
  auto batch = MakeClique(8, 1);
  HagConfig cfg;
  static_cast<gnn::GnnConfig&>(cfg) = NoDropoutConfig();
  cfg.use_cfo = false;  // isolate SAO on the homogeneous clique
  Hag model(cfg);
  model.Init(6);
  auto h = model.Embed(batch, /*training=*/false, nullptr);
  EXPECT_GT(MeanPairwiseDistance(h->value), 1e-2);
}

TEST(OversmoothingTest, SkipConnectionAlsoSeparatesButGcnDoesNot) {
  // GraphSAGE (Eq. 4) separates self from neighbors, so it does not
  // collapse either — the paper's point is that GCN-style schemes do.
  auto batch = MakeClique(8, 2);
  gnn::GraphSage sage(NoDropoutConfig());
  sage.Init(6);
  auto hs = sage.Embed(batch, false, nullptr);
  EXPECT_GT(MeanPairwiseDistance(hs->value), 1e-2);

  gnn::Gcn gcn(NoDropoutConfig());
  gcn.Init(6);
  auto hg = gcn.Embed(batch, false, nullptr);
  EXPECT_LT(MeanPairwiseDistance(hg->value),
            1e-4 * MeanPairwiseDistance(hs->value));
}

TEST(OversmoothingTest, GcnDoesNotCollapseNonCliqueGraph) {
  auto batch = testing::MakePath(8, 3);
  gnn::Gcn model(NoDropoutConfig());
  model.Init(6);
  auto h = model.Embed(batch, false, nullptr);
  EXPECT_GT(MeanPairwiseDistance(h->value), 1e-3);
}

TEST(OversmoothingTest, CollapseHoldsForAnyCliqueSize) {
  for (int m : {3, 5, 12, 20}) {
    auto batch = MakeClique(m, 10 + m);
    gnn::Gcn model(NoDropoutConfig());
    model.Init(6);
    auto h = model.Embed(batch, false, nullptr);
    EXPECT_LT(MeanPairwiseDistance(h->value), 1e-5) << "clique size " << m;
  }
}

}  // namespace
}  // namespace turbo::core
