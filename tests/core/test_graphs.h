// Shared graph fixtures for the core tests.
#pragma once

#include "gnn/graph_batch.h"
#include "util/rng.h"

namespace turbo::core::testing {

/// Homogeneous m-clique (all edges on type 0, unit weight) with distinct
/// Gaussian node features — the Theorem 1 setting.
inline gnn::GraphBatch MakeClique(int m, uint64_t seed) {
  Rng rng(seed);
  bn::Subgraph sg;
  sg.num_targets = m;
  for (int i = 0; i < m; ++i) {
    sg.nodes.push_back(static_cast<UserId>(i));
    sg.local[static_cast<UserId>(i)] = i;
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i != j) {
        sg.edges[0].push_back({static_cast<uint32_t>(i),
                               static_cast<uint32_t>(j), 1.0f});
      }
    }
  }
  la::Matrix features = la::Matrix::Randn(m, 6, &rng);
  return gnn::MakeGraphBatch(sg, features);
}

/// Path graph 0-1-2-...-(m-1), edges alternating between types 0 and 1.
inline gnn::GraphBatch MakePath(int m, uint64_t seed) {
  Rng rng(seed);
  bn::Subgraph sg;
  sg.num_targets = m;
  for (int i = 0; i < m; ++i) {
    sg.nodes.push_back(static_cast<UserId>(i));
    sg.local[static_cast<UserId>(i)] = i;
  }
  for (int i = 0; i + 1 < m; ++i) {
    const int type = i % 2;
    sg.edges[type].push_back({static_cast<uint32_t>(i),
                              static_cast<uint32_t>(i + 1), 1.0f});
    sg.edges[type].push_back({static_cast<uint32_t>(i + 1),
                              static_cast<uint32_t>(i), 1.0f});
  }
  la::Matrix features = la::Matrix::Randn(m, 6, &rng);
  return gnn::MakeGraphBatch(sg, features);
}

}  // namespace turbo::core::testing
