// Int8 quantized inference AUC gate: on a trained HAG over a D1-like
// scenario, scoring the test split through the int8 inference path must
// land within |dAUC| <= 0.002 of the float inference path. Quantization
// is lossy per weight (scale/2 max error), so this is the accuracy
// contract — not a ULP bound (see src/la/quant.h).
#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>

#include "core/turbo.h"
#include "la/cpu_features.h"

namespace turbo::core {
namespace {

constexpr double kMaxAucDelta = 0.002;

class QuantizedInferenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineConfig cfg;
    cfg.bn.windows = {kHour, 6 * kHour, kDay};
    auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(800));
    data_ = PrepareData(std::move(ds), cfg).release();

    HagConfig hcfg;
    hcfg.hidden = {16, 8};
    hcfg.attention_dim = 8;
    hcfg.mlp_hidden = 8;
    model_ = new Hag(hcfg);
    gnn::TrainConfig tc;
    tc.epochs = 30;
    tc.lr = 2e-3f;
    // Trains in place; the returned autograd-path scores are not needed.
    TrainAndScoreGnn(model_, *data_, bn::SamplerConfig{}, tc);
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static std::vector<double> ScoreTestSplit(gnn::InferenceMode mode) {
    model_->SetInferenceMode(mode);
    auto batch = MakeBatch(*data_, data_->test_uids, bn::SamplerConfig{});
    auto scores = gnn::GnnTrainer::PredictTargetsInference(*model_, batch);
    model_->SetInferenceMode(gnn::InferenceMode::kFloat);
    return scores;
  }

  static PreparedData* data_;
  static Hag* model_;
};

PreparedData* QuantizedInferenceTest::data_ = nullptr;
Hag* QuantizedInferenceTest::model_ = nullptr;

TEST_F(QuantizedInferenceTest, AucWithinGateOfFloatPath) {
  const auto float_scores = ScoreTestSplit(gnn::InferenceMode::kFloat);
  const auto int8_scores = ScoreTestSplit(gnn::InferenceMode::kInt8);
  ASSERT_EQ(float_scores.size(), data_->test_uids.size());
  ASSERT_EQ(int8_scores.size(), float_scores.size());

  const auto labels = data_->LabelsFor(data_->test_uids);
  const double float_auc = metrics::RocAuc(float_scores, labels);
  const double int8_auc = metrics::RocAuc(int8_scores, labels);
  EXPECT_GT(float_auc, 0.75) << "float baseline should beat chance";
  EXPECT_LE(std::abs(float_auc - int8_auc), kMaxAucDelta)
      << "float AUC " << float_auc << " vs int8 AUC " << int8_auc;
}

TEST_F(QuantizedInferenceTest, Int8ScoresTrackFloatScores) {
  const auto float_scores = ScoreTestSplit(gnn::InferenceMode::kFloat);
  const auto int8_scores = ScoreTestSplit(gnn::InferenceMode::kInt8);
  double total_abs = 0.0;
  for (size_t i = 0; i < float_scores.size(); ++i) {
    total_abs += std::abs(float_scores[i] - int8_scores[i]);
  }
  EXPECT_LT(total_abs / float_scores.size(), 0.02)
      << "int8 probabilities drifted from float";
}

TEST_F(QuantizedInferenceTest, ModeToggleRestoresFloatPathExactly) {
  const auto before = ScoreTestSplit(gnn::InferenceMode::kFloat);
  model_->SetInferenceMode(gnn::InferenceMode::kInt8);
  model_->SetInferenceMode(gnn::InferenceMode::kFloat);
  EXPECT_EQ(model_->inference_mode(), gnn::InferenceMode::kFloat);
  const auto after = ScoreTestSplit(gnn::InferenceMode::kFloat);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "score " << i;
  }
}

}  // namespace
}  // namespace turbo::core
