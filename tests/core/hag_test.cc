#include "core/hag.h"

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "gnn/trainer.h"
#include "metrics/metrics.h"
#include "tests/core/test_graphs.h"

namespace turbo::core {
namespace {

HagConfig TinyConfig() {
  HagConfig cfg;
  cfg.hidden = {12, 6};
  cfg.mlp_hidden = 6;
  cfg.attention_dim = 6;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(HagTest, EmbedShapeMatchesLastHidden) {
  auto batch = testing::MakePath(10, 1);
  Hag model(TinyConfig());
  model.Init(6);
  auto h = model.Embed(batch, false, nullptr);
  EXPECT_EQ(h->rows(), 10u);
  EXPECT_EQ(h->cols(), 6u);
  auto logits = model.Logits(batch, false, nullptr);
  EXPECT_EQ(logits->cols(), 1u);
}

TEST(HagTest, AblationNames) {
  HagConfig cfg = TinyConfig();
  EXPECT_EQ(Hag(cfg).name(), "HAG");
  cfg.use_sao = false;
  EXPECT_EQ(Hag(cfg).name(), "SAO(-)");
  cfg.use_sao = true;
  cfg.use_cfo = false;
  EXPECT_EQ(Hag(cfg).name(), "CFO(-)");
  cfg.use_sao = false;
  EXPECT_EQ(Hag(cfg).name(), "Both(-)");
}

TEST(HagTest, SharedChainsKeepParameterCountFlat) {
  HagConfig cfg = TinyConfig();  // share_type_weights = true by default
  Hag full(cfg);
  full.Init(6);
  cfg.use_cfo = false;
  Hag homo(cfg);
  homo.Init(6);
  // With shared SAO transforms, the full model adds only CFO parameters
  // (3 per type) over the homogeneous variant.
  EXPECT_EQ(full.Params().size(),
            homo.Params().size() + 3 * kNumEdgeTypes);
}

TEST(HagTest, UnsharedChainsArePerType) {
  HagConfig cfg = TinyConfig();
  cfg.share_type_weights = false;
  Hag full(cfg);
  full.Init(6);
  cfg.use_cfo = false;
  Hag homo(cfg);
  homo.Init(6);
  // Fully type-specific chains multiply the SAO parameters by |R|.
  EXPECT_GT(full.Params().size(), 4 * homo.Params().size());
}

TEST(HagTest, AblationsChangeParameterCount) {
  HagConfig cfg = TinyConfig();
  Hag hag(cfg);
  hag.Init(6);
  cfg.use_sao = false;
  Hag no_sao(cfg);
  no_sao.Init(6);
  EXPECT_GT(hag.Params().size(), no_sao.Params().size());
}

TEST(HagTest, GradientsFlowToAllParams) {
  auto batch = testing::MakePath(6, 2);
  HagConfig cfg = TinyConfig();
  cfg.hidden = {4, 3};
  cfg.attention_dim = 3;
  cfg.mlp_hidden = 3;
  Hag model(cfg);
  model.Init(6);
  la::Matrix targets(6, 1);
  targets(0, 0) = targets(3, 0) = 1.0f;
  la::Matrix w(6, 1, 1.0f);
  auto loss = ag::BceWithLogits(model.Logits(batch, false, nullptr),
                                targets, w);
  ag::Backward(loss);
  int with_grad = 0;
  for (const auto& p : model.Params()) with_grad += p->has_grad();
  // Every parameter participates (CFO + all chains + head).
  EXPECT_EQ(with_grad, static_cast<int>(model.Params().size()));
}

TEST(HagTest, GradientsMatchNumerical) {
  // Full HAG forward (SAO gate + CFO fusion + head) against finite
  // differences on a small heterogeneous graph.
  auto batch = testing::MakePath(5, 3);
  HagConfig cfg;
  cfg.hidden = {3};
  cfg.attention_dim = 2;
  cfg.mlp_hidden = 2;
  cfg.dropout = 0.0f;
  Hag model(cfg);
  model.Init(6);
  la::Matrix targets(5, 1);
  targets(1, 0) = 1.0f;
  la::Matrix w(5, 1, 1.0f);
  auto res = ag::CheckGradients(model.Params(), [&] {
    return ag::BceWithLogits(model.Logits(batch, false, nullptr), targets,
                             w);
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(HagTest, LearnsHeterogeneousCommunitySignal) {
  // Community signal lives only on edge type 0; type 1 carries random
  // noise edges. HAG with CFO should still learn the communities.
  Rng rng(9);
  const int size = 20, n = 2 * size;
  bn::Subgraph sg;
  sg.num_targets = n;
  for (int i = 0; i < n; ++i) {
    sg.nodes.push_back(static_cast<UserId>(i));
    sg.local[static_cast<UserId>(i)] = i;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool same = (i < size) == (j < size);
      if (same && rng.NextBool(0.3)) {
        sg.edges[0].push_back({(uint32_t)i, (uint32_t)j, 1.0f});
        sg.edges[0].push_back({(uint32_t)j, (uint32_t)i, 1.0f});
      }
      if (rng.NextBool(0.05)) {  // noise type, label-agnostic
        sg.edges[1].push_back({(uint32_t)i, (uint32_t)j, 1.0f});
        sg.edges[1].push_back({(uint32_t)j, (uint32_t)i, 1.0f});
      }
    }
  }
  la::Matrix features(n, 4);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = i < size;
    for (int c = 0; c < 4; ++c) {
      features(i, c) = static_cast<float>(rng.NextGaussian());
    }
  }
  auto batch = gnn::MakeGraphBatch(sg, features);

  Hag model(TinyConfig());
  model.Init(4);
  gnn::TrainConfig tc;
  tc.epochs = 150;
  tc.lr = 5e-3f;
  gnn::GnnTrainer trainer(tc);
  trainer.Fit(&model, batch, labels);
  auto scores = gnn::GnnTrainer::PredictTargets(&model, batch);
  EXPECT_GT(metrics::RocAuc(scores, labels), 0.9);
}

TEST(HagTest, DeterministicForSameSeed) {
  auto batch = testing::MakePath(8, 4);
  Hag a(TinyConfig()), b(TinyConfig());
  a.Init(6);
  b.Init(6);
  auto ha = a.Embed(batch, false, nullptr);
  auto hb = b.Embed(batch, false, nullptr);
  EXPECT_TRUE(la::AllClose(ha->value, hb->value, 0.0f, 0.0f));
}

TEST(HagDeathTest, EmbedBeforeInitAborts) {
  auto batch = testing::MakePath(4, 5);
  Hag model(TinyConfig());
  EXPECT_DEATH(model.Embed(batch, false, nullptr), "CHECK failed");
}

}  // namespace
}  // namespace turbo::core
