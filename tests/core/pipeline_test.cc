// End-to-end pipeline tests: scenario -> BN -> features -> HAG training.
#include <gtest/gtest.h>

#include "core/turbo.h"

namespace turbo::core {
namespace {

PipelineConfig FastPipeline() {
  PipelineConfig cfg;
  // Fewer windows for test speed; same hierarchy principle.
  cfg.bn.windows = {kHour, 6 * kHour, kDay};
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1000));
    data_ = PrepareData(std::move(ds), FastPipeline()).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static PreparedData* data_;
};

PreparedData* PipelineTest::data_ = nullptr;

TEST_F(PipelineTest, SplitCoversAllUsersDisjointly) {
  EXPECT_EQ(data_->train_uids.size() + data_->test_uids.size(), 1000u);
  std::vector<bool> seen(1000, false);
  for (UserId u : data_->train_uids) seen[u] = true;
  for (UserId u : data_->test_uids) {
    EXPECT_FALSE(seen[u]) << "uid " << u << " in both splits";
    seen[u] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_NEAR(static_cast<double>(data_->test_uids.size()) / 1000.0, 0.2,
              0.01);
}

TEST_F(PipelineTest, FeaturesIncludeStatsAndAreStandardized) {
  EXPECT_EQ(data_->features.cols(),
            static_cast<size_t>(datagen::kNumProfileFeatures) +
                features::kNumStatFeatures);
  // Train rows should be roughly standardized.
  double mean = 0.0;
  for (UserId u : data_->train_uids) mean += data_->features(u, 0);
  mean /= data_->train_uids.size();
  EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST_F(PipelineTest, NetworkIsNormalizedAndNonEmpty) {
  EXPECT_GT(data_->network.TotalEdges(), 0u);
  // Normalized weights are bounded by 1 for positive-weight graphs.
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (UserId u = 0; u < 50; ++u) {
      for (const auto& e : data_->network.Neighbors(t, u)) {
        EXPECT_GT(e.weight, 0.0f);
        EXPECT_LE(e.weight, 1.0f + 1e-5f);
      }
    }
  }
}

TEST_F(PipelineTest, MakeBatchTargetsComeFirst) {
  std::vector<UserId> targets = {data_->test_uids[0], data_->test_uids[1]};
  auto batch = MakeBatch(*data_, targets, bn::SamplerConfig{});
  EXPECT_EQ(batch.num_targets, 2u);
  EXPECT_EQ(batch.global_ids[0], targets[0]);
  EXPECT_EQ(batch.global_ids[1], targets[1]);
}

TEST_F(PipelineTest, HagBeatsChanceOnScenario) {
  HagConfig cfg;
  cfg.hidden = {16, 8};
  cfg.attention_dim = 8;
  cfg.mlp_hidden = 8;
  Hag model(cfg);
  gnn::TrainConfig tc;
  tc.epochs = 40;
  tc.lr = 2e-3f;
  auto scores = TrainAndScoreGnn(&model, *data_, bn::SamplerConfig{}, tc);
  ASSERT_EQ(scores.size(), data_->test_uids.size());
  auto labels = data_->LabelsFor(data_->test_uids);
  const double auc = metrics::RocAuc(scores, labels);
  EXPECT_GT(auc, 0.8) << "HAG should comfortably beat chance";
}

TEST_F(PipelineTest, EdgeTypeMaskingRemovesTypeFromNetwork) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(400));
  PipelineConfig cfg = FastPipeline();
  cfg.mask_edge_type = 0;  // Device Id
  auto masked = PrepareData(std::move(ds), cfg);
  for (UserId u = 0; u < 400; ++u) {
    EXPECT_TRUE(masked->network.Neighbors(0, u).empty());
  }
  EXPECT_GT(masked->network.TotalEdges(), 0u);
}

TEST(SplitTest, DeterministicAndSeedSensitive) {
  std::vector<UserId> tr1, te1, tr2, te2, tr3, te3;
  SplitByUid(100, 0.2, 1, &tr1, &te1);
  SplitByUid(100, 0.2, 1, &tr2, &te2);
  SplitByUid(100, 0.2, 2, &tr3, &te3);
  EXPECT_EQ(te1, te2);
  EXPECT_NE(te1, te3);
  EXPECT_EQ(te1.size(), 20u);
  EXPECT_EQ(tr1.size(), 80u);
}

}  // namespace
}  // namespace turbo::core
