#include "core/influence.h"

#include <gtest/gtest.h>

#include "core/hag.h"
#include "gnn/gcn.h"
#include "tests/core/test_graphs.h"

namespace turbo::core {
namespace {

gnn::GnnConfig NoDropout() {
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.attention_dim = 4;
  cfg.mlp_hidden = 4;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(InfluenceTest, ScoresNonNegativeAndDistributionNormalized) {
  auto batch = testing::MakePath(6, 1);
  gnn::Gcn model(NoDropout());
  model.Init(6);
  auto d = InfluenceDistribution(&model, batch, {0, 3});
  ASSERT_EQ(d.rows(), 2u);
  ASSERT_EQ(d.cols(), 6u);
  for (size_t r = 0; r < d.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < d.cols(); ++c) {
      EXPECT_GE(d(r, c), 0.0f);
      sum += d(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(InfluenceTest, TwoLayerModelHasTwoHopReceptiveField) {
  // On a path, a 2-layer GCN's influence on node 0 must vanish beyond
  // 2 hops.
  auto batch = testing::MakePath(7, 2);
  gnn::Gcn model(NoDropout());
  model.Init(6);
  auto s = InfluenceScores(&model, batch, {0});
  EXPECT_GT(s(0, 0), 0.0f);
  EXPECT_GT(s(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(s(0, 4), 0.0f);
  EXPECT_FLOAT_EQ(s(0, 6), 0.0f);
}

TEST(InfluenceTest, GcnOnCliqueIsUniform) {
  // Theorem 1's consequence: E[D_i(j)] = 1/m for every j in a clique.
  // With self-loops and uniform normalization, this holds exactly.
  const int m = 6;
  auto batch = testing::MakeClique(m, 3);
  gnn::Gcn model(NoDropout());
  model.Init(6);
  auto d = InfluenceDistribution(&model, batch, {0, 2});
  for (size_t r = 0; r < d.rows(); ++r) {
    for (size_t c = 0; c < d.cols(); ++c) {
      EXPECT_NEAR(d(r, c), 1.0 / m, 1e-3) << "entry " << r << "," << c;
    }
  }
}

TEST(InfluenceTest, SaoSelfInfluenceExceedsCliquePeers) {
  // SAO's gate should keep a node's own input the dominant contributor
  // even inside a clique.
  const int m = 6;
  auto batch = testing::MakeClique(m, 4);
  HagConfig cfg;
  static_cast<gnn::GnnConfig&>(cfg) = NoDropout();
  cfg.use_cfo = false;
  Hag model(cfg);
  model.Init(6);
  auto d = InfluenceDistribution(&model, batch, {0});
  double peer_mean = 0.0;
  for (int j = 1; j < m; ++j) peer_mean += d(0, j);
  peer_mean /= (m - 1);
  EXPECT_GT(d(0, 0), peer_mean);
}

TEST(InfluenceTest, RepeatedCallsAreConsistent) {
  // The grad-clearing between Jacobian rows must make results
  // call-order independent.
  auto batch = testing::MakePath(5, 5);
  gnn::Gcn model(NoDropout());
  model.Init(6);
  auto a = InfluenceScores(&model, batch, {1});
  auto b = InfluenceScores(&model, batch, {1});
  EXPECT_TRUE(la::AllClose(a, b, 1e-6f, 1e-5f));
}

TEST(InfluenceTest, HagInfluenceRunsOnHeterogeneousGraph) {
  auto batch = testing::MakePath(5, 6);
  HagConfig cfg;
  static_cast<gnn::GnnConfig&>(cfg) = NoDropout();
  Hag model(cfg);
  model.Init(6);
  auto d = InfluenceDistribution(&model, batch, {2});
  double sum = 0.0;
  for (size_t c = 0; c < d.cols(); ++c) sum += d(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-4);
  EXPECT_GT(d(0, 2), 0.0f);  // self influence present
}

TEST(InfluenceDeathTest, TargetOutOfRangeAborts) {
  auto batch = testing::MakePath(4, 7);
  gnn::Gcn model(NoDropout());
  model.Init(6);
  EXPECT_DEATH(InfluenceScores(&model, batch, {4}), "CHECK failed");
}

}  // namespace
}  // namespace turbo::core
