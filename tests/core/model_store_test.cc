#include "core/model_store.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "core/hag.h"
#include "gnn/sage.h"
#include "tests/core/test_graphs.h"

namespace turbo::core {
namespace {

HagConfig TinyConfig() {
  HagConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  cfg.attention_dim = 4;
  cfg.dropout = 0.0f;
  return cfg;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ModelStoreTest, SaveLoadRoundTripsPredictions) {
  auto batch = testing::MakePath(8, 1);
  Hag a(TinyConfig());
  a.Init(6);
  const auto path = TempPath("hag.model");
  ASSERT_TRUE(SaveModel(a, path, "unit test").ok());

  HagConfig cfg = TinyConfig();
  cfg.seed = 999;  // different init — must be overwritten by Load
  Hag b(cfg);
  b.Init(6);
  auto before = b.Logits(batch, false, nullptr);
  ASSERT_TRUE(LoadModel(path, &b).ok());
  auto after = b.Logits(batch, false, nullptr);
  auto original = a.Logits(batch, false, nullptr);
  EXPECT_FALSE(la::AllClose(before->value, original->value, 1e-6f, 1e-6f));
  EXPECT_TRUE(la::AllClose(after->value, original->value, 1e-5f, 1e-5f));
  std::remove(path.c_str());
}

TEST(ModelStoreTest, LoadRejectsWrongArchitecture) {
  Hag a(TinyConfig());
  a.Init(6);
  const auto path = TempPath("hag6.model");
  ASSERT_TRUE(SaveModel(a, path).ok());
  Hag b(TinyConfig());
  b.Init(7);  // different input dim -> different shapes
  auto s = LoadModel(path, &b);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelStoreTest, LoadRejectsWrongModelFamily) {
  Hag a(TinyConfig());
  a.Init(6);
  const auto path = TempPath("family.model");
  ASSERT_TRUE(SaveModel(a, path).ok());
  gnn::GnnConfig scfg;
  scfg.hidden = {8, 4};
  scfg.mlp_hidden = 4;
  gnn::GraphSage sage(scfg);
  sage.Init(6);
  EXPECT_FALSE(LoadModel(path, &sage).ok());  // param counts differ
  std::remove(path.c_str());
}

TEST(ModelStoreTest, LoadRejectsGarbageFile) {
  const auto path = TempPath("garbage.model");
  {
    std::ofstream out(path);
    out << "not a model\n";
  }
  Hag m(TinyConfig());
  m.Init(6);
  EXPECT_EQ(LoadModel(path, &m).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadModel("/nonexistent/x.model", &m).code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(ModelStoreTest, TruncatedFileLeavesModelUntouched) {
  // Regression: Load used to stream floats straight into the live
  // parameters, so a file cut off mid-tensor left the model half
  // overwritten while returning an error.
  auto batch = testing::MakePath(8, 1);
  Hag a(TinyConfig());
  a.Init(6);
  const auto path = TempPath("hag_truncated.model");
  ASSERT_TRUE(SaveModel(a, path, "to be truncated").ok());
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::trunc);
    out << contents.substr(0, contents.size() * 2 / 3);
  }

  HagConfig cfg = TinyConfig();
  cfg.seed = 999;
  Hag b(cfg);
  b.Init(6);
  const auto before = b.Logits(batch, false, nullptr);
  EXPECT_EQ(LoadModel(path, &b).code(), StatusCode::kInvalidArgument);
  const auto after = b.Logits(batch, false, nullptr);
  EXPECT_TRUE(la::AllClose(after->value, before->value, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(ModelStoreTest, CorruptTensorDataLeavesModelUntouched) {
  auto batch = testing::MakePath(8, 1);
  Hag a(TinyConfig());
  a.Init(6);
  const auto path = TempPath("hag_corrupt.model");
  ASSERT_TRUE(SaveModel(a, path, "to be corrupted").ok());
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    // Replace the final float with a non-numeric token.
    const auto last_space = contents.find_last_of(" \n", contents.size() - 2);
    ASSERT_NE(last_space, std::string::npos);
    contents = contents.substr(0, last_space + 1) + "garbage\n";
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }

  HagConfig cfg = TinyConfig();
  cfg.seed = 999;
  Hag b(cfg);
  b.Init(6);
  const auto before = b.Logits(batch, false, nullptr);
  EXPECT_EQ(LoadModel(path, &b).code(), StatusCode::kInvalidArgument);
  const auto after = b.Logits(batch, false, nullptr);
  EXPECT_TRUE(la::AllClose(after->value, before->value, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, PublishBumpsVersions) {
  ModelRegistry registry(::testing::TempDir());
  Hag m(TinyConfig());
  m.Init(6);
  EXPECT_EQ(registry.LatestVersion("hag_reg_test"), 0);
  auto v1 = registry.Publish(m, "hag_reg_test", "first");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 1);
  auto v2 = registry.Publish(m, "hag_reg_test");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 2);
  EXPECT_EQ(registry.LatestVersion("hag_reg_test"), 2);
  std::remove(registry.PathFor("hag_reg_test", 1).c_str());
  std::remove(registry.PathFor("hag_reg_test", 2).c_str());
}

TEST(ModelRegistryTest, LoadLatestAndSpecific) {
  ModelRegistry registry(::testing::TempDir());
  auto batch = testing::MakePath(6, 2);
  Hag v1_model(TinyConfig());
  v1_model.Init(6);
  ASSERT_TRUE(registry.Publish(v1_model, "hag_load_test").ok());
  HagConfig cfg2 = TinyConfig();
  cfg2.seed = 77;
  Hag v2_model(cfg2);
  v2_model.Init(6);
  ASSERT_TRUE(registry.Publish(v2_model, "hag_load_test").ok());

  Hag target(TinyConfig());
  target.Init(6);
  ASSERT_TRUE(registry.Load("hag_load_test", &target).ok());  // latest=v2
  EXPECT_TRUE(la::AllClose(target.Logits(batch, false, nullptr)->value,
                           v2_model.Logits(batch, false, nullptr)->value,
                           1e-5f, 1e-5f));
  ASSERT_TRUE(registry.Load("hag_load_test", &target, 1).ok());
  EXPECT_TRUE(la::AllClose(target.Logits(batch, false, nullptr)->value,
                           v1_model.Logits(batch, false, nullptr)->value,
                           1e-5f, 1e-5f));
  EXPECT_EQ(registry.Load("never_published", &target).code(),
            StatusCode::kNotFound);
  std::remove(registry.PathFor("hag_load_test", 1).c_str());
  std::remove(registry.PathFor("hag_load_test", 2).c_str());
}

}  // namespace
}  // namespace turbo::core
