// Tape-free inference equivalence: EmbedInference / LogitsInference /
// PredictTargetsInference must reproduce the autograd forward (Embed with
// training=false) on trained weights, for HAG under every ablation-flag
// combination and for all three baselines.
//
// The inference path reassociates some layer algebra for the fused SpMM
// epilogues (e.g. ReLU((A H) W) -> SpmmBiasAct(A, H*W)), so equivalence
// to autograd is float-tolerance (AllClose), not bit-for-bit. The kernel
// ISA is pinned to scalar here so this test measures only that
// reassociation; SIMD-tier drift vs scalar is bounded separately by
// tests/core/simd_equivalence_test.cc.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/hag.h"
#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "gnn/sage.h"
#include "gnn/trainer.h"
#include "la/cpu_features.h"
#include "tests/core/test_graphs.h"

namespace turbo::core {
namespace {

std::vector<int> AlternatingLabels(size_t n) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 2);
  return labels;
}

/// Trains briefly (so the weights are not at init), then checks the
/// tape-free forward against the autograd forward at every level:
/// embeddings, logits, and sigmoid predictions.
void ExpectInferenceMatchesAutograd(gnn::GnnModel* model,
                                    const gnn::GraphBatch& batch) {
  la::ScopedKernelIsa scalar(la::KernelIsa::kScalar);
  model->Init(static_cast<int>(batch.features.cols()));
  gnn::TrainConfig tcfg;
  tcfg.epochs = 8;
  gnn::GnnTrainer trainer(tcfg);
  trainer.Fit(model, batch, AlternatingLabels(batch.num_targets));

  ag::Tensor emb = model->Embed(batch, /*training=*/false, nullptr);
  la::Matrix emb_inf = model->EmbedInference(batch);
  EXPECT_TRUE(la::AllClose(emb->value, emb_inf))
      << model->name() << " embeddings diverge";

  ag::Tensor logits = model->Logits(batch, /*training=*/false, nullptr);
  la::Matrix logits_inf = model->LogitsInference(batch);
  EXPECT_TRUE(la::AllClose(logits->value, logits_inf))
      << model->name() << " logits diverge";

  const auto probs = gnn::GnnTrainer::PredictTargets(model, batch);
  const auto probs_inf =
      gnn::GnnTrainer::PredictTargetsInference(*model, batch);
  ASSERT_EQ(probs.size(), probs_inf.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(probs[i], probs_inf[i], 1e-6)
        << model->name() << " prediction " << i;
  }
}

TEST(InferenceEquivalenceTest, HagAllAblationFlagCombos) {
  const gnn::GraphBatch batch = testing::MakePath(12, 31);
  for (bool use_sao : {true, false}) {
    for (bool use_cfo : {true, false}) {
      HagConfig cfg;
      cfg.hidden = {8, 4};
      cfg.attention_dim = 4;
      cfg.mlp_hidden = 4;
      cfg.use_sao = use_sao;
      cfg.use_cfo = use_cfo;
      Hag model(cfg);
      SCOPED_TRACE(model.name());
      ExpectInferenceMatchesAutograd(&model, batch);
    }
  }
}

TEST(InferenceEquivalenceTest, HagTypeSpecificChains) {
  const gnn::GraphBatch batch = testing::MakePath(12, 32);
  HagConfig cfg;
  cfg.hidden = {8, 4};
  cfg.attention_dim = 4;
  cfg.mlp_hidden = 4;
  cfg.share_type_weights = false;
  Hag model(cfg);
  ExpectInferenceMatchesAutograd(&model, batch);
}

TEST(InferenceEquivalenceTest, Gcn) {
  const gnn::GraphBatch batch = testing::MakeClique(10, 33);
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  gnn::Gcn model(cfg);
  ExpectInferenceMatchesAutograd(&model, batch);
}

TEST(InferenceEquivalenceTest, GraphSage) {
  const gnn::GraphBatch batch = testing::MakeClique(10, 34);
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  gnn::GraphSage model(cfg);
  ExpectInferenceMatchesAutograd(&model, batch);
}

TEST(InferenceEquivalenceTest, Gat) {
  const gnn::GraphBatch batch = testing::MakePath(12, 35);
  gnn::GnnConfig cfg;
  cfg.hidden = {8, 4};
  cfg.mlp_hidden = 4;
  cfg.attention_dim = 4;
  cfg.gat_heads = 2;
  gnn::Gat model(cfg);
  ExpectInferenceMatchesAutograd(&model, batch);
}

}  // namespace
}  // namespace turbo::core
