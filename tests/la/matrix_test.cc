#include "la/matrix.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

namespace turbo::la {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
}

TEST(MatrixTest, StorageIs64ByteAligned) {
  // The SIMD kernels assume row 0 starts on a cache-line boundary.
  for (size_t rows : {1ul, 3ul, 17ul}) {
    Matrix m(rows, 5, 1.0f);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % kMatrixAlignment, 0u);
  }
  Matrix from_rows = Matrix::FromRows({{1, 2, 3}});
  EXPECT_EQ(
      reinterpret_cast<uintptr_t>(from_rows.data()) % kMatrixAlignment, 0u);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FLOAT_EQ(m(2, 1), 6.0f);
}

TEST(MatrixDeathTest, OutOfBoundsAtAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.at(2, 0), "CHECK failed");
  EXPECT_DEATH(m.at(0, 2), "CHECK failed");
}

TEST(MatrixTest, AddAndScale) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.Add(b, 0.5f);
  EXPECT_FLOAT_EQ(a(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(a(1, 1), 24.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 24.0f);
}

TEST(MatrixTest, Reductions) {
  Matrix a = Matrix::FromRows({{1, -2}, {3, -4}});
  EXPECT_DOUBLE_EQ(a.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 1 + 4 + 9 + 16);
  EXPECT_FLOAT_EQ(a.MaxAbs(), 4.0f);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(1);
  Matrix a = Matrix::Randn(4, 4, &rng);
  Matrix id(4, 4);
  for (int i = 0; i < 4; ++i) id(i, i) = 1.0f;
  EXPECT_TRUE(AllClose(MatMul(a, id), a));
  EXPECT_TRUE(AllClose(MatMul(id, a), a));
}

TEST(MatMulTest, TransAVariantsMatchExplicitTranspose) {
  Rng rng(2);
  Matrix a = Matrix::Randn(5, 3, &rng);
  Matrix b = Matrix::Randn(5, 4, &rng);
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b)));
}

TEST(MatMulTest, TransBVariantsMatchExplicitTranspose) {
  Rng rng(3);
  Matrix a = Matrix::Randn(5, 3, &rng);
  Matrix b = Matrix::Randn(4, 3, &rng);
  EXPECT_TRUE(AllClose(MatMulTransB(a, b), MatMul(a, Transpose(b))));
}

TEST(MatMulDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH(MatMul(a, b), "CHECK failed");
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  Rng rng(4);
  Matrix a = Matrix::Randn(3, 7, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(MapZipTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, -2}, {-3, 4}});
  Matrix r = MapT(a, [](float x) { return x * x; });
  EXPECT_FLOAT_EQ(r(1, 0), 9.0f);
  Matrix z = ZipT(a, r, [](float x, float y) { return x + y; });
  EXPECT_FLOAT_EQ(z(0, 1), 2.0f);
}

TEST(BroadcastTest, AddRowBroadcast) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix bias = Matrix::FromRows({{10, 20}});
  Matrix r = AddRowBroadcast(a, bias);
  EXPECT_TRUE(AllClose(r, Matrix::FromRows({{11, 22}, {13, 24}})));
}

TEST(BroadcastTest, MulColBroadcast) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix gate = Matrix::FromRows({{2}, {-1}});
  Matrix r = MulColBroadcast(a, gate);
  EXPECT_TRUE(AllClose(r, Matrix::FromRows({{2, 4}, {-3, -4}})));
}

TEST(ConcatColsTest, ShapesAndValues) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(1, 2), 6.0f);
}

TEST(SoftmaxRowsTest, RowsSumToOne) {
  Rng rng(5);
  Matrix a = Matrix::Randn(6, 5, &rng, 3.0f);
  Matrix s = SoftmaxRows(a);
  for (size_t r = 0; r < s.rows(); ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < s.cols(); ++c) {
      EXPECT_GT(s(r, c), 0.0f);
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxRowsTest, StableForLargeLogits) {
  Matrix a = Matrix::FromRows({{1000.0f, 1000.0f}});
  Matrix s = SoftmaxRows(a);
  EXPECT_NEAR(s(0, 0), 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(s(0, 1)));
}

TEST(SoftmaxRowsTest, ShiftInvariant) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});
  Matrix b = Matrix::FromRows({{101, 102, 103}});
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(b)));
}

TEST(RowSumsColTest, Basics) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix rs = RowSums(a);
  EXPECT_EQ(rs.cols(), 1u);
  EXPECT_FLOAT_EQ(rs(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 15.0f);
  Matrix c1 = Col(a, 1);
  EXPECT_FLOAT_EQ(c1(1, 0), 5.0f);
}

TEST(GlorotTest, BoundsRespectFanInOut) {
  Rng rng(6);
  Matrix m = Matrix::Glorot(20, 30, &rng);
  float a = std::sqrt(6.0f / 50.0f);
  EXPECT_LE(m.MaxAbs(), a);
  EXPECT_GT(m.MaxAbs(), 0.0f);
}

TEST(AllCloseTest, DetectsDifference) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_TRUE(AllClose(a, b));
  b(0, 0) = 1.1f;
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, Matrix(2, 3, 1.0f)));
}

}  // namespace
}  // namespace turbo::la
