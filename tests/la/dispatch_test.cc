// Runtime ISA dispatch: CpuFeatures sanity, override plumbing, and the
// numerical contracts of the dispatched kernels — forced-scalar dispatch
// is bit-identical to the plain la:: kernels, every SIMD tier stays
// within 4 ULP of scalar on the same inputs, fused epilogues are bitwise
// equal to their unfused composition within a tier, and the int8 GEMM
// matches the dequantized float GEMM to float tolerance.
#include "la/kernel_dispatch.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "la/cpu_features.h"
#include "la/quant.h"
#include "tests/la/ulp_test_util.h"
#include "util/rng.h"

namespace turbo::la {
namespace {

using testing::AccumFloor;
using testing::ExpectBitEqual;
using testing::ExpectUlpClose;

constexpr int64_t kMaxUlps = 4;

std::vector<KernelIsa> SupportedIsas() {
  std::vector<KernelIsa> isas;
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2,
                        KernelIsa::kAvx512, KernelIsa::kNeon}) {
    if (IsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

TEST(CpuFeaturesTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(IsaSupported(KernelIsa::kScalar));
}

TEST(CpuFeaturesTest, BestIsaIsSupported) {
  EXPECT_TRUE(IsaSupported(BestIsa()));
}

TEST(CpuFeaturesTest, BestIsaRespectsProbe) {
  CpuFeatures none;
  EXPECT_EQ(BestIsa(none), KernelIsa::kScalar);
  CpuFeatures avx2_only;
  avx2_only.avx2 = avx2_only.fma = true;
  KernelIsa best = BestIsa(avx2_only);
  // Without the AVX2 TU compiled in this still resolves to scalar.
  EXPECT_TRUE(best == KernelIsa::kAvx2 || best == KernelIsa::kScalar);
}

TEST(CpuFeaturesTest, IsaNameRoundTrips) {
  for (KernelIsa isa : {KernelIsa::kScalar, KernelIsa::kAvx2,
                        KernelIsa::kAvx512, KernelIsa::kNeon}) {
    KernelIsa parsed;
    ASSERT_TRUE(ParseIsaName(IsaName(isa), &parsed)) << IsaName(isa);
    EXPECT_EQ(parsed, isa);
  }
  KernelIsa parsed;
  EXPECT_TRUE(ParseIsaName("auto", &parsed));
  EXPECT_EQ(parsed, BestIsa());
  EXPECT_FALSE(ParseIsaName("sse9", &parsed));
  EXPECT_FALSE(ParseIsaName("", &parsed));
}

TEST(CpuFeaturesTest, ActiveIsaIsSupported) {
  EXPECT_TRUE(IsaSupported(ActiveIsa()));
}

TEST(CpuFeaturesTest, ScopedOverrideRestores) {
  const KernelIsa before = ActiveIsa();
  {
    ScopedKernelIsa forced(KernelIsa::kScalar);
    EXPECT_EQ(ActiveIsa(), KernelIsa::kScalar);
  }
  EXPECT_EQ(ActiveIsa(), before);
}

TEST(CpuFeaturesTest, EnvVarOverridesActiveIsa) {
  // CI runs this binary with TURBO_KERNEL_ISA already set, so save and
  // restore whatever was there instead of assuming a clean environment.
  const char* orig = std::getenv("TURBO_KERNEL_ISA");
  const std::string saved = orig ? orig : "";

  ASSERT_EQ(setenv("TURBO_KERNEL_ISA", "scalar", 1), 0);
  ResetKernelIsa();
  EXPECT_EQ(ActiveIsa(), KernelIsa::kScalar);

  if (orig) {
    ASSERT_EQ(setenv("TURBO_KERNEL_ISA", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("TURBO_KERNEL_ISA"), 0);
  }
  ResetKernelIsa();
  KernelIsa expected = BestIsa();
  if (orig) ASSERT_TRUE(ParseIsaName(saved, &expected));
  EXPECT_EQ(ActiveIsa(), expected);
}

TEST(CpuFeaturesDeathTest, ForcingUnsupportedTierAborts) {
  // At most one of AVX-512 / NEON can be supported on a given host, so
  // one of them is always a valid "unsupported" probe target... unless
  // an exotic build supports neither and both are compiled out.
  for (KernelIsa isa : {KernelIsa::kAvx512, KernelIsa::kNeon}) {
    if (!IsaSupported(isa)) {
      EXPECT_DEATH(SetKernelIsa(isa), "CHECK failed");
      return;
    }
  }
  GTEST_SKIP() << "all probe tiers supported on this host";
}

/// Shapes chosen to hit every vector-width tail: 1-wide, odd widths,
/// exact multiples of 8/16/32/64 columns, and k > 128 to cross the
/// depth-block boundary.
struct GemmShape {
  size_t m, k, n;
};

const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {7, 13, 9},   {3, 5, 8},    {4, 17, 16},
    {5, 24, 31}, {2, 130, 33}, {6, 129, 64}, {3, 200, 65},
};

class DispatchIsaTest : public ::testing::TestWithParam<KernelIsa> {};

INSTANTIATE_TEST_SUITE_P(
    SupportedTiers, DispatchIsaTest, ::testing::ValuesIn(SupportedIsas()),
    [](const ::testing::TestParamInfo<KernelIsa>& info) {
      return IsaName(info.param);
    });

TEST_P(DispatchIsaTest, GemmMatchesScalarWithinUlps) {
  Rng rng(21);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::Randn(s.m, s.k, &rng);
    const Matrix b = Matrix::Randn(s.k, s.n, &rng);
    Matrix ref;
    {
      ScopedKernelIsa scalar(KernelIsa::kScalar);
      ref = dispatch::MatMul(a, b);
    }
    ScopedKernelIsa forced(GetParam());
    ExpectUlpClose(ref, dispatch::MatMul(a, b), kMaxUlps,
                   AccumFloor(s.k, a.MaxAbs(), b.MaxAbs()), "MatMul");
  }
}

TEST_P(DispatchIsaTest, GemmTransBMatchesScalarWithinUlps) {
  Rng rng(22);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::Randn(s.m, s.k, &rng);
    const Matrix b = Matrix::Randn(s.n, s.k, &rng);
    Matrix ref;
    {
      ScopedKernelIsa scalar(KernelIsa::kScalar);
      ref = dispatch::MatMulTransB(a, b);
    }
    ScopedKernelIsa forced(GetParam());
    ExpectUlpClose(ref, dispatch::MatMulTransB(a, b), kMaxUlps,
                   AccumFloor(s.k, a.MaxAbs(), b.MaxAbs()), "MatMulTransB");
  }
}

SparseMatrix RandomSparse(size_t rows, size_t cols, int per_row, Rng* rng) {
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < rows; ++r) {
    for (int e = 0; e < per_row; ++e) {
      triplets.push_back({static_cast<uint32_t>(r),
                          static_cast<uint32_t>(rng->NextInt(0, cols - 1)),
                          static_cast<float>(rng->NextDouble(-1.0, 1.0))});
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, triplets);
}

TEST_P(DispatchIsaTest, SpmmMatchesScalarWithinUlps) {
  Rng rng(23);
  for (size_t n : {1ul, 7ul, 16ul, 33ul, 64ul}) {
    const SparseMatrix s = RandomSparse(40, 30, 6, &rng);
    const Matrix x = Matrix::Randn(30, n, &rng);
    Matrix ref;
    {
      ScopedKernelIsa scalar(KernelIsa::kScalar);
      ref = dispatch::Spmm(s, x);
    }
    ScopedKernelIsa forced(GetParam());
    ExpectUlpClose(ref, dispatch::Spmm(s, x), kMaxUlps,
                   AccumFloor(6, 1.0f, x.MaxAbs()), "Spmm");
  }
}

TEST_P(DispatchIsaTest, FusedSpmmEqualsUnfusedBitwise) {
  Rng rng(24);
  ScopedKernelIsa forced(GetParam());
  const SparseMatrix s = RandomSparse(25, 20, 5, &rng);
  const Matrix x = Matrix::Randn(20, 19, &rng);
  const Matrix bias = Matrix::Randn(1, 19, &rng);
  const Matrix full = Matrix::Randn(25, 19, &rng);
  for (Act act : {Act::kIdentity, Act::kRelu, Act::kTanh, Act::kSigmoid}) {
    const Matrix base = dispatch::Spmm(s, x);
    ExpectBitEqual(dispatch::MapAct(base, act),
                   dispatch::SpmmBiasAct(s, x, nullptr, act),
                   "SpmmBiasAct/no-addend");
    ExpectBitEqual(dispatch::MapAct(AddRowBroadcast(base, bias), act),
                   dispatch::SpmmBiasAct(s, x, &bias, act),
                   "SpmmBiasAct/bias");
    Matrix sum = base;
    sum.Add(full, 1.0f);
    ExpectBitEqual(dispatch::MapAct(sum, act),
                   dispatch::SpmmBiasAct(s, x, &full, act),
                   "SpmmBiasAct/full-addend");
  }
}

TEST_P(DispatchIsaTest, FusedGemmEqualsUnfusedBitwise) {
  Rng rng(25);
  ScopedKernelIsa forced(GetParam());
  const Matrix a = Matrix::Randn(9, 14, &rng);
  const Matrix b = Matrix::Randn(14, 21, &rng);
  const Matrix bias = Matrix::Randn(1, 21, &rng);
  for (Act act : {Act::kIdentity, Act::kRelu, Act::kTanh, Act::kSigmoid}) {
    const Matrix base = dispatch::MatMul(a, b);
    ExpectBitEqual(dispatch::MapAct(AddRowBroadcast(base, bias), act),
                   dispatch::MatMulBiasAct(a, b, &bias, act),
                   "MatMulBiasAct/bias");
    ExpectBitEqual(dispatch::MapAct(base, act),
                   dispatch::MatMulBiasAct(a, b, nullptr, act),
                   "MatMulBiasAct/no-addend");
  }
}

TEST_P(DispatchIsaTest, MapActBitIdenticalToScalarTier) {
  Rng rng(26);
  // Odd count exercises the vector tail; include negatives and zeros.
  Matrix a = Matrix::Randn(11, 13, &rng, 2.0f);
  a(0, 0) = 0.0f;
  a(0, 1) = -0.0f;
  for (Act act : {Act::kIdentity, Act::kRelu, Act::kTanh, Act::kSigmoid}) {
    Matrix ref;
    {
      ScopedKernelIsa scalar(KernelIsa::kScalar);
      ref = dispatch::MapAct(a, act);
    }
    ScopedKernelIsa forced(GetParam());
    ExpectBitEqual(ref, dispatch::MapAct(a, act), "MapAct");
  }
}

TEST_P(DispatchIsaTest, QuantGemmMatchesDequantizedFloatGemm) {
  Rng rng(27);
  ScopedKernelIsa forced(GetParam());
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::Randn(s.m, s.k, &rng);
    const Matrix w = Matrix::Randn(s.k, s.n, &rng);
    const QuantizedMatrix q = QuantizedMatrix::Quantize(w);
    // The quant kernel folds a[i,p]*scale[p] before the code multiply,
    // so it is tolerance-equal (not bitwise) to the dequantized GEMM.
    EXPECT_TRUE(AllClose(dispatch::MatMulQuant(a, q),
                         dispatch::MatMul(a, q.Dequantize()), 1e-4f, 1e-4f));
  }
}

TEST(DispatchScalarTest, ForcedScalarBitIdenticalToPlainKernels) {
  Rng rng(28);
  ScopedKernelIsa scalar(KernelIsa::kScalar);
  const Matrix a = Matrix::Randn(13, 140, &rng);
  const Matrix b = Matrix::Randn(140, 27, &rng);
  const Matrix bt = Matrix::Randn(27, 140, &rng);
  ExpectBitEqual(la::MatMul(a, b), dispatch::MatMul(a, b), "MatMul");
  ExpectBitEqual(la::MatMulTransB(a, bt), dispatch::MatMulTransB(a, bt),
                 "MatMulTransB");
  const SparseMatrix s = RandomSparse(30, 13, 4, &rng);
  ExpectBitEqual(s.Multiply(a), dispatch::Spmm(s, a), "Spmm");
  ExpectBitEqual(MapT(a, kernels::Relu), dispatch::MapAct(a, Act::kRelu),
                 "MapAct/relu");
}

TEST(QuantTest, RoundTripErrorBoundedByHalfScale) {
  Rng rng(29);
  const Matrix w = Matrix::Randn(17, 23, &rng, 1.5f);
  const QuantizedMatrix q = QuantizedMatrix::Quantize(w);
  ASSERT_EQ(q.rows, w.rows());
  ASSERT_EQ(q.cols, w.cols());
  const Matrix back = q.Dequantize();
  for (size_t r = 0; r < w.rows(); ++r) {
    // lround ties plus float rounding can push the error a hair past the
    // ideal scale/2 bound; allow a small slack factor.
    const float bound = 0.51f * q.scale[r] + 1e-7f;
    for (size_t c = 0; c < w.cols(); ++c) {
      EXPECT_LE(std::abs(back(r, c) - w(r, c)), bound)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantTest, ConstantRowsAreExact) {
  Matrix w(3, 5);
  for (size_t c = 0; c < 5; ++c) {
    w(0, c) = 0.0f;
    w(1, c) = 2.75f;
    w(2, c) = -1.0f / 3.0f;
  }
  const Matrix back = QuantizedMatrix::Quantize(w).Dequantize();
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(back(0, c), 0.0f);
    EXPECT_EQ(back(1, c), 2.75f);
    EXPECT_EQ(back(2, c), -1.0f / 3.0f);
  }
}

TEST(QuantTest, CacheAddFindClear) {
  Rng rng(30);
  QuantCache cache;
  int key_a = 0, key_b = 0;
  EXPECT_EQ(cache.Find(&key_a), nullptr);
  const Matrix w = Matrix::Randn(4, 6, &rng);
  const QuantizedMatrix& q = cache.Add(&key_a, w);
  EXPECT_EQ(cache.Find(&key_a), &q);
  EXPECT_EQ(cache.Find(&key_b), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.Find(&key_a), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace turbo::la
