// Parallel dense/sparse kernels: results must be bit-identical to the
// single-threaded kernels (rows are never split and accumulation order
// is fixed), and the template Map/Zip must agree with the type-erased
// convenience wrappers.
#include <vector>

#include <gtest/gtest.h>

#include "la/matrix.h"
#include "la/sparse.h"
#include "util/rng.h"

namespace turbo::la {
namespace {

/// Restores the global kernel-thread cap on scope exit so tests cannot
/// leak a cap into each other.
struct KernelThreadGuard {
  ~KernelThreadGuard() { SetKernelThreads(0); }
};

/// Textbook ijk matmul as the independent reference.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float s = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(KernelsParallelTest, MatMulMatchesNaiveReference) {
  KernelThreadGuard guard;
  Rng rng(7);
  // Big enough to clear the parallel flop threshold (2^20).
  const Matrix a = Matrix::Randn(160, 96, &rng);
  const Matrix b = Matrix::Randn(96, 120, &rng);
  const Matrix ref = NaiveMatMul(a, b);
  SetKernelThreads(4);
  EXPECT_TRUE(AllClose(MatMul(a, b), ref, 1e-4f, 1e-4f));
}

TEST(KernelsParallelTest, MatMulBitIdenticalAcrossThreadCounts) {
  KernelThreadGuard guard;
  Rng rng(8);
  const Matrix a = Matrix::Randn(170, 130, &rng);
  const Matrix b = Matrix::Randn(130, 90, &rng);
  SetKernelThreads(1);
  const Matrix serial = MatMul(a, b);
  for (int threads : {2, 4, 8}) {
    SetKernelThreads(threads);
    const Matrix parallel = MatMul(a, b);
    EXPECT_TRUE(AllClose(parallel, serial, 0.0f, 0.0f))
        << threads << " threads changed MatMul bits";
  }
}

TEST(KernelsParallelTest, MatMulTransBBitIdenticalAcrossThreadCounts) {
  KernelThreadGuard guard;
  Rng rng(9);
  // Odd row count of b exercises the unrolled kernel's remainder row.
  const Matrix a = Matrix::Randn(150, 140, &rng);
  const Matrix b = Matrix::Randn(111, 140, &rng);
  SetKernelThreads(1);
  const Matrix serial = MatMulTransB(a, b);
  const Matrix ref = NaiveMatMul(a, Transpose(b));
  EXPECT_TRUE(AllClose(serial, ref, 1e-4f, 1e-4f));
  SetKernelThreads(4);
  EXPECT_TRUE(AllClose(MatMulTransB(a, b), serial, 0.0f, 0.0f));
}

TEST(KernelsParallelTest, SparseMultiplyBitIdenticalAcrossThreadCounts) {
  KernelThreadGuard guard;
  Rng rng(10);
  std::vector<Triplet> triplets;
  const size_t n = 400;
  for (size_t r = 0; r < n; ++r) {
    for (int k = 0; k < 8; ++k) {
      triplets.push_back({static_cast<uint32_t>(r),
                          static_cast<uint32_t>(rng.NextInt(0, n - 1)),
                          static_cast<float>(rng.NextDouble(0.1, 1.0))});
    }
  }
  const SparseMatrix m = SparseMatrix::FromTriplets(n, n, triplets);
  const Matrix x = Matrix::Randn(n, 350, &rng);
  SetKernelThreads(1);
  const Matrix serial = m.Multiply(x);
  SetKernelThreads(4);
  EXPECT_TRUE(AllClose(m.Multiply(x), serial, 0.0f, 0.0f));
}

TEST(KernelsParallelTest, MapTAndZipTElementwise) {
  Rng rng(11);
  const Matrix a = Matrix::Randn(13, 7, &rng);
  const Matrix b = Matrix::Randn(13, 7, &rng);
  const Matrix sq = MapT(a, [](float x) { return x * x; });
  const Matrix h2 = ZipT(a, b, [](float x, float y) { return x * x + y * y; });
  const Matrix re = MapT(a, kernels::Relu);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(sq(r, c), a(r, c) * a(r, c));
      EXPECT_EQ(h2(r, c), a(r, c) * a(r, c) + b(r, c) * b(r, c));
      EXPECT_EQ(re(r, c), a(r, c) > 0.0f ? a(r, c) : 0.0f);
    }
  }
}

TEST(KernelsParallelTest, SliceColsExtractsBlock) {
  Matrix a = Matrix::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}});
  const Matrix s = SliceCols(a, 1, 2);
  ASSERT_EQ(s.rows(), 2u);
  ASSERT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 2.0f);
  EXPECT_EQ(s(0, 1), 3.0f);
  EXPECT_EQ(s(1, 0), 6.0f);
  EXPECT_EQ(s(1, 1), 7.0f);
}

TEST(KernelsParallelTest, KernelThreadsCapIsObservable) {
  KernelThreadGuard guard;
  SetKernelThreads(3);
  EXPECT_EQ(KernelThreads(), 3);
  SetKernelThreads(0);
  EXPECT_GE(KernelThreads(), 1);
}

}  // namespace
}  // namespace turbo::la
