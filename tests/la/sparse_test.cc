#include "la/sparse.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace turbo::la {
namespace {

SparseMatrix MakeExample() {
  // [[0, 2, 0],
  //  [1, 0, 3],
  //  [0, 0, 0],
  //  [4, 5, 0]]
  return SparseMatrix::FromTriplets(
      4, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {1, 2, 3.0f}, {3, 0, 4.0f},
             {3, 1, 5.0f}});
}

TEST(SparseTest, FromTripletsShapeAndNnz) {
  auto m = MakeExample();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 5u);
}

TEST(SparseTest, CsrArraysAre64ByteAligned) {
  auto m = MakeExample();
  EXPECT_EQ(
      reinterpret_cast<uintptr_t>(m.row_ptr().data()) % kMatrixAlignment, 0u);
  EXPECT_EQ(
      reinterpret_cast<uintptr_t>(m.col_idx().data()) % kMatrixAlignment, 0u);
  EXPECT_EQ(
      reinterpret_cast<uintptr_t>(m.values().data()) % kMatrixAlignment, 0u);
}

TEST(SparseTest, DuplicatesAreSummed) {
  auto m = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, 1.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  Matrix d = m.ToDense();
  EXPECT_FLOAT_EQ(d(0, 0), 3.5f);
}

TEST(SparseTest, ToDenseRoundTrip) {
  auto m = MakeExample();
  Matrix d = m.ToDense();
  EXPECT_FLOAT_EQ(d(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(d(1, 2), 3.0f);
  EXPECT_FLOAT_EQ(d(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(d(3, 1), 5.0f);
}

TEST(SparseTest, MultiplyMatchesDense) {
  auto m = MakeExample();
  Rng rng(1);
  Matrix x = Matrix::Randn(3, 5, &rng);
  EXPECT_TRUE(AllClose(m.Multiply(x), MatMul(m.ToDense(), x)));
}

TEST(SparseTest, MultiplyTransposedMatchesDense) {
  auto m = MakeExample();
  Rng rng(2);
  Matrix x = Matrix::Randn(4, 5, &rng);
  EXPECT_TRUE(
      AllClose(m.MultiplyTransposed(x), MatMul(Transpose(m.ToDense()), x)));
}

TEST(SparseTest, RowSums) {
  auto m = MakeExample();
  Matrix rs = m.RowSums();
  EXPECT_FLOAT_EQ(rs(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(rs(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(rs(3, 0), 9.0f);
}

TEST(SparseTest, RowNormalizedRowsSumToOne) {
  auto m = MakeExample().RowNormalized();
  Matrix rs = m.RowSums();
  EXPECT_NEAR(rs(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(rs(1, 0), 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(rs(2, 0), 0.0f);  // empty row stays zero
  EXPECT_NEAR(rs(3, 0), 1.0f, 1e-6f);
}

TEST(SparseTest, EmptyMatrix) {
  auto m = SparseMatrix::FromTriplets(3, 3, {});
  EXPECT_EQ(m.nnz(), 0u);
  Matrix x(3, 2, 1.0f);
  Matrix y = m.Multiply(x);
  EXPECT_DOUBLE_EQ(y.Sum(), 0.0);
}

TEST(SparseDeathTest, OutOfRangeTripletAborts) {
  EXPECT_DEATH(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0f}}),
               "CHECK failed");
}

TEST(SparseTest, LargeRandomAgainstDense) {
  Rng rng(7);
  std::vector<Triplet> trips;
  for (int i = 0; i < 500; ++i) {
    trips.push_back({static_cast<uint32_t>(rng.NextUint(40)),
                     static_cast<uint32_t>(rng.NextUint(30)),
                     static_cast<float>(rng.NextGaussian())});
  }
  auto m = SparseMatrix::FromTriplets(40, 30, trips);
  Matrix x = Matrix::Randn(30, 8, &rng);
  EXPECT_TRUE(AllClose(m.Multiply(x), MatMul(m.ToDense(), x), 1e-4f, 1e-3f));
}

}  // namespace
}  // namespace turbo::la
