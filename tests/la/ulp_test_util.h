// ULP-distance matchers for the SIMD dispatch equivalence tests.
//
// The SIMD tiers keep the scalar accumulation order, so they differ
// from scalar only by FMA contraction (and lane-wise horizontal sums in
// the dot-product kernel). That difference is a few ULP of each output
// element — except where the true value is the small difference of
// large intermediates (catastrophic cancellation), where a ULP bound on
// the near-zero result is meaningless. The matcher therefore passes an
// element when it is within `max_ulps` OR within an absolute floor
// scaled to the magnitude the accumulation actually ran at.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "la/matrix.h"

namespace turbo::la::testing {

/// Monotonic integer key for float bit patterns: adjacent floats map to
/// adjacent integers, so |key(a) - key(b)| is the ULP distance. +0 and
/// -0 map to the same key.
inline int64_t UlpKey(float x) {
  int32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits >= 0 ? int64_t{bits} : -int64_t{bits & 0x7FFFFFFF};
}

inline int64_t UlpDiff(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<int64_t>::max();
  }
  const int64_t d = UlpKey(a) - UlpKey(b);
  return d < 0 ? -d : d;
}

/// Expects every element of `got` within `max_ulps` of `ref`, or within
/// `abs_floor` absolutely (cancellation escape hatch). Pass an
/// `abs_floor` scaled to the accumulation magnitude, e.g.
/// 4 * eps * depth * max|A| * max|B| for a depth-`depth` product.
inline void ExpectUlpClose(const Matrix& ref, const Matrix& got,
                           int64_t max_ulps, float abs_floor,
                           const char* what) {
  ASSERT_TRUE(ref.same_shape(got)) << what << ": shape mismatch";
  int64_t worst = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const float r = ref.data()[i], g = got.data()[i];
    const int64_t ulps = UlpDiff(r, g);
    if (ulps <= max_ulps || std::abs(r - g) <= abs_floor) {
      worst = std::max(worst, ulps);
      continue;
    }
    FAIL() << what << ": element " << i << " ref=" << r << " got=" << g
           << " ulps=" << ulps << " (max " << max_ulps << ", floor "
           << abs_floor << ")";
  }
  SUCCEED() << what << ": worst ULP distance " << worst;
}

/// Abs-floor for a depth-`depth` float accumulation over operands
/// bounded by `amax` and `bmax`.
inline float AccumFloor(size_t depth, float amax, float bmax) {
  return 4.0f * std::numeric_limits<float>::epsilon() *
         static_cast<float>(depth) * amax * bmax;
}

/// Expects bitwise-identical matrices (scalar-tier identity checks).
inline void ExpectBitEqual(const Matrix& ref, const Matrix& got,
                           const char* what) {
  ASSERT_TRUE(ref.same_shape(got)) << what << ": shape mismatch";
  for (size_t i = 0; i < ref.size(); ++i) {
    int32_t rb, gb;
    std::memcpy(&rb, ref.data() + i, sizeof(rb));
    std::memcpy(&gb, got.data() + i, sizeof(gb));
    ASSERT_EQ(rb, gb) << what << ": element " << i << " ref=" << ref.data()[i]
                      << " got=" << got.data()[i];
  }
}

}  // namespace turbo::la::testing
