#include "bn/network.h"

#include <cmath>

#include <gtest/gtest.h>

namespace turbo::bn {
namespace {

using storage::EdgeStore;

// Two-type example:
//   type 0: 0-1 (w 2), 1-2 (w 2)
//   type 1: 0-1 (w 1), 0-2 (w 3)
EdgeStore MakeStore() {
  EdgeStore s;
  s.AddWeight(0, 0, 1, 2.0f, 0);
  s.AddWeight(0, 1, 2, 2.0f, 0);
  s.AddWeight(1, 0, 1, 1.0f, 0);
  s.AddWeight(1, 0, 2, 3.0f, 0);
  return s;
}

TEST(NetworkTest, SnapshotPreservesEdges) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3);
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_EQ(net.NumEdges(0), 2u);
  EXPECT_EQ(net.NumEdges(1), 2u);
  EXPECT_EQ(net.TotalEdges(), 4u);
  ASSERT_EQ(net.Neighbors(0, 1).size(), 2u);
  EXPECT_DOUBLE_EQ(net.WeightedDegree(0, 1), 4.0);
}

TEST(NetworkTest, NeighborsSortedById) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3);
  const auto& nbrs = net.Neighbors(0, 1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_LT(nbrs[0].id, nbrs[1].id);
}

TEST(NetworkTest, SymmetricNormalization) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3).Normalized();
  // Type 0: deg(0)=2, deg(1)=4, deg(2)=2.
  // w'(0,1) = 2 / sqrt(2*4)
  const auto& nbrs = net.Neighbors(0, 0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_NEAR(nbrs[0].weight, 2.0f / std::sqrt(8.0f), 1e-6f);
  // Symmetric: same value seen from node 1.
  for (const auto& e : net.Neighbors(0, 1)) {
    if (e.id == 0) EXPECT_NEAR(e.weight, 2.0f / std::sqrt(8.0f), 1e-6f);
  }
}

TEST(NetworkTest, NormalizationIsPerType) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3).Normalized();
  // Type 1: deg(0)=4, deg(1)=1, deg(2)=3. w'(0,1) = 1/sqrt(4).
  for (const auto& e : net.Neighbors(1, 0)) {
    if (e.id == 1) EXPECT_NEAR(e.weight, 0.5f, 1e-6f);
    if (e.id == 2) EXPECT_NEAR(e.weight, 3.0f / std::sqrt(12.0f), 1e-6f);
  }
}

TEST(NetworkTest, UnionNeighborsMergeAcrossTypes) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3);
  auto u0 = net.UnionNeighbors(0);
  ASSERT_EQ(u0.size(), 2u);  // {1, 2}
  EXPECT_EQ(u0[0].id, 1u);
  EXPECT_FLOAT_EQ(u0[0].weight, 3.0f);  // 2 (type 0) + 1 (type 1)
  EXPECT_EQ(u0[1].id, 2u);
  EXPECT_FLOAT_EQ(u0[1].weight, 3.0f);
  EXPECT_EQ(net.UnionDegree(0), 2u);
  EXPECT_DOUBLE_EQ(net.UnionWeightedDegree(0), 6.0);
}

TEST(NetworkTest, MaskingRemovesOneType) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3);
  auto masked = net.WithTypeMasked(0);
  EXPECT_EQ(masked.NumEdges(0), 0u);
  EXPECT_EQ(masked.NumEdges(1), 2u);
  EXPECT_TRUE(masked.Neighbors(0, 1).empty());
  // Original untouched.
  EXPECT_EQ(net.NumEdges(0), 2u);
}

TEST(NetworkTest, IsolatedNodesHaveNoNeighbors) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 5);
  EXPECT_TRUE(net.Neighbors(0, 4).empty());
  EXPECT_EQ(net.UnionDegree(4), 0u);
  // Normalization must not divide by zero on isolated nodes.
  auto norm = net.Normalized();
  EXPECT_TRUE(norm.Neighbors(0, 4).empty());
}

TEST(NetworkDeathTest, BoundsChecked) {
  auto net = BehaviorNetwork::FromEdgeStore(MakeStore(), 3);
  EXPECT_DEATH(net.Neighbors(0, 3), "CHECK failed");
  EXPECT_DEATH(net.Neighbors(-1, 0), "CHECK failed");
  EXPECT_DEATH(net.WithTypeMasked(99), "CHECK failed");
}

}  // namespace
}  // namespace turbo::bn
