#include "bn/builder.h"

#include <gtest/gtest.h>

namespace turbo::bn {
namespace {

using storage::EdgeStore;
using storage::LogStore;

constexpr BehaviorType kIp = BehaviorType::kIpv4;
const int kIpIdx = EdgeTypeIndex(kIp);

BehaviorLog L(UserId u, ValueId v, SimTime t, BehaviorType type = kIp) {
  return BehaviorLog{u, type, v, t};
}

// Reproduces the Figure 3 toy example: four users co-occur inside one
// 1-hour epoch (weight 1/4 each pair), a fifth joins within the 2-hour
// epoch (weight 1/5 to everyone), so inner edges get 1/4 + 1/5 and edges
// to the fifth user get only 1/5.
TEST(BnBuilderTest, Figure3ToyExample) {
  BnConfig cfg;
  cfg.windows = {kHour, 2 * kHour};
  EdgeStore edges;
  BnBuilder builder(cfg, &edges);
  BehaviorLogList logs = {
      L(0, 42, 1800), L(1, 42, 1900), L(2, 42, 2000), L(3, 42, 2100),
      L(4, 42, 5000),  // second 1-hour epoch, same 2-hour epoch
  };
  builder.BuildFromLogs(logs);
  EXPECT_NEAR(edges.Weight(kIpIdx, 0, 1), 0.25f + 0.2f, 1e-6f);
  EXPECT_NEAR(edges.Weight(kIpIdx, 2, 3), 0.25f + 0.2f, 1e-6f);
  EXPECT_NEAR(edges.Weight(kIpIdx, 0, 4), 0.2f, 1e-6f);
  EXPECT_NEAR(edges.Weight(kIpIdx, 3, 4), 0.2f, 1e-6f);
  // Clique: all 10 pairs exist.
  EXPECT_EQ(edges.NumEdges(kIpIdx), 10u);
}

TEST(BnBuilderTest, InverseWeightScalesWithUsers) {
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore e2, e10;
  {
    BnBuilder b(cfg, &e2);
    b.BuildFromLogs({L(0, 1, 100), L(1, 1, 200)});
  }
  {
    BnBuilder b(cfg, &e10);
    BehaviorLogList logs;
    for (UserId u = 0; u < 10; ++u) logs.push_back(L(u, 1, 100 + u));
    b.BuildFromLogs(logs);
  }
  EXPECT_NEAR(e2.Weight(kIpIdx, 0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(e10.Weight(kIpIdx, 0, 1), 0.1f, 1e-6f);
}

TEST(BnBuilderTest, InverseWeightingCanBeDisabled) {
  BnConfig cfg;
  cfg.windows = {kHour};
  cfg.inverse_weighting = false;
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  BehaviorLogList logs;
  for (UserId u = 0; u < 5; ++u) logs.push_back(L(u, 1, 100 + u));
  b.BuildFromLogs(logs);
  EXPECT_NEAR(edges.Weight(kIpIdx, 0, 1), 1.0f, 1e-6f);
}

TEST(BnBuilderTest, DuplicateLogsCountUsersOnce) {
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  // User 0 logs the same value three times: N is still 2.
  b.BuildFromLogs({L(0, 1, 100), L(0, 1, 200), L(0, 1, 300), L(1, 1, 400)});
  EXPECT_NEAR(edges.Weight(kIpIdx, 0, 1), 0.5f, 1e-6f);
}

TEST(BnBuilderTest, HierarchicalWindowsRewardShortIntervals) {
  // Close pair: 10 minutes apart; far pair: 20 hours apart. With the
  // default 13-window hierarchy the close pair accumulates weight in
  // every window, the far pair only in the 1-day window.
  BnConfig cfg;  // default windows [1h..12h, 1d]
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  b.BuildFromLogs({
      L(0, 7, 100), L(1, 7, 700),                 // close pair, value 7
      L(2, 8, 1000), L(3, 8, 1000 + 20 * kHour),  // far pair, value 8
  });
  const float close_w = edges.Weight(kIpIdx, 0, 1);
  const float far_w = edges.Weight(kIpIdx, 2, 3);
  EXPECT_NEAR(close_w, 13 * 0.5f, 1e-5f);
  EXPECT_NEAR(far_w, 0.5f, 1e-5f);
  EXPECT_GT(close_w, 10 * far_w);
}

TEST(BnBuilderTest, SingleUserValueMakesNoEdges) {
  EdgeStore edges;
  BnBuilder b(BnConfig{}, &edges);
  b.BuildFromLogs({L(0, 1, 100), L(0, 1, 50000), L(0, 2, 100)});
  EXPECT_EQ(edges.TotalEdges(), 0u);
}

TEST(BnBuilderTest, UsersInDifferentEpochsNotConnected) {
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  b.BuildFromLogs({L(0, 1, 100), L(1, 1, 2 * kHour + 100)});
  EXPECT_EQ(edges.TotalEdges(), 0u);
}

TEST(BnBuilderTest, NonEdgeTypesAreIgnored) {
  EdgeStore edges;
  BnBuilder b(BnConfig{}, &edges);
  b.BuildFromLogs({L(0, 1, 100, BehaviorType::kGps),
                   L(1, 1, 200, BehaviorType::kGps)});
  EXPECT_EQ(edges.TotalEdges(), 0u);
}

TEST(BnBuilderTest, DifferentTypesBuildSeparateEdges) {
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  b.BuildFromLogs({L(0, 1, 100, BehaviorType::kImei),
                   L(1, 1, 200, BehaviorType::kImei),
                   L(0, 1, 100, BehaviorType::kWifiMac),
                   L(1, 1, 200, BehaviorType::kWifiMac)});
  EXPECT_NEAR(edges.Weight(EdgeTypeIndex(BehaviorType::kImei), 0, 1), 0.5f,
              1e-6f);
  EXPECT_NEAR(edges.Weight(EdgeTypeIndex(BehaviorType::kWifiMac), 0, 1),
              0.5f, 1e-6f);
}

TEST(BnBuilderTest, IncrementalWindowJobMatchesBatch) {
  BnConfig cfg;
  cfg.windows = {kHour};
  BehaviorLogList logs = {L(0, 1, 600), L(1, 1, 1200), L(2, 1, 3000),
                          L(0, 1, 4000), L(3, 1, 5000)};
  // Batch.
  EdgeStore batch;
  BnBuilder(cfg, &batch).BuildFromLogs(logs);
  // Incremental: run the hourly job at each epoch boundary.
  LogStore store;
  store.AppendBatch(logs);
  EdgeStore inc;
  BnBuilder builder(cfg, &inc);
  for (SimTime end = kHour; end <= 2 * kHour; end += kHour) {
    builder.RunWindowJob(store, kHour, end);
  }
  for (UserId u = 0; u < 4; ++u) {
    for (UserId v = u + 1; v < 4; ++v) {
      EXPECT_FLOAT_EQ(batch.Weight(kIpIdx, u, v), inc.Weight(kIpIdx, u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST(BnBuilderTest, ExpireOldUsesConfiguredTtl) {
  BnConfig cfg;
  cfg.windows = {kHour};
  cfg.edge_ttl = 10 * kDay;
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  b.BuildFromLogs({L(0, 1, 100), L(1, 1, 200),
                   L(2, 2, 20 * kDay + 10), L(3, 2, 20 * kDay + 60)});
  EXPECT_EQ(edges.TotalEdges(), 2u);
  // At day 25, the edge stamped near t=0 is past the 10-day TTL.
  EXPECT_EQ(b.ExpireOld(25 * kDay), 1u);
  EXPECT_EQ(edges.TotalEdges(), 1u);
  EXPECT_GT(edges.Weight(kIpIdx, 2, 3), 0.0f);
}

TEST(BnBuilderTest, PathologicalBucketIsCappedButWeightFaithful) {
  BnConfig cfg;
  cfg.windows = {kHour};
  cfg.max_bucket_users = 10;
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  BehaviorLogList logs;
  for (UserId u = 0; u < 50; ++u) logs.push_back(L(u, 1, 100 + u));
  b.BuildFromLogs(logs);
  // 10 sampled users -> 45 edges, each with the true 1/50 weight.
  EXPECT_EQ(edges.NumEdges(kIpIdx), 45u);
  auto users = edges.ConnectedUsers();
  ASSERT_FALSE(users.empty());
  auto& nbrs = edges.Neighbors(kIpIdx, users[0]);
  ASSERT_FALSE(nbrs.empty());
  EXPECT_NEAR(nbrs.begin()->second.weight, 1.0f / 50.0f, 1e-6f);
}

TEST(BnBuilderTest, EpochIndexBoundaries) {
  // Epoch 1 covers [0, W] (origin included); epoch j > 1 covers
  // ((j-1)W, jW].
  EXPECT_EQ(BnBuilder::EpochIndex(0, kHour), 1);
  EXPECT_EQ(BnBuilder::EpochIndex(1, kHour), 1);
  EXPECT_EQ(BnBuilder::EpochIndex(kHour, kHour), 1);
  EXPECT_EQ(BnBuilder::EpochIndex(kHour + 1, kHour), 2);
  EXPECT_EQ(BnBuilder::EpochIndex(2 * kHour, kHour), 2);
  EXPECT_EQ(BnBuilder::EpochIndex(2 * kHour + 1, kHour), 3);
}

TEST(BnBuilderTest, TimeZeroBelongsToFirstEpoch) {
  // A log at the origin is real data, not a sentinel: it co-occurs with
  // anything else in epoch 1.
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  b.BuildFromLogs({L(0, 1, 0), L(1, 1, kHour)});
  EXPECT_NEAR(edges.Weight(kIpIdx, 0, 1), 0.5f, 1e-6f);
}

TEST(BnBuilderTest, EpochBoundaryTimesSplitCorrectly) {
  // t = W is the last instant of epoch 1; t = W + 1 opens epoch 2.
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  b.BuildFromLogs({L(0, 1, kHour), L(1, 1, kHour + 1), L(2, 1, 2 * kHour)});
  EXPECT_FLOAT_EQ(edges.Weight(kIpIdx, 0, 1), 0.0f);  // epochs 1 vs 2
  EXPECT_NEAR(edges.Weight(kIpIdx, 1, 2), 0.5f, 1e-6f);  // both epoch 2
}

TEST(BnBuilderDeathTest, RejectsNegativeTimestamps) {
  // A negative time would silently fold into the first epoch under the
  // old floor arithmetic; it is a data bug and must fail loudly.
  BnConfig cfg;
  cfg.windows = {kHour};
  EdgeStore edges;
  BnBuilder b(cfg, &edges);
  EXPECT_DEATH(b.BuildFromLogs({L(0, 1, -1), L(1, 1, 100)}),
               "negative timestamp");
}

TEST(BnBuilderDeathTest, RejectsUnsortedWindows) {
  BnConfig cfg;
  cfg.windows = {2 * kHour, kHour};
  EdgeStore edges;
  EXPECT_DEATH(BnBuilder(cfg, &edges), "CHECK failed");
}

}  // namespace
}  // namespace turbo::bn
