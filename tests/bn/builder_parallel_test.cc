// Determinism contract of the sharded window-job engine (DESIGN.md
// "Ingestion & window jobs"): the EdgeStore weights produced by BN
// construction are bit-identical — exact double equality, not
// approximate — across shard counts, thread counts, bucket-cache reuse
// on/off, and streamed (job-by-job) versus offline (BuildFromLogs)
// execution.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bn/builder.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace turbo::bn {
namespace {

using storage::EdgeStore;
using storage::LogStore;

constexpr int kUsers = 160;

// Skewed synthetic traffic: a few hot values (buckets large enough to
// trip the pathological-bucket subsampler when max_bucket_users is
// small), a long tail of cold ones, several behavior types (one of them
// not edge-building), spread over a few days.
BehaviorLogList MakeLogs(uint64_t seed, size_t n, SimTime span) {
  const BehaviorType types[] = {BehaviorType::kIpv4, BehaviorType::kImei,
                                BehaviorType::kWifiMac, BehaviorType::kGps};
  Rng rng(seed);
  BehaviorLogList logs;
  logs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BehaviorLog log;
    log.uid = static_cast<UserId>(rng.NextUint(kUsers));
    log.type = types[rng.NextUint(4)];
    log.value = rng.NextZipf(40, 1.2);
    log.time = static_cast<SimTime>(rng.NextUint(
        static_cast<uint64_t>(span)));
    logs.push_back(log);
  }
  return logs;
}

// Exact (bitwise) equality of two stores over the full user range.
void ExpectIdenticalStores(const EdgeStore& a, const EdgeStore& b,
                           const char* what) {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.NumEdges(t), b.NumEdges(t)) << what << " type " << t;
    for (UserId u = 0; u < kUsers; ++u) {
      const auto& an = a.Neighbors(t, u);
      const auto& bn = b.Neighbors(t, u);
      ASSERT_EQ(an.size(), bn.size()) << what << " u=" << u;
      for (const auto& [v, e] : an) {
        auto it = bn.find(v);
        ASSERT_NE(it, bn.end()) << what << " edge " << u << "-" << v;
        // Exact double equality is the engine's contract.
        ASSERT_EQ(e.weight, it->second.weight)
            << what << " edge " << u << "-" << v << " type " << t;
        ASSERT_EQ(e.last_update, it->second.last_update)
            << what << " edge " << u << "-" << v << " type " << t;
      }
    }
  }
}

BnConfig BaseConfig() {
  BnConfig cfg;
  cfg.windows = {kHour, 2 * kHour, 6 * kHour, kDay};
  cfg.max_bucket_users = 12;  // force the subsampled-bucket path
  return cfg;
}

TEST(BnBuilderParallelTest, ShardAndThreadCountsAreInvisible) {
  const BehaviorLogList logs = MakeLogs(0xA11CE, 6000, 3 * kDay);

  EdgeStore serial;
  {
    BnConfig cfg = BaseConfig();
    cfg.window_job_shards = 1;
    BnBuilder(cfg, &serial).BuildFromLogs(logs);  // no pool: serial path
  }
  EXPECT_GT(serial.TotalEdges(), 0u);

  for (int shards : {2, 4, 8}) {
    for (int threads : {0, 2, 8}) {  // 0 = no pool (serial shard loop)
      BnConfig cfg = BaseConfig();
      cfg.window_job_shards = shards;
      EdgeStore got;
      BnBuilder builder(cfg, &got);
      std::unique_ptr<util::ThreadPool> pool;
      if (threads > 0) {
        pool = std::make_unique<util::ThreadPool>(threads);
        builder.SetThreadPool(pool.get());
      }
      builder.BuildFromLogs(logs);
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ExpectIdenticalStores(serial, got, "sharded");
    }
  }
}

TEST(BnBuilderParallelTest, BucketCacheReuseIsInvisible) {
  const BehaviorLogList logs = MakeLogs(0xBEE, 6000, 3 * kDay);
  EdgeStore scanned, reused;
  {
    BnConfig cfg = BaseConfig();
    cfg.reuse_base_buckets = false;
    BnBuilder(cfg, &scanned).BuildFromLogs(logs);
  }
  {
    BnConfig cfg = BaseConfig();
    cfg.reuse_base_buckets = true;
    BnBuilder(cfg, &reused).BuildFromLogs(logs);
  }
  EXPECT_GT(scanned.TotalEdges(), 0u);
  ExpectIdenticalStores(scanned, reused, "reuse");
}

// Streamed construction — running each (window, epoch) job against a log
// store in global epoch-time order, exactly like a live server advancing
// its clock — must equal offline BuildFromLogs, for the serial and the
// sharded engine alike.
TEST(BnBuilderParallelTest, StreamedJobsMatchOfflineBuild) {
  const BehaviorLogList logs = MakeLogs(0xCAFE, 6000, 3 * kDay);
  SimTime max_t = 0;
  for (const auto& log : logs) max_t = std::max(max_t, log.time);

  for (int shards : {1, 8}) {
    BnConfig cfg = BaseConfig();
    cfg.window_job_shards = shards;

    EdgeStore offline;
    BnBuilder(cfg, &offline).BuildFromLogs(logs);

    LogStore store;
    store.AppendBatch(logs);
    EdgeStore streamed;
    BnBuilder builder(cfg, &streamed);
    util::ThreadPool pool(4);
    if (shards > 1) builder.SetThreadPool(&pool);
    SimTime cap = 0;
    for (SimTime w : cfg.windows) {
      cap = std::max(cap, BnBuilder::EpochIndex(max_t, w) * w);
    }
    std::vector<SimTime> last_end(cfg.windows.size(), 0);
    for (;;) {
      int best = -1;
      SimTime best_end = 0;
      for (size_t i = 0; i < cfg.windows.size(); ++i) {
        const SimTime next = last_end[i] + cfg.windows[i];
        if (next > cap) continue;
        if (best < 0 || next < best_end) {
          best = static_cast<int>(i);
          best_end = next;
        }
      }
      if (best < 0) break;
      builder.RunWindowJob(store, cfg.windows[best], best_end);
      last_end[best] = best_end;
      builder.EvictCachedBuckets(
          *std::min_element(last_end.begin(), last_end.end()));
    }
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExpectIdenticalStores(offline, streamed, "streamed");
    // The interleaved schedule keeps the bucket cache bounded by the
    // largest window, and nothing lingers after eviction at the cap.
    EXPECT_LE(builder.CachedBucketEpochs(),
              static_cast<size_t>(cfg.windows.back() / cfg.windows.front()));
  }
}

TEST(BnBuilderParallelTest, BucketCacheBytesGaugeTracksAndStaysBounded) {
  // Regression for the bn_bucket_cache_bytes gauge: it must track the
  // builder's byte accounting exactly, and the interleaved job schedule
  // plus eviction must hold the cache at a steady state — a 10-day run
  // must not use more cache than its first days established.
  const BehaviorLogList logs = MakeLogs(0xB17E5, 12000, 10 * kDay);
  BnConfig cfg = BaseConfig();
  LogStore store;
  store.AppendBatch(logs);
  EdgeStore edges;
  BnBuilder builder(cfg, &edges);
  obs::MetricsRegistry registry;
  builder.SetMetrics(&registry);
  obs::Gauge* bytes_g = registry.GetGauge("bn_bucket_cache_bytes");

  std::vector<SimTime> last_end(cfg.windows.size(), 0);
  size_t early_max = 0;  // peak bytes in the first 3 days
  size_t late_max = 0;   // peak bytes afterwards
  for (;;) {
    int best = -1;
    SimTime best_end = 0;
    for (size_t i = 0; i < cfg.windows.size(); ++i) {
      const SimTime next = last_end[i] + cfg.windows[i];
      if (next > 10 * kDay) continue;
      if (best < 0 || next < best_end) {
        best = static_cast<int>(i);
        best_end = next;
      }
    }
    if (best < 0) break;
    builder.RunWindowJob(store, cfg.windows[best], best_end);
    last_end[best] = best_end;
    builder.EvictCachedBuckets(
        *std::min_element(last_end.begin(), last_end.end()));
    ASSERT_EQ(bytes_g->value(),
              static_cast<double>(builder.CachedBucketBytes()));
    size_t& peak = best_end <= 3 * kDay ? early_max : late_max;
    peak = std::max(peak, builder.CachedBucketBytes());
  }
  EXPECT_GT(early_max, 0u);
  // Steady state: the cache bound is enforced epoch after epoch instead
  // of drifting upward with run length. (Uniform traffic, so identical
  // load per day; a leak would make the late peak grow day over day.)
  EXPECT_LE(late_max, 2 * early_max);
  // Epoch-count bound: nothing older than the largest window survives.
  EXPECT_LE(builder.CachedBucketEpochs(),
            static_cast<size_t>(cfg.windows.back() / cfg.windows.front()));

  // Draining the cache must zero both the accounting and the gauge.
  builder.EvictCachedBuckets(20 * kDay);
  EXPECT_EQ(builder.CachedBucketBytes(), 0u);
  EXPECT_EQ(builder.CachedBucketEpochs(), 0u);
  EXPECT_EQ(bytes_g->value(), 0.0);
}

}  // namespace
}  // namespace turbo::bn
