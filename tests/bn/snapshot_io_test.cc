#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "bn/snapshot.h"
#include "storage/checkpoint_io.h"
#include "storage/edge_store.h"

namespace turbo::bn {
namespace {

std::shared_ptr<const BnSnapshot> MakeSnapshot(uint64_t version,
                                               bool normalize) {
  storage::EdgeStore store;
  store.AddWeight(0, 0, 1, 1.0f, 10);
  store.AddWeight(0, 1, 2, 2.5f, 20);
  store.AddWeight(0, 0, 3, 0.5f, 30);
  store.AddWeight(3, 2, 3, 4.0f, 40);
  store.AddWeight(7, 0, 4, 1.25f, 50);
  SnapshotOptions options;
  options.normalize = normalize;
  options.num_threads = 1;
  return BnSnapshot::Build(store, /*num_nodes=*/5, options, version);
}

void ExpectBitIdentical(const BnSnapshot& a, const BnSnapshot& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.normalized(), b.normalized());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.NumEdges(t), b.NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < static_cast<UserId>(a.num_nodes()); ++u) {
      NeighborSpan na = a.Neighbors(t, u);
      NeighborSpan nb = b.Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (size_t i = 0; i < na.size(); ++i) {
        EXPECT_EQ(na.id(i), nb.id(i));
        // Bitwise float comparison: recovery must republish the exact
        // weights, not approximately recomputed ones.
        EXPECT_EQ(std::memcmp(&na.weights()[i], &nb.weights()[i],
                              sizeof(float)),
                  0)
            << "type " << t << " uid " << u << " slot " << i;
      }
    }
  }
}

TEST(SnapshotIoTest, RoundTripIsBitIdentical) {
  for (bool normalize : {true, false}) {
    auto original = MakeSnapshot(17, normalize);
    storage::BinaryWriter w;
    original->Serialize(&w);
    storage::BinaryReader r(w.data());
    auto restored_or = BnSnapshot::Deserialize(&r);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
    ExpectBitIdentical(*original, *restored_or.value());
  }
}

TEST(SnapshotIoTest, EmptySnapshotRoundTrips) {
  storage::EdgeStore empty;
  auto original = BnSnapshot::Build(empty, /*num_nodes=*/3, {}, 1);
  storage::BinaryWriter w;
  original->Serialize(&w);
  storage::BinaryReader r(w.data());
  auto restored_or = BnSnapshot::Deserialize(&r);
  ASSERT_TRUE(restored_or.ok());
  ExpectBitIdentical(*original, *restored_or.value());
}

TEST(SnapshotIoTest, TruncatedPayloadFails) {
  auto original = MakeSnapshot(5, true);
  storage::BinaryWriter w;
  original->Serialize(&w);
  for (size_t cut : {w.data().size() / 4, w.data().size() / 2,
                     w.data().size() - 1}) {
    storage::BinaryReader r(std::string_view(w.data()).substr(0, cut));
    auto restored_or = BnSnapshot::Deserialize(&r);
    EXPECT_FALSE(restored_or.ok()) << "cut at " << cut;
  }
}

TEST(SnapshotIoTest, OutOfRangeNeighborIdFails) {
  // Hand-craft a payload whose neighbor id exceeds the declared node
  // count: it must be rejected, not served out of bounds later.
  storage::BinaryWriter corrupt;
  corrupt.U8(2);    // format
  corrupt.U64(17);  // version
  corrupt.I64(1);   // num_nodes = 1
  corrupt.U8(0);    // not normalized (no wdeg blocks)
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    corrupt.U64(1);  // one entry
    corrupt.U64(0);  // offsets[0]
    corrupt.U64(1);  // offsets[1]
    UserId evil = 7;  // >= num_nodes
    corrupt.Bytes(&evil, sizeof(evil));
    float weight = 1.0f;
    corrupt.Bytes(&weight, sizeof(weight));
  }
  storage::BinaryReader r(corrupt.data());
  auto restored_or = BnSnapshot::Deserialize(&r);
  EXPECT_FALSE(restored_or.ok());
}

TEST(SnapshotIoTest, RoundTripPreservesVersionAndAppliesDeltas) {
  // A deserialized snapshot must be a first-class ApplyDeltas base:
  // patching it with later churn yields the same bits as patching the
  // original in-memory snapshot (and as a full rebuild). This is the
  // recovery path — the first incremental publish after a restart runs
  // over a snapshot that came off disk.
  storage::EdgeStore store;
  store.AddWeight(0, 0, 1, 1.0f, 10);
  store.AddWeight(0, 1, 2, 2.5f, 20);
  store.AddWeight(3, 2, 3, 4.0f, 40);
  SnapshotOptions options;
  options.num_threads = 1;
  auto original = BnSnapshot::Build(store, /*num_nodes=*/5, options, 9);

  storage::BinaryWriter w;
  original->Serialize(&w);
  storage::BinaryReader r(w.data());
  auto restored_or = BnSnapshot::Deserialize(&r);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  auto restored = restored_or.take();
  EXPECT_EQ(restored->version(), 9u);

  storage::EdgeChurn churn;
  store.AddWeight(0, 0, 4, 0.75f, 50);
  churn.Touch(0, 0);
  churn.Touch(0, 4);
  store.AddWeight(3, 1, 2, 1.5f, 60);
  churn.Touch(3, 1);
  churn.Touch(3, 2);

  auto from_restored =
      BnSnapshot::ApplyDeltas(restored, store, churn, options, 10);
  auto from_original =
      BnSnapshot::ApplyDeltas(original, store, churn, options, 10);
  auto full = BnSnapshot::Build(store, /*num_nodes=*/5, options, 10);
  ExpectBitIdentical(*from_restored, *from_original);
  ExpectBitIdentical(*from_restored, *full);
}

TEST(SnapshotIoTest, DiffRoundTripsOverADeserializedBase) {
  // SerializeDiff / DeserializePatched: the diff applies over a base
  // restored from bytes (content-equal, not pointer-equal) and
  // reproduces the derived snapshot exactly.
  storage::EdgeStore store;
  store.AddWeight(0, 0, 1, 1.0f, 10);
  store.AddWeight(3, 2, 3, 4.0f, 40);
  SnapshotOptions options;
  options.num_threads = 1;
  auto base = BnSnapshot::Build(store, /*num_nodes=*/5, options, 1);

  storage::EdgeChurn churn;
  store.AddWeight(0, 1, 3, 2.0f, 50);
  churn.Touch(0, 1);
  churn.Touch(0, 3);
  auto next = BnSnapshot::ApplyDeltas(base, store, churn, options, 2);

  storage::BinaryWriter base_bytes;
  base->Serialize(&base_bytes);
  storage::BinaryReader base_r(base_bytes.data());
  auto base_restored_or = BnSnapshot::Deserialize(&base_r);
  ASSERT_TRUE(base_restored_or.ok());

  storage::BinaryWriter diff;
  next->SerializeDiff(*base, &diff);
  EXPECT_LT(diff.size(), base_bytes.size());  // O(churn), not O(graph)
  storage::BinaryReader diff_r(diff.data());
  auto patched_or =
      BnSnapshot::DeserializePatched(base_restored_or.value(), &diff_r);
  ASSERT_TRUE(patched_or.ok()) << patched_or.status().ToString();
  ExpectBitIdentical(*patched_or.value(), *next);
}

}  // namespace
}  // namespace turbo::bn
